//! Key-access distributions.
//!
//! Lives in `atrapos-core` (rather than the workloads crate) because the
//! engine's typed reconfiguration channel (`WorkloadChange::Distribution`)
//! carries a distribution across the workload trait boundary: scenarios
//! that introduce skew at runtime (paper Figure 11) are plain data.

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How keys are drawn from a domain `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KeyDistribution {
    /// Uniform over the whole domain.
    Uniform,
    /// Hotspot skew: `access_fraction` of the requests go to the first
    /// `data_fraction` of the domain (the paper's Figure 11 uses 50% of the
    /// requests on 20% of the data).
    Hotspot {
        /// Fraction of the domain that is hot (0..1).
        data_fraction: f64,
        /// Fraction of accesses that hit the hot range (0..1).
        access_fraction: f64,
    },
}

impl KeyDistribution {
    /// Draw a key head from `[lo, hi)`.
    pub fn sample(&self, rng: &mut SmallRng, lo: i64, hi: i64) -> i64 {
        debug_assert!(hi > lo);
        match *self {
            KeyDistribution::Uniform => rng.gen_range(lo..hi),
            KeyDistribution::Hotspot {
                data_fraction,
                access_fraction,
            } => {
                let width = hi - lo;
                let hot_width = ((width as f64 * data_fraction).ceil() as i64).clamp(1, width);
                if rng.gen_bool(access_fraction.clamp(0.0, 1.0)) {
                    rng.gen_range(lo..lo + hot_width)
                } else if hot_width < width {
                    rng.gen_range(lo + hot_width..hi)
                } else {
                    rng.gen_range(lo..hi)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_covers_the_domain() {
        let mut rng = SmallRng::seed_from_u64(1);
        let d = KeyDistribution::Uniform;
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..2000 {
            let k = d.sample(&mut rng, 0, 100);
            assert!((0..100).contains(&k));
            if k < 10 {
                seen_low = true;
            }
            if k >= 90 {
                seen_high = true;
            }
        }
        assert!(seen_low && seen_high);
    }

    #[test]
    fn hotspot_concentrates_accesses() {
        let mut rng = SmallRng::seed_from_u64(2);
        let d = KeyDistribution::Hotspot {
            data_fraction: 0.2,
            access_fraction: 0.5,
        };
        let n = 10_000;
        let hot = (0..n).filter(|_| d.sample(&mut rng, 0, 1000) < 200).count() as f64;
        let frac = hot / n as f64;
        assert!((0.45..0.55).contains(&frac), "hot fraction {frac}");
    }

    #[test]
    fn distribution_round_trips_through_serde() {
        let d = KeyDistribution::Hotspot {
            data_fraction: 0.2,
            access_fraction: 0.5,
        };
        let text = serde::json::to_string(&d);
        let back: KeyDistribution = serde::json::from_str(&text).unwrap();
        assert_eq!(back, d);
    }
}
