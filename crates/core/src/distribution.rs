//! Key-access distributions.
//!
//! Lives in `atrapos-core` (rather than the workloads crate) because the
//! engine's typed reconfiguration channel (`WorkloadChange::Distribution`)
//! carries a distribution across the workload trait boundary: scenarios
//! that introduce skew at runtime (paper Figure 11) are plain data.
//!
//! Two layers:
//!
//! * [`KeyDistribution`] — the serializable *description* (uniform,
//!   hotspot, Zipfian, drifting hotspot).  This is what scenario files and
//!   `WorkloadChange` events carry.
//! * [`KeySampler`] — the *instantiation* of a description over a fixed
//!   key domain.  Building a sampler does any precomputation up front
//!   (the Zipfian variant materializes its cumulative distribution once),
//!   so drawing a key is allocation-free: the simulator's per-transaction
//!   hot path stays flat no matter the distribution.
//!
//! The hottest Zipfian ranks map to the *lowest* keys of the domain
//! (rank 0 → `lo`), deliberately un-scrambled: contiguous hot keys stress
//! range-partitioned designs exactly the way the paper's hotspot
//! experiments do, which is the point of carrying the distribution into a
//! partition-affinity simulator.

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How keys are drawn from a domain `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KeyDistribution {
    /// Uniform over the whole domain.
    Uniform,
    /// Hotspot skew: `access_fraction` of the requests go to the first
    /// `data_fraction` of the domain (the paper's Figure 11 uses 50% of the
    /// requests on 20% of the data).
    Hotspot {
        /// Fraction of the domain that is hot (0..1).
        data_fraction: f64,
        /// Fraction of accesses that hit the hot range (0..1).
        access_fraction: f64,
    },
    /// Zipfian rank-frequency skew with exponent `theta`: the probability
    /// of drawing the key of rank `k` (1-based, rank 1 = `lo`) is
    /// proportional to `k^-theta`.  `theta = 0` degenerates to uniform;
    /// YCSB's standard constant is `0.99`.
    Zipfian {
        /// Skew exponent (≥ 0; negative values are clamped to 0).
        theta: f64,
    },
    /// A *moving* hotspot: the hot window (`data_fraction` of the domain,
    /// receiving `access_fraction` of the accesses) rotates once around
    /// the whole domain every `period_txns` draws.  This is the
    /// continuously drifting skew that gives an adaptive system no stable
    /// layout to converge to — the stress test for repartitioning
    /// controllers.
    Drift {
        /// Fraction of the domain that is hot at any instant (0..1).
        data_fraction: f64,
        /// Fraction of accesses that hit the hot window (0..1).
        access_fraction: f64,
        /// Draws per full rotation of the hot window around the domain.
        period_txns: u64,
    },
}

/// Largest domain a Zipfian CDF table is materialized for (8 bytes per
/// key; the paper-scale datasets top out at 800 K keys, well below this).
const MAX_ZIPFIAN_DOMAIN: i64 = 1 << 23;

/// Bucket count of the Zipfian first-level index.  Must be a power of two:
/// for `u` in `[0, 1)`, `u * 1024.0` only shifts the exponent, so
/// `(u * 1024.0) as usize` computes `floor(u * B)` *exactly* and the
/// bucket bounds below bracket the true CDF position without any rounding
/// slop.  The index stays `u32` because [`MAX_ZIPFIAN_DOMAIN`] < 2^32.
const ZIPFIAN_INDEX_BUCKETS: usize = 1 << 10;

impl KeyDistribution {
    /// Draw a key head from `[lo, hi)`.
    ///
    /// Exact and allocation-free for `Uniform` and `Hotspot`.  For
    /// `Zipfian` this is a *convenience* path that rebuilds the CDF table
    /// on every call — per-transaction hot paths must hold a
    /// [`KeySampler`] instead (see [`KeyDistribution::sampler`]).  For
    /// `Drift`, which is inherently stateful, this samples the window at
    /// its initial position (draw 0).
    pub fn sample(&self, rng: &mut SmallRng, lo: i64, hi: i64) -> i64 {
        debug_assert!(hi > lo);
        match *self {
            KeyDistribution::Uniform => rng.gen_range(lo..hi),
            KeyDistribution::Hotspot {
                data_fraction,
                access_fraction,
            } => {
                let width = hi - lo;
                let hot_width = hot_width(width, data_fraction);
                if rng.gen_bool(access_fraction.clamp(0.0, 1.0)) {
                    rng.gen_range(lo..lo + hot_width)
                } else if hot_width < width {
                    rng.gen_range(lo + hot_width..hi)
                } else {
                    rng.gen_range(lo..hi)
                }
            }
            KeyDistribution::Zipfian { .. } | KeyDistribution::Drift { .. } => {
                self.sampler(lo, hi).sample(rng)
            }
        }
    }

    /// Instantiate the distribution over `[lo, hi)` as a ready-to-draw
    /// [`KeySampler`], performing any precomputation now so that
    /// [`KeySampler::sample`] never allocates.
    pub fn sampler(&self, lo: i64, hi: i64) -> KeySampler {
        assert!(hi > lo, "empty key domain [{lo}, {hi})");
        let kind = match *self {
            KeyDistribution::Uniform | KeyDistribution::Hotspot { .. } => {
                SamplerKind::Closed(*self)
            }
            KeyDistribution::Zipfian { theta } => {
                let n = hi - lo;
                assert!(
                    n <= MAX_ZIPFIAN_DOMAIN,
                    "Zipfian CDF table over {n} keys exceeds the {MAX_ZIPFIAN_DOMAIN}-key cap"
                );
                let cdf = zipfian_cdf(n as usize, theta);
                let index = zipfian_index(&cdf);
                SamplerKind::Zipfian { cdf, index }
            }
            KeyDistribution::Drift {
                data_fraction,
                access_fraction,
                period_txns,
            } => SamplerKind::Drift {
                data_fraction,
                access_fraction,
                period_txns: period_txns.max(1),
                drawn: 0,
            },
        };
        KeySampler { lo, hi, kind }
    }
}

/// The hot-window width in keys for a hotspot-style distribution.
fn hot_width(width: i64, data_fraction: f64) -> i64 {
    ((width as f64 * data_fraction).ceil() as i64).clamp(1, width)
}

/// The normalized cumulative distribution of Zipfian ranks `1..=n` with
/// exponent `theta`: `cdf[i]` is the probability of drawing a rank
/// `<= i + 1`.  Negative or non-finite exponents are clamped to 0
/// (uniform).
fn zipfian_cdf(n: usize, theta: f64) -> Vec<f64> {
    let theta = if theta.is_finite() {
        theta.max(0.0)
    } else {
        0.0
    };
    let mut cdf = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for k in 1..=n {
        total += (k as f64).powf(-theta);
        cdf.push(total);
    }
    for c in &mut cdf {
        *c /= total;
    }
    cdf
}

/// First-level bucket index over a normalized CDF: `index[j]` is the
/// number of CDF entries `<= j / B` (i.e. `cdf.partition_point(|&c| c <=
/// j as f64 / B as f64)`), built in one monotone pass.  A draw `u` in
/// bucket `j = floor(u * B)` then satisfies `index[j] <=
/// partition_point(c <= u) <= index[j + 1]`, so the per-draw binary
/// search only has to look inside `cdf[index[j]..index[j + 1]]` — for
/// heavy skew that window is usually empty or a single entry.
fn zipfian_index(cdf: &[f64]) -> Vec<u32> {
    let b = ZIPFIAN_INDEX_BUCKETS;
    let mut index = Vec::with_capacity(b + 1);
    let mut i = 0usize;
    for j in 0..=b {
        let bound = j as f64 / b as f64;
        while i < cdf.len() && cdf[i] <= bound {
            i += 1;
        }
        index.push(i as u32);
    }
    index
}

/// A [`KeyDistribution`] instantiated over a fixed domain `[lo, hi)`,
/// ready to draw keys without allocating.
///
/// Cheap to build for the closed-form distributions; the Zipfian variant
/// precomputes its CDF table plus a 1024-bucket first-level index once
/// (O(domain) build; each draw binary-searches only the CDF slice its
/// bucket brackets, usually zero or one entry under heavy skew), and the
/// drifting variant carries the draw
/// counter that moves its hot window.  Workloads hold one sampler per
/// distribution and rebuild it only on reconfiguration, never per
/// transaction.
#[derive(Debug, Clone)]
pub struct KeySampler {
    lo: i64,
    hi: i64,
    kind: SamplerKind,
}

#[derive(Debug, Clone)]
enum SamplerKind {
    /// Uniform / hotspot: delegate to the exact closed form (same rng
    /// draw order as [`KeyDistribution::sample`], bit for bit).
    Closed(KeyDistribution),
    /// Precomputed cumulative distribution over ranks (rank `i` maps to
    /// key `lo + i`), plus the first-level bucket index that narrows each
    /// draw's binary search to a handful of CDF entries (see
    /// [`zipfian_index`]).
    Zipfian { cdf: Vec<f64>, index: Vec<u32> },
    /// Rotating hot window, advanced one step per draw.
    Drift {
        data_fraction: f64,
        access_fraction: f64,
        period_txns: u64,
        drawn: u64,
    },
}

impl KeySampler {
    /// The sampled domain `[lo, hi)`.
    pub fn domain(&self) -> (i64, i64) {
        (self.lo, self.hi)
    }

    /// Draw one key head from the domain.  Never allocates.
    // Called several times per generated action by every workload.
    // lint: hot-path
    pub fn sample(&mut self, rng: &mut SmallRng) -> i64 {
        match &mut self.kind {
            SamplerKind::Closed(d) => d.sample(rng, self.lo, self.hi),
            SamplerKind::Zipfian { cdf, index } => {
                let u = rng.gen_range(0.0f64..1.0);
                // `j` is exact (power-of-two bucket count, see
                // [`ZIPFIAN_INDEX_BUCKETS`]), so the narrowed search
                // returns bit-identical keys to a full `partition_point`
                // over the whole CDF.
                let j = (u * ZIPFIAN_INDEX_BUCKETS as f64) as usize;
                let lo = index[j] as usize;
                let hi = index[j + 1] as usize;
                let idx = (lo + cdf[lo..hi].partition_point(|&c| c <= u)).min(cdf.len() - 1);
                self.lo + idx as i64
            }
            SamplerKind::Drift {
                data_fraction,
                access_fraction,
                period_txns,
                drawn,
            } => {
                let width = self.hi - self.lo;
                let hot = hot_width(width, *data_fraction);
                // The window's lower edge sweeps the domain once per
                // period; offsets are taken modulo the width so both the
                // hot window and the cold remainder wrap around.
                let start =
                    ((*drawn % *period_txns) as f64 / *period_txns as f64 * width as f64) as i64;
                *drawn += 1;
                let offset = if rng.gen_bool(access_fraction.clamp(0.0, 1.0)) {
                    rng.gen_range(0..hot)
                } else if hot < width {
                    rng.gen_range(hot..width)
                } else {
                    rng.gen_range(0..width)
                };
                self.lo + (start + offset) % width
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_covers_the_domain() {
        let mut rng = SmallRng::seed_from_u64(1);
        let d = KeyDistribution::Uniform;
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..2000 {
            let k = d.sample(&mut rng, 0, 100);
            assert!((0..100).contains(&k));
            if k < 10 {
                seen_low = true;
            }
            if k >= 90 {
                seen_high = true;
            }
        }
        assert!(seen_low && seen_high);
    }

    #[test]
    fn hotspot_concentrates_accesses() {
        let mut rng = SmallRng::seed_from_u64(2);
        let d = KeyDistribution::Hotspot {
            data_fraction: 0.2,
            access_fraction: 0.5,
        };
        let n = 10_000;
        let hot = (0..n).filter(|_| d.sample(&mut rng, 0, 1000) < 200).count() as f64;
        let frac = hot / n as f64;
        assert!((0.45..0.55).contains(&frac), "hot fraction {frac}");
    }

    #[test]
    fn sampler_matches_closed_form_for_uniform_and_hotspot() {
        // The sampler must draw from the rng in exactly the same order as
        // the closed-form path — workloads switching to samplers must not
        // move a single golden number.
        for d in [
            KeyDistribution::Uniform,
            KeyDistribution::Hotspot {
                data_fraction: 0.25,
                access_fraction: 0.7,
            },
        ] {
            let mut a = SmallRng::seed_from_u64(11);
            let mut b = SmallRng::seed_from_u64(11);
            let mut s = d.sampler(5, 505);
            for _ in 0..500 {
                assert_eq!(d.sample(&mut a, 5, 505), s.sample(&mut b));
            }
        }
    }

    #[test]
    fn zipfian_rank_frequency_is_monotone() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut s = KeyDistribution::Zipfian { theta: 0.99 }.sampler(0, 50);
        let mut counts = [0u64; 50];
        for _ in 0..200_000 {
            counts[s.sample(&mut rng) as usize] += 1;
        }
        // Coarse monotonicity: averaged over buckets of 10 ranks so
        // statistical noise cannot flip the order.
        let bucket = |i: usize| counts[i * 10..(i + 1) * 10].iter().sum::<u64>();
        for i in 0..4 {
            assert!(
                bucket(i) > bucket(i + 1),
                "bucket {i} ({}) not hotter than bucket {} ({})",
                bucket(i),
                i + 1,
                bucket(i + 1)
            );
        }
        // Rank 1 is the single hottest key.
        assert!(counts[0] > *counts[1..].iter().max().unwrap());
    }

    #[test]
    fn zipfian_index_narrows_to_the_same_key_as_a_full_search() {
        // The bucket index is a pure accelerator: for every draw the
        // narrowed search must return exactly the rank a full
        // `partition_point` over the whole CDF would have, including the
        // degenerate single-key domain and theta = 0 (uniform CDF, where
        // every bucket window is non-trivial).
        for (n, theta) in [
            (1usize, 0.99),
            (2, 0.99),
            (50, 0.99),
            (50, 0.0),
            (1_000, 0.5),
            (1_000, 1.2),
            (100_000, 0.99),
        ] {
            let cdf = zipfian_cdf(n, theta);
            let mut s = KeyDistribution::Zipfian { theta }.sampler(0, n as i64);
            let mut fast = SmallRng::seed_from_u64(7);
            let mut slow = SmallRng::seed_from_u64(7);
            for draw in 0..20_000 {
                let key = s.sample(&mut fast);
                let u = slow.gen_range(0.0f64..1.0);
                let idx = cdf.partition_point(|&c| c <= u).min(cdf.len() - 1);
                assert_eq!(key, idx as i64, "n={n} theta={theta} draw={draw} u={u}");
            }
        }
    }

    #[test]
    fn zipfian_index_brackets_every_bucket() {
        for (n, theta) in [(1usize, 0.0), (50, 0.99), (10_000, 0.99)] {
            let cdf = zipfian_cdf(n, theta);
            let index = zipfian_index(&cdf);
            assert_eq!(index.len(), ZIPFIAN_INDEX_BUCKETS + 1);
            assert_eq!(index[0], 0);
            for j in 0..ZIPFIAN_INDEX_BUCKETS {
                assert!(index[j] <= index[j + 1], "index not monotone at {j}");
                let bound = j as f64 / ZIPFIAN_INDEX_BUCKETS as f64;
                assert_eq!(
                    index[j] as usize,
                    cdf.partition_point(|&c| c <= bound),
                    "n={n} theta={theta} bucket={j}"
                );
            }
            assert!(index[ZIPFIAN_INDEX_BUCKETS] as usize <= n);
        }
    }

    #[test]
    fn zipfian_theta_zero_is_uniform() {
        let cdf = zipfian_cdf(100, 0.0);
        for (i, c) in cdf.iter().enumerate() {
            assert!((c - (i + 1) as f64 / 100.0).abs() < 1e-12);
        }
    }

    #[test]
    fn drifting_hotspot_moves_its_window() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut s = KeyDistribution::Drift {
            data_fraction: 0.1,
            access_fraction: 0.9,
            period_txns: 10_000,
        }
        .sampler(0, 1_000);
        // First tenth of the period: window at the start of the domain.
        let early: Vec<i64> = (0..1_000).map(|_| s.sample(&mut rng)).collect();
        // Skip to mid-period: window near the middle.
        for _ in 0..4_000 {
            s.sample(&mut rng);
        }
        let late: Vec<i64> = (0..1_000).map(|_| s.sample(&mut rng)).collect();
        let hot = |xs: &[i64], lo: i64, hi: i64| {
            xs.iter().filter(|&&x| (lo..hi).contains(&x)).count() as f64 / xs.len() as f64
        };
        assert!(hot(&early, 0, 250) > 0.6, "early window not at the start");
        assert!(hot(&late, 450, 700) > 0.6, "late window did not move");
    }

    #[test]
    fn distribution_round_trips_through_serde() {
        for d in [
            KeyDistribution::Hotspot {
                data_fraction: 0.2,
                access_fraction: 0.5,
            },
            KeyDistribution::Zipfian { theta: 0.99 },
            KeyDistribution::Drift {
                data_fraction: 0.1,
                access_fraction: 0.8,
                period_txns: 5_000,
            },
        ] {
            let text = serde::json::to_string(&d);
            let back: KeyDistribution = serde::json::from_str(&text).unwrap();
            assert_eq!(back, d);
        }
    }
}
