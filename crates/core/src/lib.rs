//! # atrapos-core
//!
//! The primary contribution of the ATraPos paper (Porobic et al., ICDE
//! 2014): workload- and hardware-aware adaptive partitioning and placement
//! for a physiologically partitioned shared-everything OLTP system.
//!
//! The crate is organized along the paper's §V:
//!
//! * [`partitioning`] — the representation of a partitioning and placement
//!   scheme: every table's key domain is divided into fixed *sub-partitions*
//!   (the monitoring granule), contiguous runs of sub-partitions form
//!   *partitions*, and each partition is assigned to a processor core.
//! * [`stats`] — the dynamic workload information the cost model consumes:
//!   per-sub-partition action costs and pairwise synchronization-point
//!   observations.
//! * [`cost_model`] — the two objective functions of §V-B: resource
//!   utilization imbalance `RU(S,W)` and transaction synchronization
//!   overhead `TS(S,W)`.
//! * [`search`] — the two-step greedy search of §V-C: Algorithm 1 (choose a
//!   partitioning that balances utilization) and Algorithm 2 (choose a
//!   placement that minimizes synchronization overhead).
//! * [`monitor`] — the lightweight monitoring of §V-D: partition-local
//!   arrays of sub-partition costs and sync counts, plus the adaptive
//!   monitoring-interval controller (1 s → 8 s, doubling when stable).
//! * [`repartition`] — split / merge / rearrange repartitioning actions that
//!   transform one scheme into another, and their application to the
//!   physical multi-rooted B-trees.
//! * [`controller`] — the adaptive loop that glues monitoring, the cost
//!   model, the search, and repartitioning together.
//! * [`advisor`] — the §VII future-work extension: the same cost model
//!   applied to coarse- and fine-grained shared-nothing deployments, where
//!   the dominant costs are distributed transactions and physical data
//!   movement.
//! * [`distribution`] — key-access distributions (uniform, hotspot,
//!   Zipfian, drifting hotspot) and their precomputed samplers;
//!   shared data for the engine's typed workload-reconfiguration channel.
//! * [`histogram`] — an allocation-free log-bucketed latency histogram
//!   with deterministic merge and bounded-error quantiles, used by the
//!   engine's open-loop serving mode to report p50/p95/p99/p999.

#![warn(missing_docs)]

pub mod advisor;
pub mod controller;
pub mod cost_model;
pub mod distribution;
pub mod histogram;
pub mod monitor;
pub mod partitioning;
pub mod repartition;
pub mod search;
pub mod stats;

pub use advisor::{
    advise_sharding, estimate_migration_bytes, evaluate_sharding, ShardingConfig, ShardingCost,
    ShardingPlan,
};
pub use controller::{AdaptationOutcome, AdaptiveController, ControllerConfig};
pub use cost_model::{resource_utilization, sync_overhead, CostBreakdown};
pub use distribution::{KeyDistribution, KeySampler};
pub use histogram::LatencyHistogram;
pub use monitor::{AdaptiveInterval, IntervalDecision, Monitor, MONITOR_INSTRUCTIONS_PER_EVENT};
pub use partitioning::{KeyDomain, PartitionSpec, PartitioningScheme, TablePartitioning};
pub use repartition::{
    apply_plan, plan_repartitioning, RepartitionAction, RepartitionPlan, RepartitionStats,
};
pub use search::{choose_partitioning, choose_placement, choose_scheme, SearchConfig};
pub use stats::{SubPartitionId, SyncObservation, WorkloadStats};
