//! The ATraPos cost model (paper §V-B).
//!
//! Two objectives guide the choice of a partitioning and placement scheme:
//!
//! * **Resource utilization balance** —
//!   `RU(S,W) = Σ_c |RU(c) − RU_avg|`, where `RU(c)` is the work performed
//!   by the partitions placed on core `c` under workload trace `W` and
//!   `RU_avg` is the mean over all (active) cores.  A perfectly balanced
//!   scheme has `RU(S,W) = 0`.
//! * **Transaction synchronization overhead** —
//!   `TS(S,W) = Σ_T Σ_{s∈S(T)} C(s)` with
//!   `C(s) = (n_socket(s) − 1) · Distance(s) · Size(s)`.  The monitoring
//!   layer records synchronization points pairwise (see
//!   [`crate::stats::WorkloadStats`]), so the sum is evaluated over pairs:
//!   a pair contributes `distance(socket_a, socket_b) · bytes` when its two
//!   sub-partitions are placed on different sockets and zero otherwise,
//!   which preserves the paper's key property that co-located
//!   synchronization is free.

use crate::partitioning::PartitioningScheme;
use crate::stats::{SubPartitionId, WorkloadStats};
use atrapos_numa::Topology;
use serde::{Deserialize, Serialize};

/// Evaluation of a scheme under a workload trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// `RU(S,W)`: total absolute deviation of per-core load from the mean.
    pub resource_imbalance: f64,
    /// `TS(S,W)`: distance-weighted bytes exchanged across sockets.
    pub sync_overhead: f64,
}

impl CostBreakdown {
    /// Combine both objectives into a single score.  `sync_weight` converts
    /// byte·hops into the same unit as the load (cycles); the engine uses
    /// its interconnect cost per byte-hop.
    pub fn combined(&self, sync_weight: f64) -> f64 {
        self.resource_imbalance + sync_weight * self.sync_overhead
    }
}

/// Per-core load of a scheme under a trace (helper shared with the search).
pub(crate) fn per_core_load(
    scheme: &PartitioningScheme,
    stats: &WorkloadStats,
    topo: &Topology,
) -> Vec<f64> {
    let mut load = vec![0.0; topo.num_cores()];
    for t in scheme.tables() {
        let loads = stats.table_load(t.table);
        for p in &t.partitions {
            let end = p.sub_end.min(loads.len());
            let l: f64 = if p.sub_start < end {
                loads[p.sub_start..end].iter().sum()
            } else {
                0.0
            };
            load[p.core.index()] += l;
        }
    }
    load
}

/// `RU(S,W)`: the resource-utilization imbalance of `scheme` under `stats`.
pub fn resource_utilization(
    scheme: &PartitioningScheme,
    stats: &WorkloadStats,
    topo: &Topology,
) -> f64 {
    let load = per_core_load(scheme, stats, topo);
    let active = topo.active_cores();
    if active.is_empty() {
        return 0.0;
    }
    let total: f64 = active.iter().map(|c| load[c.index()]).sum();
    let avg = total / active.len() as f64;
    active.iter().map(|c| (load[c.index()] - avg).abs()).sum()
}

/// `TS(S,W)`: the transaction synchronization overhead of `scheme` under
/// `stats`, in byte·hops.
pub fn sync_overhead(scheme: &PartitioningScheme, stats: &WorkloadStats, topo: &Topology) -> f64 {
    let socket_of = |sub: &SubPartitionId| {
        let t = scheme.table(sub.table);
        let p = &t.partitions[t.partition_of_sub(sub.index.min(t.num_sub_partitions - 1))];
        topo.socket_of(p.core)
    };
    let mut total = 0.0;
    for ((a, b), obs) in stats.sync_pairs() {
        let sa = socket_of(a);
        let sb = socket_of(b);
        if sa != sb {
            total += f64::from(topo.distance(sa, sb)) * obs.total_bytes as f64;
        }
    }
    total
}

/// Evaluate both objectives.
pub fn evaluate(
    scheme: &PartitioningScheme,
    stats: &WorkloadStats,
    topo: &Topology,
) -> CostBreakdown {
    CostBreakdown {
        resource_imbalance: resource_utilization(scheme, stats, topo),
        sync_overhead: sync_overhead(scheme, stats, topo),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioning::KeyDomain;
    use atrapos_storage::TableId;

    fn one_table_scheme(topo: &Topology) -> PartitioningScheme {
        PartitioningScheme::naive(&[(TableId(0), KeyDomain::new(0, 1000))], topo, 10)
    }

    #[test]
    fn perfectly_balanced_load_has_zero_imbalance() {
        let topo = Topology::multisocket(2, 2);
        let scheme = one_table_scheme(&topo);
        let mut stats = WorkloadStats::new();
        // Equal load on every sub-partition.
        for sub in 0..40 {
            stats.record_action(SubPartitionId::new(TableId(0), sub), 10.0);
        }
        let ru = resource_utilization(&scheme, &stats, &topo);
        assert!(ru.abs() < 1e-9, "expected 0, got {ru}");
    }

    #[test]
    fn skewed_load_increases_imbalance() {
        let topo = Topology::multisocket(2, 2);
        let scheme = one_table_scheme(&topo);
        let mut balanced = WorkloadStats::new();
        let mut skewed = WorkloadStats::new();
        for sub in 0..40 {
            balanced.record_action(SubPartitionId::new(TableId(0), sub), 10.0);
            // All the load on the first core's sub-partitions.
            let w = if sub < 10 { 40.0 } else { 0.0 };
            skewed.record_action(SubPartitionId::new(TableId(0), sub), w);
        }
        let ru_b = resource_utilization(&scheme, &balanced, &topo);
        let ru_s = resource_utilization(&scheme, &skewed, &topo);
        assert!(ru_s > ru_b);
        // Maximal skew: one core holds everything; deviation = 2*(1-1/n)*total.
        let total = 400.0;
        let expected = 2.0 * (1.0 - 1.0 / 4.0) * total;
        assert!(
            (ru_s - expected).abs() < 1e-6,
            "ru_s={ru_s} expected={expected}"
        );
    }

    #[test]
    fn colocated_sync_is_free_cross_socket_is_not() {
        let topo = Topology::multisocket(2, 2);
        let scheme = PartitioningScheme::naive(
            &[
                (TableId(0), KeyDomain::new(0, 1000)),
                (TableId(1), KeyDomain::new(0, 1000)),
            ],
            &topo,
            10,
        );
        let mut stats = WorkloadStats::new();
        // Sub-partition 0 of both tables lives on core 0 → same socket.
        stats.record_sync(
            SubPartitionId::new(TableId(0), 0),
            SubPartitionId::new(TableId(1), 0),
            64,
        );
        assert_eq!(sync_overhead(&scheme, &stats, &topo), 0.0);
        // Table 0 sub 0 (core 0, socket 0) with table 1 sub 39 (core 3, socket 1).
        stats.record_sync(
            SubPartitionId::new(TableId(0), 0),
            SubPartitionId::new(TableId(1), 39),
            64,
        );
        let ts = sync_overhead(&scheme, &stats, &topo);
        assert_eq!(ts, 64.0); // distance 1 * 64 bytes
    }

    #[test]
    fn failed_sockets_are_excluded_from_the_average() {
        let mut topo = Topology::multisocket(2, 2);
        let scheme = one_table_scheme(&topo);
        let mut stats = WorkloadStats::new();
        for sub in 0..40 {
            stats.record_action(SubPartitionId::new(TableId(0), sub), 10.0);
        }
        let before = resource_utilization(&scheme, &stats, &topo);
        topo.fail_socket(atrapos_numa::SocketId(1));
        // The scheme still maps half the load to the failed socket's cores,
        // which the active cores' average no longer accounts for: imbalance
        // appears, which is what triggers re-partitioning after a failure.
        let after = resource_utilization(&scheme, &stats, &topo);
        assert!(after >= before);
    }

    #[test]
    fn combined_score_weights_sync() {
        let b = CostBreakdown {
            resource_imbalance: 100.0,
            sync_overhead: 50.0,
        };
        assert_eq!(b.combined(0.0), 100.0);
        assert_eq!(b.combined(2.0), 200.0);
    }
}
