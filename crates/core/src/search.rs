//! The two-step partitioning and placement search (paper §V-C).
//!
//! * [`choose_partitioning`] implements Algorithm 1: greedily group
//!   sub-partitions into partitions so that per-core load is balanced, then
//!   iteratively improve by moving boundary sub-partitions towards the most
//!   under-utilized core (first-improvement with restart, as in the paper).
//! * [`choose_placement`] implements Algorithm 2: start from a placement
//!   that spreads every table's partitions across sockets, then repeatedly
//!   co-locate the partitions involved in the costliest synchronization
//!   pair by swapping partition↔core assignments, keeping a swap whenever
//!   it lowers the global synchronization overhead.

use crate::cost_model::{per_core_load, resource_utilization, sync_overhead};
use crate::partitioning::{PartitionSpec, PartitioningScheme, TablePartitioning};
use crate::stats::WorkloadStats;
use atrapos_numa::{CoreId, Topology};
use serde::{Deserialize, Serialize};

/// Search parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchConfig {
    /// Maximum improvement iterations for each of the two phases.
    pub max_iterations: usize,
    /// Minimum relative improvement for a move to be accepted.
    pub epsilon: f64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            max_iterations: 400,
            epsilon: 1e-9,
        }
    }
}

/// Algorithm 1: choose a partitioning (grouping of sub-partitions into
/// partitions and a core for each) that balances resource utilization.
///
/// `current` provides the table set, key domains, and sub-partition counts;
/// its partition boundaries and placement are ignored.
pub fn choose_partitioning(
    current: &PartitioningScheme,
    stats: &WorkloadStats,
    topo: &Topology,
    cfg: &SearchConfig,
) -> PartitioningScheme {
    let cores = topo.active_cores();
    assert!(!cores.is_empty(), "cannot partition for zero active cores");
    let total = stats.total_load();
    if total <= 0.0 {
        // No dynamic information: fall back to an even spread (the naive
        // scheme restricted to the active cores).
        let tables: Vec<_> = current
            .tables()
            .iter()
            .map(|t| (t.table, t.domain))
            .collect();
        let sub_per = (current.tables()[0].num_sub_partitions / cores.len().max(1)).max(1);
        return PartitioningScheme::naive(&tables, topo, sub_per);
    }
    let target = total / cores.len() as f64;

    // Greedy initial assignment: walk the tables' sub-partitions in order,
    // cutting a new partition whenever the current core reaches the target.
    let mut core_idx = 0usize;
    let mut core_load = 0.0f64;
    let mut tables_out = Vec::with_capacity(current.tables().len());
    for t in current.tables() {
        let loads = padded_loads(stats, t);
        let n_sub = t.num_sub_partitions;
        let mut parts: Vec<PartitionSpec> = Vec::new();
        let mut start = 0usize;
        for (sub, &load) in loads.iter().enumerate().take(n_sub) {
            core_load += load;
            let last_core = core_idx + 1 >= cores.len();
            if core_load >= target && !last_core && sub + 1 < n_sub {
                parts.push(PartitionSpec {
                    sub_start: start,
                    sub_end: sub + 1,
                    core: cores[core_idx],
                });
                start = sub + 1;
                core_idx += 1;
                core_load = 0.0;
            }
        }
        if start < n_sub {
            parts.push(PartitionSpec {
                sub_start: start,
                sub_end: n_sub,
                core: cores[core_idx.min(cores.len() - 1)],
            });
        }
        tables_out.push(TablePartitioning {
            table: t.table,
            domain: t.domain,
            num_sub_partitions: n_sub,
            partitions: parts,
        });
    }
    let mut scheme = PartitioningScheme::new(tables_out);

    // Iterative improvement: move boundary sub-partitions towards the most
    // under-utilized core (first improvement, restart after every accepted
    // move).
    let mut best_ru = resource_utilization(&scheme, stats, topo);
    for _ in 0..cfg.max_iterations {
        let load = per_core_load(&scheme, stats, topo);
        let avg = cores.iter().map(|c| load[c.index()]).sum::<f64>() / cores.len() as f64;
        // The most under-utilized active core.
        let Some(&under) = cores
            .iter()
            .min_by(|a, b| load[a.index()].partial_cmp(&load[b.index()]).unwrap())
        else {
            break;
        };
        if avg - load[under.index()] <= cfg.epsilon {
            break;
        }
        let mut improved = false;
        for candidate in candidate_moves(&scheme, under) {
            let ru = resource_utilization(&candidate, stats, topo);
            if ru + cfg.epsilon < best_ru {
                scheme = candidate;
                best_ru = ru;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    scheme
}

/// Pad/truncate the recorded load vector of a table to its sub-partition
/// count.
fn padded_loads(stats: &WorkloadStats, t: &TablePartitioning) -> Vec<f64> {
    let mut loads = stats.table_load(t.table).to_vec();
    loads.resize(t.num_sub_partitions, 0.0);
    loads
}

/// Enumerate the legal single-sub-partition moves that send load to `under`.
fn candidate_moves(scheme: &PartitioningScheme, under: CoreId) -> Vec<PartitioningScheme> {
    let mut out = Vec::new();
    for (t_idx, t) in scheme.tables().iter().enumerate() {
        for i in 0..t.partitions.len() {
            // Grow a partition owned by `under` by taking the boundary
            // sub-partition of an adjacent partition on another core.
            if t.partitions[i].core == under {
                if i > 0 && t.partitions[i - 1].num_sub_partitions() > 1 {
                    let mut s = scheme.clone();
                    let tp = &mut s.tables_mut()[t_idx];
                    tp.partitions[i - 1].sub_end -= 1;
                    tp.partitions[i].sub_start -= 1;
                    out.push(s);
                }
                if i + 1 < t.partitions.len() && t.partitions[i + 1].num_sub_partitions() > 1 {
                    let mut s = scheme.clone();
                    let tp = &mut s.tables_mut()[t_idx];
                    tp.partitions[i + 1].sub_start += 1;
                    tp.partitions[i].sub_end += 1;
                    out.push(s);
                }
            }
        }
    }
    // If `under` hosts no partition of some table, split another core's
    // partition of that table and hand one half to `under` (the paper's
    // "place a sub-partition of another table on that core" step).
    for (t_idx, t) in scheme.tables().iter().enumerate() {
        if t.partitions.iter().any(|p| p.core == under) {
            continue;
        }
        // Split the largest partition of this table.
        if let Some((i, p)) = t
            .partitions
            .iter()
            .enumerate()
            .filter(|(_, p)| p.num_sub_partitions() > 1)
            .max_by_key(|(_, p)| p.num_sub_partitions())
        {
            let mid = p.sub_start + p.num_sub_partitions() / 2;
            let mut s = scheme.clone();
            let tp = &mut s.tables_mut()[t_idx];
            let old_end = tp.partitions[i].sub_end;
            tp.partitions[i].sub_end = mid;
            tp.partitions.insert(
                i + 1,
                PartitionSpec {
                    sub_start: mid,
                    sub_end: old_end,
                    core: under,
                },
            );
            out.push(s);
        }
    }
    out
}

/// One cross-socket synchronization pair considered by the placement
/// improvement loop: the two `(table index, partition index)` endpoints and
/// the pair's synchronization cost.
type CrossSocketPair = ((usize, usize), (usize, usize), f64);

/// Algorithm 2: choose a placement (partition → core assignment) that
/// minimizes the synchronization overhead.
///
/// The starting point is the load-balanced assignment produced by
/// Algorithm 1 (its greedy fill already spreads partitions over the cores,
/// and therefore over the sockets, in order).  The improvement loop then
/// repeatedly takes the costliest cross-socket synchronization pair and
/// tries to co-locate it by *swapping* two partitions' core assignments — a
/// swap keeps the number of partitions per core constant, and it is only
/// accepted if it lowers the global synchronization overhead without
/// degrading the utilization balance by more than 10%.
pub fn choose_placement(
    scheme: &PartitioningScheme,
    stats: &WorkloadStats,
    topo: &Topology,
    cfg: &SearchConfig,
) -> PartitioningScheme {
    let sockets = topo.active_sockets();
    if sockets.len() <= 1 {
        return scheme.clone();
    }
    let mut placed = scheme.clone();

    // Iterative improvement: co-locate the partitions of costly
    // synchronization pairs by swapping core assignments.
    let mut best_ts = sync_overhead(&placed, stats, topo);
    let ru_budget = resource_utilization(&placed, stats, topo) * 1.10 + stats.total_load() * 0.02;
    if best_ts == 0.0 {
        return placed;
    }
    for _ in 0..cfg.max_iterations {
        let mut improved = false;
        // Find the costliest cross-socket pair under the current placement.
        let mut pairs: Vec<CrossSocketPair> = Vec::new();
        for ((a, b), obs) in stats.sync_pairs() {
            let (ta, pa) = locate(&placed, a.table, a.index);
            let (tb, pb) = locate(&placed, b.table, b.index);
            let sa = topo.socket_of(placed.tables()[ta].partitions[pa].core);
            let sb = topo.socket_of(placed.tables()[tb].partitions[pb].core);
            if sa != sb {
                let cost = f64::from(topo.distance(sa, sb)) * obs.total_bytes as f64;
                pairs.push(((ta, pa), (tb, pb), cost));
            }
        }
        if pairs.is_empty() {
            break;
        }
        pairs.sort_by(|x, y| y.2.partial_cmp(&x.2).unwrap());
        'outer: for &((ta, pa), (tb, pb), _) in pairs.iter().take(8) {
            let target_core = placed.tables()[ta].partitions[pa].core;
            let target_socket = topo.socket_of(target_core);
            // Try assigning partition (tb, pb) to a core on the target
            // socket, swapping with each partition currently there.
            for (t_idx, t) in placed.tables().iter().enumerate() {
                for (p_idx, p) in t.partitions.iter().enumerate() {
                    if (t_idx, p_idx) == (tb, pb) || (t_idx, p_idx) == (ta, pa) {
                        continue;
                    }
                    if topo.socket_of(p.core) != target_socket {
                        continue;
                    }
                    let mut candidate = placed.clone();
                    let moving_core = candidate.tables()[tb].partitions[pb].core;
                    candidate.tables_mut()[tb].partitions[pb].core = p.core;
                    candidate.tables_mut()[t_idx].partitions[p_idx].core = moving_core;
                    let ts = sync_overhead(&candidate, stats, topo);
                    if ts + cfg.epsilon < best_ts
                        && resource_utilization(&candidate, stats, topo) <= ru_budget
                    {
                        placed = candidate;
                        best_ts = ts;
                        improved = true;
                        break 'outer;
                    }
                }
            }
        }
        if !improved || best_ts == 0.0 {
            break;
        }
    }
    placed
}

/// Locate the (table index, partition index) owning a sub-partition.
fn locate(
    scheme: &PartitioningScheme,
    table: atrapos_storage::TableId,
    sub: usize,
) -> (usize, usize) {
    let t_idx = scheme
        .tables()
        .iter()
        .position(|t| t.table == table)
        .expect("table not in scheme");
    let t = &scheme.tables()[t_idx];
    let p_idx = t.partition_of_sub(sub.min(t.num_sub_partitions - 1));
    (t_idx, p_idx)
}

/// The full two-step search: Algorithm 1 followed by Algorithm 2.
pub fn choose_scheme(
    current: &PartitioningScheme,
    stats: &WorkloadStats,
    topo: &Topology,
    cfg: &SearchConfig,
) -> PartitioningScheme {
    let partitioned = choose_partitioning(current, stats, topo, cfg);
    choose_placement(&partitioned, stats, topo, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioning::KeyDomain;
    use crate::stats::SubPartitionId;
    use atrapos_storage::TableId;

    fn naive_two_tables(topo: &Topology) -> PartitioningScheme {
        PartitioningScheme::naive(
            &[
                (TableId(0), KeyDomain::new(0, 1000)),
                (TableId(1), KeyDomain::new(0, 1000)),
            ],
            topo,
            10,
        )
    }

    #[test]
    fn partitioning_balances_uniform_load() {
        let topo = Topology::multisocket(2, 4);
        let current = naive_two_tables(&topo);
        let mut stats = WorkloadStats::new();
        for t in 0..2u32 {
            for sub in 0..80 {
                stats.record_action(SubPartitionId::new(TableId(t), sub), 10.0);
            }
        }
        let scheme = choose_partitioning(&current, &stats, &topo, &SearchConfig::default());
        scheme.check_invariants(&topo).unwrap();
        let ru = resource_utilization(&scheme, &stats, &topo);
        let total = stats.total_load();
        assert!(ru / total < 0.10, "imbalance {ru} of total {total}");
    }

    #[test]
    fn partitioning_adapts_to_skewed_load() {
        let topo = Topology::multisocket(2, 4);
        let current = naive_two_tables(&topo);
        let mut stats = WorkloadStats::new();
        // 50% of the load on 20% of table 0's key space (paper Figure 11).
        for sub in 0..80 {
            let w = if sub < 16 { 50.0 } else { 10.0 };
            stats.record_action(SubPartitionId::new(TableId(0), sub), w);
            stats.record_action(SubPartitionId::new(TableId(1), sub), 10.0);
        }
        let naive_ru = resource_utilization(&current, &stats, &topo);
        let scheme = choose_partitioning(&current, &stats, &topo, &SearchConfig::default());
        scheme.check_invariants(&topo).unwrap();
        let ru = resource_utilization(&scheme, &stats, &topo);
        assert!(
            ru < naive_ru * 0.5,
            "search should at least halve the imbalance: {ru} vs naive {naive_ru}"
        );
    }

    #[test]
    fn partitioning_without_stats_falls_back_to_even_spread() {
        let topo = Topology::multisocket(2, 2);
        let current = naive_two_tables(&topo);
        let stats = WorkloadStats::new();
        let scheme = choose_partitioning(&current, &stats, &topo, &SearchConfig::default());
        scheme.check_invariants(&topo).unwrap();
        assert_eq!(scheme.table(TableId(0)).partitions.len(), 4);
    }

    #[test]
    fn partitioning_excludes_failed_sockets() {
        let mut topo = Topology::multisocket(4, 2);
        let current = naive_two_tables(&topo);
        let mut stats = WorkloadStats::new();
        for t in 0..2u32 {
            for sub in 0..80 {
                stats.record_action(SubPartitionId::new(TableId(t), sub), 5.0);
            }
        }
        topo.fail_socket(atrapos_numa::SocketId(2));
        let scheme = choose_scheme(&current, &stats, &topo, &SearchConfig::default());
        scheme.check_invariants(&topo).unwrap();
    }

    #[test]
    fn placement_colocates_correlated_tables() {
        let topo = Topology::multisocket(4, 4);
        // Two tables, four partitions each, correlated pairwise: sub i of
        // table 0 always synchronizes with sub i of table 1 (the Figure 6
        // A/B transaction pattern).
        let current = PartitioningScheme::even(
            &[
                (TableId(0), KeyDomain::new(0, 1000)),
                (TableId(1), KeyDomain::new(0, 1000)),
            ],
            &topo,
            4,
            10,
        );
        let mut stats = WorkloadStats::new();
        for sub in 0..40 {
            stats.record_action(SubPartitionId::new(TableId(0), sub), 10.0);
            stats.record_action(SubPartitionId::new(TableId(1), sub), 10.0);
            stats.record_sync(
                SubPartitionId::new(TableId(0), sub),
                SubPartitionId::new(TableId(1), sub),
                64,
            );
        }
        let placed = choose_placement(&current, &stats, &topo, &SearchConfig::default());
        placed.check_invariants(&topo).unwrap();
        let ts_before = sync_overhead(&current, &stats, &topo);
        let ts_after = sync_overhead(&placed, &stats, &topo);
        assert!(
            ts_after < ts_before * 0.5 || ts_before == 0.0,
            "placement should cut sync overhead: {ts_after} vs {ts_before}"
        );
    }

    #[test]
    fn placement_is_identity_on_single_socket() {
        let topo = Topology::single_socket(8);
        let current = naive_two_tables(&topo);
        let stats = WorkloadStats::new();
        let placed = choose_placement(&current, &stats, &topo, &SearchConfig::default());
        assert_eq!(placed, current);
    }

    #[test]
    fn full_search_produces_valid_schemes() {
        let topo = Topology::multisocket(8, 2);
        let current = naive_two_tables(&topo);
        let mut stats = WorkloadStats::new();
        for t in 0..2u32 {
            for sub in 0..160 {
                stats.record_action(SubPartitionId::new(TableId(t), sub), (sub % 7) as f64 + 1.0);
            }
        }
        for sub in (0..160).step_by(3) {
            stats.record_sync(
                SubPartitionId::new(TableId(0), sub),
                SubPartitionId::new(TableId(1), sub),
                128,
            );
        }
        let scheme = choose_scheme(&current, &stats, &topo, &SearchConfig::default());
        scheme.check_invariants(&topo).unwrap();
        // The result must not be worse than the naive starting point on
        // either objective by more than a small factor.
        let ru_new = resource_utilization(&scheme, &stats, &topo);
        let ru_old = resource_utilization(&current, &stats, &topo);
        assert!(ru_new <= ru_old * 1.05 + 1e-9);
    }
}
