//! Repartitioning actions (paper §V-D, "Repartitioning").
//!
//! A repartitioning action is either a **split** (divide an existing
//! partition in two at a key) or a **merge** (combine two adjacent
//! partitions); a *rearrangement* is a split followed by a merge.  Actions
//! modify the physical multi-rooted B-trees, the logical partition-local
//! structures, and the global partitioning information.  ATraPos pauses the
//! execution of regular actions while a repartitioning batch runs, so the
//! cost that matters is the wall-clock duration of the batch (Figure 9
//! shows it grows linearly with the number of actions and stays below
//! 200 ms even for 80 actions on an 800 K-row table).

use crate::partitioning::PartitioningScheme;
use atrapos_numa::Topology;
use atrapos_storage::{Database, Key, StorageResult, TableId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One repartitioning action.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepartitionAction {
    /// Split the partition containing `boundary` at `boundary`.
    Split {
        /// Table to split.
        table: TableId,
        /// New partition boundary (inclusive lower bound of the new upper
        /// partition).
        boundary: Key,
    },
    /// Merge the partition whose lower bound is `boundary` into its
    /// predecessor (i.e. remove that boundary).
    Merge {
        /// Table to merge in.
        table: TableId,
        /// Boundary to remove.
        boundary: Key,
    },
}

/// An ordered batch of repartitioning actions plus the placement the
/// resulting partitions should have.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RepartitionPlan {
    /// Actions in application order (merges first, then splits).
    pub actions: Vec<RepartitionAction>,
    /// Number of partition→core placement changes implied by the new
    /// scheme (cheap metadata updates in a shared-everything system).
    pub placement_changes: usize,
}

impl RepartitionPlan {
    /// Whether the plan performs no physical work.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty() && self.placement_changes == 0
    }

    /// Number of split actions.
    pub fn num_splits(&self) -> usize {
        self.actions
            .iter()
            .filter(|a| matches!(a, RepartitionAction::Split { .. }))
            .count()
    }

    /// Number of merge actions.
    pub fn num_merges(&self) -> usize {
        self.actions
            .iter()
            .filter(|a| matches!(a, RepartitionAction::Merge { .. }))
            .count()
    }
}

/// Outcome of applying a plan to the physical database.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RepartitionStats {
    /// Splits performed.
    pub splits: usize,
    /// Merges performed.
    pub merges: usize,
    /// Records moved between trees.
    pub records_moved: usize,
    /// Partition memory-node reassignments.
    pub reassignments: usize,
}

/// Compute the action batch that transforms the partition boundaries of
/// `old` into those of `new`.
pub fn plan_repartitioning(old: &PartitioningScheme, new: &PartitioningScheme) -> RepartitionPlan {
    let mut plan = RepartitionPlan::default();
    for new_t in new.tables() {
        let Some(old_t) = old.tables().iter().find(|t| t.table == new_t.table) else {
            // A table unknown to the old scheme: all its boundaries are new.
            for b in new_t.boundary_keys() {
                plan.actions.push(RepartitionAction::Split {
                    table: new_t.table,
                    boundary: b,
                });
            }
            continue;
        };
        let old_bounds: BTreeSet<Key> = old_t.boundary_keys().into_iter().collect();
        let new_bounds: BTreeSet<Key> = new_t.boundary_keys().into_iter().collect();
        // Merges first (remove boundaries), then splits (add boundaries).
        for b in old_bounds.difference(&new_bounds) {
            plan.actions.push(RepartitionAction::Merge {
                table: new_t.table,
                boundary: b.clone(),
            });
        }
        for b in new_bounds.difference(&old_bounds) {
            plan.actions.push(RepartitionAction::Split {
                table: new_t.table,
                boundary: b.clone(),
            });
        }
        // Placement changes: partitions whose boundary survived but whose
        // core changed, plus every new partition counts as one.
        for (i, p) in new_t.partitions.iter().enumerate() {
            let lower = if i == 0 {
                None
            } else {
                Some(Key::int(
                    new_t
                        .domain
                        .sub_partition_lower(p.sub_start, new_t.num_sub_partitions),
                ))
            };
            let old_core = old_t.partitions.iter().enumerate().find_map(|(j, op)| {
                let old_lower = if j == 0 {
                    None
                } else {
                    Some(Key::int(
                        old_t
                            .domain
                            .sub_partition_lower(op.sub_start, old_t.num_sub_partitions),
                    ))
                };
                (old_lower == lower).then_some(op.core)
            });
            if old_core != Some(p.core) {
                plan.placement_changes += 1;
            }
        }
    }
    // Sort so merges precede splits (splits then always land inside an
    // existing partition).
    plan.actions.sort_by_key(|a| match a {
        RepartitionAction::Merge { .. } => 0,
        RepartitionAction::Split { .. } => 1,
    });
    plan
}

/// Apply a plan to the physical database and align partition memory nodes
/// with the new scheme's placement.  Regular execution is assumed paused
/// (the paper does not interleave repartitioning and regular actions).
pub fn apply_plan(
    db: &mut Database,
    plan: &RepartitionPlan,
    new_scheme: &PartitioningScheme,
    topo: &Topology,
) -> StorageResult<RepartitionStats> {
    let mut stats = RepartitionStats::default();
    for action in &plan.actions {
        match action {
            RepartitionAction::Merge { table, boundary } => {
                let t = db.table_mut(*table)?;
                let index = t.index_mut();
                // Find the partition whose lower bound equals the boundary.
                let idx = (0..index.num_partitions())
                    .find(|&i| index.lower_bound(i) == Some(boundary))
                    .ok_or_else(|| {
                        atrapos_storage::StorageError::InvalidPartitionBoundary(format!(
                            "merge boundary {boundary} not found in table {table}"
                        ))
                    })?;
                stats.records_moved += index.merge_with_next(idx - 1)?;
                stats.merges += 1;
            }
            RepartitionAction::Split { table, boundary } => {
                let scheme_t = new_scheme.table(*table);
                let target_core =
                    scheme_t.partitions[scheme_t.partition_of_key(boundary.head_int())].core;
                let node = topo.socket_of(target_core);
                let t = db.table_mut(*table)?;
                let index = t.index_mut();
                let idx = index.partition_for(boundary);
                stats.records_moved += index.split_partition(idx, boundary.clone(), node)?;
                stats.splits += 1;
            }
        }
    }
    // Align memory nodes with the final placement.
    for scheme_t in new_scheme.tables() {
        let t = db.table_mut(scheme_t.table)?;
        let index = t.index_mut();
        if index.num_partitions() != scheme_t.partitions.len() {
            continue; // table not physically partitioned by this scheme
        }
        for (i, p) in scheme_t.partitions.iter().enumerate() {
            let node = topo.socket_of(p.core);
            if index.partition(i).memory_node != node {
                index.set_memory_node(i, node);
                stats.reassignments += 1;
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioning::{KeyDomain, PartitioningScheme};
    use atrapos_storage::{Column, ColumnType, Record, Schema, Table, Value};

    fn scheme(topo: &Topology, cores: usize) -> PartitioningScheme {
        let t = Topology::multisocket(1, cores);
        let _ = t;
        PartitioningScheme::naive(&[(TableId(0), KeyDomain::new(0, 1000))], topo, 10)
    }

    fn db_matching(schemeref: &PartitioningScheme, topo: &Topology) -> Database {
        let t = schemeref.table(TableId(0));
        let boundaries = t.boundary_keys();
        let nodes = t
            .partitions
            .iter()
            .map(|p| topo.socket_of(p.core))
            .collect();
        let mut table = Table::range_partitioned(
            TableId(0),
            Schema::new("t", vec![Column::new("id", ColumnType::Int)], vec![0]),
            boundaries,
            nodes,
        );
        for i in 0..1000 {
            table.load(Record::new(vec![Value::Int(i)])).unwrap();
        }
        let mut db = Database::new();
        db.add_table(table);
        db
    }

    #[test]
    fn identical_schemes_need_no_actions() {
        let topo = Topology::multisocket(2, 2);
        let s = scheme(&topo, 4);
        let plan = plan_repartitioning(&s, &s);
        assert!(plan.is_empty());
    }

    #[test]
    fn coarser_scheme_produces_merges_finer_produces_splits() {
        let topo = Topology::multisocket(2, 2);
        let fine = PartitioningScheme::naive(&[(TableId(0), KeyDomain::new(0, 1000))], &topo, 10);
        let coarse =
            PartitioningScheme::even(&[(TableId(0), KeyDomain::new(0, 1000))], &topo, 2, 20);
        let plan = plan_repartitioning(&fine, &coarse);
        assert!(plan.num_merges() > 0);
        assert_eq!(plan.num_splits(), 0);
        let back = plan_repartitioning(&coarse, &fine);
        assert!(back.num_splits() > 0);
        assert_eq!(back.num_merges(), 0);
    }

    #[test]
    fn apply_plan_transforms_the_physical_partitions() {
        let topo = Topology::multisocket(2, 2);
        let fine = scheme(&topo, 4);
        let coarse =
            PartitioningScheme::even(&[(TableId(0), KeyDomain::new(0, 1000))], &topo, 2, 20);
        let mut db = db_matching(&fine, &topo);
        assert_eq!(db.table(TableId(0)).unwrap().num_partitions(), 4);
        let plan = plan_repartitioning(&fine, &coarse);
        let stats = apply_plan(&mut db, &plan, &coarse, &topo).unwrap();
        assert_eq!(stats.merges, 2);
        assert_eq!(db.table(TableId(0)).unwrap().num_partitions(), 2);
        assert_eq!(db.table(TableId(0)).unwrap().len(), 1000);
        db.table(TableId(0))
            .unwrap()
            .index()
            .check_invariants()
            .unwrap();
        // And back again via splits.
        let plan_back = plan_repartitioning(&coarse, &fine);
        let stats_back = apply_plan(&mut db, &plan_back, &fine, &topo).unwrap();
        assert_eq!(stats_back.splits, 2);
        assert_eq!(db.table(TableId(0)).unwrap().num_partitions(), 4);
        assert_eq!(db.table(TableId(0)).unwrap().len(), 1000);
    }

    #[test]
    fn placement_only_changes_are_counted() {
        let topo = Topology::multisocket(2, 2);
        let a = scheme(&topo, 4);
        let mut b = a.clone();
        // Move the last partition to a different core, keep boundaries.
        let n = b.tables_mut()[0].partitions.len();
        b.tables_mut()[0].partitions[n - 1].core = atrapos_numa::CoreId(0);
        let plan = plan_repartitioning(&a, &b);
        assert_eq!(plan.actions.len(), 0);
        assert_eq!(plan.placement_changes, 1);
        assert!(!plan.is_empty());
    }

    #[test]
    fn split_then_merge_roundtrip_preserves_rows() {
        let topo = Topology::multisocket(2, 2);
        let fine = scheme(&topo, 4);
        let mut db = db_matching(&fine, &topo);
        let before: Vec<i64> = db
            .table(TableId(0))
            .unwrap()
            .index()
            .iter()
            .map(|(k, _)| k.head_int())
            .collect();
        let coarse =
            PartitioningScheme::even(&[(TableId(0), KeyDomain::new(0, 1000))], &topo, 2, 20);
        let plan = plan_repartitioning(&fine, &coarse);
        apply_plan(&mut db, &plan, &coarse, &topo).unwrap();
        let plan_back = plan_repartitioning(&coarse, &fine);
        apply_plan(&mut db, &plan_back, &fine, &topo).unwrap();
        let after: Vec<i64> = db
            .table(TableId(0))
            .unwrap()
            .index()
            .iter()
            .map(|(k, _)| k.head_int())
            .collect();
        assert_eq!(before, after);
    }
}
