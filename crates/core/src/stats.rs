//! Dynamic workload information consumed by the cost model.
//!
//! ATraPos tracks, per sub-partition, how much work its actions performed,
//! and for every synchronization point which sub-partitions exchanged how
//! much data (paper §V-A, "Dynamic workload information").  The
//! synchronization observations are stored pairwise (first participant ×
//! other participant): under any candidate scheme the pair maps to two
//! sockets and the paper's `C(s) = (n_sockets − 1) · Distance(s) · Size(s)`
//! formula is evaluated by summing the pairwise contributions.

use atrapos_storage::TableId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identity of a sub-partition: a table and a sub-partition index within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SubPartitionId {
    /// The table.
    pub table: TableId,
    /// The sub-partition index within the table.
    pub index: usize,
}

impl SubPartitionId {
    /// Convenience constructor.
    pub fn new(table: TableId, index: usize) -> Self {
        Self { table, index }
    }
}

/// Aggregated observations for one synchronization pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SyncObservation {
    /// Number of times the pair synchronized.
    pub count: u64,
    /// Total bytes exchanged over all occurrences.
    pub total_bytes: u64,
}

/// The aggregated workload trace for one monitoring interval.
///
/// Both maps are `BTreeMap`s so that iteration order — and therefore every
/// decision the search derives from a trace — is deterministic across runs,
/// matching the determinism guarantee of the virtual-time simulator.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WorkloadStats {
    /// Work (cycles) performed by actions on each sub-partition, indexed
    /// by `TableId` (an empty inner vector means the table was never
    /// seen).  Dense so that `record_action` — which runs once per
    /// simulated action when monitoring is on — is an array indexing, not
    /// a map probe; iteration over the occupied slots is still in
    /// ascending `TableId` order, preserving the determinism the old
    /// `BTreeMap` provided.
    sub_partition_load: Vec<Vec<f64>>,
    /// Pairwise synchronization observations.
    sync_pairs: BTreeMap<(SubPartitionId, SubPartitionId), SyncObservation>,
    /// Number of transactions observed.
    pub transactions: u64,
}

impl WorkloadStats {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn slot_mut(&mut self, table: TableId) -> &mut Vec<f64> {
        let idx = table.index();
        if self.sub_partition_load.len() <= idx {
            self.sub_partition_load.resize_with(idx + 1, Vec::new);
        }
        &mut self.sub_partition_load[idx]
    }

    /// Declare a table with `n_sub` sub-partitions (idempotent; resizes if
    /// the sub-partition count grew).
    pub fn declare_table(&mut self, table: TableId, n_sub: usize) {
        let v = self.slot_mut(table);
        if v.len() < n_sub {
            v.resize(n_sub, 0.0);
        }
    }

    /// Record `cycles` of action work on a sub-partition.
    #[inline]
    pub fn record_action(&mut self, sub: SubPartitionId, cycles: f64) {
        let v = self.slot_mut(sub.table);
        if v.len() <= sub.index {
            v.resize(sub.index + 1, 0.0);
        }
        v[sub.index] += cycles;
    }

    /// Record a synchronization between two sub-partitions exchanging
    /// `bytes` bytes.  The pair is stored in canonical (sorted) order.
    pub fn record_sync(&mut self, a: SubPartitionId, b: SubPartitionId, bytes: u64) {
        let key = if a <= b { (a, b) } else { (b, a) };
        let obs = self.sync_pairs.entry(key).or_default();
        obs.count += 1;
        obs.total_bytes += bytes;
    }

    /// Record a completed transaction.
    pub fn record_transaction(&mut self) {
        self.transactions += 1;
    }

    /// Load vector of one table (empty slice if unknown).
    pub fn table_load(&self, table: TableId) -> &[f64] {
        self.sub_partition_load
            .get(table.index())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Total load across all tables.
    pub fn total_load(&self) -> f64 {
        self.sub_partition_load
            .iter()
            .map(|v| v.iter().sum::<f64>())
            .sum()
    }

    /// Tables with recorded load, in ascending id order.
    pub fn tables(&self) -> impl Iterator<Item = TableId> + '_ {
        self.sub_partition_load
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(i, _)| TableId(i as u32))
    }

    /// All pairwise synchronization observations.
    pub fn sync_pairs(
        &self,
    ) -> impl Iterator<Item = (&(SubPartitionId, SubPartitionId), &SyncObservation)> {
        self.sync_pairs.iter()
    }

    /// Number of distinct synchronization pairs.
    pub fn num_sync_pairs(&self) -> usize {
        self.sync_pairs.len()
    }

    /// Merge another trace into this one.
    pub fn merge(&mut self, other: &WorkloadStats) {
        for (idx, loads) in other.sub_partition_load.iter().enumerate() {
            if loads.is_empty() {
                continue;
            }
            let v = self.slot_mut(TableId(idx as u32));
            if v.len() < loads.len() {
                v.resize(loads.len(), 0.0);
            }
            for (i, l) in loads.iter().enumerate() {
                v[i] += l;
            }
        }
        for (pair, obs) in &other.sync_pairs {
            let e = self.sync_pairs.entry(*pair).or_default();
            e.count += obs.count;
            e.total_bytes += obs.total_bytes;
        }
        self.transactions += other.transactions;
    }

    /// Discard all observations (the paper discards traces after each
    /// evaluation to bound memory).
    pub fn clear(&mut self) {
        for v in &mut self.sub_partition_load {
            v.iter_mut().for_each(|x| *x = 0.0);
        }
        self.sync_pairs.clear();
        self.transactions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_loads_accumulate_per_sub_partition() {
        let mut s = WorkloadStats::new();
        s.declare_table(TableId(0), 4);
        s.record_action(SubPartitionId::new(TableId(0), 1), 100.0);
        s.record_action(SubPartitionId::new(TableId(0), 1), 50.0);
        s.record_action(SubPartitionId::new(TableId(0), 3), 10.0);
        assert_eq!(s.table_load(TableId(0)), &[0.0, 150.0, 0.0, 10.0]);
        assert_eq!(s.total_load(), 160.0);
    }

    #[test]
    fn sync_pairs_are_canonicalized() {
        let mut s = WorkloadStats::new();
        let a = SubPartitionId::new(TableId(0), 1);
        let b = SubPartitionId::new(TableId(1), 2);
        s.record_sync(a, b, 64);
        s.record_sync(b, a, 64);
        assert_eq!(s.num_sync_pairs(), 1);
        let (_, obs) = s.sync_pairs().next().unwrap();
        assert_eq!(obs.count, 2);
        assert_eq!(obs.total_bytes, 128);
    }

    #[test]
    fn merge_and_clear() {
        let mut a = WorkloadStats::new();
        a.record_action(SubPartitionId::new(TableId(0), 0), 5.0);
        a.record_transaction();
        let mut b = WorkloadStats::new();
        b.record_action(SubPartitionId::new(TableId(0), 0), 7.0);
        b.record_sync(
            SubPartitionId::new(TableId(0), 0),
            SubPartitionId::new(TableId(1), 0),
            32,
        );
        b.record_transaction();
        a.merge(&b);
        assert_eq!(a.table_load(TableId(0))[0], 12.0);
        assert_eq!(a.transactions, 2);
        assert_eq!(a.num_sync_pairs(), 1);
        a.clear();
        assert_eq!(a.total_load(), 0.0);
        assert_eq!(a.num_sync_pairs(), 0);
        assert_eq!(a.transactions, 0);
    }

    #[test]
    fn unknown_table_has_empty_load() {
        let s = WorkloadStats::new();
        assert!(s.table_load(TableId(9)).is_empty());
    }
}
