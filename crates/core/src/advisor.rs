//! Shared-nothing sharding advisor: the paper's §VII future-work extension.
//!
//! ATraPos itself targets a logically partitioned *shared-everything* engine,
//! but §VII sketches how the same cost model applies to shared-nothing
//! architectures:
//!
//! * **Coarse-grained shared-nothing** — data is physically partitioned into
//!   one instance per socket (or machine).  The dominant cost is no longer
//!   the synchronization point between partition workers but the *distributed
//!   transaction*: a transaction whose data spans several instances must run
//!   two-phase commit, hold locks until the global decision, and write extra
//!   log records (§III-C, Figure 4).  Repartitioning also becomes much more
//!   expensive because records physically move between instances.
//! * **Fine-grained shared-nothing** — instances are small (e.g. one per
//!   core) and topology-aware: a distributed transaction whose participants
//!   share a machine can use shared-memory channels and is therefore far
//!   cheaper than one that crosses machines.  The cost model then
//!   distinguishes the two kinds of distributed transactions and prefers
//!   placements that turn expensive (cross-machine) ones into cheap
//!   (same-machine) ones.
//!
//! This module implements both: a [`ShardingPlan`] assigns every
//! sub-partition of every table to an instance, [`evaluate_sharding`] scores
//! a plan with the adapted cost model (load imbalance + distributed
//! transaction overhead + optional physical move cost), and
//! [`advise_sharding`] runs a greedy search in the spirit of the paper's
//! Algorithms 1 and 2.  The engine's shared-nothing design accepts a plan as
//! a custom router, so the advisor's output is exercised end-to-end by the
//! ablation benchmarks.

use crate::partitioning::KeyDomain;
use crate::stats::{SubPartitionId, WorkloadStats};
use atrapos_numa::Topology;
use atrapos_storage::TableId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Cost parameters of the shared-nothing variant of the ATraPos model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardingConfig {
    /// Cost charged per co-access (synchronization observation) whose two
    /// sub-partitions live on different instances of the *same* machine —
    /// a distributed transaction over shared-memory channels.
    pub local_distributed_cost: f64,
    /// Cost charged per co-access whose sub-partitions live on instances of
    /// *different* machines — a distributed transaction over the network
    /// (always ≥ `local_distributed_cost`).
    pub remote_distributed_cost: f64,
    /// Relative weight of the load-imbalance objective against the
    /// distributed-transaction objective.
    pub balance_weight: f64,
    /// Cost per byte of physically moving a record between instances during
    /// repartitioning (used by [`estimate_migration_bytes`] consumers; much
    /// higher than the logical repartitioning of the shared-everything
    /// engine).
    pub move_cost_per_byte: f64,
    /// Maximum improvement iterations of the greedy search.
    pub max_iterations: usize,
}

impl Default for ShardingConfig {
    fn default() -> Self {
        Self {
            local_distributed_cost: 1.0,
            remote_distributed_cost: 4.0,
            balance_weight: 0.5,
            move_cost_per_byte: 0.05,
            max_iterations: 400,
        }
    }
}

/// A physical sharding: for every table, one instance index per
/// sub-partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardingPlan {
    /// Number of shared-nothing instances.
    pub n_instances: usize,
    /// For each table: its key domain and the instance owning each of its
    /// sub-partitions.  A BTreeMap so iteration (and therefore every
    /// decision derived from a plan) is deterministic across runs.
    tables: BTreeMap<TableId, (KeyDomain, Vec<usize>)>,
    /// Machine (NUMA node / host) hosting each instance; instance `i` lives
    /// on machine `instance_machine[i]`.  For the coarse-grained deployment
    /// of the paper this is the identity (one instance per socket); for
    /// fine-grained deployments several instances share a machine.
    pub instance_machine: Vec<usize>,
}

impl ShardingPlan {
    /// The classic range sharding: each table's sub-partitions are divided
    /// into `n_instances` contiguous blocks, instance `i` taking block `i`.
    /// Instance `i` is hosted on machine `i % n_machines`.
    pub fn range(
        tables: &[(TableId, KeyDomain)],
        n_sub_per_table: usize,
        n_instances: usize,
        n_machines: usize,
    ) -> Self {
        assert!(n_instances >= 1 && n_machines >= 1 && n_sub_per_table >= 1);
        let tables = tables
            .iter()
            .map(|&(table, domain)| {
                let owners = (0..n_sub_per_table)
                    .map(|sub| (sub * n_instances / n_sub_per_table).min(n_instances - 1))
                    .collect();
                (table, (domain, owners))
            })
            .collect();
        Self {
            n_instances,
            tables,
            instance_machine: (0..n_instances).map(|i| i % n_machines).collect(),
        }
    }

    /// A range sharding matching the engine's default shared-nothing
    /// deployment on `topo`: one instance per socket, one machine per
    /// socket.
    pub fn per_socket(
        tables: &[(TableId, KeyDomain)],
        n_sub_per_table: usize,
        topo: &Topology,
    ) -> Self {
        let n = topo.num_sockets();
        Self::range(tables, n_sub_per_table, n, n)
    }

    /// Tables covered by the plan.
    pub fn tables(&self) -> impl Iterator<Item = TableId> + '_ {
        self.tables.keys().copied()
    }

    /// Number of sub-partitions of `table`.
    pub fn num_sub_partitions(&self, table: TableId) -> usize {
        self.tables.get(&table).map(|(_, v)| v.len()).unwrap_or(0)
    }

    /// The instance owning sub-partition `sub` of `table`.
    pub fn instance_of_sub(&self, table: TableId, sub: usize) -> usize {
        let (_, owners) = &self.tables[&table];
        owners[sub.min(owners.len() - 1)]
    }

    /// The instance owning `key_head` of `table` (routes through the
    /// sub-partition grid, exactly like the shared-everything scheme).
    pub fn instance_of_key(&self, table: TableId, key_head: i64) -> usize {
        match self.tables.get(&table) {
            Some((domain, owners)) => {
                let sub = domain.sub_partition_of(key_head, owners.len());
                owners[sub]
            }
            None => 0,
        }
    }

    /// The machine hosting the instance that owns `key_head` of `table`.
    pub fn machine_of_key(&self, table: TableId, key_head: i64) -> usize {
        self.instance_machine[self.instance_of_key(table, key_head)]
    }

    /// Reassign sub-partition `sub` of `table` to `instance`.
    pub fn assign(&mut self, table: TableId, sub: usize, instance: usize) {
        assert!(instance < self.n_instances);
        if let Some((_, owners)) = self.tables.get_mut(&table) {
            if sub < owners.len() {
                owners[sub] = instance;
            }
        }
    }

    /// Number of sub-partitions assigned to each instance.
    pub fn sub_partitions_per_instance(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_instances];
        for (_, owners) in self.tables.values() {
            for &o in owners {
                counts[o] += 1;
            }
        }
        counts
    }

    /// Structural invariants: every owner index is a valid instance and
    /// every instance has a machine.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.instance_machine.len() != self.n_instances {
            return Err(format!(
                "{} instances but {} machine assignments",
                self.n_instances,
                self.instance_machine.len()
            ));
        }
        for (table, (_, owners)) in &self.tables {
            if owners.is_empty() {
                return Err(format!("table {table} has no sub-partitions"));
            }
            for (sub, &o) in owners.iter().enumerate() {
                if o >= self.n_instances {
                    return Err(format!(
                        "table {table} sub-partition {sub} assigned to instance {o} of {}",
                        self.n_instances
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Evaluation of a sharding plan under a workload trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardingCost {
    /// Total absolute deviation of per-instance load from the mean (the
    /// shared-nothing analogue of `RU(S,W)`).
    pub load_imbalance: f64,
    /// Weighted count of co-accesses whose sub-partitions live on different
    /// instances of the same machine (cheap distributed transactions).
    pub local_distributed: f64,
    /// Weighted count of co-accesses whose sub-partitions live on different
    /// machines (expensive distributed transactions).
    pub remote_distributed: f64,
}

impl ShardingCost {
    /// Combine the objectives with the configured weights.
    pub fn combined(&self, cfg: &ShardingConfig) -> f64 {
        cfg.balance_weight * self.load_imbalance
            + cfg.local_distributed_cost * self.local_distributed
            + cfg.remote_distributed_cost * self.remote_distributed
    }

    /// Total number of (weighted) distributed co-accesses of either kind.
    pub fn total_distributed(&self) -> f64 {
        self.local_distributed + self.remote_distributed
    }
}

/// Per-instance load of a plan under a trace.
pub fn per_instance_load(plan: &ShardingPlan, stats: &WorkloadStats) -> Vec<f64> {
    let mut load = vec![0.0; plan.n_instances];
    for table in plan.tables() {
        let loads = stats.table_load(table);
        let n_sub = plan.num_sub_partitions(table);
        for sub in 0..n_sub {
            let l = loads.get(sub).copied().unwrap_or(0.0);
            load[plan.instance_of_sub(table, sub)] += l;
        }
    }
    load
}

/// Evaluate a plan: load imbalance plus the two kinds of distributed
/// co-access counts.
pub fn evaluate_sharding(plan: &ShardingPlan, stats: &WorkloadStats) -> ShardingCost {
    let load = per_instance_load(plan, stats);
    let avg = load.iter().sum::<f64>() / plan.n_instances.max(1) as f64;
    let load_imbalance = load.iter().map(|l| (l - avg).abs()).sum();

    let mut local_distributed = 0.0;
    let mut remote_distributed = 0.0;
    for ((a, b), obs) in stats.sync_pairs() {
        let ia = instance_of(plan, a);
        let ib = instance_of(plan, b);
        if ia == ib {
            continue;
        }
        if plan.instance_machine[ia] == plan.instance_machine[ib] {
            local_distributed += obs.count as f64;
        } else {
            remote_distributed += obs.count as f64;
        }
    }
    ShardingCost {
        load_imbalance,
        local_distributed,
        remote_distributed,
    }
}

fn instance_of(plan: &ShardingPlan, sub: &SubPartitionId) -> usize {
    plan.instance_of_sub(sub.table, sub.index)
}

/// Bytes that physically move when migrating from `old` to `new`, assuming
/// `bytes_per_sub[table]` bytes per sub-partition: every sub-partition whose
/// owning instance changes must be shipped to its new home.  This is the
/// dominant term of the shared-nothing repartitioning cost (§VII), absent
/// from the logically partitioned shared-everything engine.
pub fn estimate_migration_bytes(
    old: &ShardingPlan,
    new: &ShardingPlan,
    bytes_per_sub: &BTreeMap<TableId, u64>,
) -> u64 {
    let mut moved = 0u64;
    for table in new.tables() {
        let per_sub = bytes_per_sub.get(&table).copied().unwrap_or(0);
        let n = new.num_sub_partitions(table);
        for sub in 0..n {
            let old_owner = if old.num_sub_partitions(table) == 0 {
                usize::MAX
            } else {
                old.instance_of_sub(table, sub)
            };
            if old_owner != new.instance_of_sub(table, sub) {
                moved += per_sub;
            }
        }
    }
    moved
}

/// Greedy sharding advisor (the shared-nothing analogue of Algorithms 1+2).
///
/// Starting from the classic range sharding, the search repeatedly picks the
/// costliest cross-instance co-access pair and tries to co-locate it, either
/// by *moving* one of its sub-partitions to the other's instance or by
/// *swapping* it with a sub-partition already hosted there (a swap keeps the
/// per-instance load roughly constant, mirroring how Algorithm 2 swaps
/// partitions between cores).  A change is kept only if it lowers the
/// combined cost, so moves that overload an instance are rejected
/// automatically.
pub fn advise_sharding(
    tables: &[(TableId, KeyDomain)],
    n_sub_per_table: usize,
    n_instances: usize,
    n_machines: usize,
    stats: &WorkloadStats,
    cfg: &ShardingConfig,
) -> ShardingPlan {
    let mut plan = ShardingPlan::range(tables, n_sub_per_table, n_instances, n_machines);
    if n_instances <= 1 {
        return plan;
    }
    let mut best = evaluate_sharding(&plan, stats).combined(cfg);
    for _ in 0..cfg.max_iterations {
        // Rank cross-instance pairs by how often they co-access.
        let mut candidates: Vec<(SubPartitionId, SubPartitionId, u64)> = stats
            .sync_pairs()
            .filter_map(|((a, b), obs)| {
                (instance_of(&plan, a) != instance_of(&plan, b)).then_some((*a, *b, obs.count))
            })
            .collect();
        if candidates.is_empty() {
            break;
        }
        candidates.sort_by_key(|c| std::cmp::Reverse(c.2));
        let mut improved = false;
        'candidates: for (a, b, _) in candidates.into_iter().take(16) {
            for (mover, target) in [(a, b), (b, a)] {
                let n_sub = plan.num_sub_partitions(mover.table);
                if mover.index >= n_sub {
                    continue;
                }
                let from = plan.instance_of_sub(mover.table, mover.index);
                let to = instance_of(&plan, &target);
                if from == to {
                    continue;
                }
                // Plain move.
                let mut candidate = plan.clone();
                candidate.assign(mover.table, mover.index, to);
                let cost = evaluate_sharding(&candidate, stats).combined(cfg);
                if cost + 1e-9 < best {
                    plan = candidate;
                    best = cost;
                    improved = true;
                    break 'candidates;
                }
                // Swap with a sub-partition of the same table currently
                // hosted on the target instance (bounded to keep each
                // iteration cheap).
                let swap_partners: Vec<usize> = (0..n_sub)
                    .filter(|&s| s != mover.index && plan.instance_of_sub(mover.table, s) == to)
                    .take(8)
                    .collect();
                for partner in swap_partners {
                    let mut candidate = plan.clone();
                    candidate.assign(mover.table, mover.index, to);
                    candidate.assign(mover.table, partner, from);
                    let cost = evaluate_sharding(&candidate, stats).combined(cfg);
                    if cost + 1e-9 < best {
                        plan = candidate;
                        best = cost;
                        improved = true;
                        break 'candidates;
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tables() -> Vec<(TableId, KeyDomain)> {
        vec![
            (TableId(0), KeyDomain::new(0, 1_000)),
            (TableId(1), KeyDomain::new(0, 1_000)),
        ]
    }

    /// A trace in which table 0's sub-partition `i` always co-accesses table
    /// 1's sub-partition `(i + shift) % n` — the correlated-access pattern
    /// of the Figure 6 workload, shifted so the naive range sharding splits
    /// every pair across instances.
    fn shifted_trace(n_sub: usize, shift: usize) -> WorkloadStats {
        let mut stats = WorkloadStats::new();
        for i in 0..n_sub {
            stats.record_action(SubPartitionId::new(TableId(0), i), 10.0);
            stats.record_action(SubPartitionId::new(TableId(1), (i + shift) % n_sub), 10.0);
            stats.record_sync(
                SubPartitionId::new(TableId(0), i),
                SubPartitionId::new(TableId(1), (i + shift) % n_sub),
                64,
            );
            stats.record_transaction();
        }
        stats
    }

    #[test]
    fn range_plan_divides_sub_partitions_evenly() {
        let plan = ShardingPlan::range(&two_tables(), 40, 4, 2);
        plan.check_invariants().unwrap();
        assert_eq!(plan.sub_partitions_per_instance(), vec![20; 4]);
        assert_eq!(plan.instance_of_key(TableId(0), 0), 0);
        assert_eq!(plan.instance_of_key(TableId(0), 999), 3);
        // Instances 0 and 2 share machine 0; 1 and 3 share machine 1.
        assert_eq!(plan.machine_of_key(TableId(0), 0), 0);
        assert_eq!(plan.instance_machine, vec![0, 1, 0, 1]);
    }

    #[test]
    fn per_socket_plan_matches_the_topology() {
        let topo = Topology::multisocket(4, 10);
        let plan = ShardingPlan::per_socket(&two_tables(), 40, &topo);
        assert_eq!(plan.n_instances, 4);
        assert_eq!(plan.instance_machine, vec![0, 1, 2, 3]);
        plan.check_invariants().unwrap();
    }

    #[test]
    fn evaluate_counts_distributed_co_accesses_by_machine() {
        // 2 instances on 1 machine, 2 on another.
        let plan = ShardingPlan::range(&two_tables(), 8, 4, 2);
        let mut stats = WorkloadStats::new();
        // Same instance: free.
        stats.record_sync(
            SubPartitionId::new(TableId(0), 0),
            SubPartitionId::new(TableId(1), 0),
            64,
        );
        // Instances 0 and 2: both on machine 0 → local distributed.
        stats.record_sync(
            SubPartitionId::new(TableId(0), 0),
            SubPartitionId::new(TableId(1), 4),
            64,
        );
        // Instances 0 and 1: machines 0 and 1 → remote distributed.
        stats.record_sync(
            SubPartitionId::new(TableId(0), 0),
            SubPartitionId::new(TableId(1), 2),
            64,
        );
        let cost = evaluate_sharding(&plan, &stats);
        assert_eq!(cost.local_distributed, 1.0);
        assert_eq!(cost.remote_distributed, 1.0);
        let cfg = ShardingConfig::default();
        assert!(cost.combined(&cfg) >= cfg.remote_distributed_cost);
    }

    #[test]
    fn advisor_removes_distributed_transactions_for_correlated_access() {
        let n_sub = 16;
        // Shift of n_sub/4: with 4 instances the naive range sharding puts
        // every correlated pair on different instances.
        let stats = shifted_trace(n_sub, n_sub / 4);
        let naive = ShardingPlan::range(&two_tables(), n_sub, 4, 4);
        let naive_cost = evaluate_sharding(&naive, &stats);
        assert!(naive_cost.total_distributed() > 0.0);
        let cfg = ShardingConfig::default();
        let advised = advise_sharding(&two_tables(), n_sub, 4, 4, &stats, &cfg);
        advised.check_invariants().unwrap();
        let advised_cost = evaluate_sharding(&advised, &stats);
        assert!(
            advised_cost.total_distributed() < naive_cost.total_distributed(),
            "advisor should reduce distributed transactions: {} -> {}",
            naive_cost.total_distributed(),
            advised_cost.total_distributed()
        );
        assert!(advised_cost.combined(&cfg) < naive_cost.combined(&cfg));
    }

    #[test]
    fn fine_grained_costs_prefer_same_machine_partners() {
        // Two instances per machine: a plan that keeps the correlated pairs
        // on the same machine (even if on different instances) beats one
        // that spreads them across machines under the fine-grained model.
        let n_sub = 8;
        let stats = shifted_trace(n_sub, n_sub / 2);
        let cfg = ShardingConfig {
            local_distributed_cost: 1.0,
            remote_distributed_cost: 10.0,
            ..ShardingConfig::default()
        };
        let spread = ShardingPlan::range(&two_tables(), n_sub, 2, 2);
        let mut colocated = spread.clone();
        // Host both instances on machine 0.
        colocated.instance_machine = vec![0, 0];
        let c_spread = evaluate_sharding(&spread, &stats).combined(&cfg);
        let c_coloc = evaluate_sharding(&colocated, &stats).combined(&cfg);
        assert!(c_coloc < c_spread);
    }

    #[test]
    fn migration_estimate_counts_only_moved_sub_partitions() {
        let old = ShardingPlan::range(&two_tables(), 8, 4, 4);
        let mut new = old.clone();
        new.assign(TableId(0), 0, 3);
        new.assign(TableId(1), 7, 0);
        let bytes: BTreeMap<TableId, u64> = [(TableId(0), 1_000), (TableId(1), 2_000)]
            .into_iter()
            .collect();
        assert_eq!(estimate_migration_bytes(&old, &old, &bytes), 0);
        assert_eq!(estimate_migration_bytes(&old, &new, &bytes), 3_000);
    }

    #[test]
    fn single_instance_plans_have_no_distributed_cost() {
        let stats = shifted_trace(8, 2);
        let plan = advise_sharding(&two_tables(), 8, 1, 1, &stats, &ShardingConfig::default());
        let cost = evaluate_sharding(&plan, &stats);
        assert_eq!(cost.total_distributed(), 0.0);
        assert_eq!(plan.sub_partitions_per_instance(), vec![16]);
    }
}
