//! The adaptive controller: monitoring → cost model → search →
//! repartitioning (paper §V-D, "Detecting changes").
//!
//! The controller is driven by the execution engine at the end of every
//! monitoring interval with the throughput observed during that interval and
//! the aggregated workload trace.  It decides whether to keep the current
//! partitioning and placement scheme or to adopt a new one, in which case it
//! produces the repartitioning plan the engine must apply (pausing regular
//! execution while it does).

use crate::cost_model::{evaluate, CostBreakdown};
use crate::monitor::{AdaptiveInterval, IntervalDecision};
use crate::partitioning::PartitioningScheme;
use crate::repartition::{plan_repartitioning, RepartitionPlan};
use crate::search::{choose_scheme, SearchConfig};
use crate::stats::WorkloadStats;
use atrapos_numa::Topology;
use serde::{Deserialize, Serialize};

/// Controller parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Search parameters for the partitioning/placement algorithms.
    pub search: SearchConfig,
    /// Minimum relative improvement of the combined cost required to adopt a
    /// new scheme (prevents oscillation on noise).
    pub improvement_threshold: f64,
    /// Weight converting synchronization byte·hops into the same unit as
    /// the resource-utilization objective (≈ interconnect cycles per
    /// byte-hop).
    pub sync_weight: f64,
    /// Adaptive monitoring interval.
    pub interval: AdaptiveInterval,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            search: SearchConfig {
                max_iterations: 200,
                ..SearchConfig::default()
            },
            improvement_threshold: 0.05,
            sync_weight: 0.6,
            interval: AdaptiveInterval::default(),
        }
    }
}

/// What the controller decided at the end of an interval.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum AdaptationOutcome {
    /// Keep the current scheme (throughput stable or no better scheme
    /// found).
    NoChange,
    /// Adopt a new scheme; the engine must apply `plan` and rebuild its
    /// routing tables.
    Repartition {
        /// The new scheme.
        new_scheme: PartitioningScheme,
        /// Physical actions to apply.
        plan: RepartitionPlan,
        /// Cost of the old scheme under the interval's trace.
        old_cost: CostBreakdown,
        /// Cost of the new scheme under the interval's trace.
        new_cost: CostBreakdown,
    },
}

/// The adaptive controller.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptiveController {
    /// Configuration.
    pub config: ControllerConfig,
    current: PartitioningScheme,
    /// Number of repartitionings performed.
    pub adaptations: u64,
    /// Number of model evaluations performed.
    pub evaluations: u64,
}

impl AdaptiveController {
    /// Build a controller starting from `initial` (typically the naive
    /// scheme, which is what ATraPos uses when it has no workload
    /// information yet).
    pub fn new(initial: PartitioningScheme, config: ControllerConfig) -> Self {
        Self {
            config,
            current: initial,
            adaptations: 0,
            evaluations: 0,
        }
    }

    /// The scheme currently in force.
    pub fn current_scheme(&self) -> &PartitioningScheme {
        &self.current
    }

    /// Length of the next monitoring interval, in (virtual) seconds.
    pub fn interval_secs(&self) -> f64 {
        self.config.interval.current_secs()
    }

    /// Feed the result of one monitoring interval.  `throughput` is in
    /// transactions per second over the interval; `stats` is the aggregated
    /// trace of the interval; `topo` reflects the *current* hardware (a
    /// failed socket shows up here).
    pub fn on_interval(
        &mut self,
        throughput: f64,
        stats: &WorkloadStats,
        topo: &Topology,
    ) -> AdaptationOutcome {
        let hardware_changed = self.current.check_invariants(topo).is_err();
        let decision = self.config.interval.observe(throughput);
        if decision == IntervalDecision::Stable && !hardware_changed {
            return AdaptationOutcome::NoChange;
        }
        self.evaluate_and_maybe_adapt(stats, topo, hardware_changed)
    }

    /// Evaluate the model immediately (used when the engine detects a
    /// hardware change out-of-band).
    pub fn force_evaluate(&mut self, stats: &WorkloadStats, topo: &Topology) -> AdaptationOutcome {
        let hardware_changed = self.current.check_invariants(topo).is_err();
        self.evaluate_and_maybe_adapt(stats, topo, hardware_changed)
    }

    fn evaluate_and_maybe_adapt(
        &mut self,
        stats: &WorkloadStats,
        topo: &Topology,
        hardware_changed: bool,
    ) -> AdaptationOutcome {
        self.evaluations += 1;
        let candidate = choose_scheme(&self.current, stats, topo, &self.config.search);
        let old_cost = evaluate(&self.current, stats, topo);
        let new_cost = evaluate(&candidate, stats, topo);
        let old_combined = old_cost.combined(self.config.sync_weight);
        let new_combined = new_cost.combined(self.config.sync_weight);
        let improved = new_combined < old_combined * (1.0 - self.config.improvement_threshold)
            || (hardware_changed && candidate.check_invariants(topo).is_ok());
        if !improved {
            return AdaptationOutcome::NoChange;
        }
        let plan = plan_repartitioning(&self.current, &candidate);
        if plan.is_empty() {
            return AdaptationOutcome::NoChange;
        }
        self.current = candidate.clone();
        self.adaptations += 1;
        self.config.interval.reset();
        AdaptationOutcome::Repartition {
            new_scheme: candidate,
            plan,
            old_cost,
            new_cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioning::KeyDomain;
    use crate::stats::SubPartitionId;
    use atrapos_storage::TableId;

    fn setup() -> (Topology, AdaptiveController) {
        let topo = Topology::multisocket(2, 4);
        let scheme = PartitioningScheme::naive(&[(TableId(0), KeyDomain::new(0, 1000))], &topo, 10);
        (
            topo,
            AdaptiveController::new(scheme, ControllerConfig::default()),
        )
    }

    fn uniform_stats(n_sub: usize) -> WorkloadStats {
        let mut s = WorkloadStats::new();
        for sub in 0..n_sub {
            s.record_action(SubPartitionId::new(TableId(0), sub), 10.0);
        }
        s
    }

    fn skewed_stats(n_sub: usize) -> WorkloadStats {
        let mut s = WorkloadStats::new();
        for sub in 0..n_sub {
            let w = if sub < n_sub / 5 { 100.0 } else { 5.0 };
            s.record_action(SubPartitionId::new(TableId(0), sub), w);
        }
        s
    }

    #[test]
    fn stable_throughput_never_repartitions() {
        let (topo, mut ctl) = setup();
        let stats = uniform_stats(80);
        for _ in 0..5 {
            let out = ctl.on_interval(1000.0, &stats, &topo);
            assert!(matches!(out, AdaptationOutcome::NoChange));
        }
        assert_eq!(ctl.adaptations, 0);
        assert!(ctl.interval_secs() > 1.0, "interval should have grown");
    }

    #[test]
    fn throughput_drop_with_skew_triggers_repartitioning() {
        let (topo, mut ctl) = setup();
        let uniform = uniform_stats(80);
        for _ in 0..3 {
            ctl.on_interval(1000.0, &uniform, &topo);
        }
        // Skew appears and throughput collapses (paper Figure 11).
        let skew = skewed_stats(80);
        let out = ctl.on_interval(200.0, &skew, &topo);
        match out {
            AdaptationOutcome::Repartition {
                old_cost, new_cost, ..
            } => {
                assert!(new_cost.resource_imbalance < old_cost.resource_imbalance);
            }
            AdaptationOutcome::NoChange => panic!("expected a repartitioning"),
        }
        assert_eq!(ctl.adaptations, 1);
        // The monitoring interval resets to stay alert.
        assert_eq!(ctl.interval_secs(), 1.0);
    }

    #[test]
    fn hardware_failure_forces_adaptation_even_with_stable_throughput() {
        let (mut topo, mut ctl) = setup();
        let stats = uniform_stats(80);
        ctl.on_interval(1000.0, &stats, &topo);
        topo.fail_socket(atrapos_numa::SocketId(1));
        let out = ctl.on_interval(1000.0, &stats, &topo);
        match out {
            AdaptationOutcome::Repartition { new_scheme, .. } => {
                new_scheme.check_invariants(&topo).unwrap();
            }
            AdaptationOutcome::NoChange => panic!("expected adaptation after socket failure"),
        }
    }

    #[test]
    fn evaluation_without_improvement_keeps_the_scheme() {
        let (topo, mut ctl) = setup();
        let stats = uniform_stats(80);
        // Big throughput swing triggers an evaluation, but the uniform load
        // cannot be balanced any better than the naive scheme already is.
        ctl.on_interval(1000.0, &stats, &topo);
        let out = ctl.on_interval(100.0, &stats, &topo);
        assert!(matches!(out, AdaptationOutcome::NoChange));
        assert!(ctl.evaluations >= 1);
        assert_eq!(ctl.adaptations, 0);
    }
}
