//! Partitioning and placement schemes.
//!
//! ATraPos divides every table's key domain into a fixed number of
//! *sub-partitions* (10 per partition in the paper, §V-D): they are the
//! granule at which the workload is monitored and at which repartitioning
//! decisions are made.  A *partition* is a contiguous run of sub-partitions
//! assigned to exactly one worker thread, which is bound to one processor
//! core.  A *scheme* is the complete assignment for every table.

use atrapos_numa::{CoreId, SocketId, Topology};
use atrapos_storage::{Key, TableId};
use serde::{Deserialize, Serialize};

/// The integer key domain `[lo, hi)` of a table (all built-in workloads use
/// integer-headed keys; composite keys partition by their head column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyDomain {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Exclusive upper bound.
    pub hi: i64,
}

impl KeyDomain {
    /// A domain covering `[lo, hi)`.
    pub fn new(lo: i64, hi: i64) -> Self {
        assert!(hi > lo, "key domain must be non-empty");
        Self { lo, hi }
    }

    /// Width of the domain.
    pub fn width(&self) -> i64 {
        self.hi - self.lo
    }

    /// The sub-partition index (out of `n_sub`) a key head falls into.
    pub fn sub_partition_of(&self, key_head: i64, n_sub: usize) -> usize {
        let clamped = key_head.clamp(self.lo, self.hi - 1);
        let offset = (clamped - self.lo) as i128;
        let idx = offset * n_sub as i128 / self.width() as i128;
        (idx as usize).min(n_sub - 1)
    }

    /// The inclusive lower key of sub-partition `idx` (out of `n_sub`): the
    /// smallest key that [`KeyDomain::sub_partition_of`] maps to `idx`.
    /// Ceiling division keeps the logical boundary consistent with the
    /// key-to-sub-partition mapping even when the domain width is not a
    /// multiple of `n_sub`, so the physical multi-rooted B-tree boundaries
    /// built from these keys agree exactly with the logical routing.
    pub fn sub_partition_lower(&self, idx: usize, n_sub: usize) -> i64 {
        // Ceiling division on non-negative operands (width > 0, idx >= 0).
        let numerator = self.width() as i128 * idx as i128;
        let n = n_sub as i128;
        self.lo + ((numerator + n - 1) / n) as i64
    }
}

/// One partition: a contiguous run of sub-partitions of one table, assigned
/// to one core.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionSpec {
    /// First sub-partition index (inclusive).
    pub sub_start: usize,
    /// Last sub-partition index (exclusive).
    pub sub_end: usize,
    /// The core whose worker thread owns this partition.
    pub core: CoreId,
}

impl PartitionSpec {
    /// Number of sub-partitions in this partition.
    pub fn num_sub_partitions(&self) -> usize {
        self.sub_end - self.sub_start
    }

    /// Whether the given sub-partition index belongs to this partition.
    pub fn contains(&self, sub: usize) -> bool {
        sub >= self.sub_start && sub < self.sub_end
    }
}

/// The partitioning of one table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TablePartitioning {
    /// The table.
    pub table: TableId,
    /// Its key domain.
    pub domain: KeyDomain,
    /// Total number of sub-partitions of this table.
    pub num_sub_partitions: usize,
    /// Partitions in sub-partition order (contiguous, disjoint, covering).
    pub partitions: Vec<PartitionSpec>,
}

impl TablePartitioning {
    /// Partition index responsible for `key_head`.
    pub fn partition_of_key(&self, key_head: i64) -> usize {
        let sub = self
            .domain
            .sub_partition_of(key_head, self.num_sub_partitions);
        self.partition_of_sub(sub)
    }

    /// Partition index owning sub-partition `sub`.
    pub fn partition_of_sub(&self, sub: usize) -> usize {
        // Partitions are contiguous and ordered by `sub_start`, so a binary
        // search finds the owner in O(log n).
        match self.partitions.binary_search_by(|p| p.sub_start.cmp(&sub)) {
            Ok(i) => i,
            Err(0) => panic!("sub-partition {sub} not covered by any partition"),
            Err(i) => {
                let candidate = i - 1;
                assert!(
                    self.partitions[candidate].contains(sub),
                    "sub-partition {sub} not covered by any partition"
                );
                candidate
            }
        }
    }

    /// The core owning `key_head`.
    pub fn core_of_key(&self, key_head: i64) -> CoreId {
        self.partitions[self.partition_of_key(key_head)].core
    }

    /// Boundary keys (lower bounds of partitions 1..n) for building the
    /// physical multi-rooted B-tree.
    pub fn boundary_keys(&self) -> Vec<Key> {
        self.partitions
            .iter()
            .skip(1)
            .map(|p| {
                Key::int(
                    self.domain
                        .sub_partition_lower(p.sub_start, self.num_sub_partitions),
                )
            })
            .collect()
    }

    /// Check structural invariants: partitions are non-empty, contiguous,
    /// ordered, and cover `[0, num_sub_partitions)`.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.partitions.is_empty() {
            return Err(format!("table {} has no partitions", self.table));
        }
        let mut expected_start = 0;
        for (i, p) in self.partitions.iter().enumerate() {
            if p.sub_start != expected_start {
                return Err(format!(
                    "table {} partition {} starts at {} (expected {})",
                    self.table, i, p.sub_start, expected_start
                ));
            }
            if p.sub_end <= p.sub_start {
                return Err(format!("table {} partition {} is empty", self.table, i));
            }
            expected_start = p.sub_end;
        }
        if expected_start != self.num_sub_partitions {
            return Err(format!(
                "table {} partitions cover {} of {} sub-partitions",
                self.table, expected_start, self.num_sub_partitions
            ));
        }
        Ok(())
    }
}

/// A complete partitioning and placement scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitioningScheme {
    tables: Vec<TablePartitioning>,
}

impl PartitioningScheme {
    /// Build a scheme from per-table partitionings.
    pub fn new(tables: Vec<TablePartitioning>) -> Self {
        Self { tables }
    }

    /// The naive, hardware-aware scheme of paper §IV: each table is range
    /// partitioned with one partition per active core, partitions assigned
    /// to cores in order.  Every partition gets `sub_per_partition`
    /// sub-partitions (10 in the paper).
    pub fn naive(
        tables: &[(TableId, KeyDomain)],
        topo: &Topology,
        sub_per_partition: usize,
    ) -> Self {
        let cores = topo.active_cores();
        let n = cores.len();
        let tables = tables
            .iter()
            .map(|&(table, domain)| {
                let partitions = (0..n)
                    .map(|i| PartitionSpec {
                        sub_start: i * sub_per_partition,
                        sub_end: (i + 1) * sub_per_partition,
                        core: cores[i],
                    })
                    .collect();
                TablePartitioning {
                    table,
                    domain,
                    num_sub_partitions: n * sub_per_partition,
                    partitions,
                }
            })
            .collect();
        Self { tables }
    }

    /// A scheme with a fixed number of partitions per table, spread over the
    /// active cores round-robin (used by baselines and tests).
    pub fn even(
        tables: &[(TableId, KeyDomain)],
        topo: &Topology,
        partitions_per_table: usize,
        sub_per_partition: usize,
    ) -> Self {
        let cores = topo.active_cores();
        let tables = tables
            .iter()
            .enumerate()
            .map(|(t_idx, &(table, domain))| {
                let partitions = (0..partitions_per_table)
                    .map(|i| PartitionSpec {
                        sub_start: i * sub_per_partition,
                        sub_end: (i + 1) * sub_per_partition,
                        core: cores[(t_idx * partitions_per_table + i) % cores.len()],
                    })
                    .collect();
                TablePartitioning {
                    table,
                    domain,
                    num_sub_partitions: partitions_per_table * sub_per_partition,
                    partitions,
                }
            })
            .collect();
        Self { tables }
    }

    /// Per-table partitionings.
    pub fn tables(&self) -> &[TablePartitioning] {
        &self.tables
    }

    /// Mutable access to per-table partitionings (used by the search).
    pub fn tables_mut(&mut self) -> &mut [TablePartitioning] {
        &mut self.tables
    }

    /// The partitioning of `table`.
    pub fn table(&self, table: TableId) -> &TablePartitioning {
        self.tables
            .iter()
            .find(|t| t.table == table)
            .unwrap_or_else(|| panic!("table {table} not in scheme"))
    }

    /// Total number of partitions across tables.
    pub fn total_partitions(&self) -> usize {
        self.tables.iter().map(|t| t.partitions.len()).sum()
    }

    /// The core responsible for `key_head` of `table`.
    pub fn core_of_key(&self, table: TableId, key_head: i64) -> CoreId {
        self.table(table).core_of_key(key_head)
    }

    /// The socket responsible for `key_head` of `table`.
    pub fn socket_of_key(&self, table: TableId, key_head: i64, topo: &Topology) -> SocketId {
        topo.socket_of(self.core_of_key(table, key_head))
    }

    /// Number of partitions placed on each core.
    pub fn partitions_per_core(&self, topo: &Topology) -> Vec<usize> {
        let mut counts = vec![0usize; topo.num_cores()];
        for t in &self.tables {
            for p in &t.partitions {
                counts[p.core.index()] += 1;
            }
        }
        counts
    }

    /// Check invariants of every table partitioning and that every partition
    /// is assigned to an active core.
    pub fn check_invariants(&self, topo: &Topology) -> Result<(), String> {
        for t in &self.tables {
            t.check_invariants()?;
            for p in &t.partitions {
                let socket = topo.socket_of(p.core);
                if !topo.is_active(socket) {
                    return Err(format!(
                        "table {} has a partition on core {} of failed socket {}",
                        t.table, p.core, socket
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> KeyDomain {
        KeyDomain::new(0, 1000)
    }

    #[test]
    fn sub_partition_mapping_is_even_and_clamped() {
        let d = domain();
        assert_eq!(d.sub_partition_of(0, 10), 0);
        assert_eq!(d.sub_partition_of(99, 10), 0);
        assert_eq!(d.sub_partition_of(100, 10), 1);
        assert_eq!(d.sub_partition_of(999, 10), 9);
        // Out-of-domain keys clamp to the edge sub-partitions.
        assert_eq!(d.sub_partition_of(-5, 10), 0);
        assert_eq!(d.sub_partition_of(5000, 10), 9);
        assert_eq!(d.sub_partition_lower(0, 10), 0);
        assert_eq!(d.sub_partition_lower(5, 10), 500);
    }

    #[test]
    fn naive_scheme_places_one_partition_per_core() {
        let topo = Topology::multisocket(2, 4);
        let scheme = PartitioningScheme::naive(&[(TableId(0), domain())], &topo, 10);
        let t = scheme.table(TableId(0));
        assert_eq!(t.partitions.len(), 8);
        assert_eq!(t.num_sub_partitions, 80);
        scheme.check_invariants(&topo).unwrap();
        // Keys are spread over all cores.
        let c0 = scheme.core_of_key(TableId(0), 0);
        let c_last = scheme.core_of_key(TableId(0), 999);
        assert_ne!(c0, c_last);
        assert_eq!(scheme.partitions_per_core(&topo), vec![1; 8]);
    }

    #[test]
    fn boundary_keys_match_sub_partition_lowers() {
        let topo = Topology::multisocket(1, 4);
        let scheme = PartitioningScheme::naive(&[(TableId(0), domain())], &topo, 10);
        let t = scheme.table(TableId(0));
        let boundaries = t.boundary_keys();
        assert_eq!(boundaries.len(), 3);
        assert_eq!(boundaries[0], Key::int(250));
        assert_eq!(boundaries[1], Key::int(500));
        assert_eq!(boundaries[2], Key::int(750));
    }

    #[test]
    fn partition_of_key_routes_consistently_with_boundaries() {
        let topo = Topology::multisocket(1, 4);
        let scheme = PartitioningScheme::naive(&[(TableId(0), domain())], &topo, 10);
        let t = scheme.table(TableId(0));
        assert_eq!(t.partition_of_key(0), 0);
        assert_eq!(t.partition_of_key(249), 0);
        assert_eq!(t.partition_of_key(250), 1);
        assert_eq!(t.partition_of_key(999), 3);
    }

    #[test]
    fn invariant_checker_rejects_gaps() {
        let bad = TablePartitioning {
            table: TableId(0),
            domain: domain(),
            num_sub_partitions: 20,
            partitions: vec![
                PartitionSpec {
                    sub_start: 0,
                    sub_end: 10,
                    core: CoreId(0),
                },
                PartitionSpec {
                    sub_start: 12,
                    sub_end: 20,
                    core: CoreId(1),
                },
            ],
        };
        assert!(bad.check_invariants().is_err());
    }

    #[test]
    fn invariant_checker_rejects_partitions_on_failed_sockets() {
        let mut topo = Topology::multisocket(2, 2);
        let scheme = PartitioningScheme::naive(&[(TableId(0), domain())], &topo, 10);
        scheme.check_invariants(&topo).unwrap();
        topo.fail_socket(SocketId(1));
        assert!(scheme.check_invariants(&topo).is_err());
    }

    #[test]
    fn even_scheme_uses_requested_partition_count() {
        let topo = Topology::multisocket(4, 10);
        let scheme = PartitioningScheme::even(
            &[(TableId(0), domain()), (TableId(1), domain())],
            &topo,
            4,
            10,
        );
        assert_eq!(scheme.total_partitions(), 8);
        scheme.check_invariants(&topo).unwrap();
    }
}
