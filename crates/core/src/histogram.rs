//! An allocation-free, log-bucketed latency histogram (HDR-style).
//!
//! The open-loop serving subsystem needs full latency distributions —
//! p50/p95/p99/p999, not just a mean — without allocating per recorded
//! sample and without losing determinism: two runs that commit the same
//! transactions must produce byte-identical histograms, and merging the
//! per-segment histograms of a scenario must equal recording the
//! concatenated samples.
//!
//! Values (latencies in CPU cycles — integers, so no float-rounding
//! nondeterminism) are mapped to logarithmic buckets: every power of two
//! is divided into [`SUB_BUCKETS`] linear sub-buckets, so any recorded
//! value is off from its bucket bound by at most `1/SUB_BUCKETS`
//! (≈ 3.1%) of its magnitude.  Values below `2 × SUB_BUCKETS` are exact.
//! The bucket array is allocated once at construction ([`BUCKET_COUNT`]
//! slots covering all of `u64`), so [`LatencyHistogram::record`] is a
//! shift, an index, and an increment — no allocation, no branching on
//! growth.
//!
//! Serialization is sparse — `[bucket index, count]` pairs in ascending
//! index order — so an almost-empty histogram costs almost nothing in
//! `RunStats` JSON, and the representation round-trips bit-exactly.

/// log2 of the linear sub-buckets per power of two.
pub const SUB_BUCKET_BITS: u32 = 5;

/// Linear sub-buckets per power of two (32 → ≤ 3.125% relative error).
pub const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;

/// Total bucket count needed to cover every `u64` value: values below
/// `2 × SUB_BUCKETS` map to themselves, and each of the remaining 58
/// powers of two contributes [`SUB_BUCKETS`] sub-buckets.
pub const BUCKET_COUNT: usize = ((64 - SUB_BUCKET_BITS as usize) + 1) * SUB_BUCKETS as usize;

/// The bucket index of `value`.
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < 2 * SUB_BUCKETS {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let shift = msb - SUB_BUCKET_BITS;
    ((shift as u64 + 1) * SUB_BUCKETS + ((value >> shift) - SUB_BUCKETS)) as usize
}

/// The smallest value mapping to bucket `index`.
#[inline]
fn bucket_low(index: usize) -> u64 {
    if index < 2 * SUB_BUCKETS as usize {
        return index as u64;
    }
    let shift = index as u64 / SUB_BUCKETS - 1;
    (SUB_BUCKETS + index as u64 % SUB_BUCKETS) << shift
}

/// The largest value mapping to bucket `index`.
#[inline]
fn bucket_high(index: usize) -> u64 {
    if index < 2 * SUB_BUCKETS as usize {
        return index as u64;
    }
    let shift = index as u64 / SUB_BUCKETS - 1;
    // The very top bucket's exclusive bound is 2^64: the shift wraps to 0
    // and the subtraction lands on u64::MAX, which is the inclusive bound.
    ((SUB_BUCKETS + index as u64 % SUB_BUCKETS + 1).wrapping_shl(shift as u32)).wrapping_sub(1)
}

/// A deterministic log-bucketed histogram of `u64` values.
///
/// Recording never allocates; [`LatencyHistogram::quantile`] answers rank
/// queries with at most `1/`[`SUB_BUCKETS`] relative error; merge is exact
/// (merging two histograms equals recording the concatenated samples).
#[derive(Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Box<[u64]>,
    total: u64,
}

impl LatencyHistogram {
    /// An empty histogram with its full bucket array allocated up front.
    pub fn new() -> Self {
        Self {
            counts: vec![0u64; BUCKET_COUNT].into_boxed_slice(),
            total: 0,
        }
    }

    /// Record one value.  Allocation-free.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.total += 1;
    }

    /// Record `n` occurrences of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        self.counts[bucket_index(value)] += n;
        self.total += n;
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Reset to empty, keeping the allocation.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.total = 0;
    }

    /// Add every sample of `other` into `self`.  Deterministic and exact:
    /// the result equals recording both sample streams into one histogram.
    pub fn merge(&mut self, other: &Self) {
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += *src;
        }
        self.total += other.total;
    }

    /// The value at quantile `q ∈ [0, 1]`: an upper bound of the bucket
    /// holding the sample of rank `⌈q·n⌉` (rank 1 for `q = 0`), so at
    /// least `⌈q·n⌉` samples are ≤ the returned value and the true rank
    /// value is below it by at most `1/`[`SUB_BUCKETS`] of itself.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cumulative = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                return bucket_high(i);
            }
        }
        bucket_high(BUCKET_COUNT - 1)
    }

    /// The guaranteed relative-error bound of [`LatencyHistogram::quantile`].
    pub fn relative_error_bound() -> f64 {
        1.0 / SUB_BUCKETS as f64
    }

    /// The largest recorded bucket's upper bound (0 when empty) — a tight
    /// upper bound on the maximum recorded value.
    pub fn max_bound(&self) -> u64 {
        match self.counts.iter().rposition(|&n| n > 0) {
            Some(i) => bucket_high(i),
            None => 0,
        }
    }

    /// The non-empty buckets as `(lower bound, upper bound, count)` runs in
    /// ascending value order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_low(i), bucket_high(i), n))
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The full 1 920-slot array would drown every assert message; show
        // the summary a reader actually wants.
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("p50", &self.quantile(0.50))
            .field("p99", &self.quantile(0.99))
            .field("max_bound", &self.max_bound())
            .finish()
    }
}

// Sparse serialization: ascending `[index, count]` pairs.  An empty
// histogram is `[]`; the dense bucket array is an implementation detail.
impl serde::ser::Serialize for LatencyHistogram {
    fn to_value(&self) -> serde::Value {
        serde::Value::Array(
            self.counts
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(i, &n)| {
                    serde::Value::Array(vec![serde::Value::UInt(i as u64), serde::Value::UInt(n)])
                })
                .collect(),
        )
    }
}

impl serde::de::Deserialize for LatencyHistogram {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let pairs = v
            .as_array()
            .ok_or_else(|| serde::Error::expected("histogram bucket array", v))?;
        let mut hist = LatencyHistogram::new();
        for pair in pairs {
            let (index, count) = <(u64, u64) as serde::de::Deserialize>::from_value(pair)?;
            if index as usize >= BUCKET_COUNT {
                return Err(serde::Error::new(format!(
                    "histogram bucket index {index} out of range (max {})",
                    BUCKET_COUNT - 1
                )));
            }
            hist.counts[index as usize] += count;
            hist.total += count;
        }
        Ok(hist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..2 * SUB_BUCKETS {
            let i = bucket_index(v);
            assert_eq!(bucket_low(i), v);
            assert_eq!(bucket_high(i), v);
        }
    }

    #[test]
    fn every_value_lies_inside_its_bucket() {
        for v in [
            0u64,
            1,
            31,
            32,
            63,
            64,
            65,
            100,
            1_000,
            123_456,
            u32::MAX as u64,
            u64::MAX / 3,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(i < BUCKET_COUNT, "index {i} out of range for {v}");
            assert!(
                bucket_low(i) <= v && v <= bucket_high(i),
                "{v} outside bucket {i}: [{}, {}]",
                bucket_low(i),
                bucket_high(i)
            );
            // The bucket's width respects the relative-error bound.
            let width = bucket_high(i) - bucket_low(i);
            assert!(
                width == 0 || (width as f64) <= bucket_low(i) as f64 / SUB_BUCKETS as f64,
                "bucket {i} of {v} is too wide: {width}"
            );
        }
    }

    #[test]
    fn bucket_indices_are_monotone_and_contiguous() {
        // Adjacent buckets tile the value space with no gaps or overlaps.
        for i in 0..BUCKET_COUNT - 1 {
            assert_eq!(
                bucket_high(i) + 1,
                bucket_low(i + 1),
                "gap between buckets {i} and {}",
                i + 1
            );
        }
        assert_eq!(bucket_high(BUCKET_COUNT - 1), u64::MAX);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 0);
        }
        assert_eq!(h.max_bound(), 0);
    }

    #[test]
    fn quantiles_bracket_the_exact_rank_statistic() {
        let mut h = LatencyHistogram::new();
        let mut values: Vec<u64> = (0..1_000u64)
            .map(|i| (i * i * 37) % 1_000_000 + 1)
            .collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for q in [0.0, 0.01, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let est = h.quantile(q);
            assert!(est >= exact, "q={q}: estimate {est} below exact {exact}");
            assert!(
                est as f64 <= exact as f64 * (1.0 + LatencyHistogram::relative_error_bound()) + 1.0,
                "q={q}: estimate {est} too far above exact {exact}"
            );
        }
    }

    #[test]
    fn merge_equals_concatenated_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut concat = LatencyHistogram::new();
        for i in 0..500u64 {
            let v = (i * 7919) % 100_000;
            a.record(v);
            concat.record(v);
        }
        for i in 0..300u64 {
            let v = (i * 104_729) % 10_000_000;
            b.record(v);
            concat.record(v);
        }
        a.merge(&b);
        assert_eq!(a, concat);
        assert_eq!(a.count(), 800);
    }

    #[test]
    fn clear_resets_without_reallocating() {
        let mut h = LatencyHistogram::new();
        h.record_n(42, 10);
        h.clear();
        assert_eq!(h, LatencyHistogram::new());
    }

    #[test]
    fn serde_round_trips_sparsely() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 1, 33, 1_000, 123_456_789, u64::MAX] {
            h.record(v);
        }
        let json = serde::json::to_string(&h);
        // Sparse: six samples serialize to six pairs, not 1 920 slots.
        assert!(json.len() < 200, "sparse encoding blew up: {json}");
        let back: LatencyHistogram = serde::json::from_str(&json).unwrap();
        assert_eq!(back, h);
        let empty: LatencyHistogram = serde::json::from_str("[]").unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn deserialize_rejects_out_of_range_indices() {
        let json = format!("[[{BUCKET_COUNT}, 1]]");
        assert!(serde::json::from_str::<LatencyHistogram>(&json).is_err());
    }
}
