//! Lightweight workload monitoring and the adaptive monitoring interval
//! (paper §V-D).
//!
//! Monitoring keeps two arrays per partition — the cost of actions executed
//! per sub-partition and the number of synchronization points per
//! sub-partition — so its space overhead is independent of the data size and
//! the transaction rate.  The arrays feed [`crate::stats::WorkloadStats`],
//! which the cost model and the search consume.  A small, fixed instruction
//! cost per recorded event models the runtime overhead, which the paper
//! measures at ≤ 3.3% (Table II).
//!
//! The monitoring interval adapts to workload volatility: it starts at one
//! second, doubles (up to eight seconds) whenever throughput stays within
//! 10% of the average of the previous five measurements, and resets to one
//! second after a repartitioning.

use crate::stats::{SubPartitionId, WorkloadStats};
use atrapos_numa::{Component, SimCtx};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Instructions charged per monitored event (array index + add).
pub const MONITOR_INSTRUCTIONS_PER_EVENT: u64 = 30;

/// The workload monitor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Monitor {
    enabled: bool,
    stats: WorkloadStats,
    /// Events recorded since the last aggregation.
    pub events: u64,
}

impl Monitor {
    /// A monitor; when `enabled` is false, recording is a no-op with no
    /// simulated cost (the paper's "monitoring disabled" baseline of
    /// Table II).
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled,
            stats: WorkloadStats::new(),
            events: 0,
        }
    }

    /// Whether monitoring is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enable or disable monitoring at runtime.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Record an executed action: `cycles` of work on `sub`.  Charges the
    /// monitoring overhead to `ctx` when enabled.
    pub fn record_action(&mut self, ctx: &mut SimCtx<'_>, sub: SubPartitionId, cycles: f64) {
        if !self.enabled {
            return;
        }
        ctx.work(Component::Monitoring, MONITOR_INSTRUCTIONS_PER_EVENT);
        self.stats.record_action(sub, cycles);
        self.events += 1;
    }

    /// Record a synchronization point between two sub-partitions.
    pub fn record_sync(
        &mut self,
        ctx: &mut SimCtx<'_>,
        a: SubPartitionId,
        b: SubPartitionId,
        bytes: u64,
    ) {
        if !self.enabled {
            return;
        }
        ctx.work(Component::Monitoring, MONITOR_INSTRUCTIONS_PER_EVENT);
        self.stats.record_sync(a, b, bytes);
        self.events += 1;
    }

    /// Record a completed transaction (no simulated cost: the descriptor is
    /// already in cache).
    pub fn record_transaction(&mut self) {
        if self.enabled {
            self.stats.record_transaction();
        }
    }

    /// Current (unaggregated) statistics.
    pub fn stats(&self) -> &WorkloadStats {
        &self.stats
    }

    /// Take the aggregated statistics and reset the monitor (the paper
    /// discards traces after each evaluation).
    pub fn take_stats(&mut self) -> WorkloadStats {
        self.events = 0;
        std::mem::take(&mut self.stats)
    }
}

/// Decision produced after a monitoring interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IntervalDecision {
    /// Throughput is stable: keep running, interval was (possibly)
    /// lengthened.
    Stable,
    /// Throughput deviated from the recent average by more than the
    /// threshold: evaluate the cost model.
    Evaluate,
}

/// The adaptive monitoring-interval controller.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptiveInterval {
    /// Minimum (and initial) interval in seconds.
    pub min_secs: f64,
    /// Maximum interval in seconds.
    pub max_secs: f64,
    /// Relative throughput deviation that triggers a model evaluation.
    pub threshold: f64,
    current_secs: f64,
    history: VecDeque<f64>,
}

impl Default for AdaptiveInterval {
    fn default() -> Self {
        Self::new(1.0, 8.0, 0.10)
    }
}

impl AdaptiveInterval {
    /// Build a controller with the given bounds and deviation threshold.
    pub fn new(min_secs: f64, max_secs: f64, threshold: f64) -> Self {
        assert!(min_secs > 0.0 && max_secs >= min_secs && threshold > 0.0);
        Self {
            min_secs,
            max_secs,
            threshold,
            current_secs: min_secs,
            history: VecDeque::with_capacity(5),
        }
    }

    /// Current monitoring interval in seconds.
    pub fn current_secs(&self) -> f64 {
        self.current_secs
    }

    /// Feed the throughput measured over the last interval.  Returns whether
    /// the cost model should be evaluated.
    pub fn observe(&mut self, throughput: f64) -> IntervalDecision {
        let decision = if self.history.is_empty() {
            IntervalDecision::Stable
        } else {
            let avg: f64 = self.history.iter().sum::<f64>() / self.history.len() as f64;
            let deviation = if avg > 0.0 {
                (throughput - avg).abs() / avg
            } else if throughput > 0.0 {
                1.0
            } else {
                0.0
            };
            if deviation <= self.threshold {
                IntervalDecision::Stable
            } else {
                IntervalDecision::Evaluate
            }
        };
        if self.history.len() == 5 {
            self.history.pop_front();
        }
        self.history.push_back(throughput);
        if decision == IntervalDecision::Stable {
            self.current_secs = (self.current_secs * 2.0).min(self.max_secs);
        }
        decision
    }

    /// Reset the interval to its minimum (called after a repartitioning so
    /// the system stays alert while the workload settles).
    pub fn reset(&mut self) {
        self.current_secs = self.min_secs;
        self.history.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atrapos_numa::{CoreId, CostModel, Topology};
    use atrapos_storage::TableId;

    #[test]
    fn disabled_monitor_has_no_cost_and_records_nothing() {
        let topo = Topology::single_socket(2);
        let cost = CostModel::westmere();
        let mut ctx = SimCtx::new(&topo, &cost, CoreId(0), 0);
        let mut m = Monitor::new(false);
        m.record_action(&mut ctx, SubPartitionId::new(TableId(0), 0), 100.0);
        assert_eq!(ctx.elapsed(), 0);
        assert_eq!(m.events, 0);
        assert_eq!(m.stats().total_load(), 0.0);
    }

    #[test]
    fn enabled_monitor_charges_overhead_and_records() {
        let topo = Topology::single_socket(2);
        let cost = CostModel::westmere();
        let mut ctx = SimCtx::new(&topo, &cost, CoreId(0), 0);
        let mut m = Monitor::new(true);
        m.record_action(&mut ctx, SubPartitionId::new(TableId(0), 3), 100.0);
        m.record_sync(
            &mut ctx,
            SubPartitionId::new(TableId(0), 3),
            SubPartitionId::new(TableId(1), 3),
            64,
        );
        assert_eq!(ctx.elapsed(), 2 * MONITOR_INSTRUCTIONS_PER_EVENT);
        assert_eq!(m.events, 2);
        let stats = m.take_stats();
        assert_eq!(stats.table_load(TableId(0))[3], 100.0);
        assert_eq!(stats.num_sync_pairs(), 1);
        assert_eq!(m.events, 0);
        assert_eq!(m.stats().total_load(), 0.0);
    }

    #[test]
    fn interval_doubles_while_stable_and_caps_at_max() {
        let mut ai = AdaptiveInterval::default();
        assert_eq!(ai.current_secs(), 1.0);
        for _ in 0..6 {
            assert_eq!(ai.observe(1000.0), IntervalDecision::Stable);
        }
        assert_eq!(ai.current_secs(), 8.0);
    }

    #[test]
    fn interval_triggers_evaluation_on_throughput_change() {
        let mut ai = AdaptiveInterval::default();
        for _ in 0..3 {
            ai.observe(1000.0);
        }
        // A 40% drop exceeds the 10% threshold.
        assert_eq!(ai.observe(600.0), IntervalDecision::Evaluate);
    }

    #[test]
    fn reset_returns_to_minimum_interval() {
        let mut ai = AdaptiveInterval::default();
        for _ in 0..4 {
            ai.observe(1000.0);
        }
        assert!(ai.current_secs() > 1.0);
        ai.reset();
        assert_eq!(ai.current_secs(), 1.0);
        // After a reset the next observation has no history to compare to.
        assert_eq!(ai.observe(250.0), IntervalDecision::Stable);
    }

    #[test]
    fn small_fluctuations_do_not_trigger_evaluation() {
        let mut ai = AdaptiveInterval::default();
        ai.observe(1000.0);
        assert_eq!(ai.observe(1050.0), IntervalDecision::Stable);
        assert_eq!(ai.observe(960.0), IntervalDecision::Stable);
    }
}
