//! Property-based tests for the ATraPos cost model, partitioning schemes,
//! the two-step search (Algorithms 1 and 2), repartitioning plans, and the
//! adaptive monitoring interval.
//!
//! These pin down the guarantees the adaptive controller relies on: every
//! scheme the search produces is structurally valid and only uses active
//! cores, Algorithm 2 never makes the synchronization overhead worse,
//! repartitioning plans are minimal and reversible, and the monitoring
//! interval always stays inside its configured bounds.

use atrapos_core::{
    choose_partitioning, choose_placement, choose_scheme, plan_repartitioning,
    resource_utilization, sync_overhead, AdaptiveInterval, IntervalDecision, KeyDomain,
    PartitioningScheme, SearchConfig, SubPartitionId, WorkloadStats,
};
use atrapos_numa::{SocketId, Topology};
use atrapos_storage::TableId;
use proptest::prelude::*;

/// Strategy for a small machine shape: (sockets, cores per socket).
fn machine_shape() -> impl Strategy<Value = (usize, usize)> {
    (1usize..=4, 1usize..=4)
}

/// Build a workload trace with the given per-sub-partition loads for one
/// table.
fn trace_for_table(table: TableId, loads: &[f64]) -> WorkloadStats {
    let mut stats = WorkloadStats::new();
    stats.declare_table(table, loads.len());
    for (i, &l) in loads.iter().enumerate() {
        if l > 0.0 {
            stats.record_action(SubPartitionId::new(table, i), l);
        }
    }
    stats
}

proptest! {
    // ------------------------------------------------------------------
    // Key domains and sub-partitions
    // ------------------------------------------------------------------

    /// Every key maps to a sub-partition index inside `[0, n_sub)`, the
    /// mapping is monotone in the key, and the sub-partition's lower key
    /// maps back to the same index.
    #[test]
    fn key_domain_sub_partition_mapping_is_monotone_and_total(
        lo in -1_000i64..1_000,
        width in 1i64..100_000,
        n_sub in 1usize..200,
        key_a in -2_000i64..102_000,
        key_b in -2_000i64..102_000,
    ) {
        let domain = KeyDomain::new(lo, lo + width);
        let sa = domain.sub_partition_of(key_a, n_sub);
        let sb = domain.sub_partition_of(key_b, n_sub);
        prop_assert!(sa < n_sub);
        prop_assert!(sb < n_sub);
        if key_a <= key_b {
            prop_assert!(sa <= sb);
        }
        // Round trip: the lower key of a sub-partition belongs to it.  This
        // only holds when every sub-partition spans at least one key (always
        // the case in practice: domains have far more keys than the ~10
        // sub-partitions per partition the paper uses).
        if width >= n_sub as i64 {
            let lower = domain.sub_partition_lower(sa, n_sub);
            prop_assert_eq!(domain.sub_partition_of(lower.max(lo), n_sub), sa);
        }
        // Lower bounds are non-decreasing across sub-partition indices.
        for i in 1..n_sub.min(16) {
            prop_assert!(domain.sub_partition_lower(i, n_sub) >= domain.sub_partition_lower(i - 1, n_sub));
        }
    }

    /// The naive scheme (one partition of every table per active core) is
    /// always structurally valid, covers the whole domain, and places
    /// exactly one partition of each table on every core.
    #[test]
    fn naive_scheme_is_always_valid(
        (sockets, cores) in machine_shape(),
        n_tables in 1usize..4,
        sub_per in 1usize..20,
        width in 10i64..1_000_000,
    ) {
        let topo = Topology::multisocket(sockets, cores);
        let tables: Vec<(TableId, KeyDomain)> = (0..n_tables)
            .map(|i| (TableId(i as u32), KeyDomain::new(0, width)))
            .collect();
        let scheme = PartitioningScheme::naive(&tables, &topo, sub_per);
        scheme.check_invariants(&topo).map_err(TestCaseError::fail)?;
        let n_cores = sockets * cores;
        prop_assert_eq!(scheme.total_partitions(), n_tables * n_cores);
        prop_assert_eq!(scheme.partitions_per_core(&topo), vec![n_tables; n_cores]);
        // Every key routes to some core of the machine.
        for t in scheme.tables() {
            for key in [0, width / 2, width - 1] {
                let core = t.core_of_key(key);
                prop_assert!(core.index() < n_cores);
            }
        }
    }

    // ------------------------------------------------------------------
    // Cost model
    // ------------------------------------------------------------------

    /// `RU(S,W)` is non-negative, zero for a perfectly uniform trace on the
    /// naive scheme, and scales linearly with the load (homogeneity).
    #[test]
    fn resource_utilization_is_nonnegative_and_homogeneous(
        (sockets, cores) in machine_shape(),
        loads in prop::collection::vec(0.0f64..1_000.0, 1..80),
        scale in 1.0f64..50.0,
    ) {
        let topo = Topology::multisocket(sockets, cores);
        let n_cores = sockets * cores;
        let sub_per = (loads.len() / n_cores).max(1);
        let scheme = PartitioningScheme::naive(
            &[(TableId(0), KeyDomain::new(0, 1_000))],
            &topo,
            sub_per,
        );
        let stats = trace_for_table(TableId(0), &loads);
        let ru = resource_utilization(&scheme, &stats, &topo);
        prop_assert!(ru >= -1e-9);
        // Homogeneity: scaling every observation scales the imbalance.
        let scaled: Vec<f64> = loads.iter().map(|l| l * scale).collect();
        let ru_scaled = resource_utilization(&scheme, &trace_for_table(TableId(0), &scaled), &topo);
        prop_assert!((ru_scaled - ru * scale).abs() <= 1e-6 * (1.0 + ru * scale));
    }

    /// `TS(S,W)` is non-negative, zero on a single-socket machine, and zero
    /// whenever both sub-partitions of every observed pair are placed on the
    /// same socket.
    #[test]
    fn sync_overhead_is_zero_iff_colocated(
        pairs in prop::collection::vec((0usize..40, 0usize..40, 1u64..512), 0..30),
    ) {
        let single = Topology::multisocket(1, 4);
        let multi = Topology::multisocket(4, 1);
        let tables = [
            (TableId(0), KeyDomain::new(0, 1_000)),
            (TableId(1), KeyDomain::new(0, 1_000)),
        ];
        let scheme_single = PartitioningScheme::naive(&tables, &single, 10);
        let scheme_multi = PartitioningScheme::naive(&tables, &multi, 10);
        let mut stats = WorkloadStats::new();
        for &(a, b, bytes) in &pairs {
            stats.record_sync(
                SubPartitionId::new(TableId(0), a),
                SubPartitionId::new(TableId(1), b),
                bytes,
            );
        }
        prop_assert_eq!(sync_overhead(&scheme_single, &stats, &single), 0.0);
        let ts_multi = sync_overhead(&scheme_multi, &stats, &multi);
        prop_assert!(ts_multi >= 0.0);
        // With the naive scheme both tables use the same sub→core mapping,
        // so a pair with equal indices is co-located and contributes zero.
        let all_colocated = pairs.iter().all(|&(a, b, _)| {
            scheme_multi.table(TableId(0)).partition_of_sub(a.min(39))
                == scheme_multi.table(TableId(1)).partition_of_sub(b.min(39))
        });
        if all_colocated {
            prop_assert_eq!(ts_multi, 0.0);
        }
    }

    // ------------------------------------------------------------------
    // Algorithm 1: choose partitioning
    // ------------------------------------------------------------------

    /// Whatever the trace, Algorithm 1 returns a structurally valid scheme
    /// that only uses active cores and covers every sub-partition of every
    /// table exactly once.
    #[test]
    fn choose_partitioning_returns_valid_schemes(
        (sockets, cores) in machine_shape(),
        loads in prop::collection::vec(0.0f64..1_000.0, 2..120),
        fail_last_socket in any::<bool>(),
    ) {
        let mut topo = Topology::multisocket(sockets, cores);
        if fail_last_socket && sockets > 1 {
            topo.fail_socket(SocketId((sockets - 1) as u16));
        }
        let naive = PartitioningScheme::naive(
            &[(TableId(0), KeyDomain::new(0, 10_000))],
            &topo,
            (loads.len() / topo.num_active_cores().max(1)).max(1),
        );
        let stats = trace_for_table(TableId(0), &loads);
        let chosen = choose_partitioning(&naive, &stats, &topo, &SearchConfig::default());
        chosen.check_invariants(&topo).map_err(TestCaseError::fail)?;
        for t in chosen.tables() {
            for p in &t.partitions {
                prop_assert!(topo.is_active(topo.socket_of(p.core)), "partition on failed socket");
            }
        }
    }

    /// On a trace where one core's naive partition would receive all the
    /// load, Algorithm 1 strictly improves the balance over the naive
    /// scheme (this is the situation of the paper's Figure 11 skew
    /// experiment).
    #[test]
    fn choose_partitioning_improves_heavy_skew(
        (sockets, cores) in (2usize..=4, 2usize..=4),
        hot_weight in 100.0f64..10_000.0,
    ) {
        let topo = Topology::multisocket(sockets, cores);
        let n_cores = sockets * cores;
        let sub_per = 10usize;
        let naive = PartitioningScheme::naive(
            &[(TableId(0), KeyDomain::new(0, 10_000))],
            &topo,
            sub_per,
        );
        // All the load on the first core's sub-partitions, spread over its
        // 10 sub-partitions so a finer split can rebalance it.
        let mut loads = vec![0.0; n_cores * sub_per];
        for sub in loads.iter_mut().take(sub_per) {
            *sub = hot_weight;
        }
        let stats = trace_for_table(TableId(0), &loads);
        let ru_naive = resource_utilization(&naive, &stats, &topo);
        let chosen = choose_partitioning(&naive, &stats, &topo, &SearchConfig::default());
        let ru_chosen = resource_utilization(&chosen, &stats, &topo);
        prop_assert!(
            ru_chosen < ru_naive,
            "RU should improve under heavy skew: naive {ru_naive}, chosen {ru_chosen}"
        );
    }

    // ------------------------------------------------------------------
    // Algorithm 2: choose placement
    // ------------------------------------------------------------------

    /// Algorithm 2 never increases the synchronization overhead, and the
    /// scheme it returns keeps exactly the same partition boundaries (it
    /// only reassigns cores).
    #[test]
    fn choose_placement_never_increases_sync_overhead(
        (sockets, cores) in (2usize..=4, 1usize..=3),
        pairs in prop::collection::vec((0usize..40, 0usize..40, 1u64..512), 1..25),
        loads in prop::collection::vec(0.0f64..100.0, 40..=40),
    ) {
        let topo = Topology::multisocket(sockets, cores);
        let tables = [
            (TableId(0), KeyDomain::new(0, 1_000)),
            (TableId(1), KeyDomain::new(0, 1_000)),
        ];
        let n_cores = sockets * cores;
        let scheme = PartitioningScheme::even(&tables, &topo, n_cores, (40 / n_cores).max(1));
        let mut stats = trace_for_table(TableId(0), &loads);
        for &(a, b, bytes) in &pairs {
            stats.record_sync(
                SubPartitionId::new(TableId(0), a.min(39)),
                SubPartitionId::new(TableId(1), b.min(39)),
                bytes,
            );
        }
        let ts_before = sync_overhead(&scheme, &stats, &topo);
        let placed = choose_placement(&scheme, &stats, &topo, &SearchConfig::default());
        let ts_after = sync_overhead(&placed, &stats, &topo);
        prop_assert!(ts_after <= ts_before + 1e-9, "TS got worse: {ts_before} -> {ts_after}");
        placed.check_invariants(&topo).map_err(TestCaseError::fail)?;
        // The placement step only moves partitions between cores; the
        // sub-partition boundaries are untouched.
        for (t_before, t_after) in scheme.tables().iter().zip(placed.tables()) {
            prop_assert_eq!(t_before.partitions.len(), t_after.partitions.len());
            for (p_before, p_after) in t_before.partitions.iter().zip(&t_after.partitions) {
                prop_assert_eq!(p_before.sub_start, p_after.sub_start);
                prop_assert_eq!(p_before.sub_end, p_after.sub_end);
            }
        }
    }

    /// The full two-step search (Algorithm 1 + Algorithm 2) produces valid
    /// schemes that avoid failed sockets — the property behind the paper's
    /// Figure 12 hardware-failure experiment.
    #[test]
    fn choose_scheme_avoids_failed_sockets(
        sockets in 2usize..=4,
        cores in 1usize..=3,
        failed in 0usize..4,
        loads in prop::collection::vec(0.1f64..100.0, 20..80),
    ) {
        let mut topo = Topology::multisocket(sockets, cores);
        let failed_socket = SocketId((failed % sockets) as u16);
        // Keep at least one active socket.
        if sockets > 1 {
            topo.fail_socket(failed_socket);
        }
        let naive = PartitioningScheme::naive(
            &[(TableId(0), KeyDomain::new(0, 10_000))],
            &Topology::multisocket(sockets, cores),
            (loads.len() / (sockets * cores)).max(1),
        );
        let stats = trace_for_table(TableId(0), &loads);
        let chosen = choose_scheme(&naive, &stats, &topo, &SearchConfig::default());
        chosen.check_invariants(&topo).map_err(TestCaseError::fail)?;
        if sockets > 1 {
            for t in chosen.tables() {
                for p in &t.partitions {
                    prop_assert_ne!(topo.socket_of(p.core), failed_socket);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Repartitioning plans
    // ------------------------------------------------------------------

    /// A plan from a scheme to itself is empty; a plan between two different
    /// schemes contains exactly one action per boundary in the symmetric
    /// difference of their boundary sets, and the reverse plan swaps splits
    /// and merges.
    #[test]
    fn repartition_plans_are_minimal_and_reversible(
        (sockets, cores) in (1usize..=4, 1usize..=4),
        parts_a in 1usize..8,
        parts_b in 1usize..8,
    ) {
        let topo = Topology::multisocket(sockets, cores);
        let tables = [(TableId(0), KeyDomain::new(0, 10_000))];
        // Two schemes with different partition counts over the same 40
        // sub-partitions (sub_per chosen so counts divide evenly).
        let scheme_a = PartitioningScheme::even(&tables, &topo, parts_a, 40 / parts_a.max(1) + 1);
        let scheme_b = PartitioningScheme::even(&tables, &topo, parts_b, 40 / parts_b.max(1) + 1);

        let self_plan = plan_repartitioning(&scheme_a, &scheme_a);
        prop_assert!(self_plan.is_empty(), "self plan should be empty");

        let forward = plan_repartitioning(&scheme_a, &scheme_b);
        let backward = plan_repartitioning(&scheme_b, &scheme_a);
        prop_assert_eq!(forward.actions.len(), backward.actions.len());
        prop_assert_eq!(forward.num_splits(), backward.num_merges());
        prop_assert_eq!(forward.num_merges(), backward.num_splits());
        // The plan size is bounded by the total number of distinct
        // boundaries of both schemes.
        let max_boundaries = scheme_a.table(TableId(0)).boundary_keys().len()
            + scheme_b.table(TableId(0)).boundary_keys().len();
        prop_assert!(forward.actions.len() <= max_boundaries);
    }

    // ------------------------------------------------------------------
    // Adaptive monitoring interval
    // ------------------------------------------------------------------

    /// The adaptive monitoring interval always stays within `[min, max]`,
    /// grows only when the throughput is stable, and never changes on an
    /// `Evaluate` decision (the reset to the minimum happens only when the
    /// controller actually repartitions, via `reset()` — paper §V-D).
    #[test]
    fn adaptive_interval_stays_in_bounds(
        throughputs in prop::collection::vec(0.0f64..100_000.0, 1..200),
        min_secs in 0.5f64..2.0,
        factor in 2.0f64..8.0,
    ) {
        let max_secs = min_secs * factor;
        let mut interval = AdaptiveInterval::new(min_secs, max_secs, 0.10);
        let mut prev = interval.current_secs();
        prop_assert!((prev - min_secs).abs() < 1e-9);
        for tput in throughputs {
            let decision = interval.observe(tput);
            let cur = interval.current_secs();
            prop_assert!(cur >= min_secs - 1e-9, "below min: {cur} < {min_secs}");
            prop_assert!(cur <= max_secs + 1e-9, "above max: {cur} > {max_secs}");
            match decision {
                IntervalDecision::Evaluate => {
                    // The interval is left for the controller to reset.
                    prop_assert!((cur - prev).abs() < 1e-9);
                }
                IntervalDecision::Stable => {
                    // A stable observation never shrinks the interval.
                    prop_assert!(cur >= prev - 1e-9);
                }
            }
            prev = cur;
        }
        interval.reset();
        prop_assert!((interval.current_secs() - min_secs).abs() < 1e-9);
    }

    /// Workload statistics merge is additive: merging two traces gives the
    /// sum of their loads, sync bytes, and transaction counts.
    #[test]
    fn workload_stats_merge_is_additive(
        loads_a in prop::collection::vec(0.0f64..100.0, 1..30),
        loads_b in prop::collection::vec(0.0f64..100.0, 1..30),
        syncs in prop::collection::vec((0usize..10, 0usize..10, 1u64..256), 0..20),
    ) {
        let mut a = trace_for_table(TableId(0), &loads_a);
        let mut b = trace_for_table(TableId(0), &loads_b);
        for &(x, y, bytes) in &syncs {
            b.record_sync(
                SubPartitionId::new(TableId(0), x),
                SubPartitionId::new(TableId(1), y),
                bytes,
            );
        }
        a.record_transaction();
        b.record_transaction();
        let total_before = a.total_load() + b.total_load();
        let sync_bytes_b: u64 = b.sync_pairs().map(|(_, o)| o.total_bytes).sum();
        a.merge(&b);
        prop_assert!((a.total_load() - total_before).abs() < 1e-6);
        prop_assert_eq!(a.transactions, 2);
        let sync_bytes_a: u64 = a.sync_pairs().map(|(_, o)| o.total_bytes).sum();
        prop_assert_eq!(sync_bytes_a, sync_bytes_b);
        a.clear();
        prop_assert_eq!(a.total_load(), 0.0);
        prop_assert_eq!(a.num_sync_pairs(), 0);
    }
}

// ----------------------------------------------------------------------
// Shared-nothing sharding advisor (§VII future-work extension)
// ----------------------------------------------------------------------

use atrapos_core::{advise_sharding, evaluate_sharding, ShardingConfig, ShardingPlan};

proptest! {
    /// Range sharding plans are always structurally valid, spread the
    /// sub-partitions evenly (no instance holds more than one sub-partition
    /// above any other), and route every key to a valid instance.
    #[test]
    fn range_sharding_plans_are_valid_and_balanced(
        n_sub in 1usize..64,
        n_instances in 1usize..9,
        n_machines in 1usize..5,
        width in 10i64..1_000_000,
        key in 0i64..1_000_000,
    ) {
        let tables = [(TableId(0), KeyDomain::new(0, width)), (TableId(1), KeyDomain::new(0, width))];
        let plan = ShardingPlan::range(&tables, n_sub, n_instances, n_machines);
        plan.check_invariants().map_err(TestCaseError::fail)?;
        let counts = plan.sub_partitions_per_instance();
        prop_assert_eq!(counts.iter().sum::<usize>(), 2 * n_sub);
        let max = counts.iter().copied().max().unwrap_or(0);
        let min = counts.iter().copied().min().unwrap_or(0);
        prop_assert!(max - min <= 2, "unbalanced range sharding: {counts:?}");
        let instance = plan.instance_of_key(TableId(0), key.min(width - 1));
        prop_assert!(instance < n_instances);
        prop_assert!(plan.machine_of_key(TableId(0), key.min(width - 1)) < n_machines);
    }

    /// Whatever the trace, the advisor returns a valid plan whose combined
    /// cost is never worse than the range sharding it starts from, and a
    /// single-instance deployment never has distributed transactions.
    #[test]
    fn advisor_never_degrades_the_starting_plan(
        n_sub in 2usize..32,
        n_instances in 1usize..6,
        loads in prop::collection::vec(0.0f64..500.0, 2..64),
        syncs in prop::collection::vec((0usize..32, 0usize..32, 1u64..64), 0..40),
    ) {
        let tables = [(TableId(0), KeyDomain::new(0, 10_000)), (TableId(1), KeyDomain::new(0, 10_000))];
        let mut stats = WorkloadStats::new();
        stats.declare_table(TableId(0), n_sub);
        stats.declare_table(TableId(1), n_sub);
        for (i, &l) in loads.iter().enumerate() {
            stats.record_action(SubPartitionId::new(TableId(i as u32 % 2), i % n_sub), l);
        }
        for &(a, b, count) in &syncs {
            for _ in 0..count.min(4) {
                stats.record_sync(
                    SubPartitionId::new(TableId(0), a % n_sub),
                    SubPartitionId::new(TableId(1), b % n_sub),
                    64,
                );
            }
        }
        let cfg = ShardingConfig::default();
        let range = ShardingPlan::range(&tables, n_sub, n_instances, n_instances);
        let advised = advise_sharding(&tables, n_sub, n_instances, n_instances, &stats, &cfg);
        advised.check_invariants().map_err(TestCaseError::fail)?;
        let before = evaluate_sharding(&range, &stats).combined(&cfg);
        let after = evaluate_sharding(&advised, &stats).combined(&cfg);
        prop_assert!(after <= before + 1e-9, "advisor made things worse: {before} -> {after}");
        if n_instances == 1 {
            prop_assert_eq!(evaluate_sharding(&advised, &stats).total_distributed(), 0.0);
        }
    }
}

// ---------------------------------------------------------------------
// The Zipfian / drifting key samplers (statistical sanity)
// ---------------------------------------------------------------------

mod sampler {
    use atrapos_core::KeyDistribution;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Empirical per-key frequencies of `draws` samples.
    fn frequencies(d: KeyDistribution, lo: i64, hi: i64, seed: u64, draws: usize) -> Vec<f64> {
        let mut sampler = d.sampler(lo, hi);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut counts = vec![0u64; (hi - lo) as usize];
        for _ in 0..draws {
            let k = sampler.sample(&mut rng);
            assert!((lo..hi).contains(&k), "sample {k} outside [{lo}, {hi})");
            counts[(k - lo) as usize] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// A fixed seed fixes the sample stream exactly, for every
        /// distribution shape and domain.
        #[test]
        fn sampler_is_deterministic_for_a_fixed_seed(
            seed in 0u64..1_000,
            theta in 0.0f64..1.2,
            lo in -500i64..500,
            width in 2i64..3_000,
        ) {
            for d in [
                KeyDistribution::Zipfian { theta },
                KeyDistribution::Drift {
                    data_fraction: 0.2,
                    access_fraction: 0.8,
                    period_txns: 1_000,
                },
            ] {
                let mut a = d.sampler(lo, lo + width);
                let mut b = d.sampler(lo, lo + width);
                let mut rng_a = SmallRng::seed_from_u64(seed);
                let mut rng_b = SmallRng::seed_from_u64(seed);
                for _ in 0..200 {
                    prop_assert_eq!(a.sample(&mut rng_a), b.sample(&mut rng_b));
                }
            }
        }

        /// Zipfian rank frequencies decrease with rank (checked on decile
        /// buckets, so statistical noise cannot flip the order).
        #[test]
        fn zipfian_rank_frequency_is_monotone(
            seed in 0u64..1_000,
            theta in 0.6f64..1.1,
        ) {
            let freq = frequencies(
                KeyDistribution::Zipfian { theta }, 0, 100, seed, 60_000,
            );
            let decile = |i: usize| freq[i * 10..(i + 1) * 10].iter().sum::<f64>();
            for i in 0..9 {
                prop_assert!(
                    decile(i) > decile(i + 1),
                    "decile {i} ({}) not hotter than decile {} ({}) at theta {theta}",
                    decile(i), i + 1, decile(i + 1)
                );
            }
        }

        /// At theta = 0 the Zipfian degenerates to uniform: every key's
        /// empirical frequency sits near 1/n.
        #[test]
        fn zipfian_theta_zero_is_uniform(seed in 0u64..1_000) {
            let n = 100usize;
            let freq = frequencies(
                KeyDistribution::Zipfian { theta: 0.0 }, 0, n as i64, seed, 50_000,
            );
            let expect = 1.0 / n as f64;
            for (k, f) in freq.iter().enumerate() {
                // ~9 binomial standard deviations — effectively never
                // trips on a correct sampler.
                prop_assert!(
                    (f - expect).abs() < 0.004,
                    "key {k} frequency {f} far from uniform {expect}"
                );
            }
        }

        /// Higher theta concentrates strictly more mass on the hottest
        /// decile of the domain.
        #[test]
        fn higher_theta_is_strictly_more_concentrated(
            seed in 0u64..1_000,
            theta_lo in 0.0f64..0.4,
            gap in 0.4f64..0.8,
        ) {
            let theta_hi = theta_lo + gap;
            let head_mass = |theta: f64| {
                frequencies(KeyDistribution::Zipfian { theta }, 0, 200, seed, 40_000)[..20]
                    .iter()
                    .sum::<f64>()
            };
            let lo_mass = head_mass(theta_lo);
            let hi_mass = head_mass(theta_hi);
            prop_assert!(
                hi_mass > lo_mass + 0.02,
                "theta {theta_hi} head mass {hi_mass} not above theta {theta_lo}'s {lo_mass}"
            );
        }
    }
}
