//! A minimal Rust *surface* lexer: classify every byte of a source file as
//! code, comment, or literal, without parsing.
//!
//! The scanner in [`crate::scan`] only needs two views of a file:
//!
//! * the **blanked code** — the original text with every comment and every
//!   string/char literal body replaced by spaces (newlines preserved), so
//!   that token searches, brace matching, and generic-argument counting
//!   can run on plain bytes without being fooled by `"HashMap::new"` in a
//!   string or `// Instant::now` in a comment;
//! * the **line comments** — position + text of every `//` comment, which
//!   is where lint directives (`// lint: hot-path`, `// lint: allow(..)`)
//!   live.  Block comments and doc comments are blanked but not reported:
//!   directives must be line comments, so prose *about* a directive in a
//!   doc comment never acts as one.
//!
//! Handled literal forms: `"…"` with escapes, `r"…"`/`r#"…"#` raw strings
//! (any hash depth), byte strings `b"…"`/`br#"…"#`, char and byte-char
//! literals with escapes, lifetimes (`'a` is *not* a char literal), raw
//! identifiers (`r#match`), and nested block comments.

/// One `//` line comment.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Byte offset of the leading `/`.
    pub start: usize,
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Text after the `//`, untrimmed (doc-comment sigils `/`/`!` kept, so
    /// callers can tell `///` and `//!` apart from plain comments).
    pub text: String,
}

/// The two views of a lexed source file (see the module docs).
#[derive(Debug)]
pub struct Lexed {
    /// The source with comments and literal bodies blanked to spaces.
    pub code: String,
    /// Every `//` comment, in file order.
    pub comments: Vec<Comment>,
    /// Byte offset at which each line starts (`line_starts[0] == 0`).
    line_starts: Vec<usize>,
}

impl Lexed {
    /// 1-based line number of byte offset `pos`.
    pub fn line_of(&self, pos: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= pos)
    }

    /// The blanked text of 1-based line `line` (without the newline), or
    /// `""` past the end of the file.
    pub fn code_line(&self, line: usize) -> &str {
        let Some(&start) = self.line_starts.get(line - 1) else {
            return "";
        };
        let end = self
            .line_starts
            .get(line)
            .map(|&e| e - 1)
            .unwrap_or(self.code.len());
        &self.code[start..end.max(start)]
    }
}

/// Is `b` part of an identifier?
pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lex `src` into its blanked-code + comment views.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let n = b.len();
    let mut code: Vec<u8> = b.to_vec();
    let mut comments = Vec::new();
    let mut line_starts = vec![0usize];
    for (i, &c) in b.iter().enumerate() {
        if c == b'\n' {
            line_starts.push(i + 1);
        }
    }
    let line_of = |pos: usize| line_starts.partition_point(|&s| s <= pos);

    // Blank `lo..hi`, preserving newlines so line numbers survive.
    let blank = |code: &mut Vec<u8>, lo: usize, hi: usize| {
        for slot in code[lo..hi].iter_mut() {
            if *slot != b'\n' {
                *slot = b' ';
            }
        }
    };

    let mut i = 0usize;
    while i < n {
        let at_ident_boundary = i == 0 || !is_ident_byte(b[i - 1]);
        match b[i] {
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                let start = i;
                let mut j = i + 2;
                while j < n && b[j] != b'\n' {
                    j += 1;
                }
                comments.push(Comment {
                    start,
                    line: line_of(start),
                    text: src[start + 2..j].to_string(),
                });
                blank(&mut code, start, j);
                i = j;
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                // Block comments nest in Rust.
                let start = i;
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if j + 1 < n && b[j] == b'/' && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if j + 1 < n && b[j] == b'*' && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut code, start, j);
                i = j;
            }
            b'"' => {
                i = skip_string(b, i, /* raw_hashes */ None, &mut code, &blank);
            }
            b'r' | b'b' if at_ident_boundary => {
                // Possible literal prefix: r", r#", b", br", b', r#ident.
                if let Some((body_start, hashes)) = raw_string_start(b, i) {
                    i = skip_string(b, body_start, Some(hashes), &mut code, &blank);
                } else if b[i] == b'b' && i + 1 < n && b[i + 1] == b'"' {
                    i = skip_string(b, i + 1, None, &mut code, &blank);
                } else if b[i] == b'b' && i + 1 < n && b[i + 1] == b'\'' {
                    i = skip_char(b, i + 1, &mut code, &blank);
                } else if b[i] == b'r' && i + 1 < n && b[i + 1] == b'#' {
                    // Raw identifier `r#match`: skip the sigil so the `#`
                    // is never mistaken for anything else.
                    i += 2;
                } else {
                    i += 1;
                }
            }
            b'\'' => {
                i = skip_char(b, i, &mut code, &blank);
            }
            _ => i += 1,
        }
    }

    Lexed {
        code: String::from_utf8(code).expect("blanking only rewrites ASCII bytes"),
        comments,
        line_starts,
    }
}

/// If `b[i..]` starts a raw (byte) string `r"`/`r#"`/`br##"`, return the
/// offset of its opening quote and the hash count.
fn raw_string_start(b: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != b'r' {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    (j < b.len() && b[j] == b'"').then_some((j, hashes))
}

/// Skip (and blank) a string literal whose opening quote is at `i`.
/// `raw_hashes` is `Some(h)` for raw strings (no escapes, closed by
/// `"` + `h` hashes).  Returns the offset just past the literal.
fn skip_string(
    b: &[u8],
    i: usize,
    raw_hashes: Option<usize>,
    code: &mut Vec<u8>,
    blank: &dyn Fn(&mut Vec<u8>, usize, usize),
) -> usize {
    let n = b.len();
    let mut j = i + 1;
    match raw_hashes {
        Some(h) => {
            while j < n {
                if b[j] == b'"' && b[j + 1..].iter().take(h).filter(|&&c| c == b'#').count() == h {
                    j += 1 + h;
                    break;
                }
                j += 1;
            }
        }
        None => {
            while j < n {
                match b[j] {
                    b'\\' => j += 2,
                    b'"' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
        }
    }
    let j = j.min(n);
    blank(code, i, j);
    j
}

/// Skip a `'`-introduced token at `i`: a char literal (blanked) or a
/// lifetime (left in the code).  Returns the offset to resume at.
fn skip_char(
    b: &[u8],
    i: usize,
    code: &mut Vec<u8>,
    blank: &dyn Fn(&mut Vec<u8>, usize, usize),
) -> usize {
    let n = b.len();
    // `'\...'` is always a char literal.
    if i + 1 < n && b[i + 1] == b'\\' {
        let mut j = i + 2;
        while j < n && b[j] != b'\'' {
            j += 1;
        }
        let j = (j + 1).min(n);
        blank(code, i, j);
        return j;
    }
    // `'x'` (any single char, possibly multi-byte) is a char literal;
    // `'a` followed by anything else is a lifetime (or a loop label).
    if i + 1 < n {
        let ch_len = utf8_len(b[i + 1]);
        let close = i + 1 + ch_len;
        if close < n && b[close] == b'\'' {
            // A lifetime can still look like `'a'` in `x: &'a 'b`? No —
            // but `'a'` where `a` could be a lifetime only arises as a
            // char literal in real token streams.
            blank(code, i, close + 1);
            return close + 1;
        }
    }
    i + 1
}

/// Length in bytes of the UTF-8 sequence starting with `first`.
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let a = \"HashMap::new\"; // Instant::now\nlet b = 1;";
        let l = lex(src);
        assert!(!l.code.contains("HashMap"));
        assert!(!l.code.contains("Instant"));
        assert!(l.code.contains("let a ="));
        assert!(l.code.contains("let b = 1;"));
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].text, " Instant::now");
        assert_eq!(l.comments[0].line, 1);
    }

    #[test]
    fn nested_block_comments_and_raw_strings() {
        let src = "/* a /* b */ c */ let x = r#\"quote \" inside\"#; let y = 2;";
        let l = lex(src);
        assert!(!l.code.contains("inside"));
        assert!(l.code.contains("let x ="));
        assert!(l.code.contains("let y = 2;"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { let c = '{'; let d = '\\''; c }";
        let l = lex(src);
        // The brace inside the char literal must be blanked, the lifetime
        // must survive untouched.
        assert!(l.code.contains("<'a>"));
        assert!(l.code.contains("&'a str"));
        assert_eq!(l.code.matches('{').count(), 1);
        assert_eq!(l.code.matches('}').count(), 1);
    }

    #[test]
    fn byte_strings_and_raw_identifiers() {
        let src = "let a = b\"bytes{\"; let b = br#\"raw{\"#; let r#match = b'{';";
        let l = lex(src);
        assert!(!l.code.contains('{'));
        assert!(l.code.contains("r#match") || l.code.contains("match"));
    }

    #[test]
    fn line_numbers_are_one_based() {
        let src = "a\nb\nc // hi\nd";
        let l = lex(src);
        assert_eq!(l.comments[0].line, 3);
        assert_eq!(l.line_of(0), 1);
        assert_eq!(l.line_of(2), 2);
        assert_eq!(l.code_line(4), "d");
    }

    #[test]
    fn multiline_strings_preserve_line_structure() {
        let src = "let s = \"first\nsecond\";\nlet t = 3;";
        let l = lex(src);
        assert_eq!(l.line_of(l.code.find("let t").unwrap()), 3);
        assert!(!l.code.contains("second"));
    }
}
