//! The rule set: names, summaries, and scopes.
//!
//! Rules come in two families.  **Determinism rules** guard the
//! sim-visible crates — the crates whose code runs between a seed and a
//! committed count, where any nondeterminism (hash-order iteration, wall
//! clock, ambient entropy) silently breaks the bit-identical-replay
//! contract.  **Hygiene rules** guard explicitly annotated regions:
//! `hot-path-alloc` fires only inside `// lint: hot-path` blocks, pinning
//! the allocation-free per-transaction paths so they cannot regress.
//!
//! Every rule can be waived per line with
//! `// lint: allow(<rule>) — <reason>`; the reason is mandatory and a
//! malformed waiver is itself a finding (rule [`LINT_DIRECTIVE`]).

/// Std `HashMap`/`HashSet` with the default (randomly seeded) hasher in a
/// sim-visible crate.
pub const STD_HASH: &str = "std-hash";
/// `Instant::now`/`SystemTime::now` in a sim-visible crate.
pub const WALL_CLOCK: &str = "wall-clock";
/// Entropy-seeded randomness (`thread_rng`, `from_entropy`, `OsRng`) in a
/// sim-visible crate.
pub const UNSEEDED_RNG: &str = "unseeded-rng";
/// Allocation-shaped call inside a `// lint: hot-path` region.
pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";
/// Malformed `// lint:` directive (unknown rule, missing waiver reason,
/// marker with no block).
pub const LINT_DIRECTIVE: &str = "lint-directive";

/// One lint rule, as shown by `atrapos lint --list-rules`.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// The rule's name (the `--only` / `allow(..)` key).
    pub name: &'static str,
    /// One-line description of what the rule flags.
    pub summary: &'static str,
    /// Where the rule applies.
    pub scope: &'static str,
}

/// The crate directories whose `src/` trees are sim-visible: code here
/// executes between the seed and the committed counts, so hash-order,
/// wall-clock, and entropy nondeterminism all corrupt reproducibility.
pub const SIM_CRATES: &[&str] = &["core", "engine", "storage", "numa", "workloads"];

/// All rules, in reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        name: STD_HASH,
        summary: "std HashMap/HashSet built with the default randomly seeded hasher \
                  (HashMap::new, with_capacity, or a type without a hasher parameter); \
                  use BTreeMap/BTreeSet or a deterministic-hasher build like FxBuild",
        scope: "sim-visible crate src/ trees (crates/{core,engine,storage,numa,workloads}/src)",
    },
    Rule {
        name: WALL_CLOCK,
        summary: "Instant::now or SystemTime::now — wall clock reads inside the simulation; \
                  time must come from the virtual clock, or the call belongs in the bench \
                  harness",
        scope: "sim-visible crate src/ trees",
    },
    Rule {
        name: UNSEEDED_RNG,
        summary: "thread_rng/from_entropy/OsRng — ambient-entropy randomness; all simulated \
                  randomness must flow from the seeded executor RNG",
        scope: "sim-visible crate src/ trees",
    },
    Rule {
        name: HOT_PATH_ALLOC,
        summary: "allocation-shaped call (Vec::new, vec!, Box::new, String::from, format!, \
                  .clone(), .to_vec(), .to_string(), .to_owned(), with_capacity, .collect()) \
                  inside a `// lint: hot-path` region",
        scope: "blocks annotated `// lint: hot-path`, any crate",
    },
    Rule {
        name: LINT_DIRECTIVE,
        summary: "malformed `// lint:` directive: unknown directive or rule name, waiver \
                  without a reason, or a hot-path marker with no following block",
        scope: "everywhere",
    },
];

/// Look a rule up by name.
pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

/// Is `rel_path` (workspace-relative, `/`-separated) inside a sim-visible
/// crate's `src/` tree?  Test and bench trees of those crates are harness
/// side and deliberately out of scope.
pub fn sim_visible(rel_path: &str) -> bool {
    SIM_CRATES.iter().any(|c| {
        rel_path
            .strip_prefix("crates/")
            .and_then(|p| p.strip_prefix(c))
            .map(|p| p.starts_with("/src/"))
            .unwrap_or(false)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_visibility_is_src_only() {
        assert!(sim_visible("crates/engine/src/executor.rs"));
        assert!(sim_visible("crates/workloads/src/tpcc.rs"));
        assert!(!sim_visible("crates/engine/tests/proptests.rs"));
        assert!(!sim_visible("crates/bench/src/wallclock.rs"));
        assert!(!sim_visible("crates/lint/src/scan.rs"));
        assert!(!sim_visible("shims/rand/src/lib.rs"));
        // A crate whose name merely starts with a sim crate's name.
        assert!(!sim_visible("crates/engine2/src/lib.rs"));
    }

    #[test]
    fn every_rule_resolves_by_name() {
        for r in RULES {
            assert_eq!(rule_by_name(r.name).unwrap().name, r.name);
        }
        assert!(rule_by_name("no-such-rule").is_none());
    }
}
