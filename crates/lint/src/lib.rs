//! Determinism & hot-path hygiene static analysis for the atrapos workspace.
//!
//! The headline guarantee of this repo — bit-identical simulation across
//! hosts, thread counts, and replays — has been broken more than once by
//! std `HashMap` iteration-order nondeterminism.  This crate encodes that
//! lesson as a machine-checked pass: a dependency-free, comment- and
//! string-literal-aware scanner (a small hand-rolled lexer, no `syn`)
//! that walks every `.rs` file in the workspace and enforces the rule set
//! in [`rules`].  Run it as `atrapos lint`; findings print as
//! `file:line: rule — message` and any finding makes the exit nonzero.
//!
//! See [`rules`] for the rule list and [`scan`] for directive/waiver
//! syntax.

#![warn(missing_docs)]

pub mod lexer;
pub mod rules;
pub mod scan;

pub use rules::{rule_by_name, Rule, RULES, SIM_CRATES};
pub use scan::{scan_source, Finding};

use std::path::{Path, PathBuf};

/// Directories never descended into during the workspace walk.
const SKIP_DIRS: &[&str] = &["target", ".git", "node_modules"];

/// Lint every `.rs` file under `root` (the workspace root).  `only`
/// restricts reporting to the named rules (empty slice = all rules).
///
/// Files are visited in sorted path order so output is deterministic —
/// the lint holds itself to the standard it enforces.
pub fn lint_workspace(root: &Path, only: &[String]) -> Result<Vec<Finding>, String> {
    for o in only {
        if rule_by_name(o).is_none() {
            return Err(format!(
                "unknown rule `{o}` for --only; see `atrapos lint --list-rules`"
            ));
        }
    }
    let mut files = Vec::new();
    collect_rust_files(root, &mut files)?;
    files.sort();

    let mut findings = Vec::new();
    for path in &files {
        let rel = rel_path(root, path);
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("failed to read {}: {e}", path.display()))?;
        findings.extend(scan_source(&rel, &src));
    }
    if !only.is_empty() {
        findings.retain(|f| only.iter().any(|o| o == f.rule));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

/// `path` relative to `root`, `/`-separated regardless of platform.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Recursively gather `.rs` files, skipping build output, VCS metadata,
/// and hidden directories.
fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("failed to read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("failed to read entry in {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let ty = entry
            .file_type()
            .map_err(|e| format!("failed to stat {}: {e}", path.display()))?;
        if ty.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rust_files(&path, out)?;
        } else if ty.is_file() && name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
