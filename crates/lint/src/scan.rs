//! The per-file scanner: directives, regions, token rules, waivers.
//!
//! Scanning is pure (`&str` in, findings out), so fixture tests can feed
//! synthetic files under any workspace-relative path and assert exact
//! `file:line: rule` output without touching the filesystem.

use crate::lexer::{is_ident_byte, lex, Lexed};
use crate::rules::{
    rule_by_name, sim_visible, HOT_PATH_ALLOC, LINT_DIRECTIVE, STD_HASH, UNSEEDED_RNG, WALL_CLOCK,
};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (`/`-separated).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule name (see [`crate::rules::RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {} — {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A parsed, well-formed waiver.
struct Waiver {
    rule: &'static str,
    line: usize,
    /// Standalone waivers (comment-only line) cover the *next* line;
    /// trailing waivers cover their own line.
    standalone: bool,
}

impl Waiver {
    fn covers(&self, line: usize) -> bool {
        line == self.line || (self.standalone && line == self.line + 1)
    }
}

/// Scan one source file.  `rel_path` decides rule scope (sim-visible or
/// not); the hot-path and directive rules apply everywhere.
pub fn scan_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let lexed = lex(src);
    let mut findings = Vec::new();
    let mut waivers = Vec::new();
    let mut hot_regions: Vec<(usize, usize)> = Vec::new();

    parse_directives(
        rel_path,
        &lexed,
        &mut findings,
        &mut waivers,
        &mut hot_regions,
    );
    let test_ranges = cfg_test_ranges(&lexed.code);
    let in_test = |pos: usize| test_ranges.iter().any(|&(lo, hi)| pos >= lo && pos < hi);
    let in_hot = |pos: usize| hot_regions.iter().any(|&(lo, hi)| pos > lo && pos < hi);

    let code = lexed.code.as_bytes();
    let determinism = sim_visible(rel_path);
    let mut i = 0usize;
    while i < code.len() {
        if !is_ident_byte(code[i]) || (i > 0 && is_ident_byte(code[i - 1])) {
            i += 1;
            continue;
        }
        let start = i;
        while i < code.len() && is_ident_byte(code[i]) {
            i += 1;
        }
        let ident = &lexed.code[start..i];
        let line = lexed.line_of(start);
        let mut push = |rule: &'static str, message: String| {
            findings.push(Finding {
                file: rel_path.to_string(),
                line,
                rule,
                message,
            });
        };

        if determinism && !in_test(start) {
            match ident {
                "HashMap" | "HashSet" => {
                    if let Some(msg) = std_hash_finding(&lexed.code, i, ident) {
                        push(STD_HASH, msg);
                    }
                }
                "Instant" | "SystemTime" if path_segment_after(&lexed.code, i) == Some("now") => {
                    push(
                        WALL_CLOCK,
                        format!(
                            "`{ident}::now` reads the wall clock inside a sim-visible \
                             crate; simulated quantities must come from the virtual \
                             clock, and harness timing belongs in `crates/bench`"
                        ),
                    );
                }
                "thread_rng" | "from_entropy" | "OsRng" => {
                    push(
                        UNSEEDED_RNG,
                        format!(
                            "`{ident}` draws ambient entropy inside a sim-visible crate; \
                             all simulated randomness must flow from the seeded executor RNG"
                        ),
                    );
                }
                _ => {}
            }
        }

        if in_hot(start) {
            if let Some(what) = hot_alloc_finding(&lexed.code, start, i, ident) {
                push(
                    HOT_PATH_ALLOC,
                    format!("`{what}` allocates inside a `// lint: hot-path` region"),
                );
            }
        }
    }

    findings.retain(|f| !waivers.iter().any(|w| w.rule == f.rule && w.covers(f.line)));
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Parse every `// lint:` directive: register waivers and hot-path
/// regions, and report malformed directives.
fn parse_directives(
    rel_path: &str,
    lexed: &Lexed,
    findings: &mut Vec<Finding>,
    waivers: &mut Vec<Waiver>,
    hot_regions: &mut Vec<(usize, usize)>,
) {
    for c in &lexed.comments {
        // Doc comments (`///`, `//!`) are prose — a directive spelled
        // there is documentation, not configuration.
        if c.text.starts_with('/') || c.text.starts_with('!') {
            continue;
        }
        let Some(directive) = c.text.trim().strip_prefix("lint:") else {
            continue;
        };
        let directive = directive.trim();
        let mut bad = |message: String| {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: c.line,
                rule: LINT_DIRECTIVE,
                message,
            });
        };
        if directive == "hot-path" {
            match brace_block_after(&lexed.code, c.start) {
                Some(region) => hot_regions.push(region),
                None => bad(
                    "`lint: hot-path` marker with no following `{ .. }` block to cover".to_string(),
                ),
            }
            continue;
        }
        if let Some(rest) = directive.strip_prefix("allow(") {
            let Some(close) = rest.find(')') else {
                bad("unclosed `lint: allow(` directive".to_string());
                continue;
            };
            let rule_name = rest[..close].trim();
            let Some(rule) = rule_by_name(rule_name) else {
                bad(format!(
                    "waiver names unknown rule `{rule_name}` (see `atrapos lint --list-rules`)"
                ));
                continue;
            };
            // The reason is mandatory: strip separator punctuation and
            // demand something is left.
            let reason = rest[close + 1..]
                .trim_start_matches(|ch: char| {
                    ch.is_whitespace() || matches!(ch, '—' | '–' | '-' | ':')
                })
                .trim();
            if reason.is_empty() {
                bad(format!(
                    "waiver for `{rule_name}` has no reason; write \
                     `// lint: allow({rule_name}) — <why this is sound>`"
                ));
                continue;
            }
            waivers.push(Waiver {
                rule: rule.name,
                line: c.line,
                standalone: lexed.code_line(c.line).trim().is_empty(),
            });
            continue;
        }
        bad(format!(
            "unknown lint directive `{directive}`; known: `hot-path`, `allow(<rule>) — <reason>`"
        ));
    }
}

/// The `{ .. }` block following byte `from` in blanked code, as
/// `(open, close)` offsets, or `None` if no balanced block follows.
fn brace_block_after(code: &str, from: usize) -> Option<(usize, usize)> {
    let b = code.as_bytes();
    let open = (from..b.len()).find(|&k| b[k] == b'{')?;
    let mut depth = 0usize;
    for (k, &c) in b.iter().enumerate().skip(open) {
        match c {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, k));
                }
            }
            _ => {}
        }
    }
    None
}

/// Byte ranges covered by `#[cfg(test)]` items (the attribute plus the
/// following braced block, or up to the `;` for brace-less items).
/// Determinism rules skip these: test-only code never feeds simulation.
fn cfg_test_ranges(code: &str) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut from = 0usize;
    while let Some(at) = code[from..].find("#[cfg(test)]") {
        let attr_start = from + at;
        let after = attr_start + "#[cfg(test)]".len();
        let b = code.as_bytes();
        let stop = (after..b.len()).find(|&k| b[k] == b'{' || b[k] == b';');
        match stop {
            Some(k) if b[k] == b'{' => match brace_block_after(code, k) {
                Some((_, close)) => ranges.push((attr_start, close + 1)),
                None => ranges.push((attr_start, code.len())),
            },
            Some(k) => ranges.push((attr_start, k + 1)),
            None => ranges.push((attr_start, code.len())),
        }
        from = after;
    }
    ranges
}

/// The next non-whitespace byte at or after `i`.
fn next_nonspace(code: &str, i: usize) -> Option<(usize, u8)> {
    code.as_bytes()[i..]
        .iter()
        .position(|b| !b.is_ascii_whitespace())
        .map(|off| (i + off, code.as_bytes()[i + off]))
}

/// The previous non-whitespace byte before `i`.
fn prev_nonspace(code: &str, i: usize) -> Option<u8> {
    code.as_bytes()[..i]
        .iter()
        .rev()
        .find(|b| !b.is_ascii_whitespace())
        .copied()
}

/// The identifier starting at the next non-whitespace position after a
/// `::`, if the bytes at `i` are `::` followed by an identifier.
fn path_segment_after(code: &str, i: usize) -> Option<&str> {
    let (p1, b1) = next_nonspace(code, i)?;
    if b1 != b':' || code.as_bytes().get(p1 + 1) != Some(&b':') {
        return None;
    }
    let (start, b2) = next_nonspace(code, p1 + 2)?;
    if !is_ident_byte(b2) {
        return None;
    }
    let bytes = code.as_bytes();
    let mut end = start;
    while end < bytes.len() && is_ident_byte(bytes[end]) {
        end += 1;
    }
    Some(&code[start..end])
}

/// Like [`path_segment_after`], but skips one interposed turbofish:
/// `::seg` and `::<T, U>::seg` both yield `seg`.
fn ctor_segment_after(code: &str, i: usize) -> Option<&str> {
    let (p1, b1) = next_nonspace(code, i)?;
    if b1 != b':' || code.as_bytes().get(p1 + 1) != Some(&b':') {
        return None;
    }
    let (p2, b2) = next_nonspace(code, p1 + 2)?;
    if b2 != b'<' {
        return path_segment_after(code, i);
    }
    let after_generics = generic_list_end(code, p2)?;
    path_segment_after(code, after_generics)
}

/// Position just past the `>` closing the `<..>` list opening at `lt`.
fn generic_list_end(code: &str, lt: usize) -> Option<usize> {
    let b = code.as_bytes();
    let mut depth = 1usize;
    for (k, &c) in b.iter().enumerate().skip(lt + 1) {
        match c {
            b'<' => depth += 1,
            b'>' if b[k - 1] == b'-' || b[k - 1] == b'=' => {}
            b'>' => {
                depth -= 1;
                if depth == 0 {
                    return Some(k + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// Decide whether a `HashMap`/`HashSet` identifier ending at `i` is a
/// nondeterministically seeded use.  Flags `::new`/`::with_capacity`
/// (only defined for the std `RandomState` hasher) and generic forms
/// without a hasher parameter; `::default()`, `::with_hasher`, and
/// hasher-parameterized types (e.g. `HashMap<K, V, FxBuild>`) pass.
fn std_hash_finding(code: &str, i: usize, ident: &str) -> Option<String> {
    let needed = if ident == "HashMap" { 3 } else { 2 };
    let (p, b) = next_nonspace(code, i)?;
    if b == b'<' {
        return (count_generic_params(code, p)? < needed).then(|| {
            format!(
                "std `{ident}` without a hasher parameter defaults to the randomly seeded \
                 `RandomState`; use `BTreeMap`/`BTreeSet` or a deterministic hasher build"
            )
        });
    }
    if b == b':' {
        match path_segment_after(code, i) {
            Some(seg) if seg == "new" || seg == "with_capacity" => {
                return Some(format!(
                    "`{ident}::{seg}` builds a std hash collection with the randomly seeded \
                     `RandomState` hasher; use `BTreeMap`/`BTreeSet` or a deterministic \
                     hasher build"
                ));
            }
            // `::default()`, `::with_hasher(..)`, `::from(..)` on an
            // explicitly typed binding: the hasher comes from the type,
            // which is checked where it is written.
            Some(_) => return None,
            None => {
                // Turbofish `HashMap::<K, V>::new()`.
                let (p1, b1) = next_nonspace(code, i)?;
                if b1 == b':' && code.as_bytes().get(p1 + 1) == Some(&b':') {
                    let (p2, b2) = next_nonspace(code, p1 + 2)?;
                    if b2 == b'<' {
                        return (count_generic_params(code, p2)? < needed).then(|| {
                            format!(
                                "turbofish `{ident}` without a hasher parameter defaults to \
                                 the randomly seeded `RandomState`"
                            )
                        });
                    }
                }
            }
        }
    }
    None
}

/// Count top-level generic parameters of the `<..>` list opening at `lt`
/// (`code[lt] == '<'`).  Returns `None` if the list never closes.
fn count_generic_params(code: &str, lt: usize) -> Option<usize> {
    let b = code.as_bytes();
    let mut depth_angle = 1usize;
    let mut depth_other = 0usize;
    let mut params = 1usize;
    let mut saw_content = false;
    let mut k = lt + 1;
    while k < b.len() {
        match b[k] {
            b'<' => depth_angle += 1,
            b'>' if k > 0 && (b[k - 1] == b'-' || b[k - 1] == b'=') => {} // `->` / `=>`
            b'>' => {
                depth_angle -= 1;
                if depth_angle == 0 {
                    return Some(if saw_content { params } else { 0 });
                }
            }
            b'(' | b'[' => depth_other += 1,
            b')' | b']' => depth_other = depth_other.saturating_sub(1),
            b',' if depth_angle == 1 && depth_other == 0 => params += 1,
            b';' if depth_angle == 1 && depth_other == 0 => {
                // A `;` at type depth means this `<` was a comparison in
                // expression context after all; give up.
                return None;
            }
            c if !c.is_ascii_whitespace() => saw_content = true,
            _ => {}
        }
        k += 1;
    }
    None
}

/// Is the identifier `ident` spanning `start..end` an allocation-shaped
/// call?  Returns the display form to report.
fn hot_alloc_finding(code: &str, start: usize, end: usize, ident: &str) -> Option<String> {
    match ident {
        // Method calls: require a receiver dot and a call (or turbofish).
        "clone" | "to_vec" | "to_string" | "to_owned" | "collect" => {
            let dotted = prev_nonspace(code, start) == Some(b'.');
            let called = matches!(next_nonspace(code, end), Some((_, b'(')))
                || path_segment_after(code, end).is_some()
                || matches!(next_nonspace(code, end), Some((p, b':')) if code.as_bytes().get(p + 1) == Some(&b':'));
            (dotted && called).then(|| format!(".{ident}()"))
        }
        // Constructor paths, with or without a turbofish
        // (`Vec::new`, `Vec::<u8>::new`).
        "Vec" | "Box" | "String" => match ctor_segment_after(code, end) {
            Some(seg) if seg == "new" || seg == "from" || seg == "with_capacity" => {
                Some(format!("{ident}::{seg}"))
            }
            _ => None,
        },
        // Allocating macros.
        "vec" | "format" => {
            matches!(next_nonspace(code, end), Some((_, b'!'))).then(|| format!("{ident}!"))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brace_blocks_and_test_ranges() {
        let code = "fn a() { { } }\n#[cfg(test)]\nmod tests { fn x() {} }\nfn b() {}";
        let (open, close) = brace_block_after(code, 0).unwrap();
        assert_eq!(&code[open..=close], "{ { } }");
        let ranges = cfg_test_ranges(code);
        assert_eq!(ranges.len(), 1);
        assert!(code[ranges[0].0..ranges[0].1].contains("mod tests"));
        assert!(!code[ranges[0].0..ranges[0].1].contains("fn b"));
    }

    #[test]
    fn generic_param_counting() {
        let probe = |s: &str| {
            let lt = s.find('<').unwrap();
            count_generic_params(s, lt)
        };
        assert_eq!(probe("<K, V>"), Some(2));
        assert_eq!(probe("<(i64, i64), i64>"), Some(2));
        assert_eq!(probe("<K, V, FxBuild>"), Some(3));
        assert_eq!(probe("<Vec<(u8, u8)>, BTreeMap<K, V>>"), Some(2));
        assert_eq!(probe("<&'a str, fn(A, B) -> C>"), Some(2));
        assert_eq!(probe("<K, V"), None);
    }
}
