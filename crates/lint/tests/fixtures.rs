//! Fixture tests: known-bad snippets must flag the right rule at the
//! right line, waivers must suppress (with a mandatory reason), and the
//! scanner must see through comments, strings, and `#[cfg(test)]`.

use atrapos_lint::scan_source;

const SIM: &str = "crates/engine/src/fixture.rs";
const HARNESS: &str = "crates/bench/src/fixture.rs";

/// `(line, rule)` pairs of every finding.
fn hits(path: &str, src: &str) -> Vec<(usize, String)> {
    scan_source(path, src)
        .into_iter()
        .map(|f| (f.line, f.rule.to_string()))
        .collect()
}

#[test]
fn std_hash_constructors_flag_at_the_right_line() {
    let src = "use std::collections::HashMap;\n\
               fn f() {\n\
               \x20   let a = HashMap::new();\n\
               \x20   let b = HashMap::with_capacity(8);\n\
               \x20   let c: HashSet<u32> = HashSet::default();\n\
               }\n";
    let got = hits(SIM, src);
    assert!(got.contains(&(3, "std-hash".into())), "{got:?}");
    assert!(got.contains(&(4, "std-hash".into())), "{got:?}");
    // Line 5: the 1-param HashSet *type* flags; `::default()` itself does
    // not (the hasher comes from the type annotation).
    assert!(got.contains(&(5, "std-hash".into())), "{got:?}");
}

#[test]
fn hasher_parameterized_and_default_forms_pass() {
    let src = "type FxMap<K, V> = HashMap<K, V, FxBuild>;\n\
               fn f(m: &HashMap<u32, u32, FxBuild>) -> FxMap<u8, u8> {\n\
               \x20   let _ = m;\n\
               \x20   FxMap::default()\n\
               }\n";
    assert_eq!(hits(SIM, src), vec![]);
}

#[test]
fn short_generic_types_flag_and_turbofish_flags() {
    let src = "fn f() -> HashMap<(i64, i64), i64> {\n\
               \x20   HashMap::<(i64, i64), i64>::new()\n\
               }\n";
    let got = hits(SIM, src);
    assert!(got.contains(&(1, "std-hash".into())), "{got:?}");
    assert!(got.contains(&(2, "std-hash".into())), "{got:?}");
}

#[test]
fn wall_clock_and_rng_flag() {
    let src = "fn f() {\n\
               \x20   let t = std::time::Instant::now();\n\
               \x20   let s = SystemTime::now();\n\
               \x20   let mut r = rand::thread_rng();\n\
               \x20   let q = SmallRng::from_entropy();\n\
               }\n";
    let got = hits(SIM, src);
    assert!(got.contains(&(2, "wall-clock".into())), "{got:?}");
    assert!(got.contains(&(3, "wall-clock".into())), "{got:?}");
    assert!(got.contains(&(4, "unseeded-rng".into())), "{got:?}");
    assert!(got.contains(&(5, "unseeded-rng".into())), "{got:?}");
}

#[test]
fn determinism_rules_only_apply_to_sim_crates() {
    let src = "fn f() { let m = HashMap::new(); let t = Instant::now(); }\n";
    assert_eq!(hits(HARNESS, src), vec![]);
    assert_eq!(hits("crates/lint/src/fixture.rs", src), vec![]);
    // But the src/ tree of a sim crate flags both.
    assert_eq!(hits(SIM, src).len(), 2);
    // Test trees of sim crates are harness-side.
    assert_eq!(hits("crates/engine/tests/fixture.rs", src), vec![]);
}

#[test]
fn cfg_test_blocks_are_skipped() {
    let src = "fn prod() {}\n\
               #[cfg(test)]\n\
               mod tests {\n\
               \x20   fn helper() { let m = HashMap::new(); }\n\
               }\n\
               fn after() { let t = Instant::now(); }\n";
    let got = hits(SIM, src);
    assert_eq!(got, vec![(6, "wall-clock".into())], "{got:?}");
}

#[test]
fn comments_and_strings_never_flag() {
    let src = "fn f() {\n\
               \x20   // HashMap::new() Instant::now() thread_rng()\n\
               \x20   let s = \"HashMap::new() Instant::now()\";\n\
               \x20   /* SystemTime::now() */\n\
               \x20   let _ = s;\n\
               }\n";
    assert_eq!(hits(SIM, src), vec![]);
}

#[test]
fn trailing_waiver_suppresses_its_line_only() {
    let src = "fn f() {\n\
               \x20   let a = HashMap::new(); // lint: allow(std-hash) — never iterated, keyed access only\n\
               \x20   let b = HashMap::new();\n\
               }\n";
    let got = hits(SIM, src);
    assert_eq!(got, vec![(3, "std-hash".into())], "{got:?}");
}

#[test]
fn standalone_waiver_covers_the_next_line() {
    let src = "fn f() {\n\
               \x20   // lint: allow(wall-clock) — harness-side timing of the host\n\
               \x20   let t = Instant::now();\n\
               \x20   let u = Instant::now();\n\
               }\n";
    let got = hits(SIM, src);
    assert_eq!(got, vec![(4, "wall-clock".into())], "{got:?}");
}

#[test]
fn waiver_reason_is_mandatory() {
    for bad in [
        "fn f() { let a = HashMap::new(); } // lint: allow(std-hash)\n",
        "fn f() { let a = HashMap::new(); } // lint: allow(std-hash) —\n",
        "fn f() { let a = HashMap::new(); } // lint: allow(std-hash) -   \n",
    ] {
        let got = hits(SIM, bad);
        assert!(
            got.contains(&(1, "lint-directive".into())),
            "missing-reason waiver must flag: {bad:?} -> {got:?}"
        );
        // And the underlying finding is NOT suppressed.
        assert!(
            got.contains(&(1, "std-hash".into())),
            "reasonless waiver must not suppress: {bad:?} -> {got:?}"
        );
    }
}

#[test]
fn waiver_for_unknown_rule_is_rejected() {
    let src = "fn f() {} // lint: allow(no-such-rule) — because\n";
    let got = hits(SIM, src);
    assert_eq!(got, vec![(1, "lint-directive".into())], "{got:?}");
}

#[test]
fn unknown_directives_are_rejected_but_doc_comment_prose_is_not() {
    let got = hits(SIM, "fn f() {} // lint: frobnicate\n");
    assert_eq!(got, vec![(1, "lint-directive".into())], "{got:?}");
    // Doc comments are prose, not configuration.
    assert_eq!(hits(SIM, "/// lint: frobnicate\nfn f() {}\n"), vec![]);
    assert_eq!(hits(SIM, "//! lint: hot-path\nfn f() {}\n"), vec![]);
}

#[test]
fn hot_path_regions_flag_allocation_shapes() {
    let src = "// lint: hot-path\n\
               fn serve(x: &[u8]) -> usize {\n\
               \x20   let v = Vec::new();\n\
               \x20   let w = x.to_vec();\n\
               \x20   let s = format!(\"x\");\n\
               \x20   let b = Box::new(1);\n\
               \x20   let t = String::from(\"y\");\n\
               \x20   let c = w.clone();\n\
               \x20   v.len() + s.len() + t.len() + c.len() + *b\n\
               }\n\
               fn outside() { let v2 = vec![1]; let _ = v2; }\n";
    let got = hits(HARNESS, src);
    let flagged: Vec<usize> = got
        .iter()
        .filter(|(_, r)| r == "hot-path-alloc")
        .map(|&(l, _)| l)
        .collect();
    assert_eq!(flagged, vec![3, 4, 5, 6, 7, 8], "{got:?}");
}

#[test]
fn turbofish_constructors_flag_in_hot_paths() {
    let src = "// lint: hot-path\n\
               fn f() {\n\
               \x20   let v = Vec::<u8>::new();\n\
               \x20   let s = String::with_capacity(8);\n\
               \x20   v.len() + s.len();\n\
               }\n";
    let got = hits(HARNESS, src);
    assert!(got.contains(&(3, "hot-path-alloc".into())), "{got:?}");
    assert!(got.contains(&(4, "hot-path-alloc".into())), "{got:?}");
}

#[test]
fn hot_path_region_ends_at_the_matching_brace() {
    let src = "// lint: hot-path\n\
               fn hot() { let inner = |x: u32| x + 1; inner(2); }\n\
               fn cold() { let v = vec![1, 2]; let _ = v; }\n";
    assert_eq!(hits(HARNESS, src), vec![]);
}

#[test]
fn hot_path_marker_without_a_block_is_a_directive_error() {
    let src = "fn f() {}\n// lint: hot-path\n";
    let got = hits(HARNESS, src);
    assert_eq!(got, vec![(2, "lint-directive".into())], "{got:?}");
}

#[test]
fn hot_path_waiver_works_inside_a_region() {
    let src = "// lint: hot-path\n\
               fn serve(r: &R) {\n\
               \x20   // lint: allow(hot-path-alloc) — the table must own the record\n\
               \x20   insert(r.clone());\n\
               }\n";
    assert_eq!(hits(HARNESS, src), vec![]);
}

#[test]
fn method_call_shape_is_required_for_alloc_flags() {
    // `clone` as an identifier (trait bound, fn name) is not a call;
    // `.collect::<Vec<_>>()` with a turbofish still is.
    let src = "// lint: hot-path\n\
               fn generic<T: Clone>(it: I) -> Vec<u32> {\n\
               \x20   fn to_vec() {}\n\
               \x20   to_vec();\n\
               \x20   it.collect::<Vec<u32>>()\n\
               }\n";
    let got = hits(HARNESS, src);
    assert_eq!(got, vec![(5, "hot-path-alloc".into())], "{got:?}");
}

#[test]
fn findings_render_as_file_line_rule() {
    let f = &scan_source(SIM, "fn f() { let t = Instant::now(); }\n")[0];
    let s = f.to_string();
    assert!(
        s.starts_with("crates/engine/src/fixture.rs:1: wall-clock — "),
        "{s}"
    );
}
