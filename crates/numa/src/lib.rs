//! # atrapos-numa
//!
//! Hardware-Island (multisocket multicore NUMA) machine model and the
//! deterministic virtual-time simulation substrate used by the ATraPos
//! reproduction.
//!
//! The ATraPos paper (Porobic et al., ICDE 2014) evaluates its storage-manager
//! design on an 8-socket × 10-core Intel Westmere server.  Cross-socket
//! communication (cache-line transfers, atomic operations, memory accesses)
//! is several times more expensive than socket-local communication, which is
//! exactly the effect the paper's design exploits.  Since that class of
//! hardware is not available in this environment, this crate models it
//! explicitly:
//!
//! * [`Topology`] — sockets, cores, and an inter-socket distance (hop) matrix,
//!   with presets for the paper's 8-socket twisted-cube box as well as smaller
//!   configurations.
//! * [`CostModel`] — calibrated cycle costs for local/remote cache-line
//!   transfers, memory accesses, atomic read-modify-write operations, and
//!   message exchanges.
//! * [`ContendedLine`] / [`SimResource`] — virtual-time models of a contended
//!   cache line (e.g. the head of a lock-free list that every transaction
//!   CASes) and of a mutual-exclusion resource (latch, mutex, log-buffer
//!   head).  Both serialize accesses in virtual time and charge
//!   distance-dependent transfer costs, which is what produces the
//!   multisocket scalability collapse of centralized designs.
//! * [`SimCtx`] — the accounting context threaded through every storage and
//!   engine operation.  It accumulates instructions, cycles (split by
//!   [`Component`]), and interconnect traffic for the current step.
//! * [`Machine`] — the aggregate: topology + cost model + per-core counters +
//!   interconnect traffic, with derived metrics (IPC, QPI/IMC ratios,
//!   per-component time breakdowns).
//!
//! Everything is deterministic and single-threaded: a discrete virtual clock
//! replaces wall-clock time, so every figure of the paper can be regenerated
//! bit-for-bit on any host.

pub mod clock;
pub mod contention;
pub mod cost;
pub mod counters;
pub mod ctx;
pub mod interconnect;
pub mod machine;
pub mod placement;
pub mod topology;

pub use clock::{
    cycles_to_micros, cycles_to_secs, frac_cycles_to_micros, micros_to_cycles, secs_to_cycles,
    Cycles,
};
pub use contention::{AccessKind, ContendedLine, SimResource, WaitMode};
pub use cost::CostModel;
pub use counters::{
    Breakdown, Component, CoreCounters, Tally, TrafficList, Transfer, COMPONENT_COUNT,
};
pub use ctx::SimCtx;
pub use interconnect::Interconnect;
pub use machine::Machine;
pub use placement::{round_robin_by_socket, socket_fill, CorePlacement};
pub use topology::{CoreId, SocketId, Topology, TopologyKind};
