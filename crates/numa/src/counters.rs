//! Per-core performance counters and component time breakdowns.
//!
//! The paper's evaluation reports hardware-counter-derived metrics
//! (instructions retired per cycle, Figure 1) and profiler-derived time
//! breakdowns per system component (Figure 4).  The simulator computes both
//! from first principles: every simulated operation reports how many
//! instructions it retires, how many cycles it takes, and which component of
//! the storage manager it belongs to.

use crate::clock::Cycles;
use crate::topology::SocketId;
use serde::{Deserialize, Serialize};

/// Storage-manager component a piece of work is attributed to.  Matches the
/// categories of the paper's Figure 4 time breakdown, plus latching and
/// monitoring which the paper discusses separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Component {
    /// Transaction management: begin/commit/abort bookkeeping, transaction
    /// list maintenance, state read-locks.
    XctManagement,
    /// Useful transaction logic: index probes, tuple reads and writes.
    XctExecution,
    /// Inter-thread / inter-instance communication (action routing,
    /// synchronization points, 2PC messages).
    Communication,
    /// Logical locking (lock-manager work and lock waits).
    Locking,
    /// Physical latching on pages and internal structures.
    Latching,
    /// Log-buffer insertion and commit-time log waits.
    Logging,
    /// ATraPos monitoring instrumentation.
    Monitoring,
}

/// Number of distinct [`Component`] values.
pub const COMPONENT_COUNT: usize = 7;

impl Component {
    /// All components, in display order.
    pub const ALL: [Component; COMPONENT_COUNT] = [
        Component::XctManagement,
        Component::XctExecution,
        Component::Communication,
        Component::Locking,
        Component::Latching,
        Component::Logging,
        Component::Monitoring,
    ];

    /// Dense index for array-indexed accumulation.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Component::XctManagement => 0,
            Component::XctExecution => 1,
            Component::Communication => 2,
            Component::Locking => 3,
            Component::Latching => 4,
            Component::Logging => 5,
            Component::Monitoring => 6,
        }
    }

    /// Human-readable label (matches the paper's Figure 4 legend where
    /// applicable).
    pub fn label(self) -> &'static str {
        match self {
            Component::XctManagement => "xct management",
            Component::XctExecution => "xct execution",
            Component::Communication => "communication",
            Component::Locking => "locking",
            Component::Latching => "latching",
            Component::Logging => "logging",
            Component::Monitoring => "monitoring",
        }
    }
}

/// Cycle breakdown by component.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Breakdown {
    cycles: [u64; COMPONENT_COUNT],
}

impl Breakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `cycles` to `component`.
    #[inline]
    pub fn add(&mut self, component: Component, cycles: Cycles) {
        self.cycles[component.index()] += cycles;
    }

    /// Cycles attributed to `component`.
    #[inline]
    pub fn get(&self, component: Component) -> Cycles {
        self.cycles[component.index()]
    }

    /// Sum of all components.
    pub fn total(&self) -> Cycles {
        self.cycles.iter().sum()
    }

    /// Merge another breakdown into this one.
    pub fn merge(&mut self, other: &Breakdown) {
        for i in 0..COMPONENT_COUNT {
            self.cycles[i] += other.cycles[i];
        }
    }

    /// Component-wise difference `self − other` (saturating at zero).  Used
    /// to compute per-segment breakdowns from cumulative counters.
    pub fn saturating_sub(&self, other: &Breakdown) -> Breakdown {
        let mut out = Breakdown::new();
        for i in 0..COMPONENT_COUNT {
            out.cycles[i] = self.cycles[i].saturating_sub(other.cycles[i]);
        }
        out
    }

    /// Fraction of the total attributed to `component` (0.0 if empty).
    pub fn fraction(&self, component: Component) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(component) as f64 / total as f64
        }
    }
}

/// One interconnect transfer: (from socket, to socket, bytes).
pub type Transfer = (SocketId, SocketId, u64);

/// Inline capacity of [`TrafficList`].  A single simulated step rarely
/// generates more than a couple of cross-socket transfers (one line
/// transfer plus a synchronization message or two), so four inline slots
/// keep the hot path allocation-free.
const TRAFFIC_INLINE: usize = 4;

/// The interconnect transfers of one step: a small-vector that stores the
/// common case inline and spills to the heap only for unusually chatty
/// steps.
#[derive(Debug, Clone)]
pub struct TrafficList {
    len: u8,
    inline: [Transfer; TRAFFIC_INLINE],
    spill: Vec<Transfer>,
}

impl Default for TrafficList {
    fn default() -> Self {
        Self {
            len: 0,
            inline: [(SocketId(0), SocketId(0), 0); TRAFFIC_INLINE],
            spill: Vec::new(),
        }
    }
}

impl TrafficList {
    /// An empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a transfer.
    #[inline]
    pub fn push(&mut self, t: Transfer) {
        let i = self.len as usize;
        if i < TRAFFIC_INLINE {
            self.inline[i] = t;
            self.len += 1;
        } else {
            self.spill.push(t);
        }
    }

    /// Number of transfers recorded.
    pub fn len(&self) -> usize {
        self.len as usize + self.spill.len()
    }

    /// Whether no transfer was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over the transfers in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Transfer> {
        self.inline[..self.len as usize]
            .iter()
            .chain(self.spill.iter())
    }

    /// Drop all transfers (keeps the spill capacity).
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }
}

impl<'a> IntoIterator for &'a TrafficList {
    type Item = &'a Transfer;
    type IntoIter =
        std::iter::Chain<std::slice::Iter<'a, Transfer>, std::slice::Iter<'a, Transfer>>;

    fn into_iter(self) -> Self::IntoIter {
        self.inline[..self.len as usize]
            .iter()
            .chain(self.spill.iter())
    }
}

impl serde::ser::Serialize for TrafficList {
    fn to_value(&self) -> serde::Value {
        serde::Value::Array(self.iter().map(serde::ser::Serialize::to_value).collect())
    }
}

impl serde::de::Deserialize for TrafficList {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let items = <Vec<Transfer> as serde::de::Deserialize>::from_value(v)?;
        let mut out = TrafficList::new();
        for t in items {
            out.push(t);
        }
        Ok(out)
    }
}

/// Everything a single simulated step (action, transaction, or background
/// task) accrues.  Produced by [`crate::SimCtx::finish`] and merged into the
/// machine-wide counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Tally {
    /// Virtual time at which the step started.
    pub start: Cycles,
    /// Virtual time at which the step finished.
    pub end: Cycles,
    /// Instructions retired (useful work plus spin-loop instructions).
    pub instructions: u64,
    /// Cycles spent doing useful work.
    pub busy_cycles: Cycles,
    /// Cycles stalled on memory/cache/interconnect with no instructions
    /// retiring.
    pub stall_cycles: Cycles,
    /// Cycles spent spin-waiting (instructions retire at the spin IPC).
    pub spin_cycles: Cycles,
    /// Per-component breakdown of all cycles.
    pub breakdown: Breakdown,
    /// Interconnect traffic generated: (from socket, to socket, bytes).
    pub traffic: TrafficList,
    /// Bytes served from the local memory controller.
    pub local_memory_bytes: u64,
    /// Number of times this step had to wait for a contended line or
    /// resource held by another core.
    pub waits: u64,
}

impl Tally {
    /// Total cycles consumed (busy + stall + spin).
    pub fn total_cycles(&self) -> Cycles {
        self.busy_cycles + self.stall_cycles + self.spin_cycles
    }
}

/// Cumulative counters for one core.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CoreCounters {
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles doing useful work.
    pub busy_cycles: Cycles,
    /// Stalled cycles.
    pub stall_cycles: Cycles,
    /// Spinning cycles.
    pub spin_cycles: Cycles,
    /// Per-component cycle breakdown.
    pub breakdown: Breakdown,
    /// Number of waits on contended lines/resources.
    pub waits: u64,
    /// Latest virtual time observed on this core.
    pub last_seen: Cycles,
}

impl CoreCounters {
    /// Fold a step's tally into the cumulative counters.
    pub fn absorb(&mut self, tally: &Tally) {
        self.instructions += tally.instructions;
        self.busy_cycles += tally.busy_cycles;
        self.stall_cycles += tally.stall_cycles;
        self.spin_cycles += tally.spin_cycles;
        self.breakdown.merge(&tally.breakdown);
        self.waits += tally.waits;
        self.last_seen = self.last_seen.max(tally.end);
    }

    /// Total cycles the core was occupied.
    pub fn occupied_cycles(&self) -> Cycles {
        self.busy_cycles + self.stall_cycles + self.spin_cycles
    }

    /// Instructions per cycle over the cycles the core was occupied.
    pub fn ipc(&self) -> f64 {
        let c = self.occupied_cycles();
        if c == 0 {
            0.0
        } else {
            self.instructions as f64 / c as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_indices_are_dense_and_unique() {
        let mut seen = [false; COMPONENT_COUNT];
        for c in Component::ALL {
            assert!(!seen[c.index()], "duplicate index for {c:?}");
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn breakdown_accumulates_and_merges() {
        let mut a = Breakdown::new();
        a.add(Component::Locking, 100);
        a.add(Component::Logging, 300);
        let mut b = Breakdown::new();
        b.add(Component::Locking, 50);
        a.merge(&b);
        assert_eq!(a.get(Component::Locking), 150);
        assert_eq!(a.total(), 450);
        assert!((a.fraction(Component::Logging) - 300.0 / 450.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_fraction_is_zero() {
        let b = Breakdown::new();
        assert_eq!(b.fraction(Component::Locking), 0.0);
    }

    #[test]
    fn core_counters_absorb_tallies() {
        let mut cc = CoreCounters::default();
        let mut t = Tally {
            start: 0,
            end: 500,
            instructions: 400,
            busy_cycles: 400,
            stall_cycles: 100,
            ..Default::default()
        };
        t.breakdown.add(Component::XctExecution, 500);
        cc.absorb(&t);
        cc.absorb(&t);
        assert_eq!(cc.instructions, 800);
        assert_eq!(cc.occupied_cycles(), 1000);
        assert!((cc.ipc() - 0.8).abs() < 1e-12);
        assert_eq!(cc.last_seen, 500);
    }

    #[test]
    fn ipc_of_idle_core_is_zero() {
        assert_eq!(CoreCounters::default().ipc(), 0.0);
    }
}
