//! The simulation context: the accounting object threaded through every
//! storage-manager and execution-engine operation.
//!
//! A [`SimCtx`] represents one core executing one piece of work (an action,
//! a whole transaction, or a background task) starting at some virtual time.
//! Storage operations call its methods to charge useful work, cache-line
//! accesses, resource acquisitions, memory reads, and messages; the context
//! advances its virtual clock and records instructions, cycles (by
//! [`Component`]), waits, and interconnect traffic.  When the step is done,
//! [`SimCtx::finish`] yields a [`Tally`] that the caller merges into the
//! machine-wide counters.

use crate::clock::Cycles;
use crate::contention::{AccessKind, ContendedLine, SimResource, WaitMode};
use crate::cost::CostModel;
use crate::counters::{Component, Tally};
use crate::topology::{CoreId, SocketId, Topology};

/// Per-step simulation context for one core.
#[derive(Debug)]
pub struct SimCtx<'a> {
    topo: &'a Topology,
    cost: &'a CostModel,
    core: CoreId,
    socket: SocketId,
    now: Cycles,
    tally: Tally,
}

impl<'a> SimCtx<'a> {
    /// Start a step on `core` at virtual time `start`.
    pub fn new(topo: &'a Topology, cost: &'a CostModel, core: CoreId, start: Cycles) -> Self {
        let socket = topo.socket_of(core);
        let tally = Tally {
            start,
            end: start,
            ..Tally::default()
        };
        Self {
            topo,
            cost,
            core,
            socket,
            now: start,
            tally,
        }
    }

    /// Current virtual time on this core.
    #[inline]
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// The core executing this step.
    #[inline]
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// The socket of the executing core.
    #[inline]
    pub fn socket(&self) -> SocketId {
        self.socket
    }

    /// The machine topology.
    #[inline]
    pub fn topology(&self) -> &Topology {
        self.topo
    }

    /// The cost model.
    #[inline]
    pub fn cost(&self) -> &CostModel {
        self.cost
    }

    /// Cycles elapsed since the step started.
    #[inline]
    pub fn elapsed(&self) -> Cycles {
        self.now - self.tally.start
    }

    /// Cycles and instructions accrued so far, without ending the step.
    pub fn tally(&self) -> &Tally {
        &self.tally
    }

    /// Execute `instructions` instructions of useful work attributed to
    /// `component`.
    pub fn work(&mut self, component: Component, instructions: u64) {
        let cycles = self.cost.work_cycles(instructions);
        self.tally.instructions += instructions;
        self.tally.busy_cycles += cycles;
        self.tally.breakdown.add(component, cycles);
        self.now += cycles;
    }

    /// Stall for `cycles` cycles (no instructions retire).
    pub fn stall(&mut self, component: Component, cycles: Cycles) {
        self.tally.stall_cycles += cycles;
        self.tally.breakdown.add(component, cycles);
        self.now += cycles;
    }

    /// Spin-wait for `cycles` cycles (instructions retire at the spin IPC).
    pub fn spin(&mut self, component: Component, cycles: Cycles) {
        self.tally.spin_cycles += cycles;
        self.tally.instructions += self.cost.spin_instructions(cycles);
        self.tally.breakdown.add(component, cycles);
        self.now += cycles;
    }

    /// Wait (in the given mode) until virtual time `t`, if `t` is in the
    /// future.  Returns the number of cycles waited.
    pub fn wait_until(&mut self, component: Component, t: Cycles, mode: WaitMode) -> Cycles {
        let waited = t.saturating_sub(self.now);
        if waited > 0 {
            self.tally.waits += 1;
            match mode {
                WaitMode::Spin => self.spin(component, waited),
                WaitMode::Stall => self.stall(component, waited),
            }
        }
        waited
    }

    /// Access a contended cache line.
    ///
    /// For [`AccessKind::Rmw`] the access books an exclusive span on the
    /// line's timeline (waiting for earlier exclusive accesses to drain),
    /// transfers the line (paying a distance-dependent cost), and takes
    /// ownership — concurrent RMWs therefore serialize, exactly like CAS
    /// operations on the head of a shared list.  For [`AccessKind::Read`]
    /// the access waits for any in-flight exclusive access but does not
    /// itself occupy the line.
    ///
    /// Returns the total cycles consumed (wait + transfer).
    pub fn access_line(
        &mut self,
        component: Component,
        line: &mut ContendedLine,
        kind: AccessKind,
        wait: WaitMode,
    ) -> Cycles {
        let before = self.now;
        let (transfer, crossed, from) = self.line_transfer_cost(line, kind);
        let grant = match kind {
            AccessKind::Rmw => line.book_exclusive(self.now, transfer),
            AccessKind::Read => line.earliest_grant(self.now, 1),
        };
        let waited = grant.saturating_sub(self.now);
        if waited > 0 {
            self.tally.waits += 1;
            match wait {
                WaitMode::Spin => self.spin(component, waited),
                WaitMode::Stall => self.stall(component, waited),
            }
        }
        self.stall(component, transfer);
        self.record_line_traffic(line, crossed, from);
        line.commit_access(kind, self.socket, waited, crossed);
        self.now - before
    }

    /// Cost of bringing `line` into this core's cache, given its current
    /// owner: (cycles, crossed a socket boundary, source socket).
    fn line_transfer_cost(
        &self,
        line: &ContendedLine,
        kind: AccessKind,
    ) -> (Cycles, bool, Option<SocketId>) {
        let (cycles, crossed, from) = match line.owner() {
            Some(owner) if owner == self.socket => (self.cost.cache_transfer(0), false, None),
            Some(owner) => {
                let hops = self.topo.distance(self.socket, owner);
                (self.cost.cache_transfer(hops), hops > 0, Some(owner))
            }
            None => {
                let hops = self.topo.distance(self.socket, line.home);
                (self.cost.memory_access(hops), hops > 0, Some(line.home))
            }
        };
        let cycles = if kind == AccessKind::Rmw {
            cycles + self.cost.atomic_local
        } else {
            cycles
        };
        (cycles, crossed, from)
    }

    fn record_line_traffic(&mut self, line: &ContendedLine, crossed: bool, from: Option<SocketId>) {
        if crossed {
            if let Some(from) = from {
                self.tally
                    .traffic
                    .push((from, self.socket, self.cost.cache_line_bytes));
            }
        } else if line.owner().is_none() {
            self.tally.local_memory_bytes += self.cost.cache_line_bytes;
        }
    }

    /// Execute a *short* critical section protected by a spinlock/latch whose
    /// lock word is `line`: wait for any in-flight holder, transfer the line
    /// exclusively, execute `instructions` of protected work, and keep the
    /// line occupied until the work completes.
    ///
    /// Unlike [`SimCtx::acquire_resource`], the line is only occupied for the
    /// actual duration of the critical section, which is the right model for
    /// latches and lock-table buckets that are held for a few hundred cycles
    /// at a time.
    ///
    /// Returns the total cycles consumed (wait + transfer + work).
    pub fn critical_section(
        &mut self,
        component: Component,
        line: &mut ContendedLine,
        wait: WaitMode,
        instructions: u64,
    ) -> Cycles {
        let before = self.now;
        let (transfer, crossed, from) = self.line_transfer_cost(line, AccessKind::Rmw);
        let work = self.cost.work_cycles(instructions);
        let grant = line.book_exclusive(self.now, transfer + work);
        let waited = grant.saturating_sub(self.now);
        if waited > 0 {
            self.tally.waits += 1;
            match wait {
                WaitMode::Spin => self.spin(component, waited),
                WaitMode::Stall => self.stall(component, waited),
            }
        }
        self.stall(component, transfer);
        self.work(component, instructions);
        self.record_line_traffic(line, crossed, from);
        line.commit_access(AccessKind::Rmw, self.socket, waited, crossed);
        self.now - before
    }

    /// Acquire a mutual-exclusion resource: transfer its lock word, wait for
    /// the current holder (if any), and mark the resource acquired at the
    /// current time.  The caller performs the protected work and then calls
    /// [`SimCtx::release_resource`].
    ///
    /// Returns the cycles spent acquiring (transfer + wait).
    pub fn acquire_resource(
        &mut self,
        component: Component,
        res: &mut SimResource,
        wait: WaitMode,
    ) -> Cycles {
        let before = self.now;
        // Transfer the lock word (an RMW on its cache line).  The line's own
        // occupancy is dominated by the resource hold time, so the
        // resource-level wait below is what serializes holders.
        let (transfer, crossed, from) = self.line_transfer_cost(&res.line, AccessKind::Rmw);
        self.stall(component, transfer);
        self.record_line_traffic(&res.line, crossed, from);
        // Wait for the current holder.
        let waited = self.wait_until(component, res.busy_until(), wait);
        let grant = self.now;
        res.commit_acquire(grant, grant, waited);
        res.line
            .commit_access(AccessKind::Rmw, self.socket, 0, crossed);
        self.now - before
    }

    /// Acquire a resource and hold it for a fixed number of cycles of work
    /// attributed to `component`.  Convenience wrapper for modelled critical
    /// sections whose body is not simulated in detail.
    pub fn acquire_resource_for(
        &mut self,
        component: Component,
        res: &mut SimResource,
        hold_instructions: u64,
        wait: WaitMode,
    ) -> Cycles {
        let before = self.now;
        self.acquire_resource(component, res, wait);
        self.work(component, hold_instructions);
        self.release_resource(res);
        self.now - before
    }

    /// Release a previously acquired resource at the current virtual time.
    pub fn release_resource(&mut self, res: &mut SimResource) {
        res.hold_until(self.now);
    }

    /// Read `bytes` bytes from the memory node of socket `node`.  The first
    /// cache line pays the full access latency; subsequent lines stream at a
    /// quarter of it (hardware prefetching).
    pub fn memory_read(&mut self, component: Component, node: SocketId, bytes: u64) -> Cycles {
        let before = self.now;
        let hops = self.topo.distance(self.socket, node);
        let lines = bytes.div_ceil(self.cost.cache_line_bytes).max(1);
        let first = self.cost.memory_access(hops);
        let rest = (lines - 1) * (first / 4);
        self.stall(component, first + rest);
        if hops > 0 {
            self.tally
                .traffic
                .push((node, self.socket, lines * self.cost.cache_line_bytes));
        } else {
            self.tally.local_memory_bytes += lines * self.cost.cache_line_bytes;
        }
        self.now - before
    }

    /// Exchange a `bytes`-sized message with a thread on `to` (cost depends
    /// on the hop distance; same-socket messages are nearly free).
    pub fn send_message(&mut self, component: Component, to: SocketId, bytes: u64) -> Cycles {
        let hops = self.topo.distance(self.socket, to);
        let cycles = self.cost.message(hops, bytes);
        self.stall(component, cycles);
        if hops > 0 {
            self.tally.traffic.push((self.socket, to, bytes));
        }
        cycles
    }

    /// End the step and return its tally.
    pub fn finish(mut self) -> Tally {
        self.tally.end = self.now;
        self.tally
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    fn setup() -> (Topology, CostModel) {
        (Topology::multisocket(4, 4), CostModel::westmere())
    }

    #[test]
    fn work_advances_time_and_counts_instructions() {
        let (t, c) = setup();
        let mut ctx = SimCtx::new(&t, &c, CoreId(0), 100);
        ctx.work(Component::XctExecution, 500);
        assert_eq!(ctx.now(), 100 + 500); // base_ipc = 1.0
        let tally = ctx.finish();
        assert_eq!(tally.instructions, 500);
        assert_eq!(tally.busy_cycles, 500);
        assert_eq!(tally.start, 100);
        assert_eq!(tally.end, 600);
    }

    #[test]
    fn local_line_access_is_cheap_remote_is_expensive() {
        let (t, c) = setup();
        // Core 0 (socket 0) takes the line.
        let mut line = ContendedLine::new(SocketId(0));
        let mut ctx0 = SimCtx::new(&t, &c, CoreId(0), 0);
        ctx0.access_line(
            Component::XctManagement,
            &mut line,
            AccessKind::Rmw,
            WaitMode::Stall,
        );
        let local_cost = {
            let mut ctx = SimCtx::new(&t, &c, CoreId(1), ctx0.now());
            ctx.access_line(
                Component::XctManagement,
                &mut line,
                AccessKind::Rmw,
                WaitMode::Stall,
            )
        };
        // Core on socket 2 accesses the line now owned by socket 0.
        let remote_cost = {
            let mut ctx = SimCtx::new(&t, &c, CoreId(8), line.busy_horizon());
            ctx.access_line(
                Component::XctManagement,
                &mut line,
                AccessKind::Rmw,
                WaitMode::Stall,
            )
        };
        assert!(
            remote_cost > 3 * local_cost,
            "remote {remote_cost} vs local {local_cost}"
        );
        assert_eq!(line.owner(), Some(SocketId(2)));
        assert_eq!(line.remote_accesses, 1);
    }

    #[test]
    fn concurrent_rmw_accesses_serialize() {
        let (t, c) = setup();
        let mut line = ContendedLine::new(SocketId(0));
        // First access at t=0 pins the line until its completion.
        let mut ctx_a = SimCtx::new(&t, &c, CoreId(0), 0);
        ctx_a.access_line(
            Component::Logging,
            &mut line,
            AccessKind::Rmw,
            WaitMode::Stall,
        );
        let free = line.busy_horizon();
        assert!(free > 0);
        // Second access starting at the same time must wait until the first
        // completes.
        let mut ctx_b = SimCtx::new(&t, &c, CoreId(4), 0);
        ctx_b.access_line(
            Component::Logging,
            &mut line,
            AccessKind::Rmw,
            WaitMode::Stall,
        );
        assert!(ctx_b.now() > free);
        let tally_b = ctx_b.finish();
        assert_eq!(tally_b.waits, 1);
        assert!(tally_b.stall_cycles >= free);
    }

    #[test]
    fn reads_wait_but_do_not_pin() {
        let (t, c) = setup();
        let mut line = ContendedLine::new(SocketId(0));
        let mut w = SimCtx::new(&t, &c, CoreId(0), 0);
        w.access_line(
            Component::XctManagement,
            &mut line,
            AccessKind::Rmw,
            WaitMode::Stall,
        );
        let pinned_until = line.busy_horizon();
        let mut r = SimCtx::new(&t, &c, CoreId(1), 0);
        r.access_line(
            Component::XctManagement,
            &mut line,
            AccessKind::Read,
            WaitMode::Stall,
        );
        assert!(r.now() >= pinned_until);
        // Reading did not extend the occupancy.
        assert_eq!(line.busy_horizon(), pinned_until);
    }

    #[test]
    fn spin_waits_retire_instructions_stalls_do_not() {
        let (t, c) = setup();
        let mut ctx = SimCtx::new(&t, &c, CoreId(0), 0);
        ctx.spin(Component::Locking, 1000);
        let spin_instr = ctx.tally().instructions;
        assert!(spin_instr > 1000, "spin IPC should exceed 1");
        let mut ctx2 = SimCtx::new(&t, &c, CoreId(0), 0);
        ctx2.stall(Component::Locking, 1000);
        assert_eq!(ctx2.tally().instructions, 0);
    }

    #[test]
    fn resource_acquisitions_serialize_holders() {
        let (t, c) = setup();
        let mut res = SimResource::new(SocketId(0));
        let mut a = SimCtx::new(&t, &c, CoreId(0), 0);
        a.acquire_resource(Component::Locking, &mut res, WaitMode::Spin);
        a.work(Component::Locking, 2_000);
        a.release_resource(&mut res);
        let release_a = a.now();
        // B starts before A releases and must wait.
        let mut b = SimCtx::new(&t, &c, CoreId(4), 10);
        b.acquire_resource(Component::Locking, &mut res, WaitMode::Spin);
        assert!(b.now() >= release_a);
        assert_eq!(res.contended, 1);
        assert_eq!(res.acquisitions, 2);
    }

    #[test]
    fn remote_memory_read_generates_interconnect_traffic() {
        let (t, c) = setup();
        let mut ctx = SimCtx::new(&t, &c, CoreId(0), 0);
        ctx.memory_read(Component::XctExecution, SocketId(3), 256);
        let tally = ctx.finish();
        let total: u64 = tally.traffic.iter().map(|(_, _, b)| *b).sum();
        assert_eq!(total, 256);
        assert_eq!(tally.local_memory_bytes, 0);

        let mut ctx = SimCtx::new(&t, &c, CoreId(0), 0);
        ctx.memory_read(Component::XctExecution, SocketId(0), 256);
        let tally = ctx.finish();
        assert!(tally.traffic.is_empty());
        assert_eq!(tally.local_memory_bytes, 256);
    }

    #[test]
    fn messages_between_sockets_cost_more_than_local() {
        let (t, c) = setup();
        let mut ctx = SimCtx::new(&t, &c, CoreId(0), 0);
        let local = ctx.send_message(Component::Communication, SocketId(0), 128);
        let remote = ctx.send_message(Component::Communication, SocketId(2), 128);
        assert!(remote > 10 * local.max(1));
    }
}
