//! Multisocket hardware topology: sockets, cores, and inter-socket distances.
//!
//! The paper's experimental platform is an 8-socket Intel Xeon E7-L8867
//! (Westmere-EX) server whose sockets are connected in a *twisted cube*:
//! every socket reaches every other socket in at most two QPI hops.  The
//! distance matrix built here reproduces that property.  Smaller
//! configurations (1/2/4 sockets) are fully connected, matching glueless
//! QPI topologies of commodity boxes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a processor socket (a hardware "Island").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SocketId(pub u16);

/// Identifier of a processor core (global across the machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CoreId(pub u32);

impl fmt::Display for SocketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl SocketId {
    /// Index usable for vector lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl CoreId {
    /// Index usable for vector lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// How the sockets of a machine are wired together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologyKind {
    /// A single socket: every core communicates through the shared LLC.
    SingleSocket,
    /// All sockets are directly connected (1 hop), typical for 2- and
    /// 4-socket glueless QPI machines.
    FullyConnected,
    /// The 8-socket twisted-cube wiring of the paper's Westmere-EX box:
    /// diameter 2, i.e. every pair of sockets is at most two hops apart.
    TwistedCube,
    /// A 2D mesh of tiles grouped into islands (Tilera-style, mentioned in
    /// §II-A of the paper as a future source of on-chip Islands).
    Mesh,
    /// Arbitrary, user-provided distance matrix.
    Custom,
}

/// A processor socket: a group of cores sharing a last-level cache.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Socket {
    /// Socket identifier.
    pub id: SocketId,
    /// Cores located on this socket.
    pub cores: Vec<CoreId>,
    /// Whether the socket is currently active. `false` models the
    /// processor-failure experiment of Figure 12.
    pub active: bool,
    /// Size of the local memory node, in bytes (used by memory-placement
    /// experiments; not enforced).
    pub memory_bytes: u64,
}

/// The machine topology: sockets, cores, and the hop-distance matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    kind: TopologyKind,
    sockets: Vec<Socket>,
    core_to_socket: Vec<SocketId>,
    /// `distance[a][b]` = number of interconnect hops between sockets `a`
    /// and `b`; 0 when `a == b`.
    distance: Vec<Vec<u32>>,
    /// Clock frequency in GHz, used to convert cycles to seconds.
    frequency_ghz: f64,
}

impl Topology {
    /// Build a multisocket machine with `n_sockets` sockets of
    /// `cores_per_socket` cores each.
    ///
    /// * 1 socket → [`TopologyKind::SingleSocket`]
    /// * 2–4 sockets → [`TopologyKind::FullyConnected`] (1 hop everywhere)
    /// * more sockets → [`TopologyKind::TwistedCube`] (diameter 2); for
    ///   exactly 8 sockets this reproduces the paper's platform.
    pub fn multisocket(n_sockets: usize, cores_per_socket: usize) -> Self {
        assert!(n_sockets >= 1, "a machine needs at least one socket");
        assert!(cores_per_socket >= 1, "a socket needs at least one core");
        let kind = match n_sockets {
            1 => TopologyKind::SingleSocket,
            2..=4 => TopologyKind::FullyConnected,
            _ => TopologyKind::TwistedCube,
        };
        let distance = match kind {
            TopologyKind::SingleSocket => vec![vec![0]],
            TopologyKind::FullyConnected => fully_connected(n_sockets),
            TopologyKind::TwistedCube => twisted_cube(n_sockets),
            _ => unreachable!(),
        };
        Self::from_parts(kind, n_sockets, cores_per_socket, distance)
    }

    /// The paper's experimental platform: 8 sockets × 10 cores, twisted cube.
    pub fn westmere_ex_8x10() -> Self {
        Self::multisocket(8, 10)
    }

    /// A single-socket machine with `cores` cores.
    pub fn single_socket(cores: usize) -> Self {
        Self::multisocket(1, cores)
    }

    /// A 2D mesh of `nx * ny` islands with `cores_per_island` cores each.
    /// Distance between islands is their Manhattan distance, modelling
    /// Tilera-style on-chip islands.
    pub fn mesh(nx: usize, ny: usize, cores_per_island: usize) -> Self {
        assert!(nx >= 1 && ny >= 1);
        let n = nx * ny;
        let mut distance = vec![vec![0u32; n]; n];
        for (a, row) in distance.iter_mut().enumerate() {
            for (b, d) in row.iter_mut().enumerate() {
                let (ax, ay) = (a % nx, a / nx);
                let (bx, by) = (b % nx, b / nx);
                *d = (ax.abs_diff(bx) + ay.abs_diff(by)) as u32;
            }
        }
        Self::from_parts(TopologyKind::Mesh, n, cores_per_island, distance)
    }

    /// Build a topology from an explicit distance matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not square, not zero on the diagonal, or not
    /// symmetric.
    pub fn custom(cores_per_socket: usize, distance: Vec<Vec<u32>>) -> Self {
        let n = distance.len();
        assert!(n >= 1, "distance matrix must be non-empty");
        for (i, row) in distance.iter().enumerate() {
            assert_eq!(row.len(), n, "distance matrix must be square");
            assert_eq!(row[i], 0, "diagonal of the distance matrix must be 0");
            for (j, &d) in row.iter().enumerate() {
                assert_eq!(d, distance[j][i], "distance matrix must be symmetric");
            }
        }
        Self::from_parts(TopologyKind::Custom, n, cores_per_socket, distance)
    }

    fn from_parts(
        kind: TopologyKind,
        n_sockets: usize,
        cores_per_socket: usize,
        distance: Vec<Vec<u32>>,
    ) -> Self {
        let mut sockets = Vec::with_capacity(n_sockets);
        let mut core_to_socket = Vec::with_capacity(n_sockets * cores_per_socket);
        let mut next_core = 0u32;
        for s in 0..n_sockets {
            let id = SocketId(s as u16);
            let mut cores = Vec::with_capacity(cores_per_socket);
            for _ in 0..cores_per_socket {
                cores.push(CoreId(next_core));
                core_to_socket.push(id);
                next_core += 1;
            }
            sockets.push(Socket {
                id,
                cores,
                active: true,
                memory_bytes: 32 * (1 << 30), // 32 GB per NUMA node, as in the paper
            });
        }
        Self {
            kind,
            sockets,
            core_to_socket,
            distance,
            frequency_ghz: 2.4,
        }
    }

    /// The wiring style of this machine.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Clock frequency in GHz.
    pub fn frequency_ghz(&self) -> f64 {
        self.frequency_ghz
    }

    /// Override the clock frequency (GHz).
    pub fn with_frequency_ghz(mut self, ghz: f64) -> Self {
        assert!(ghz > 0.0);
        self.frequency_ghz = ghz;
        self
    }

    /// Total number of sockets (including failed ones).
    pub fn num_sockets(&self) -> usize {
        self.sockets.len()
    }

    /// Total number of cores (including those on failed sockets).
    pub fn num_cores(&self) -> usize {
        self.core_to_socket.len()
    }

    /// All sockets.
    pub fn sockets(&self) -> &[Socket] {
        &self.sockets
    }

    /// The socket a core belongs to.
    #[inline]
    pub fn socket_of(&self, core: CoreId) -> SocketId {
        self.core_to_socket[core.index()]
    }

    /// Cores belonging to `socket`.
    pub fn cores_of(&self, socket: SocketId) -> &[CoreId] {
        &self.sockets[socket.index()].cores
    }

    /// Hop distance between two sockets (0 if identical).
    #[inline]
    pub fn distance(&self, a: SocketId, b: SocketId) -> u32 {
        self.distance[a.index()][b.index()]
    }

    /// Hop distance between the sockets of two cores.
    #[inline]
    pub fn core_distance(&self, a: CoreId, b: CoreId) -> u32 {
        self.distance(self.socket_of(a), self.socket_of(b))
    }

    /// Whether a socket is currently active.
    pub fn is_active(&self, socket: SocketId) -> bool {
        self.sockets[socket.index()].active
    }

    /// Mark a socket as failed (its cores become unavailable).  Models the
    /// processor-failure experiment (Figure 12).
    ///
    /// Returns `false` if the socket was already failed.
    pub fn fail_socket(&mut self, socket: SocketId) -> bool {
        let s = &mut self.sockets[socket.index()];
        let was = s.active;
        s.active = false;
        was
    }

    /// Bring a previously failed socket back.
    pub fn restore_socket(&mut self, socket: SocketId) {
        self.sockets[socket.index()].active = true;
    }

    /// Identifiers of all active sockets.
    pub fn active_sockets(&self) -> Vec<SocketId> {
        self.sockets
            .iter()
            .filter(|s| s.active)
            .map(|s| s.id)
            .collect()
    }

    /// Identifiers of all cores on active sockets, in socket order.
    pub fn active_cores(&self) -> Vec<CoreId> {
        self.sockets
            .iter()
            .filter(|s| s.active)
            .flat_map(|s| s.cores.iter().copied())
            .collect()
    }

    /// Number of cores on active sockets.
    pub fn num_active_cores(&self) -> usize {
        self.sockets
            .iter()
            .filter(|s| s.active)
            .map(|s| s.cores.len())
            .sum()
    }

    /// Average hop distance between distinct active sockets.  Returns 0.0 on a
    /// single-socket machine.
    pub fn average_distance(&self) -> f64 {
        let active = self.active_sockets();
        if active.len() < 2 {
            return 0.0;
        }
        let mut total = 0u64;
        let mut pairs = 0u64;
        for (i, &a) in active.iter().enumerate() {
            for &b in active.iter().skip(i + 1) {
                total += u64::from(self.distance(a, b));
                pairs += 1;
            }
        }
        total as f64 / pairs as f64
    }

    /// Maximum hop distance between any two active sockets (the network
    /// diameter restricted to active sockets).
    pub fn diameter(&self) -> u32 {
        let active = self.active_sockets();
        let mut max = 0;
        for &a in &active {
            for &b in &active {
                max = max.max(self.distance(a, b));
            }
        }
        max
    }
}

/// All-pairs distance 1 (except the diagonal).
fn fully_connected(n: usize) -> Vec<Vec<u32>> {
    let mut m = vec![vec![1u32; n]; n];
    for (i, row) in m.iter_mut().enumerate() {
        row[i] = 0;
    }
    m
}

/// Twisted-cube-style wiring: each socket has direct links to the sockets
/// reached by XOR-ing its index with 1, 2, 4, and (for the twist) with
/// `n - 1`; remaining distances come from a BFS over that adjacency.  For
/// n = 8 this yields a diameter of 2, matching the Westmere-EX platform.
fn twisted_cube(n: usize) -> Vec<Vec<u32>> {
    let mut adj = vec![Vec::new(); n];
    for (i, neighbours) in adj.iter_mut().enumerate() {
        for mask in [1usize, 2, 4, n.saturating_sub(1)] {
            if mask == 0 {
                continue;
            }
            let j = i ^ mask;
            if j < n && j != i {
                neighbours.push(j);
            }
        }
    }
    // BFS from every node to get hop counts.
    let mut dist = vec![vec![u32::MAX; n]; n];
    for (start, row) in dist.iter_mut().enumerate() {
        row[start] = 0;
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            let du = row[u];
            for &v in &adj[u] {
                if row[v] == u32::MAX {
                    row[v] = du + 1;
                    queue.push_back(v);
                }
            }
        }
    }
    // A disconnected custom size would leave MAX entries; clamp to diameter+1.
    let finite_max = dist
        .iter()
        .flatten()
        .copied()
        .filter(|&d| d != u32::MAX)
        .max()
        .unwrap_or(0);
    for row in &mut dist {
        for d in row.iter_mut() {
            if *d == u32::MAX {
                *d = finite_max + 1;
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_socket_has_zero_distances() {
        let t = Topology::single_socket(10);
        assert_eq!(t.num_sockets(), 1);
        assert_eq!(t.num_cores(), 10);
        assert_eq!(t.distance(SocketId(0), SocketId(0)), 0);
        assert_eq!(t.diameter(), 0);
        assert_eq!(t.kind(), TopologyKind::SingleSocket);
    }

    #[test]
    fn four_socket_machine_is_fully_connected() {
        let t = Topology::multisocket(4, 8);
        assert_eq!(t.kind(), TopologyKind::FullyConnected);
        assert_eq!(t.diameter(), 1);
        for a in 0..4 {
            for b in 0..4 {
                let expect = if a == b { 0 } else { 1 };
                assert_eq!(t.distance(SocketId(a), SocketId(b)), expect);
            }
        }
    }

    #[test]
    fn westmere_topology_matches_paper_platform() {
        let t = Topology::westmere_ex_8x10();
        assert_eq!(t.num_sockets(), 8);
        assert_eq!(t.num_cores(), 80);
        assert_eq!(t.kind(), TopologyKind::TwistedCube);
        // Twisted cube: no socket pair is more than 2 hops apart.
        assert_eq!(t.diameter(), 2);
        // ... and at least one pair is 2 hops apart (it is not fully connected).
        let mut has_two = false;
        for a in 0..8 {
            for b in 0..8 {
                if t.distance(SocketId(a), SocketId(b)) == 2 {
                    has_two = true;
                }
            }
        }
        assert!(has_two);
    }

    #[test]
    fn distance_matrix_is_symmetric_and_zero_diagonal() {
        for n in [1usize, 2, 4, 6, 8, 16] {
            let t = Topology::multisocket(n, 2);
            for a in 0..n {
                assert_eq!(t.distance(SocketId(a as u16), SocketId(a as u16)), 0);
                for b in 0..n {
                    assert_eq!(
                        t.distance(SocketId(a as u16), SocketId(b as u16)),
                        t.distance(SocketId(b as u16), SocketId(a as u16))
                    );
                }
            }
        }
    }

    #[test]
    fn core_to_socket_mapping_is_contiguous() {
        let t = Topology::multisocket(8, 10);
        for s in 0..8u16 {
            let cores = t.cores_of(SocketId(s));
            assert_eq!(cores.len(), 10);
            for c in cores {
                assert_eq!(t.socket_of(*c), SocketId(s));
            }
        }
        assert_eq!(t.socket_of(CoreId(0)), SocketId(0));
        assert_eq!(t.socket_of(CoreId(79)), SocketId(7));
    }

    #[test]
    fn socket_failure_removes_cores() {
        let mut t = Topology::multisocket(8, 10);
        assert_eq!(t.num_active_cores(), 80);
        assert!(t.fail_socket(SocketId(3)));
        assert!(!t.is_active(SocketId(3)));
        assert_eq!(t.num_active_cores(), 70);
        assert_eq!(t.active_sockets().len(), 7);
        assert!(!t
            .active_cores()
            .iter()
            .any(|c| t.socket_of(*c) == SocketId(3)));
        // Failing twice reports it was already failed.
        assert!(!t.fail_socket(SocketId(3)));
        t.restore_socket(SocketId(3));
        assert_eq!(t.num_active_cores(), 80);
    }

    #[test]
    fn mesh_uses_manhattan_distance() {
        let t = Topology::mesh(3, 2, 4);
        assert_eq!(t.num_sockets(), 6);
        assert_eq!(t.num_cores(), 24);
        // Island 0 is at (0,0), island 5 at (2,1): distance 3.
        assert_eq!(t.distance(SocketId(0), SocketId(5)), 3);
        assert_eq!(t.kind(), TopologyKind::Mesh);
    }

    #[test]
    fn custom_topology_validates_matrix() {
        let t = Topology::custom(2, vec![vec![0, 3], vec![3, 0]]);
        assert_eq!(t.distance(SocketId(0), SocketId(1)), 3);
        assert_eq!(t.kind(), TopologyKind::Custom);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn custom_topology_rejects_asymmetric_matrix() {
        let _ = Topology::custom(2, vec![vec![0, 3], vec![2, 0]]);
    }

    #[test]
    fn average_distance_is_between_one_and_diameter() {
        let t = Topology::westmere_ex_8x10();
        let avg = t.average_distance();
        assert!((1.0..=2.0).contains(&avg), "avg distance {avg}");
    }
}
