//! Virtual-time models of contended cache lines and mutual-exclusion
//! resources.
//!
//! These two primitives are what make the simulation reproduce the paper's
//! central observation: *any* centralized data structure accessed in the
//! critical path eventually becomes the bottleneck on a multisocket machine,
//! because every access turns into a cache-line transfer over the
//! interconnect and the transfers of different cores serialize.
//!
//! * [`ContendedLine`] models a single cache line that is read or atomically
//!   updated (CAS) by many cores — e.g. the head of Shore-MT's lock-free
//!   list of active transactions.  Atomic updates serialize in virtual time
//!   and each one pays a transfer cost that depends on which socket last
//!   owned the line.
//! * [`SimResource`] models a lock/latch-protected resource that is held for
//!   a longer, caller-controlled span (background operations, worker
//!   queues): a requester waits until the previous holder releases.
//!
//! Because the execution engine simulates one transaction at a time, accesses
//! to a line do not necessarily arrive in increasing virtual-time order: a
//! transaction processed *earlier* may have touched the line at a *later*
//! virtual time (e.g. at its commit).  [`Timeline`] therefore keeps a bounded
//! window of busy intervals instead of a single "free at" timestamp, so a
//! later-processed access can slot into a gap instead of spuriously queueing
//! behind the whole earlier transaction.

use crate::clock::Cycles;
use crate::topology::SocketId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How a cache line is accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessKind {
    /// Plain read: the line can stay shared; concurrent readers do not
    /// serialize, but a reader still pays the transfer cost if the line is
    /// dirty in a remote cache.
    Read,
    /// Atomic read-modify-write (CAS, fetch-and-add): the line is taken in
    /// exclusive mode, so concurrent writers serialize.
    Rmw,
}

/// What a core does while it waits for a line or resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WaitMode {
    /// Spin-wait on a locally cached copy: instructions retire at the spin
    /// IPC (this is what inflates the IPC of the centralized design in the
    /// paper's Figure 1 while its throughput collapses).
    Spin,
    /// Stall: no instructions retire (typical for a CAS retry loop bouncing
    /// a line between sockets — the PLP bars of Figure 1).
    Stall,
}

/// Maximum number of busy intervals remembered per timeline.  Out-of-order
/// bookings only span roughly one transaction length, so a small window is
/// sufficient; older intervals are coalesced into the window start.
const TIMELINE_CAPACITY: usize = 48;

/// A bounded set of disjoint busy intervals on the virtual-time axis.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Timeline {
    /// Disjoint `[start, end)` intervals sorted by start.
    intervals: VecDeque<(Cycles, Cycles)>,
}

impl Timeline {
    /// Earliest time `>= at` at which a busy span of `duration` cycles fits
    /// without overlapping existing intervals.
    pub fn earliest_fit(&self, at: Cycles, duration: Cycles) -> Cycles {
        // Past the horizon nothing can interfere (intervals are disjoint
        // and sorted): the common case returns without scanning.
        if self.intervals.back().is_none_or(|&(_, e)| at >= e) {
            return at;
        }
        let mut start = at;
        for &(s, e) in &self.intervals {
            if e <= start {
                continue;
            }
            if start + duration <= s {
                break;
            }
            start = e;
        }
        start
    }

    /// Book a busy span of `duration` cycles at the earliest opportunity at
    /// or after `at`.  Returns the granted start time.
    ///
    /// `earliest_fit` guarantees the new span overlaps no existing
    /// interval, so keeping the set coalesced only requires merging with
    /// the (at most two) adjacent neighbours — in place, with no
    /// allocation.  This runs on every simulated cache-line access, which
    /// made the previous full rebuild-and-coalesce one of the hottest
    /// allocation sites of the simulator.
    pub fn book(&mut self, at: Cycles, duration: Cycles) -> Cycles {
        let duration = duration.max(1);
        // Fast path: requests at or beyond the horizon (the overwhelmingly
        // common case — the executor hands out work in roughly increasing
        // virtual time) append at the back without scanning.
        if let Some(back) = self.intervals.back_mut() {
            if at >= back.1 {
                if at == back.1 {
                    back.1 = at + duration;
                } else {
                    self.intervals.push_back((at, at + duration));
                    if self.intervals.len() > TIMELINE_CAPACITY {
                        self.intervals.pop_front();
                    }
                }
                return at;
            }
        } else {
            self.intervals.push_back((at, at + duration));
            return at;
        }
        let start = self.earliest_fit(at, duration);
        let end = start + duration;
        let pos = self
            .intervals
            .iter()
            .position(|&(s, _)| s > start)
            .unwrap_or(self.intervals.len());
        let touches_prev = pos > 0 && self.intervals[pos - 1].1 == start;
        let touches_next = pos < self.intervals.len() && self.intervals[pos].0 == end;
        match (touches_prev, touches_next) {
            (true, true) => {
                let next_end = self.intervals[pos].1;
                self.intervals[pos - 1].1 = next_end;
                self.intervals.remove(pos);
            }
            (true, false) => self.intervals[pos - 1].1 = end,
            (false, true) => self.intervals[pos].0 = start,
            (false, false) => {
                self.intervals.insert(pos, (start, end));
                // Bound the window: drop the oldest interval once over
                // capacity.
                if self.intervals.len() > TIMELINE_CAPACITY {
                    self.intervals.pop_front();
                }
            }
        }
        start
    }

    /// Latest booked end time (0 if nothing is booked).
    pub fn horizon(&self) -> Cycles {
        self.intervals.back().map(|&(_, e)| e).unwrap_or(0)
    }

    /// Total booked (busy) cycles currently tracked in the window.
    pub fn busy_cycles(&self) -> Cycles {
        self.intervals.iter().map(|&(s, e)| e - s).sum()
    }

    /// Clear all bookings.
    pub fn clear(&mut self) {
        self.intervals.clear();
    }
}

/// A single contended cache line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContendedLine {
    /// Memory node the line's backing memory lives on.
    pub home: SocketId,
    /// Socket whose cache currently holds the line (None = only in memory).
    owner: Option<SocketId>,
    /// Busy intervals of in-flight exclusive accesses.
    timeline: Timeline,
    /// Number of exclusive (RMW) accesses performed.
    pub rmw_count: u64,
    /// Number of read accesses performed.
    pub read_count: u64,
    /// Total cycles cores spent waiting for this line.
    pub total_wait: Cycles,
    /// Accesses that crossed a socket boundary.
    pub remote_accesses: u64,
}

impl ContendedLine {
    /// A new line homed on `home`, not yet cached anywhere.
    pub fn new(home: SocketId) -> Self {
        Self {
            home,
            owner: None,
            timeline: Timeline::default(),
            rmw_count: 0,
            read_count: 0,
            total_wait: 0,
            remote_accesses: 0,
        }
    }

    /// Socket whose cache currently owns the line, if any.
    pub fn owner(&self) -> Option<SocketId> {
        self.owner
    }

    /// Latest time at which a currently known exclusive access completes.
    pub fn busy_horizon(&self) -> Cycles {
        self.timeline.horizon()
    }

    /// Earliest time `>= at` at which an exclusive span of `duration` can be
    /// granted.
    pub fn earliest_grant(&self, at: Cycles, duration: Cycles) -> Cycles {
        self.timeline.earliest_fit(at, duration)
    }

    /// Book an exclusive span (used by the simulation context).  Returns the
    /// granted start time.
    pub(crate) fn book_exclusive(&mut self, at: Cycles, duration: Cycles) -> Cycles {
        self.timeline.book(at, duration)
    }

    /// Reset dynamic state (ownership and availability), keeping statistics.
    pub fn reset(&mut self) {
        self.owner = None;
        self.timeline.clear();
    }

    /// Forget accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.rmw_count = 0;
        self.read_count = 0;
        self.total_wait = 0;
        self.remote_accesses = 0;
    }

    /// Record the outcome of an access decided by the simulation context.
    pub(crate) fn commit_access(
        &mut self,
        kind: AccessKind,
        accessor: SocketId,
        waited: Cycles,
        crossed_socket: bool,
    ) {
        match kind {
            AccessKind::Rmw => {
                self.rmw_count += 1;
                self.owner = Some(accessor);
            }
            AccessKind::Read => {
                self.read_count += 1;
                if self.owner.is_none() {
                    self.owner = Some(accessor);
                }
            }
        }
        self.total_wait += waited;
        if crossed_socket {
            self.remote_accesses += 1;
        }
    }
}

/// A mutual-exclusion resource held for caller-controlled spans (background
/// operations, long critical sections) living in virtual time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResource {
    /// The cache line holding the lock word.
    pub line: ContendedLine,
    /// Virtual time until which the resource is held.
    busy_until: Cycles,
    /// Number of acquisitions.
    pub acquisitions: u64,
    /// Acquisitions that had to wait.
    pub contended: u64,
    /// Total cycles spent waiting for the resource (excluding the line
    /// transfer itself).
    pub total_wait: Cycles,
}

impl SimResource {
    /// A new, free resource homed on `home`.
    pub fn new(home: SocketId) -> Self {
        Self {
            line: ContendedLine::new(home),
            busy_until: 0,
            acquisitions: 0,
            contended: 0,
            total_wait: 0,
        }
    }

    /// Virtual time until which the resource is held.
    pub fn busy_until(&self) -> Cycles {
        self.busy_until
    }

    /// Whether the resource is free at `now`.
    pub fn is_free_at(&self, now: Cycles) -> bool {
        self.busy_until <= now
    }

    /// Reset dynamic state, keeping statistics.
    pub fn reset(&mut self) {
        self.busy_until = 0;
        self.line.reset();
    }

    /// Extend (or set) the hold on this resource until virtual time `t`.
    /// Used by [`crate::SimCtx::release_resource`] once the protected work
    /// has been accounted.
    pub fn hold_until(&mut self, t: Cycles) {
        self.busy_until = self.busy_until.max(t);
    }

    pub(crate) fn commit_acquire(&mut self, grant: Cycles, release: Cycles, waited: Cycles) {
        self.acquisitions += 1;
        if waited > 0 {
            self.contended += 1;
            self.total_wait += waited;
        }
        debug_assert!(release >= grant);
        self.busy_until = self.busy_until.max(release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_books_back_to_back_spans() {
        let mut tl = Timeline::default();
        assert_eq!(tl.book(100, 50), 100);
        // Overlapping request queues behind the first.
        assert_eq!(tl.book(120, 50), 150);
        // A later request after the horizon is granted immediately.
        assert_eq!(tl.book(500, 10), 500);
        assert_eq!(tl.horizon(), 510);
        assert_eq!(tl.busy_cycles(), 110);
    }

    #[test]
    fn timeline_fills_gaps_for_out_of_order_requests() {
        let mut tl = Timeline::default();
        // A "future" booking (from a transaction processed first but
        // touching the line at its commit).
        assert_eq!(tl.book(10_000, 100), 10_000);
        // An earlier access processed later slots in before it.
        assert_eq!(tl.book(200, 100), 200);
        // And one that does not fit in the gap goes after.
        assert_eq!(tl.book(9_950, 200), 10_100);
    }

    #[test]
    fn timeline_capacity_is_bounded() {
        let mut tl = Timeline::default();
        for i in 0..1000u64 {
            tl.book(i * 1000, 10);
        }
        assert!(tl.busy_cycles() <= 48 * 10);
    }

    #[test]
    fn new_line_is_unowned_and_free() {
        let l = ContendedLine::new(SocketId(3));
        assert_eq!(l.owner(), None);
        assert_eq!(l.busy_horizon(), 0);
        assert_eq!(l.home, SocketId(3));
    }

    #[test]
    fn rmw_takes_ownership() {
        let mut l = ContendedLine::new(SocketId(0));
        l.book_exclusive(0, 300);
        l.commit_access(AccessKind::Rmw, SocketId(2), 0, true);
        assert_eq!(l.owner(), Some(SocketId(2)));
        assert_eq!(l.busy_horizon(), 300);
        assert_eq!(l.rmw_count, 1);
        assert_eq!(l.remote_accesses, 1);
    }

    #[test]
    fn read_does_not_steal_ownership() {
        let mut l = ContendedLine::new(SocketId(0));
        l.commit_access(AccessKind::Rmw, SocketId(1), 0, false);
        l.commit_access(AccessKind::Read, SocketId(4), 10, true);
        assert_eq!(l.owner(), Some(SocketId(1)));
        assert_eq!(l.read_count, 1);
        assert_eq!(l.total_wait, 10);
    }

    #[test]
    fn resource_tracks_contention() {
        let mut r = SimResource::new(SocketId(0));
        r.commit_acquire(100, 200, 0);
        assert_eq!(r.busy_until(), 200);
        assert!(r.is_free_at(200));
        assert!(!r.is_free_at(150));
        r.commit_acquire(250, 400, 50);
        assert_eq!(r.acquisitions, 2);
        assert_eq!(r.contended, 1);
        assert_eq!(r.total_wait, 50);
    }

    #[test]
    fn reset_clears_dynamic_state_but_not_stats() {
        let mut r = SimResource::new(SocketId(0));
        r.commit_acquire(100, 200, 20);
        r.reset();
        assert_eq!(r.busy_until(), 0);
        assert_eq!(r.acquisitions, 1);
        assert_eq!(r.total_wait, 20);
    }
}
