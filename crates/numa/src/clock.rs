//! Virtual time: the simulation counts processor cycles; these helpers
//! convert between cycles and wall-clock units given a core frequency.

/// Virtual time, measured in processor cycles.
pub type Cycles = u64;

/// Convert seconds of wall-clock time to cycles at `ghz` GHz.
#[inline]
pub fn secs_to_cycles(secs: f64, ghz: f64) -> Cycles {
    (secs * ghz * 1e9).round() as Cycles
}

/// Convert cycles to seconds at `ghz` GHz.
#[inline]
pub fn cycles_to_secs(cycles: Cycles, ghz: f64) -> f64 {
    cycles as f64 / (ghz * 1e9)
}

/// Convert microseconds to cycles at `ghz` GHz.
#[inline]
pub fn micros_to_cycles(micros: f64, ghz: f64) -> Cycles {
    (micros * ghz * 1e3).round() as Cycles
}

/// Convert cycles to microseconds at `ghz` GHz.
#[inline]
pub fn cycles_to_micros(cycles: Cycles, ghz: f64) -> f64 {
    cycles as f64 / (ghz * 1e3)
}

/// Convert a fractional cycle count to microseconds at `ghz` GHz (for
/// averages, where truncating to whole cycles first would lose precision).
#[inline]
pub fn frac_cycles_to_micros(cycles: f64, ghz: f64) -> f64 {
    cycles / (ghz * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_seconds() {
        let ghz = 2.4;
        let c = secs_to_cycles(1.0, ghz);
        assert_eq!(c, 2_400_000_000);
        let s = cycles_to_secs(c, ghz);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn roundtrip_micros() {
        let ghz = 2.4;
        let c = micros_to_cycles(10.0, ghz);
        assert_eq!(c, 24_000);
        assert!((cycles_to_micros(c, ghz) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_is_zero() {
        assert_eq!(secs_to_cycles(0.0, 2.4), 0);
        assert_eq!(cycles_to_secs(0, 2.4), 0.0);
    }
}
