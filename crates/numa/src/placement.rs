//! Helpers for placing workers and partitions onto cores.
//!
//! ATraPos binds every worker thread to a specific core (paper §IV, "Thread
//! binding") so that each thread only ever touches the socket-local
//! partitions of NUMA-aware data structures.  In the simulator the binding
//! is a mapping from logical workers (or data partitions) to [`CoreId`]s.

use crate::topology::{CoreId, SocketId, Topology};
use serde::{Deserialize, Serialize};

/// An explicit assignment of logical workers/partitions to cores.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorePlacement {
    assignment: Vec<CoreId>,
}

impl CorePlacement {
    /// Build a placement from an explicit assignment vector (index =
    /// worker/partition id).
    pub fn new(assignment: Vec<CoreId>) -> Self {
        Self { assignment }
    }

    /// Number of placed workers.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Whether the placement is empty.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Core assigned to worker `i`.
    pub fn core_of(&self, i: usize) -> CoreId {
        self.assignment[i]
    }

    /// Socket of the core assigned to worker `i`.
    pub fn socket_of(&self, i: usize, topo: &Topology) -> SocketId {
        topo.socket_of(self.assignment[i])
    }

    /// Iterate over `(worker, core)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, CoreId)> + '_ {
        self.assignment.iter().copied().enumerate()
    }

    /// Number of workers placed on each core (indexed by core id).
    pub fn load_per_core(&self, topo: &Topology) -> Vec<usize> {
        let mut load = vec![0usize; topo.num_cores()];
        for &c in &self.assignment {
            load[c.index()] += 1;
        }
        load
    }
}

/// Assign `n` workers to active cores round-robin *across sockets*: worker 0
/// goes to the first core of socket 0, worker 1 to the first core of socket
/// 1, and so on.  This spreads partitions of one table over all sockets — the
/// hardware-oblivious placement the paper calls "Workload-aware" in Figure 6.
pub fn round_robin_by_socket(topo: &Topology, n: usize) -> CorePlacement {
    let sockets = topo.active_sockets();
    assert!(!sockets.is_empty(), "no active sockets");
    let mut per_socket_next: Vec<usize> = vec![0; sockets.len()];
    let mut assignment = Vec::with_capacity(n);
    for s in 0..n {
        // Walk the sockets round-robin; wrap the per-socket core index when
        // all cores of the socket have been used.
        let socket = sockets[s % sockets.len()];
        let cores = topo.cores_of(socket);
        let idx = per_socket_next[s % sockets.len()];
        assignment.push(cores[idx % cores.len()]);
        per_socket_next[s % sockets.len()] += 1;
    }
    CorePlacement::new(assignment)
}

/// Assign `n` workers to active cores by filling sockets one after another:
/// workers 0..k go to socket 0's cores, the next k to socket 1, etc.  This
/// keeps consecutive workers (and thus consecutive partitions of one table)
/// on the same socket.
pub fn socket_fill(topo: &Topology, n: usize) -> CorePlacement {
    let cores = topo.active_cores();
    assert!(!cores.is_empty(), "no active cores");
    let assignment = (0..n).map(|i| cores[i % cores.len()]).collect();
    CorePlacement::new(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn socket_fill_packs_sockets_in_order() {
        let topo = Topology::multisocket(4, 4);
        let p = socket_fill(&topo, 8);
        // First 4 workers on socket 0, next 4 on socket 1.
        for i in 0..4 {
            assert_eq!(p.socket_of(i, &topo), SocketId(0));
        }
        for i in 4..8 {
            assert_eq!(p.socket_of(i, &topo), SocketId(1));
        }
    }

    #[test]
    fn round_robin_spreads_across_sockets() {
        let topo = Topology::multisocket(4, 4);
        let p = round_robin_by_socket(&topo, 8);
        let sockets: Vec<SocketId> = (0..8).map(|i| p.socket_of(i, &topo)).collect();
        assert_eq!(
            sockets,
            vec![
                SocketId(0),
                SocketId(1),
                SocketId(2),
                SocketId(3),
                SocketId(0),
                SocketId(1),
                SocketId(2),
                SocketId(3)
            ]
        );
    }

    #[test]
    fn placement_wraps_when_oversubscribed() {
        let topo = Topology::multisocket(2, 2);
        let p = socket_fill(&topo, 10);
        let load = p.load_per_core(&topo);
        assert_eq!(load.iter().sum::<usize>(), 10);
        assert!(load.iter().all(|&l| l >= 2));
    }

    #[test]
    fn placements_skip_failed_sockets() {
        let mut topo = Topology::multisocket(4, 2);
        topo.fail_socket(SocketId(1));
        let p = round_robin_by_socket(&topo, 6);
        for (i, _) in p.iter() {
            assert_ne!(p.socket_of(i, &topo), SocketId(1));
        }
        let p = socket_fill(&topo, 6);
        for (i, _) in p.iter() {
            assert_ne!(p.socket_of(i, &topo), SocketId(1));
        }
    }
}
