//! Interconnect (QPI) and memory-controller traffic accounting.
//!
//! The paper's §III-D uses Intel's Performance Counter Monitor to measure
//! the ratio of interconnect (QPI) to memory-controller (IMC) data traffic
//! and per-link utilization under different memory-allocation policies.  The
//! simulator reproduces those metrics by recording every cross-socket byte.

use crate::clock::{cycles_to_secs, Cycles};
use crate::topology::{SocketId, Topology};
use serde::{Deserialize, Serialize};

/// Machine-wide traffic counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Interconnect {
    n_sockets: usize,
    /// Bytes moved from socket `from` to socket `to`, indexed `[from][to]`.
    link_bytes: Vec<Vec<u64>>,
    /// Bytes served by local memory controllers (no interconnect crossing).
    pub local_memory_bytes: u64,
}

impl Interconnect {
    /// A traffic tracker for a machine with `n_sockets` sockets.
    pub fn new(n_sockets: usize) -> Self {
        Self {
            n_sockets,
            link_bytes: vec![vec![0; n_sockets]; n_sockets],
            local_memory_bytes: 0,
        }
    }

    /// Record `bytes` moving from `from` to `to` (no-op when equal).
    pub fn record(&mut self, from: SocketId, to: SocketId, bytes: u64) {
        if from == to {
            self.local_memory_bytes += bytes;
        } else {
            self.link_bytes[from.index()][to.index()] += bytes;
        }
    }

    /// Record bytes served by a local memory controller.
    pub fn record_local(&mut self, bytes: u64) {
        self.local_memory_bytes += bytes;
    }

    /// Total bytes that crossed any socket boundary.
    pub fn total_cross_socket_bytes(&self) -> u64 {
        self.link_bytes.iter().flatten().sum()
    }

    /// Bytes moved over the (undirected) link between `a` and `b`.
    pub fn link(&self, a: SocketId, b: SocketId) -> u64 {
        self.link_bytes[a.index()][b.index()] + self.link_bytes[b.index()][a.index()]
    }

    /// Ratio of interconnect traffic to memory-controller traffic
    /// (QPI / IMC in the paper's terminology).  Memory-controller traffic is
    /// local bytes plus remote bytes (every remote access is ultimately
    /// served by some controller).
    pub fn qpi_to_imc_ratio(&self) -> f64 {
        let qpi = self.total_cross_socket_bytes() as f64;
        let imc = (self.local_memory_bytes + self.total_cross_socket_bytes()) as f64;
        if imc == 0.0 {
            0.0
        } else {
            qpi / imc
        }
    }

    /// Bandwidth in Gbit/s of `bytes` moved over `elapsed` cycles at the
    /// topology's frequency.  Takes the byte count explicitly — pass a
    /// *delta* of [`Interconnect::total_cross_socket_bytes`] to get the
    /// bandwidth of a measurement window (dividing the cumulative counter
    /// by the cumulative clock yields a running average, not the window's
    /// bandwidth).
    pub fn bandwidth_gbps(bytes: u64, elapsed: Cycles, topo: &Topology) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        let secs = cycles_to_secs(elapsed, topo.frequency_ghz());
        bytes as f64 * 8.0 / 1e9 / secs
    }

    /// Utilization (0..1) of the most-used directed link, given a per-link
    /// bandwidth in GB/s.
    pub fn max_link_utilization(
        &self,
        elapsed: Cycles,
        topo: &Topology,
        link_gbytes_per_sec: f64,
    ) -> f64 {
        if elapsed == 0 || link_gbytes_per_sec <= 0.0 {
            return 0.0;
        }
        let secs = cycles_to_secs(elapsed, topo.frequency_ghz());
        let max_bytes = self.link_bytes.iter().flatten().copied().max().unwrap_or(0) as f64;
        (max_bytes / secs) / (link_gbytes_per_sec * 1e9)
    }

    /// Reset all counters.
    pub fn reset(&mut self) {
        for row in &mut self.link_bytes {
            row.iter_mut().for_each(|b| *b = 0);
        }
        self.local_memory_bytes = 0;
    }

    /// Number of sockets this tracker was built for.
    pub fn num_sockets(&self) -> usize {
        self.n_sockets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_aggregates_traffic() {
        let mut ic = Interconnect::new(4);
        ic.record(SocketId(0), SocketId(1), 100);
        ic.record(SocketId(1), SocketId(0), 50);
        ic.record(SocketId(2), SocketId(2), 999); // local
        assert_eq!(ic.total_cross_socket_bytes(), 150);
        assert_eq!(ic.link(SocketId(0), SocketId(1)), 150);
        assert_eq!(ic.local_memory_bytes, 999);
    }

    #[test]
    fn qpi_imc_ratio_matches_definition() {
        let mut ic = Interconnect::new(2);
        // All-local: ratio ~ 0.
        ic.record_local(1000);
        assert!(ic.qpi_to_imc_ratio() < 1e-9);
        // Add remote traffic equal to local: ratio = 0.5.
        ic.record(SocketId(0), SocketId(1), 1000);
        assert!((ic.qpi_to_imc_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_is_bytes_over_time() {
        let topo = Topology::multisocket(2, 2); // 2.4 GHz
        let mut ic = Interconnect::new(2);
        ic.record(SocketId(0), SocketId(1), 3_000_000_000); // 3 GB
        let one_sec = crate::clock::secs_to_cycles(1.0, topo.frequency_ghz());
        let gbps = Interconnect::bandwidth_gbps(ic.total_cross_socket_bytes(), one_sec, &topo);
        assert!((gbps - 24.0).abs() < 0.1, "got {gbps}");
        assert_eq!(Interconnect::bandwidth_gbps(123, 0, &topo), 0.0);
    }

    #[test]
    fn reset_clears_counters() {
        let mut ic = Interconnect::new(2);
        ic.record(SocketId(0), SocketId(1), 10);
        ic.record_local(20);
        ic.reset();
        assert_eq!(ic.total_cross_socket_bytes(), 0);
        assert_eq!(ic.local_memory_bytes, 0);
    }
}
