//! The simulated machine: topology + cost model + cumulative counters.

use crate::clock::{cycles_to_secs, Cycles};
use crate::cost::CostModel;
use crate::counters::{Breakdown, CoreCounters, Tally};
use crate::ctx::SimCtx;
use crate::interconnect::Interconnect;
use crate::topology::{CoreId, Topology};

/// A multisocket machine under simulation.
///
/// Owns the hardware description (topology, cost model) and the cumulative
/// performance counters (per-core work, interconnect traffic).  Execution
/// engines create short-lived [`SimCtx`] accounting contexts with
/// [`Machine::ctx`] and merge them back with [`Machine::commit`].
#[derive(Debug, Clone)]
pub struct Machine {
    /// Hardware topology (sockets, cores, distances).
    pub topology: Topology,
    /// Cycle cost model.
    pub cost: CostModel,
    /// Cumulative per-core counters.
    cores: Vec<CoreCounters>,
    /// Cumulative interconnect/memory traffic.
    pub interconnect: Interconnect,
}

impl Machine {
    /// Build a machine from a topology and cost model.
    pub fn new(topology: Topology, cost: CostModel) -> Self {
        let n_cores = topology.num_cores();
        let n_sockets = topology.num_sockets();
        Self {
            topology,
            cost,
            cores: vec![CoreCounters::default(); n_cores],
            interconnect: Interconnect::new(n_sockets),
        }
    }

    /// The paper's 8-socket × 10-core platform with Westmere costs.
    pub fn westmere_ex() -> Self {
        Self::new(Topology::westmere_ex_8x10(), CostModel::westmere())
    }

    /// Start an accounting context for `core` at virtual time `start`.
    pub fn ctx(&self, core: CoreId, start: Cycles) -> SimCtx<'_> {
        SimCtx::new(&self.topology, &self.cost, core, start)
    }

    /// Merge a finished step's tally into the machine counters.
    pub fn commit(&mut self, core: CoreId, tally: &Tally) {
        self.cores[core.index()].absorb(tally);
        for &(from, to, bytes) in &tally.traffic {
            self.interconnect.record(from, to, bytes);
        }
        self.interconnect.record_local(tally.local_memory_bytes);
    }

    /// Cumulative counters of one core.
    pub fn core_counters(&self, core: CoreId) -> &CoreCounters {
        &self.cores[core.index()]
    }

    /// Cumulative counters of all cores.
    pub fn all_core_counters(&self) -> &[CoreCounters] {
        &self.cores
    }

    /// Machine-wide instructions retired.
    pub fn total_instructions(&self) -> u64 {
        self.cores.iter().map(|c| c.instructions).sum()
    }

    /// Machine-wide occupied cycles (busy + stall + spin over all cores).
    pub fn total_occupied_cycles(&self) -> Cycles {
        self.cores.iter().map(|c| c.occupied_cycles()).sum()
    }

    /// Machine-wide IPC over occupied cycles.
    ///
    /// This mirrors what a profiler reports on a saturated system: every
    /// core is either doing work, stalled on the memory system, or spinning,
    /// and IPC is instructions retired divided by those cycles (Figure 1).
    pub fn ipc(&self) -> f64 {
        let cycles = self.total_occupied_cycles();
        if cycles == 0 {
            0.0
        } else {
            self.total_instructions() as f64 / cycles as f64
        }
    }

    /// Machine-wide component breakdown.
    pub fn breakdown(&self) -> Breakdown {
        let mut b = Breakdown::new();
        for c in &self.cores {
            b.merge(&c.breakdown);
        }
        b
    }

    /// Convert cycles to seconds at this machine's frequency.
    pub fn secs(&self, cycles: Cycles) -> f64 {
        cycles_to_secs(cycles, self.topology.frequency_ghz())
    }

    /// Reset all counters (topology and cost model are preserved).
    pub fn reset_counters(&mut self) {
        for c in &mut self.cores {
            *c = CoreCounters::default();
        }
        self.interconnect.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Component;
    use crate::topology::SocketId;

    #[test]
    fn commit_accumulates_per_core_and_traffic() {
        let mut m = Machine::new(Topology::multisocket(2, 2), CostModel::westmere());
        let mut ctx = m.ctx(CoreId(0), 0);
        ctx.work(Component::XctExecution, 1000);
        ctx.memory_read(Component::XctExecution, SocketId(1), 128);
        let tally = ctx.finish();
        m.commit(CoreId(0), &tally);
        assert_eq!(m.core_counters(CoreId(0)).instructions, 1000);
        assert_eq!(m.interconnect.total_cross_socket_bytes(), 128);
        assert!(m.ipc() > 0.0 && m.ipc() <= 1.0);
    }

    #[test]
    fn reset_clears_counters_but_keeps_hardware() {
        let mut m = Machine::westmere_ex();
        let mut ctx = m.ctx(CoreId(5), 0);
        ctx.work(Component::Locking, 10);
        let t = ctx.finish();
        m.commit(CoreId(5), &t);
        assert!(m.total_instructions() > 0);
        m.reset_counters();
        assert_eq!(m.total_instructions(), 0);
        assert_eq!(m.topology.num_cores(), 80);
    }

    #[test]
    fn breakdown_merges_components_across_cores() {
        let mut m = Machine::new(Topology::multisocket(2, 2), CostModel::westmere());
        for core in [CoreId(0), CoreId(3)] {
            let mut ctx = m.ctx(core, 0);
            ctx.work(Component::Logging, 100);
            let t = ctx.finish();
            m.commit(core, &t);
        }
        let b = m.breakdown();
        assert_eq!(b.get(Component::Logging), 200);
    }
}
