//! Calibrated cycle costs for the primitive operations of a multisocket
//! machine.
//!
//! All costs are expressed in core cycles.  The defaults
//! ([`CostModel::westmere`]) are calibrated to publicly reported numbers for
//! Intel Westmere-EX class machines (the paper's platform): a socket-local
//! LLC/cache-to-cache transfer costs a few tens of cycles, while a
//! cache-line transfer from a remote socket costs several hundred cycles and
//! grows with the hop distance.  The exact magnitudes are not important for
//! the reproduction; what matters is the *ratio* between local and remote
//! operations, which is what makes centralized data structures collapse on
//! multisockets (paper §III-B).

use crate::clock::Cycles;
use serde::{Deserialize, Serialize};

/// Cycle costs of primitive machine operations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Instructions retired per cycle while executing useful transaction
    /// logic.  OLTP barely exceeds 1 IPC (paper §III-B, ref. \[25\]).
    pub base_ipc: f64,
    /// Instructions retired per cycle while spin-waiting on a lock whose
    /// cache line is locally cached.  Spinning retires instructions quickly,
    /// which is why the centralized design shows *higher* IPC while its
    /// throughput drops (paper Figure 1).
    pub spin_ipc: f64,
    /// L1 hit latency.
    pub l1_hit: Cycles,
    /// Socket-local LLC hit / cache-to-cache transfer within one socket.
    pub llc_local: Cycles,
    /// Base cost of fetching a cache line from another socket's cache.
    pub remote_cache_base: Cycles,
    /// Additional cost per interconnect hop for a remote cache fetch.
    pub remote_cache_per_hop: Cycles,
    /// Local-node DRAM access.
    pub mem_local: Cycles,
    /// Additional DRAM access cost per hop when the memory node is remote.
    pub mem_remote_per_hop: Cycles,
    /// Uncontended, socket-local atomic read-modify-write (CAS) on a line
    /// already in the local cache.
    pub atomic_local: Cycles,
    /// Size of a cache line in bytes (interconnect traffic accounting).
    pub cache_line_bytes: u64,
    /// Fixed cost of a shared-memory message between two threads on
    /// different sockets (used at synchronization points and for the
    /// distributed-transaction communication of shared-nothing designs).
    pub msg_base: Cycles,
    /// Per-byte, per-hop cost of moving message payload across sockets.
    pub msg_per_byte_per_hop: f64,
    /// Per-byte cost of moving message payload within one socket.
    pub msg_local_per_byte: f64,
}

impl CostModel {
    /// Costs calibrated to the paper's 8-socket Westmere-EX platform.
    pub fn westmere() -> Self {
        Self {
            base_ipc: 1.0,
            spin_ipc: 2.2,
            l1_hit: 4,
            llc_local: 45,
            remote_cache_base: 180,
            remote_cache_per_hop: 130,
            mem_local: 200,
            mem_remote_per_hop: 120,
            atomic_local: 24,
            cache_line_bytes: 64,
            msg_base: 600,
            msg_per_byte_per_hop: 0.6,
            msg_local_per_byte: 0.12,
        }
    }

    /// A cost model in which remote accesses cost the same as local ones:
    /// useful for ablations ("what if the hardware were uniform?").
    pub fn uniform() -> Self {
        let w = Self::westmere();
        Self {
            remote_cache_base: w.llc_local,
            remote_cache_per_hop: 0,
            mem_remote_per_hop: 0,
            msg_per_byte_per_hop: w.msg_local_per_byte,
            ..w
        }
    }

    /// Cost of bringing a cache line currently owned `hops` sockets away
    /// into the local cache (0 hops = already on this socket).
    #[inline]
    pub fn cache_transfer(&self, hops: u32) -> Cycles {
        if hops == 0 {
            self.llc_local
        } else {
            self.remote_cache_base + Cycles::from(hops) * self.remote_cache_per_hop
        }
    }

    /// Cost of a DRAM access to a memory node `hops` sockets away.
    #[inline]
    pub fn memory_access(&self, hops: u32) -> Cycles {
        self.mem_local + Cycles::from(hops) * self.mem_remote_per_hop
    }

    /// Cost of an atomic read-modify-write on a line owned `hops` sockets
    /// away (the line has to be transferred in exclusive mode first).
    #[inline]
    pub fn atomic_rmw(&self, hops: u32) -> Cycles {
        if hops == 0 {
            self.atomic_local + self.llc_local
        } else {
            self.atomic_local + self.cache_transfer(hops)
        }
    }

    /// Cost of exchanging a `bytes`-sized message between threads whose
    /// sockets are `hops` apart (0 = same socket).
    #[inline]
    pub fn message(&self, hops: u32, bytes: u64) -> Cycles {
        if hops == 0 {
            (bytes as f64 * self.msg_local_per_byte).round() as Cycles
        } else {
            self.msg_base
                + (bytes as f64 * self.msg_per_byte_per_hop * f64::from(hops)).round() as Cycles
        }
    }

    /// Cycles needed to execute `instructions` instructions of useful work.
    #[inline]
    pub fn work_cycles(&self, instructions: u64) -> Cycles {
        (instructions as f64 / self.base_ipc).ceil() as Cycles
    }

    /// Instructions retired while spin-waiting for `cycles` cycles.
    #[inline]
    pub fn spin_instructions(&self, cycles: Cycles) -> u64 {
        (cycles as f64 * self.spin_ipc).round() as u64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::westmere()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_transfers_are_much_more_expensive_than_local() {
        let c = CostModel::westmere();
        assert!(c.cache_transfer(1) > 4 * c.cache_transfer(0));
        assert!(c.cache_transfer(2) > c.cache_transfer(1));
    }

    #[test]
    fn remote_memory_penalty_is_moderate() {
        // Paper §III-D: accessing remote memory costs < 10% in end-to-end
        // throughput; the raw latency penalty is well under 2x.
        let c = CostModel::westmere();
        let local = c.memory_access(0) as f64;
        let remote = c.memory_access(2) as f64;
        assert!(remote / local < 2.5, "remote/local = {}", remote / local);
        assert!(remote > local);
    }

    #[test]
    fn uniform_model_has_no_remote_penalty() {
        let c = CostModel::uniform();
        assert_eq!(c.cache_transfer(0), c.cache_transfer(2));
        assert_eq!(c.memory_access(0), c.memory_access(3));
    }

    #[test]
    fn message_cost_grows_with_bytes_and_distance() {
        let c = CostModel::westmere();
        assert!(c.message(1, 64) > c.message(0, 64));
        assert!(c.message(2, 1024) > c.message(2, 64));
        assert!(c.message(2, 64) > c.message(1, 64));
    }

    #[test]
    fn work_cycles_respects_ipc() {
        let mut c = CostModel::westmere();
        c.base_ipc = 2.0;
        assert_eq!(c.work_cycles(1000), 500);
        c.base_ipc = 0.5;
        assert_eq!(c.work_cycles(1000), 2000);
    }

    #[test]
    fn atomic_rmw_local_is_cheap_remote_is_not() {
        let c = CostModel::westmere();
        assert!(c.atomic_rmw(0) < 100);
        assert!(c.atomic_rmw(1) > 250);
    }
}
