//! Property-based tests for the hardware-Island machine model: topology
//! metrics, the virtual-time contention primitives, the calibrated cost
//! model, the per-step accounting context, and interconnect traffic
//! bookkeeping.

use atrapos_numa::{
    round_robin_by_socket, socket_fill, AccessKind, Component, ContendedLine, CoreId, CostModel,
    Cycles, Interconnect, Machine, SimCtx, SimResource, SocketId, Topology, WaitMode,
};
use proptest::prelude::*;

fn machine_shape() -> impl Strategy<Value = (usize, usize)> {
    (1usize..=8, 1usize..=10)
}

proptest! {
    // ------------------------------------------------------------------
    // Topology
    // ------------------------------------------------------------------

    /// The inter-socket distance matrix of every preset is a metric-like
    /// function: zero on the diagonal, symmetric, positive off-diagonal, and
    /// bounded by the diameter.
    #[test]
    fn topology_distances_are_symmetric_and_bounded((sockets, cores) in machine_shape()) {
        let topo = Topology::multisocket(sockets, cores);
        prop_assert_eq!(topo.num_sockets(), sockets);
        prop_assert_eq!(topo.num_cores(), sockets * cores);
        let diameter = topo.diameter();
        for a in 0..sockets {
            for b in 0..sockets {
                let (sa, sb) = (SocketId(a as u16), SocketId(b as u16));
                let d = topo.distance(sa, sb);
                prop_assert_eq!(d, topo.distance(sb, sa));
                prop_assert!(d <= diameter);
                if a == b {
                    prop_assert_eq!(d, 0);
                } else {
                    prop_assert!(d >= 1);
                }
            }
        }
        if sockets > 1 {
            prop_assert!(topo.average_distance() > 0.0);
        }
    }

    /// Core → socket assignment is consistent with socket → cores, and
    /// failing/restoring sockets updates the active sets exactly.
    #[test]
    fn topology_core_socket_maps_are_consistent(
        (sockets, cores) in machine_shape(),
        to_fail in prop::collection::btree_set(0usize..8, 0..4),
    ) {
        let mut topo = Topology::multisocket(sockets, cores);
        for s in 0..sockets {
            let socket = SocketId(s as u16);
            for &core in topo.cores_of(socket) {
                prop_assert_eq!(topo.socket_of(core), socket);
            }
            prop_assert_eq!(topo.cores_of(socket).len(), cores);
        }
        // Fail a subset of sockets, keeping at least one alive.
        let mut failed = Vec::new();
        for s in to_fail {
            if s < sockets && topo.active_sockets().len() > 1 {
                topo.fail_socket(SocketId(s as u16));
                failed.push(SocketId(s as u16));
            }
        }
        prop_assert_eq!(topo.active_sockets().len(), sockets - failed.len());
        prop_assert_eq!(topo.num_active_cores(), (sockets - failed.len()) * cores);
        for &s in &failed {
            prop_assert!(!topo.is_active(s));
            for &core in topo.cores_of(s) {
                prop_assert!(!topo.active_cores().contains(&core));
            }
        }
        for &s in &failed {
            topo.restore_socket(s);
        }
        prop_assert_eq!(topo.num_active_cores(), sockets * cores);
    }

    /// The mesh (Tilera-style) preset produces hop distances consistent with
    /// a Manhattan grid: bounded by `(nx-1)+(ny-1)` and symmetric.
    #[test]
    fn mesh_topology_distances_follow_the_grid(nx in 1usize..=6, ny in 1usize..=6, cores in 1usize..=4) {
        let topo = Topology::mesh(nx, ny, cores);
        prop_assert_eq!(topo.num_sockets(), nx * ny);
        let max_hops = (nx - 1 + ny - 1) as u32;
        prop_assert!(topo.diameter() <= max_hops);
        for a in 0..(nx * ny) {
            for b in 0..(nx * ny) {
                let d = topo.distance(SocketId(a as u16), SocketId(b as u16));
                prop_assert_eq!(d, topo.distance(SocketId(b as u16), SocketId(a as u16)));
                // Manhattan distance of the grid coordinates.
                let (ax, ay) = (a % nx, a / nx);
                let (bx, by) = (b % nx, b / nx);
                let manhattan = (ax.abs_diff(bx) + ay.abs_diff(by)) as u32;
                prop_assert_eq!(d, manhattan);
            }
        }
    }

    // ------------------------------------------------------------------
    // Placement helpers
    // ------------------------------------------------------------------

    /// Round-robin placement spreads threads so that no core is assigned
    /// more than one thread above any other, while socket-fill packs them
    /// socket by socket.
    #[test]
    fn placement_strategies_cover_requested_threads((sockets, cores) in machine_shape(), n in 1usize..100) {
        let topo = Topology::multisocket(sockets, cores);
        for placement in [round_robin_by_socket(&topo, n), socket_fill(&topo, n)] {
            prop_assert_eq!(placement.len(), n);
            let per_core = placement.load_per_core(&topo);
            prop_assert_eq!(per_core.iter().sum::<usize>(), n);
            for (i, _) in placement.iter() {
                prop_assert!(placement.core_of(i).index() < topo.num_cores());
            }
        }
        let rr = round_robin_by_socket(&topo, n);
        let loads = rr.load_per_core(&topo);
        let max = loads.iter().copied().max().unwrap_or(0);
        let min = loads.iter().copied().min().unwrap_or(0);
        prop_assert!(max - min <= 1, "round-robin should be balanced: {loads:?}");
    }

    // ------------------------------------------------------------------
    // Cost model
    // ------------------------------------------------------------------

    /// Transfer, memory, atomic, and message costs are monotone in hop
    /// distance and message size, and the uniform ablation model removes the
    /// remote penalty entirely.
    #[test]
    fn cost_model_is_monotone_in_distance_and_size(
        hops_a in 0u32..4,
        hops_b in 0u32..4,
        bytes_a in 1u64..8_192,
        bytes_b in 1u64..8_192,
        instructions in 0u64..100_000,
    ) {
        let c = CostModel::westmere();
        let (lo_hops, hi_hops) = (hops_a.min(hops_b), hops_a.max(hops_b));
        let (lo_bytes, hi_bytes) = (bytes_a.min(bytes_b), bytes_a.max(bytes_b));
        prop_assert!(c.cache_transfer(lo_hops) <= c.cache_transfer(hi_hops));
        prop_assert!(c.memory_access(lo_hops) <= c.memory_access(hi_hops));
        prop_assert!(c.atomic_rmw(lo_hops) <= c.atomic_rmw(hi_hops));
        prop_assert!(c.message(lo_hops, lo_bytes) <= c.message(hi_hops, hi_bytes));
        // Work cycles follow the base IPC exactly.
        prop_assert_eq!(c.work_cycles(instructions), (instructions as f64 / c.base_ipc).ceil() as Cycles);
        // The uniform machine has no remote penalty at all.
        let u = CostModel::uniform();
        prop_assert_eq!(u.cache_transfer(0), u.cache_transfer(hi_hops));
        prop_assert_eq!(u.memory_access(0), u.memory_access(hi_hops));
    }

    // ------------------------------------------------------------------
    // Contended cache lines
    // ------------------------------------------------------------------

    /// Exclusive (RMW) accesses to one cache line serialize in virtual time:
    /// however the request times interleave, no two booked exclusive spans
    /// overlap, and every access from a different socket than the previous
    /// owner is counted as remote.
    #[test]
    fn contended_line_serializes_rmw_accesses(
        accesses in prop::collection::vec((0u32..16, 0u64..10_000), 1..60),
    ) {
        let topo = Topology::multisocket(4, 4);
        let cost = CostModel::westmere();
        let mut line = ContendedLine::new(SocketId(0));
        let mut spans: Vec<(Cycles, Cycles)> = Vec::new();
        let mut rmws = 0u64;
        for (core, start) in accesses {
            let mut ctx = SimCtx::new(&topo, &cost, CoreId(core), start);
            let begin = ctx.now();
            ctx.access_line(Component::XctManagement, &mut line, AccessKind::Rmw, WaitMode::Stall);
            rmws += 1;
            let end = ctx.now();
            prop_assert!(end > begin, "an RMW always consumes cycles");
            spans.push((begin, end));
        }
        prop_assert_eq!(line.rmw_count, rmws);
        prop_assert!(line.busy_horizon() >= spans.iter().map(|&(_, e)| e).max().unwrap_or(0));
        // The line's busy timeline keeps disjoint intervals (the booked
        // exclusive spans never overlap), so the total wait it reports is
        // consistent with serialization.
        prop_assert!(line.total_wait <= spans.iter().map(|&(s, e)| e - s).sum::<u64>());
    }

    /// A mutual-exclusion resource admits only one holder at a time: a
    /// requester arriving while the resource is held is pushed to at least
    /// the current holder's release time.
    #[test]
    fn sim_resource_holders_never_overlap(
        requests in prop::collection::vec((0u32..8, 0u64..5_000, 100u64..3_000), 1..40),
    ) {
        let topo = Topology::multisocket(4, 2);
        let cost = CostModel::westmere();
        let mut res = SimResource::new(SocketId(0));
        let mut last_release: Cycles = 0;
        let mut sorted = requests;
        sorted.sort_by_key(|&(_, start, _)| start);
        for (core, start, hold) in sorted {
            let mut ctx = SimCtx::new(&topo, &cost, CoreId(core), start);
            ctx.acquire_resource(Component::Locking, &mut res, WaitMode::Spin);
            let acquired_at = ctx.now();
            prop_assert!(
                acquired_at >= last_release.min(res.busy_until()),
                "acquisition at {acquired_at} before the previous release {last_release}"
            );
            ctx.work(Component::Locking, hold);
            ctx.release_resource(&mut res);
            last_release = ctx.now();
            prop_assert_eq!(res.busy_until(), last_release);
        }
        prop_assert_eq!(res.acquisitions, res.contended + (res.acquisitions - res.contended));
    }

    // ------------------------------------------------------------------
    // Simulation context accounting
    // ------------------------------------------------------------------

    /// Every accounting operation advances the virtual clock by exactly the
    /// cycles it reports, and the final tally's components sum to the
    /// elapsed time.
    #[test]
    fn sim_ctx_accounting_is_conservative(
        ops in prop::collection::vec((0usize..4, 1u64..5_000), 1..50),
        core in 0u32..8,
        start in 0u64..1_000_000,
    ) {
        let topo = Topology::multisocket(4, 2);
        let cost = CostModel::westmere();
        let mut ctx = SimCtx::new(&topo, &cost, CoreId(core), start);
        prop_assert_eq!(ctx.socket(), topo.socket_of(CoreId(core)));
        for (kind, amount) in ops {
            let before = ctx.now();
            match kind {
                0 => { ctx.work(Component::XctExecution, amount); }
                1 => { ctx.stall(Component::Locking, amount); }
                2 => { ctx.spin(Component::Latching, amount); }
                _ => { ctx.memory_read(Component::XctExecution, SocketId((amount % 4) as u16), amount); }
            }
            prop_assert!(ctx.now() >= before);
        }
        let elapsed = ctx.elapsed();
        let tally = ctx.finish();
        prop_assert_eq!(tally.end - tally.start, elapsed);
        prop_assert_eq!(tally.start, start);
        // Busy + stall + spin cycles never exceed the elapsed wall time on
        // this core, and the per-component breakdown matches it exactly.
        prop_assert!(tally.busy_cycles + tally.stall_cycles + tally.spin_cycles <= elapsed);
        prop_assert_eq!(tally.breakdown.total(), elapsed);
    }

    /// Machine-level counters absorb tallies additively: total instructions
    /// and occupied cycles equal the sums over the committed tallies, and
    /// the IPC stays within the spin/base bounds of the cost model.
    #[test]
    fn machine_counters_absorb_tallies_additively(
        steps in prop::collection::vec((0u32..8, 10u64..10_000), 1..40),
    ) {
        let mut machine = Machine::new(Topology::multisocket(4, 2), CostModel::westmere());
        let mut expected_instructions = 0u64;
        let mut now = 0;
        for (core, instructions) in steps {
            let mut ctx = machine.ctx(CoreId(core), now);
            ctx.work(Component::XctExecution, instructions);
            expected_instructions += instructions;
            now = ctx.now();
            let tally = ctx.finish();
            machine.commit(CoreId(core), &tally);
        }
        prop_assert_eq!(machine.total_instructions(), expected_instructions);
        prop_assert!(machine.total_occupied_cycles() > 0);
        let ipc = machine.ipc();
        let c = CostModel::westmere();
        prop_assert!(ipc > 0.0 && ipc <= c.spin_ipc.max(c.base_ipc) + 1e-9);
        machine.reset_counters();
        prop_assert_eq!(machine.total_instructions(), 0);
        prop_assert_eq!(machine.total_occupied_cycles(), 0);
    }

    // ------------------------------------------------------------------
    // Interconnect traffic
    // ------------------------------------------------------------------

    /// Link-level traffic accounting is conservative: the per-link counters
    /// sum to the total cross-socket bytes, local traffic never appears on a
    /// link, and the QPI/IMC ratio is the cross-socket to local byte ratio.
    #[test]
    fn interconnect_accounting_is_conservative(
        transfers in prop::collection::vec((0u16..4, 0u16..4, 1u64..4_096), 0..60),
        local in prop::collection::vec(1u64..4_096, 0..20),
    ) {
        let topo = Topology::multisocket(4, 2);
        let mut ic = Interconnect::new(4);
        let mut cross = 0u64;
        let mut local_total = 0u64;
        for &(a, b, bytes) in &transfers {
            ic.record(SocketId(a), SocketId(b), bytes);
            if a != b {
                cross += bytes;
            } else {
                local_total += bytes;
            }
        }
        for &bytes in &local {
            ic.record_local(bytes);
            local_total += bytes;
        }
        prop_assert_eq!(ic.total_cross_socket_bytes(), cross);
        // Per-link counters cover exactly the cross-socket bytes.
        let mut link_sum = 0u64;
        for a in 0..4u16 {
            for b in (a + 1)..4u16 {
                link_sum += ic.link(SocketId(a), SocketId(b));
            }
        }
        prop_assert_eq!(link_sum, cross);
        // QPI/IMC ratio: every remote access also hits a memory controller,
        // so the denominator is local + remote bytes.
        let ratio = ic.qpi_to_imc_ratio();
        if local_total + cross > 0 {
            let expected = cross as f64 / (local_total + cross) as f64;
            prop_assert!((ratio - expected).abs() < 1e-9);
            prop_assert!((0.0..=1.0).contains(&ratio));
        }
        prop_assert!(ic.max_link_utilization(1_000_000, &topo, 12.8) >= 0.0);
        ic.reset();
        prop_assert_eq!(ic.total_cross_socket_bytes(), 0);
    }
}
