//! # atrapos-storage
//!
//! A from-scratch, Shore-MT-like in-memory storage manager substrate for the
//! ATraPos reproduction.
//!
//! The ATraPos paper prototypes its design on top of the Shore-MT storage
//! manager.  This crate provides the pieces of that substrate whose
//! behaviour the paper studies, each in both a *centralized* variant (the
//! baseline whose contention collapses on multisockets) and a
//! *NUMA-partitioned* variant (the hardware-aware redesign of paper §IV):
//!
//! * relational schema, records, and keys ([`schema`], [`record`]);
//! * a B+-tree and the multi-rooted B+-tree used by physiological
//!   partitioning ([`btree`], [`mrbtree`]);
//! * heap tables with per-partition physical placement ([`table`],
//!   [`database`]);
//! * a hierarchical lock manager with centralized and partition-local lock
//!   tables ([`lock`], [`lock_manager`]);
//! * page/structure latches ([`latch`]);
//! * an ARIES-style log manager with a centralized buffer and a per-socket
//!   partitioned variant ([`log`]);
//! * transaction descriptors and the list of active transactions —
//!   centralized lock-free list vs per-socket lists ([`txn`], [`txn_list`]);
//! * the shared state read/write locks of §IV, centralized vs partitioned
//!   ([`srwlock`]);
//! * a two-phase-commit implementation for the shared-nothing
//!   configurations ([`two_phase_commit`]);
//! * memory-placement policies for the remote-memory experiment
//!   ([`memory`]).
//!
//! All structures hold real data (real trees, real lock queues, real log
//! sequence numbers); their *timing* is accounted through the
//! [`atrapos_numa::SimCtx`] virtual-time context so that the multisocket
//! contention behaviour the paper measures can be reproduced
//! deterministically on any host.

pub mod btree;
pub mod database;
pub mod error;
pub mod latch;
pub mod lock;
pub mod lock_manager;
pub mod log;
pub mod memory;
pub mod mrbtree;
pub mod record;
pub mod schema;
pub mod srwlock;
pub mod table;
pub mod two_phase_commit;
pub mod txn;
pub mod txn_list;

pub use btree::BTree;
pub use database::Database;
pub use error::{StorageError, StorageResult};
pub use latch::LatchSet;
pub use lock::{LockId, LockMode};
pub use lock_manager::{LockManager, LockManagerKind};
pub use log::{LogManager, LogManagerKind, LogRecordKind};
pub use memory::MemoryPolicy;
pub use mrbtree::MrBTree;
pub use record::{Key, Record, Value};
pub use schema::{Column, ColumnType, Schema, TableId};
pub use srwlock::StateRwLock;
pub use table::Table;
pub use two_phase_commit::{TwoPcOutcome, TwoPhaseCommit};
pub use txn::{Txn, TxnId, TxnState};
pub use txn_list::TxnList;
