//! A from-scratch in-memory B+-tree mapping [`Key`]s to [`Record`]s.
//!
//! This is the physical index structure underlying every table partition.
//! The multi-rooted B-tree of physiological partitioning
//! ([`crate::mrbtree::MrBTree`]) is a collection of these trees, one per
//! logical partition.
//!
//! Design notes:
//! * Classic B+-tree: records live only in leaves; internal nodes hold
//!   separator keys.
//! * Deletion is *lazy*: entries are removed from leaves without rebalancing
//!   (a common choice in real systems, e.g. PostgreSQL only reclaims empty
//!   pages asynchronously).  Lookups, scans, and inserts remain correct;
//!   structural compaction happens when a partition is rebuilt during
//!   repartitioning.
//! * `split_off` / `merge_from` implement the physical part of the
//!   ATraPos repartitioning actions (paper §V-D).

use crate::record::{Key, Record};
use serde::{Deserialize, Serialize};

/// Maximum number of keys in a node.
const ORDER: usize = 64;

/// A B+-tree from [`Key`] to [`Record`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BTree {
    root: Node,
    len: usize,
    /// Cached height (1 = a single leaf).  Index-probe costs are charged
    /// per level on every simulated access, so the height is maintained
    /// incrementally instead of walked each time: it only changes on a
    /// root split or a bulk rebuild (deletion is lazy and never shrinks
    /// the tree).
    height: usize,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf(Leaf),
    Internal(Internal),
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct Leaf {
    keys: Vec<Key>,
    values: Vec<Record>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Internal {
    /// Separator keys; `children[i]` holds keys `< keys[i]`,
    /// `children[i+1]` holds keys `>= keys[i]`.
    keys: Vec<Key>,
    children: Vec<Node>,
}

impl Default for BTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BTree {
    /// An empty tree.
    pub fn new() -> Self {
        Self {
            root: Node::Leaf(Leaf::default()),
            len: 0,
            height: 1,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 = a single leaf).  Index-probe costs charged by
    /// the table layer scale with this.
    #[inline]
    pub fn height(&self) -> usize {
        debug_assert_eq!(self.height, self.walk_height());
        self.height
    }

    /// Height computed by walking the leftmost path (invariant check).
    fn walk_height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Internal(internal) = node {
            h += 1;
            node = &internal.children[0];
        }
        h
    }

    /// Look up a key.
    pub fn get(&self, key: &Key) -> Option<&Record> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf(leaf) => {
                    return leaf.keys.binary_search(key).ok().map(|i| &leaf.values[i]);
                }
                Node::Internal(internal) => {
                    node = &internal.children[internal.child_index(key)];
                }
            }
        }
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &Key) -> Option<&mut Record> {
        let mut node = &mut self.root;
        loop {
            match node {
                Node::Leaf(leaf) => {
                    return match leaf.keys.binary_search(key) {
                        Ok(i) => Some(&mut leaf.values[i]),
                        Err(_) => None,
                    };
                }
                Node::Internal(internal) => {
                    let idx = internal.child_index(key);
                    node = &mut internal.children[idx];
                }
            }
        }
    }

    /// Whether the key is present.
    pub fn contains(&self, key: &Key) -> bool {
        self.get(key).is_some()
    }

    /// Insert a key/record pair.  Returns the previous record if the key was
    /// already present (the pair is replaced).
    pub fn insert(&mut self, key: Key, record: Record) -> Option<Record> {
        let (replaced, split) = self.root.insert(key, record);
        if let Some((sep, right)) = split {
            let old_root = std::mem::replace(&mut self.root, Node::Leaf(Leaf::default()));
            self.root = Node::Internal(Internal {
                keys: vec![sep],
                children: vec![old_root, right],
            });
            self.height += 1;
        }
        if replaced.is_none() {
            self.len += 1;
        }
        replaced
    }

    /// Remove a key.  Returns the removed record, if any.
    pub fn remove(&mut self, key: &Key) -> Option<Record> {
        let removed = self.root.remove(key);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// Smallest key in the tree.
    pub fn min_key(&self) -> Option<&Key> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf(leaf) => return leaf.keys.first(),
                Node::Internal(internal) => {
                    // Lazy deletion can leave empty leaves; fall back to a
                    // full scan if the leftmost path is empty.
                    if let Node::Leaf(l) = &internal.children[0] {
                        if l.keys.is_empty() {
                            return self.iter().next().map(|(k, _)| k);
                        }
                    }
                    node = &internal.children[0];
                }
            }
        }
    }

    /// Largest key in the tree.
    pub fn max_key(&self) -> Option<&Key> {
        self.iter().last().map(|(k, _)| k)
    }

    /// In-order iterator over `(key, record)` pairs.
    pub fn iter(&self) -> Iter<'_> {
        Iter::new(&self.root)
    }

    /// Collect all entries whose keys are in `[from, to)`.  `None` bounds are
    /// unbounded.
    pub fn range(&self, from: Option<&Key>, to: Option<&Key>) -> Vec<(&Key, &Record)> {
        // A full iterator with early termination keeps the code simple; the
        // workloads only scan short ranges relative to table sizes, and the
        // simulator charges range costs independently of this
        // implementation.
        let mut out = Vec::new();
        for (k, v) in self.iter() {
            if let Some(f) = from {
                if k < f {
                    continue;
                }
            }
            if let Some(t) = to {
                if k >= t {
                    break;
                }
            }
            out.push((k, v));
        }
        out
    }

    /// Build a tree from key-sorted, duplicate-free pairs.
    pub fn bulk_load(pairs: Vec<(Key, Record)>) -> Self {
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 < w[1].0),
            "bulk_load requires sorted unique keys"
        );
        let len = pairs.len();
        if len == 0 {
            return Self::new();
        }
        // Fill leaves to ~3/4 of capacity.
        let per_leaf = (ORDER * 3 / 4).max(1);
        let mut leaves: Vec<(Key, Node)> = Vec::with_capacity(len / per_leaf + 1);
        let mut it = pairs.into_iter().peekable();
        while it.peek().is_some() {
            let chunk: Vec<(Key, Record)> = it.by_ref().take(per_leaf).collect();
            let first = chunk[0].0.clone();
            let (keys, values) = chunk.into_iter().unzip();
            leaves.push((first, Node::Leaf(Leaf { keys, values })));
        }
        // Build internal levels bottom-up.
        let mut height = 1;
        let mut level = leaves;
        while level.len() > 1 {
            height += 1;
            let per_node = (ORDER * 3 / 4).max(2);
            let mut next = Vec::with_capacity(level.len() / per_node + 1);
            let mut it = level.into_iter().peekable();
            while it.peek().is_some() {
                let chunk: Vec<(Key, Node)> = it.by_ref().take(per_node + 1).collect();
                let first = chunk[0].0.clone();
                let mut keys = Vec::with_capacity(chunk.len().saturating_sub(1));
                let mut children = Vec::with_capacity(chunk.len());
                for (i, (k, n)) in chunk.into_iter().enumerate() {
                    if i > 0 {
                        keys.push(k);
                    }
                    children.push(n);
                }
                next.push((first, Node::Internal(Internal { keys, children })));
            }
            level = next;
        }
        let root = level.into_iter().next().map(|(_, n)| n).unwrap();
        Self { root, len, height }
    }

    /// Split the tree at `boundary`: entries with keys `>= boundary` are
    /// removed from `self` and returned as a new tree.  This is the physical
    /// *split* repartitioning action.
    pub fn split_off(&mut self, boundary: &Key) -> BTree {
        let mut left = Vec::new();
        let mut right = Vec::new();
        for (k, v) in self.iter() {
            if k < boundary {
                left.push((k.clone(), v.clone()));
            } else {
                right.push((k.clone(), v.clone()));
            }
        }
        *self = BTree::bulk_load(left);
        BTree::bulk_load(right)
    }

    /// Merge all entries of `other` into `self`.  This is the physical
    /// *merge* repartitioning action.  Keys of `other` overwrite equal keys
    /// in `self` (the caller guarantees disjoint ranges in normal
    /// operation).
    pub fn merge_from(&mut self, other: BTree) {
        // When the ranges are disjoint and adjacent, a rebuild keeps the
        // result compact; otherwise plain inserts would work too.
        let mut all: Vec<(Key, Record)> =
            self.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        let mut incoming: Vec<(Key, Record)> =
            other.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        all.append(&mut incoming);
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all.dedup_by(|a, b| a.0 == b.0);
        *self = BTree::bulk_load(all);
    }

    /// Verify the B+-tree structural invariants (key order within nodes,
    /// separator correctness, length).  Used by tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut count = 0usize;
        let mut last: Option<&Key> = None;
        for (k, _) in self.iter() {
            if let Some(prev) = last {
                if prev >= k {
                    return Err(format!("keys out of order: {prev} >= {k}"));
                }
            }
            last = Some(k);
            count += 1;
        }
        if count != self.len {
            return Err(format!(
                "len mismatch: counted {count}, stored {}",
                self.len
            ));
        }
        if self.height != self.walk_height() {
            return Err(format!(
                "height mismatch: cached {}, actual {}",
                self.height,
                self.walk_height()
            ));
        }
        self.root.check(None, None)
    }
}

impl Internal {
    /// Index of the child that may contain `key`.
    #[inline]
    fn child_index(&self, key: &Key) -> usize {
        match self.keys.binary_search(key) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }
}

impl Node {
    /// Insert, returning (replaced value, optional split: (separator, right sibling)).
    fn insert(&mut self, key: Key, record: Record) -> (Option<Record>, Option<(Key, Node)>) {
        match self {
            Node::Leaf(leaf) => match leaf.keys.binary_search(&key) {
                Ok(i) => {
                    let old = std::mem::replace(&mut leaf.values[i], record);
                    (Some(old), None)
                }
                Err(i) => {
                    leaf.keys.insert(i, key);
                    leaf.values.insert(i, record);
                    if leaf.keys.len() > ORDER {
                        let mid = leaf.keys.len() / 2;
                        let right_keys = leaf.keys.split_off(mid);
                        let right_vals = leaf.values.split_off(mid);
                        let sep = right_keys[0].clone();
                        (
                            None,
                            Some((
                                sep,
                                Node::Leaf(Leaf {
                                    keys: right_keys,
                                    values: right_vals,
                                }),
                            )),
                        )
                    } else {
                        (None, None)
                    }
                }
            },
            Node::Internal(internal) => {
                let idx = internal.child_index(&key);
                let (replaced, split) = internal.children[idx].insert(key, record);
                if let Some((sep, right)) = split {
                    internal.keys.insert(idx, sep);
                    internal.children.insert(idx + 1, right);
                    if internal.keys.len() > ORDER {
                        let mid = internal.keys.len() / 2;
                        let sep = internal.keys[mid].clone();
                        let right_keys = internal.keys.split_off(mid + 1);
                        internal.keys.pop(); // drop the separator itself
                        let right_children = internal.children.split_off(mid + 1);
                        return (
                            replaced,
                            Some((
                                sep,
                                Node::Internal(Internal {
                                    keys: right_keys,
                                    children: right_children,
                                }),
                            )),
                        );
                    }
                }
                (replaced, None)
            }
        }
    }

    /// Lazy removal: delete from the leaf without rebalancing.
    fn remove(&mut self, key: &Key) -> Option<Record> {
        match self {
            Node::Leaf(leaf) => match leaf.keys.binary_search(key) {
                Ok(i) => {
                    leaf.keys.remove(i);
                    Some(leaf.values.remove(i))
                }
                Err(_) => None,
            },
            Node::Internal(internal) => {
                let idx = internal.child_index(key);
                internal.children[idx].remove(key)
            }
        }
    }

    /// Check node-local invariants recursively.
    fn check(&self, lower: Option<&Key>, upper: Option<&Key>) -> Result<(), String> {
        match self {
            Node::Leaf(leaf) => {
                if leaf.keys.len() != leaf.values.len() {
                    return Err("leaf keys/values length mismatch".into());
                }
                for k in &leaf.keys {
                    if let Some(lo) = lower {
                        if k < lo {
                            return Err(format!("leaf key {k} below lower bound {lo}"));
                        }
                    }
                    if let Some(hi) = upper {
                        if k >= hi {
                            return Err(format!("leaf key {k} not below upper bound {hi}"));
                        }
                    }
                }
                Ok(())
            }
            Node::Internal(internal) => {
                if internal.children.len() != internal.keys.len() + 1 {
                    return Err("internal children/keys arity mismatch".into());
                }
                if internal.keys.windows(2).any(|w| w[0] >= w[1]) {
                    return Err("internal separator keys out of order".into());
                }
                for (i, child) in internal.children.iter().enumerate() {
                    let lo = if i == 0 {
                        lower
                    } else {
                        Some(&internal.keys[i - 1])
                    };
                    let hi = if i == internal.keys.len() {
                        upper
                    } else {
                        Some(&internal.keys[i])
                    };
                    child.check(lo, hi)?;
                }
                Ok(())
            }
        }
    }
}

/// In-order iterator over a [`BTree`].
pub struct Iter<'a> {
    /// Stack of (internal node, next child index) plus the current leaf.
    stack: Vec<(&'a Internal, usize)>,
    leaf: Option<(&'a Leaf, usize)>,
}

impl<'a> Iter<'a> {
    fn new(root: &'a Node) -> Self {
        let mut it = Iter {
            stack: Vec::new(),
            leaf: None,
        };
        it.descend(root);
        it
    }

    fn descend(&mut self, mut node: &'a Node) {
        loop {
            match node {
                Node::Leaf(leaf) => {
                    self.leaf = Some((leaf, 0));
                    return;
                }
                Node::Internal(internal) => {
                    self.stack.push((internal, 1));
                    node = &internal.children[0];
                }
            }
        }
    }

    fn advance_to_next_leaf(&mut self) -> bool {
        while let Some((internal, next)) = self.stack.pop() {
            if next < internal.children.len() {
                self.stack.push((internal, next + 1));
                self.descend(&internal.children[next]);
                return true;
            }
        }
        self.leaf = None;
        false
    }
}

impl<'a> Iterator for Iter<'a> {
    type Item = (&'a Key, &'a Record);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            match self.leaf {
                Some((leaf, idx)) if idx < leaf.keys.len() => {
                    self.leaf = Some((leaf, idx + 1));
                    return Some((&leaf.keys[idx], &leaf.values[idx]));
                }
                Some(_) => {
                    if !self.advance_to_next_leaf() {
                        return None;
                    }
                }
                None => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Value;

    fn rec(v: i64) -> Record {
        Record::new(vec![Value::Int(v), Value::Int(v * 10)])
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut t = BTree::new();
        for i in 0..500 {
            assert!(t.insert(Key::int(i), rec(i)).is_none());
        }
        assert_eq!(t.len(), 500);
        for i in 0..500 {
            assert_eq!(t.get(&Key::int(i)).unwrap().get(0).as_int(), i);
        }
        assert!(t.get(&Key::int(500)).is_none());
        t.check_invariants().unwrap();
    }

    #[test]
    fn inserts_in_reverse_and_random_order() {
        let mut t = BTree::new();
        for i in (0..300).rev() {
            t.insert(Key::int(i), rec(i));
        }
        // Pseudo-random order.
        for i in 0..300 {
            let k = (i * 7919) % 1000 + 1000;
            t.insert(Key::int(k), rec(k));
        }
        t.check_invariants().unwrap();
        assert!(t.height() >= 2);
        let keys: Vec<i64> = t.iter().map(|(k, _)| k.head_int()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn insert_replaces_existing_key() {
        let mut t = BTree::new();
        t.insert(Key::int(1), rec(1));
        let old = t.insert(Key::int(1), rec(99));
        assert_eq!(old.unwrap().get(0).as_int(), 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&Key::int(1)).unwrap().get(0).as_int(), 99);
    }

    #[test]
    fn remove_deletes_entries() {
        let mut t = BTree::new();
        for i in 0..200 {
            t.insert(Key::int(i), rec(i));
        }
        for i in (0..200).step_by(2) {
            assert!(t.remove(&Key::int(i)).is_some());
        }
        assert_eq!(t.len(), 100);
        for i in 0..200 {
            assert_eq!(t.contains(&Key::int(i)), i % 2 == 1);
        }
        assert!(t.remove(&Key::int(0)).is_none());
        t.check_invariants().unwrap();
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut t = BTree::new();
        t.insert(Key::int(5), rec(5));
        t.get_mut(&Key::int(5)).unwrap().set(1, Value::Int(777));
        assert_eq!(t.get(&Key::int(5)).unwrap().get(1).as_int(), 777);
        assert!(t.get_mut(&Key::int(6)).is_none());
    }

    #[test]
    fn range_scans_respect_bounds() {
        let mut t = BTree::new();
        for i in 0..100 {
            t.insert(Key::int(i), rec(i));
        }
        let r = t.range(Some(&Key::int(10)), Some(&Key::int(20)));
        let got: Vec<i64> = r.iter().map(|(k, _)| k.head_int()).collect();
        assert_eq!(got, (10..20).collect::<Vec<_>>());
        assert_eq!(t.range(None, Some(&Key::int(3))).len(), 3);
        assert_eq!(t.range(Some(&Key::int(97)), None).len(), 3);
    }

    #[test]
    fn bulk_load_matches_incremental_inserts() {
        let pairs: Vec<(Key, Record)> = (0..1000).map(|i| (Key::int(i), rec(i))).collect();
        let bulk = BTree::bulk_load(pairs);
        assert_eq!(bulk.len(), 1000);
        bulk.check_invariants().unwrap();
        for i in 0..1000 {
            assert!(bulk.contains(&Key::int(i)));
        }
        assert_eq!(bulk.min_key().unwrap().head_int(), 0);
        assert_eq!(bulk.max_key().unwrap().head_int(), 999);
    }

    #[test]
    fn split_off_partitions_by_boundary() {
        let mut t = BTree::bulk_load((0..1000).map(|i| (Key::int(i), rec(i))).collect());
        let right = t.split_off(&Key::int(600));
        assert_eq!(t.len(), 600);
        assert_eq!(right.len(), 400);
        assert!(t.max_key().unwrap().head_int() < 600);
        assert!(right.min_key().unwrap().head_int() >= 600);
        t.check_invariants().unwrap();
        right.check_invariants().unwrap();
    }

    #[test]
    fn merge_from_combines_trees() {
        let mut a = BTree::bulk_load((0..500).map(|i| (Key::int(i), rec(i))).collect());
        let b = BTree::bulk_load((500..900).map(|i| (Key::int(i), rec(i))).collect());
        a.merge_from(b);
        assert_eq!(a.len(), 900);
        a.check_invariants().unwrap();
        assert!(a.contains(&Key::int(0)));
        assert!(a.contains(&Key::int(899)));
    }

    #[test]
    fn empty_tree_behaviour() {
        let t = BTree::new();
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert!(t.min_key().is_none());
        assert!(t.max_key().is_none());
        assert_eq!(t.iter().count(), 0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn split_then_merge_roundtrips() {
        let original: Vec<(Key, Record)> = (0..777).map(|i| (Key::int(i), rec(i))).collect();
        let mut t = BTree::bulk_load(original.clone());
        let right = t.split_off(&Key::int(300));
        t.merge_from(right);
        assert_eq!(t.len(), 777);
        let back: Vec<i64> = t.iter().map(|(k, _)| k.head_int()).collect();
        assert_eq!(back, (0..777).collect::<Vec<_>>());
    }
}
