//! Values, records, and keys.

use crate::schema::{ColumnType, Schema};
use bytes::{BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A single column value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// Variable-length string.
    Text(String),
    /// 64-bit float (ordered by total order; never used in keys by the
    /// built-in workloads).
    Double(f64),
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            // Heterogeneous comparisons order by type tag; they only occur
            // if a caller mixes key shapes, which the tables reject anyway.
            (Int(_), _) => Ordering::Less,
            (_, Int(_)) => Ordering::Greater,
            (Text(_), _) => Ordering::Less,
            (_, Text(_)) => Ordering::Greater,
        }
    }
}

impl Value {
    /// The column type this value belongs to.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Value::Int(_) => ColumnType::Int,
            Value::Text(_) => ColumnType::Text,
            Value::Double(_) => ColumnType::Double,
        }
    }

    /// Extract an integer, panicking on type mismatch (used by workloads
    /// that know their schema).
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            other => panic!("expected Int, got {other:?}"),
        }
    }

    /// Extract a float.
    pub fn as_double(&self) -> f64 {
        match self {
            Value::Double(v) => *v,
            Value::Int(v) => *v as f64,
            other => panic!("expected Double, got {other:?}"),
        }
    }

    /// Extract a string slice.
    pub fn as_text(&self) -> &str {
        match self {
            Value::Text(v) => v,
            other => panic!("expected Text, got {other:?}"),
        }
    }

    /// Approximate in-memory size in bytes.
    pub fn size_bytes(&self) -> u64 {
        match self {
            Value::Int(_) | Value::Double(_) => 8,
            Value::Text(s) => s.len() as u64,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Text(v) => write!(f, "'{v}'"),
            Value::Double(v) => write!(f, "{v}"),
        }
    }
}

/// A (possibly composite) key: the primary-key column values in key order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize, Hash)]
pub struct Key(Vec<KeyValue>);

/// Key-safe value (hashable); floats are not allowed in keys.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize, Hash)]
pub enum KeyValue {
    /// Integer key component.
    Int(i64),
    /// Text key component.
    Text(String),
}

impl From<Value> for KeyValue {
    fn from(v: Value) -> Self {
        match v {
            Value::Int(i) => KeyValue::Int(i),
            Value::Text(s) => KeyValue::Text(s),
            Value::Double(_) => panic!("floating-point values cannot be used as keys"),
        }
    }
}

impl From<KeyValue> for Value {
    fn from(v: KeyValue) -> Self {
        match v {
            KeyValue::Int(i) => Value::Int(i),
            KeyValue::Text(s) => Value::Text(s),
        }
    }
}

impl Key {
    /// Build a key from raw values.
    pub fn from(values: Vec<Value>) -> Self {
        assert!(!values.is_empty(), "keys must have at least one component");
        Key(values.into_iter().map(KeyValue::from).collect())
    }

    /// A single-integer key (the common case for the microbenchmarks and
    /// TATP).
    pub fn int(v: i64) -> Self {
        Key(vec![KeyValue::Int(v)])
    }

    /// A composite integer key (e.g. TPC-C `(w_id, d_id, o_id)`).
    pub fn ints(vs: &[i64]) -> Self {
        assert!(!vs.is_empty());
        Key(vs.iter().map(|&v| KeyValue::Int(v)).collect())
    }

    /// Key components.
    pub fn components(&self) -> &[KeyValue] {
        &self.0
    }

    /// First component as an integer (panics if not an int key).
    pub fn head_int(&self) -> i64 {
        match &self.0[0] {
            KeyValue::Int(v) => *v,
            other => panic!("expected Int key head, got {other:?}"),
        }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the key has no components (never true for constructed keys).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Approximate encoded size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.0
            .iter()
            .map(|v| match v {
                KeyValue::Int(_) => 8,
                KeyValue::Text(s) => s.len() as u64,
            })
            .sum()
    }

    /// Serialize into an order-preserving byte string (useful for debugging
    /// and for hashing keys across instance boundaries).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16 * self.0.len());
        for v in &self.0 {
            match v {
                KeyValue::Int(i) => {
                    buf.put_u8(0x01);
                    // Flip the sign bit so that the byte order matches the
                    // numeric order.
                    buf.put_u64((*i as u64) ^ (1 << 63));
                }
                KeyValue::Text(s) => {
                    buf.put_u8(0x02);
                    buf.put_slice(s.as_bytes());
                    buf.put_u8(0x00);
                }
            }
        }
        buf.freeze()
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            match v {
                KeyValue::Int(x) => write!(f, "{x}")?,
                KeyValue::Text(s) => write!(f, "'{s}'")?,
            }
        }
        write!(f, ")")
    }
}

/// A tuple: one value per column of the table schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    values: Vec<Value>,
}

impl Record {
    /// Build a record from values.
    pub fn new(values: Vec<Value>) -> Self {
        Self { values }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Column values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value of column `i`.
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// Overwrite column `i`.
    pub fn set(&mut self, i: usize, v: Value) {
        self.values[i] = v;
    }

    /// Extract the primary key of this record according to `schema`.
    pub fn key(&self, schema: &Schema) -> Key {
        Key::from(
            schema
                .primary_key
                .iter()
                .map(|&i| self.values[i].clone())
                .collect(),
        )
    }

    /// Whether the record matches the schema's column count and types.
    pub fn conforms_to(&self, schema: &Schema) -> bool {
        self.values.len() == schema.columns.len()
            && self
                .values
                .iter()
                .zip(&schema.columns)
                .all(|(v, c)| v.column_type() == c.ty)
    }

    /// Approximate in-memory size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.values.iter().map(Value::size_bytes).sum()
    }
}

impl From<Vec<Value>> for Record {
    fn from(values: Vec<Value>) -> Self {
        Record::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};

    #[test]
    fn integer_keys_order_numerically() {
        assert!(Key::int(-5) < Key::int(3));
        assert!(Key::int(3) < Key::int(30));
        assert_eq!(Key::int(7), Key::int(7));
    }

    #[test]
    fn composite_keys_order_lexicographically() {
        assert!(Key::ints(&[1, 5]) < Key::ints(&[2, 0]));
        assert!(Key::ints(&[1, 5]) < Key::ints(&[1, 6]));
        assert!(Key::ints(&[1]) < Key::ints(&[1, 0]));
    }

    #[test]
    fn key_encoding_preserves_integer_order() {
        let keys = [-100i64, -1, 0, 1, 5, 1_000_000];
        for w in keys.windows(2) {
            let a = Key::int(w[0]).encode();
            let b = Key::int(w[1]).encode();
            assert!(a < b, "{:?} should sort before {:?}", w[0], w[1]);
        }
    }

    #[test]
    #[should_panic(expected = "floating-point")]
    fn float_keys_are_rejected() {
        let _ = Key::from(vec![Value::Double(1.5)]);
    }

    #[test]
    fn record_key_extraction_follows_schema() {
        let schema = Schema::new(
            "t",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("b", ColumnType::Text),
                Column::new("c", ColumnType::Int),
            ],
            vec![2, 0],
        );
        let r = Record::new(vec![Value::Int(1), Value::from("x"), Value::Int(9)]);
        assert_eq!(r.key(&schema), Key::ints(&[9, 1]));
        assert!(r.conforms_to(&schema));
        let bad = Record::new(vec![Value::Int(1), Value::Int(2), Value::Int(9)]);
        assert!(!bad.conforms_to(&schema));
    }

    #[test]
    fn value_accessors_and_sizes() {
        assert_eq!(Value::Int(5).as_int(), 5);
        assert_eq!(Value::from("abc").as_text(), "abc");
        assert_eq!(Value::Double(2.5).as_double(), 2.5);
        assert_eq!(Value::from("abcd").size_bytes(), 4);
        let r = Record::new(vec![Value::Int(1), Value::from("abcd")]);
        assert_eq!(r.size_bytes(), 12);
    }

    #[test]
    fn doubles_order_totally() {
        assert!(Value::Double(f64::NEG_INFINITY) < Value::Double(0.0));
        assert!(Value::Double(1.0) < Value::Double(f64::INFINITY));
    }
}
