//! Values, records, and keys.

use crate::schema::{ColumnType, Schema};
use bytes::{BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A single column value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// Variable-length string.
    Text(String),
    /// 64-bit float (ordered by total order; never used in keys by the
    /// built-in workloads).
    Double(f64),
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            // Heterogeneous comparisons order by type tag; they only occur
            // if a caller mixes key shapes, which the tables reject anyway.
            (Int(_), _) => Ordering::Less,
            (_, Int(_)) => Ordering::Greater,
            (Text(_), _) => Ordering::Less,
            (_, Text(_)) => Ordering::Greater,
        }
    }
}

impl Value {
    /// The column type this value belongs to.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Value::Int(_) => ColumnType::Int,
            Value::Text(_) => ColumnType::Text,
            Value::Double(_) => ColumnType::Double,
        }
    }

    /// Extract an integer, panicking on type mismatch (used by workloads
    /// that know their schema).
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            other => panic!("expected Int, got {other:?}"),
        }
    }

    /// Extract a float.
    pub fn as_double(&self) -> f64 {
        match self {
            Value::Double(v) => *v,
            Value::Int(v) => *v as f64,
            other => panic!("expected Double, got {other:?}"),
        }
    }

    /// Extract a string slice.
    pub fn as_text(&self) -> &str {
        match self {
            Value::Text(v) => v,
            other => panic!("expected Text, got {other:?}"),
        }
    }

    /// Approximate in-memory size in bytes.
    pub fn size_bytes(&self) -> u64 {
        match self {
            Value::Int(_) | Value::Double(_) => 8,
            Value::Text(s) => s.len() as u64,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Text(v) => write!(f, "'{v}'"),
            Value::Double(v) => write!(f, "{v}"),
        }
    }
}

/// A (possibly composite) key: the primary-key column values in key order.
///
/// All-integer keys of up to four components — every key of the built-in
/// workloads, from TATP subscriber ids to TPC-C's
/// `(w_id, d_id, o_id, ol_number)` order-line range bounds — are stored
/// inline with no heap allocation, so constructing, cloning, and hashing
/// them on the per-action hot path is allocation-free.
/// Anything else (text components, wider composites) falls back to a
/// general heap-backed representation.  Constructors normalize, so equal
/// keys always use the same representation.
#[derive(Debug, Clone)]
pub struct Key(KeyRepr);

#[derive(Debug, Clone)]
enum KeyRepr {
    /// Up to four integer components, stored inline.
    Ints { len: u8, vals: [i64; INLINE_INTS] },
    /// General composite key.
    General(Vec<KeyValue>),
}

/// Maximum number of components of the inline all-integer representation.
/// Four covers every key of the built-in workloads (the widest are TPC-C's
/// `(w_id, d_id, o_id, ol_number)` order-line range bounds).
const INLINE_INTS: usize = 4;

/// A borrowed view of one key component, used to compare and hash keys
/// uniformly across representations.  The variant order matches
/// [`KeyValue`] so ordering agrees with the historical derived order
/// (integers sort before text).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum CompRef<'a> {
    /// Integer component.
    Int(i64),
    /// Text component.
    Text(&'a str),
}

/// Key-safe value (hashable); floats are not allowed in keys.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize, Hash)]
pub enum KeyValue {
    /// Integer key component.
    Int(i64),
    /// Text key component.
    Text(String),
}

impl From<Value> for KeyValue {
    fn from(v: Value) -> Self {
        match v {
            Value::Int(i) => KeyValue::Int(i),
            Value::Text(s) => KeyValue::Text(s),
            Value::Double(_) => panic!("floating-point values cannot be used as keys"),
        }
    }
}

impl From<KeyValue> for Value {
    fn from(v: KeyValue) -> Self {
        match v {
            KeyValue::Int(i) => Value::Int(i),
            KeyValue::Text(s) => Value::Text(s),
        }
    }
}

impl Key {
    /// Build a key from raw values.
    pub fn from(values: Vec<Value>) -> Self {
        assert!(!values.is_empty(), "keys must have at least one component");
        if values.len() <= INLINE_INTS && values.iter().all(|v| matches!(v, Value::Int(_))) {
            let mut vals = [0i64; INLINE_INTS];
            for (i, v) in values.iter().enumerate() {
                vals[i] = match v {
                    Value::Int(x) => *x,
                    _ => unreachable!(),
                };
            }
            return Key(KeyRepr::Ints {
                len: values.len() as u8,
                vals,
            });
        }
        Key(KeyRepr::General(
            values.into_iter().map(KeyValue::from).collect(),
        ))
    }

    /// A single-integer key (the common case for the microbenchmarks and
    /// TATP).  Allocation-free.
    #[inline]
    pub fn int(v: i64) -> Self {
        let mut vals = [0i64; INLINE_INTS];
        vals[0] = v;
        Key(KeyRepr::Ints { len: 1, vals })
    }

    /// A composite integer key (e.g. TPC-C `(w_id, d_id, o_id)`).
    /// Allocation-free up to four components.
    pub fn ints(vs: &[i64]) -> Self {
        assert!(!vs.is_empty());
        if vs.len() <= INLINE_INTS {
            let mut vals = [0i64; INLINE_INTS];
            vals[..vs.len()].copy_from_slice(vs);
            Key(KeyRepr::Ints {
                len: vs.len() as u8,
                vals,
            })
        } else {
            Key(KeyRepr::General(
                vs.iter().map(|&v| KeyValue::Int(v)).collect(),
            ))
        }
    }

    /// Key components, materialized (keys with inline integer storage have
    /// no `KeyValue` slice to borrow).
    pub fn components(&self) -> Vec<KeyValue> {
        (0..self.len())
            .map(|i| match self.comp(i) {
                CompRef::Int(v) => KeyValue::Int(v),
                CompRef::Text(s) => KeyValue::Text(s.to_string()),
            })
            .collect()
    }

    /// Borrow component `i`.
    #[inline]
    fn comp(&self, i: usize) -> CompRef<'_> {
        match &self.0 {
            KeyRepr::Ints { len, vals } => {
                assert!(i < *len as usize, "key component out of range");
                CompRef::Int(vals[i])
            }
            KeyRepr::General(vs) => match &vs[i] {
                KeyValue::Int(v) => CompRef::Int(*v),
                KeyValue::Text(s) => CompRef::Text(s),
            },
        }
    }

    /// First component as an integer (panics if not an int key).
    #[inline]
    pub fn head_int(&self) -> i64 {
        match self.comp(0) {
            CompRef::Int(v) => v,
            CompRef::Text(s) => panic!("expected Int key head, got Text({s:?})"),
        }
    }

    /// Number of components.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.0 {
            KeyRepr::Ints { len, .. } => *len as usize,
            KeyRepr::General(vs) => vs.len(),
        }
    }

    /// Whether the key has no components (never true for constructed keys).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate encoded size in bytes.
    pub fn size_bytes(&self) -> u64 {
        (0..self.len())
            .map(|i| match self.comp(i) {
                CompRef::Int(_) => 8,
                CompRef::Text(s) => s.len() as u64,
            })
            .sum()
    }

    /// Serialize into an order-preserving byte string (useful for debugging
    /// and for hashing keys across instance boundaries).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16 * self.len());
        for i in 0..self.len() {
            match self.comp(i) {
                CompRef::Int(i) => {
                    buf.put_u8(0x01);
                    // Flip the sign bit so that the byte order matches the
                    // numeric order.
                    buf.put_u64((i as u64) ^ (1 << 63));
                }
                CompRef::Text(s) => {
                    buf.put_u8(0x02);
                    buf.put_slice(s.as_bytes());
                    buf.put_u8(0x00);
                }
            }
        }
        buf.freeze()
    }
}

impl PartialEq for Key {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        // The all-int inline × inline case is the hot path (B-tree probes,
        // lock-table lookups); compare it without the component indirection.
        match (&self.0, &other.0) {
            (KeyRepr::Ints { len: la, vals: va }, KeyRepr::Ints { len: lb, vals: vb }) => {
                la == lb && va[..*la as usize] == vb[..*lb as usize]
            }
            _ => {
                self.len() == other.len() && (0..self.len()).all(|i| self.comp(i) == other.comp(i))
            }
        }
    }
}

impl Eq for Key {}

impl PartialOrd for Key {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Lexicographic over components, exactly as the historical
        // `Vec<KeyValue>` derive ordered keys.
        match (&self.0, &other.0) {
            (KeyRepr::Ints { len: la, vals: va }, KeyRepr::Ints { len: lb, vals: vb }) => {
                va[..*la as usize].cmp(&vb[..*lb as usize])
            }
            _ => {
                let (n, m) = (self.len(), other.len());
                for i in 0..n.min(m) {
                    match self.comp(i).cmp(&other.comp(i)) {
                        Ordering::Equal => continue,
                        ne => return ne,
                    }
                }
                n.cmp(&m)
            }
        }
    }
}

impl std::hash::Hash for Key {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Feed the hasher exactly the bytes the historical
        // `derive(Hash)` over `Vec<KeyValue>` fed it: the length prefix
        // followed by each component's derived hash.  Lock-manager bucket
        // assignment is derived from this hash with a fixed-key hasher, so
        // preserving the byte stream preserves the simulated bucket
        // contention (and therefore the simulation results) bit for bit.
        match &self.0 {
            KeyRepr::General(vs) => vs.hash(state),
            KeyRepr::Ints { len, vals } => {
                let n = *len as usize;
                // `<[T]>::hash` length prefix (`write_length_prefix`
                // defaults to `write_usize`; the std hashers don't
                // override it).
                state.write_usize(n);
                for v in &vals[..n] {
                    KeyValue::Int(*v).hash(state);
                }
            }
        }
    }
}

impl serde::ser::Serialize for Key {
    fn to_value(&self) -> serde::Value {
        // Same external shape as the historical transparent newtype over
        // `Vec<KeyValue>`: an array of externally tagged components.
        serde::Value::Array(
            (0..self.len())
                .map(|i| match self.comp(i) {
                    CompRef::Int(v) => serde::ser::Serialize::to_value(&KeyValue::Int(v)),
                    CompRef::Text(s) => {
                        serde::ser::Serialize::to_value(&KeyValue::Text(s.to_string()))
                    }
                })
                .collect(),
        )
    }
}

impl serde::de::Deserialize for Key {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let comps = <Vec<KeyValue> as serde::de::Deserialize>::from_value(v)?;
        if comps.is_empty() {
            return Err(serde::Error::new("keys must have at least one component"));
        }
        Ok(Key::from(comps.into_iter().map(Value::from).collect()))
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for i in 0..self.len() {
            if i > 0 {
                write!(f, ",")?;
            }
            match self.comp(i) {
                CompRef::Int(x) => write!(f, "{x}")?,
                CompRef::Text(s) => write!(f, "'{s}'")?,
            }
        }
        write!(f, ")")
    }
}

/// A tuple: one value per column of the table schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    values: Vec<Value>,
}

impl Record {
    /// Build a record from values.
    pub fn new(values: Vec<Value>) -> Self {
        Self { values }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Column values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value of column `i`.
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// Overwrite column `i`.
    pub fn set(&mut self, i: usize, v: Value) {
        self.values[i] = v;
    }

    /// Extract the primary key of this record according to `schema`.
    pub fn key(&self, schema: &Schema) -> Key {
        Key::from(
            schema
                .primary_key
                .iter()
                .map(|&i| self.values[i].clone())
                .collect(),
        )
    }

    /// Whether the record matches the schema's column count and types.
    pub fn conforms_to(&self, schema: &Schema) -> bool {
        self.values.len() == schema.columns.len()
            && self
                .values
                .iter()
                .zip(&schema.columns)
                .all(|(v, c)| v.column_type() == c.ty)
    }

    /// Approximate in-memory size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.values.iter().map(Value::size_bytes).sum()
    }
}

impl From<Vec<Value>> for Record {
    fn from(values: Vec<Value>) -> Self {
        Record::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};

    #[test]
    fn integer_keys_order_numerically() {
        assert!(Key::int(-5) < Key::int(3));
        assert!(Key::int(3) < Key::int(30));
        assert_eq!(Key::int(7), Key::int(7));
    }

    #[test]
    fn composite_keys_order_lexicographically() {
        assert!(Key::ints(&[1, 5]) < Key::ints(&[2, 0]));
        assert!(Key::ints(&[1, 5]) < Key::ints(&[1, 6]));
        assert!(Key::ints(&[1]) < Key::ints(&[1, 0]));
    }

    #[test]
    fn key_encoding_preserves_integer_order() {
        let keys = [-100i64, -1, 0, 1, 5, 1_000_000];
        for w in keys.windows(2) {
            let a = Key::int(w[0]).encode();
            let b = Key::int(w[1]).encode();
            assert!(a < b, "{:?} should sort before {:?}", w[0], w[1]);
        }
    }

    #[test]
    #[should_panic(expected = "floating-point")]
    fn float_keys_are_rejected() {
        let _ = Key::from(vec![Value::Double(1.5)]);
    }

    #[test]
    fn record_key_extraction_follows_schema() {
        let schema = Schema::new(
            "t",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("b", ColumnType::Text),
                Column::new("c", ColumnType::Int),
            ],
            vec![2, 0],
        );
        let r = Record::new(vec![Value::Int(1), Value::from("x"), Value::Int(9)]);
        assert_eq!(r.key(&schema), Key::ints(&[9, 1]));
        assert!(r.conforms_to(&schema));
        let bad = Record::new(vec![Value::Int(1), Value::Int(2), Value::Int(9)]);
        assert!(!bad.conforms_to(&schema));
    }

    #[test]
    fn value_accessors_and_sizes() {
        assert_eq!(Value::Int(5).as_int(), 5);
        assert_eq!(Value::from("abc").as_text(), "abc");
        assert_eq!(Value::Double(2.5).as_double(), 2.5);
        assert_eq!(Value::from("abcd").size_bytes(), 4);
        let r = Record::new(vec![Value::Int(1), Value::from("abcd")]);
        assert_eq!(r.size_bytes(), 12);
    }

    #[test]
    fn doubles_order_totally() {
        assert!(Value::Double(f64::NEG_INFINITY) < Value::Double(0.0));
        assert!(Value::Double(1.0) < Value::Double(f64::INFINITY));
    }
}
