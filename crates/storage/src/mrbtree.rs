//! Multi-rooted B+-tree: the physically partitioned index used by
//! physiological partitioning (PLP) and ATraPos.
//!
//! A multi-rooted B-tree partitions a table's key space into contiguous
//! ranges, each with its *own* B+-tree root (paper §III-A).  Because a
//! logical partition is only ever accessed by the worker thread it is
//! assigned to, accesses to a subtree need no latching; the per-partition
//! [`SimResource`] latch kept here is only exercised by the centralized
//! baselines, which share roots between threads.
//!
//! Repartitioning (paper §V-D) manipulates this structure directly:
//! * **split** divides an existing partition in two at a key boundary;
//! * **merge** combines two adjacent partitions into one;
//! * a **rearrangement** is a split followed by a merge.

use crate::btree::BTree;
use crate::error::{StorageError, StorageResult};
use crate::record::{Key, Record};
use atrapos_numa::{SimResource, SocketId};
use serde::{Deserialize, Serialize};

/// One physical partition: a key range with its own B+-tree root.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartitionTree {
    /// Inclusive lower bound of the key range; `None` for the first
    /// partition (unbounded below).
    pub lower: Option<Key>,
    /// The partition's B+-tree.
    pub tree: BTree,
    /// NUMA node on which this partition's data is allocated.
    pub memory_node: SocketId,
    /// Root latch (only used by designs that share partitions between
    /// threads).
    pub latch: SimResource,
}

impl PartitionTree {
    fn new(lower: Option<Key>, memory_node: SocketId) -> Self {
        Self {
            lower,
            tree: BTree::new(),
            memory_node,
            latch: SimResource::new(memory_node),
        }
    }
}

/// A multi-rooted B+-tree: an ordered collection of range partitions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MrBTree {
    partitions: Vec<PartitionTree>,
}

impl MrBTree {
    /// A single-partition tree allocated on `memory_node`.
    pub fn new(memory_node: SocketId) -> Self {
        Self {
            partitions: vec![PartitionTree::new(None, memory_node)],
        }
    }

    /// A range-partitioned tree: `boundaries` are the inclusive lower bounds
    /// of partitions 1..n (partition 0 is unbounded below), and
    /// `memory_nodes[i]` is where partition `i` is allocated.  `memory_nodes`
    /// must have exactly `boundaries.len() + 1` entries and `boundaries`
    /// must be strictly increasing.
    pub fn range_partitioned(boundaries: Vec<Key>, memory_nodes: Vec<SocketId>) -> Self {
        assert_eq!(
            memory_nodes.len(),
            boundaries.len() + 1,
            "need one memory node per partition"
        );
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "partition boundaries must be strictly increasing"
        );
        let mut partitions = Vec::with_capacity(memory_nodes.len());
        partitions.push(PartitionTree::new(None, memory_nodes[0]));
        for (i, b) in boundaries.into_iter().enumerate() {
            partitions.push(PartitionTree::new(Some(b), memory_nodes[i + 1]));
        }
        Self { partitions }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total number of entries across partitions.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(|p| p.tree.len()).sum()
    }

    /// Whether the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Access a partition by index.
    pub fn partition(&self, idx: usize) -> &PartitionTree {
        &self.partitions[idx]
    }

    /// Mutable access to a partition by index.
    pub fn partition_mut(&mut self, idx: usize) -> &mut PartitionTree {
        &mut self.partitions[idx]
    }

    /// All partitions in key order.
    pub fn partitions(&self) -> &[PartitionTree] {
        &self.partitions
    }

    /// The partition index responsible for `key`.
    ///
    /// Partition 0 is unbounded below and partitions 1.. carry strictly
    /// increasing lower bounds (enforced at construction and by
    /// `split_partition` / `merge_with_next`), so the last partition whose
    /// lower bound is `<= key` is found by binary search rather than the
    /// O(partitions) scan this used to be — `partition_for` runs twice per
    /// simulated storage operation, which made it one of the hottest spots
    /// of the whole simulator on many-core machines.
    #[inline]
    pub fn partition_for(&self, key: &Key) -> usize {
        // First index in 1.. whose lower bound exceeds `key`; the owner is
        // the partition just before it.
        let mut lo = 1usize;
        let mut hi = self.partitions.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            let above = match &self.partitions[mid].lower {
                Some(lower) => lower > key,
                None => false,
            };
            if above {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo - 1
    }

    /// Inclusive lower bound of partition `idx` (`None` = unbounded).
    pub fn lower_bound(&self, idx: usize) -> Option<&Key> {
        self.partitions[idx].lower.as_ref()
    }

    /// Exclusive upper bound of partition `idx` (`None` = unbounded).
    pub fn upper_bound(&self, idx: usize) -> Option<&Key> {
        self.partitions.get(idx + 1).and_then(|p| p.lower.as_ref())
    }

    /// Look up a key.
    pub fn get(&self, key: &Key) -> Option<&Record> {
        self.get_in(self.partition_for(key), key)
    }

    /// Look up a key within a known partition (callers that already routed
    /// the key avoid a second `partition_for`).
    #[inline]
    pub fn get_in(&self, idx: usize, key: &Key) -> Option<&Record> {
        self.partitions[idx].tree.get(key)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &Key) -> Option<&mut Record> {
        let idx = self.partition_for(key);
        self.get_mut_in(idx, key)
    }

    /// Mutable lookup within a known partition.
    #[inline]
    pub fn get_mut_in(&mut self, idx: usize, key: &Key) -> Option<&mut Record> {
        self.partitions[idx].tree.get_mut(key)
    }

    /// Whether the key is present.
    pub fn contains(&self, key: &Key) -> bool {
        self.get(key).is_some()
    }

    /// Insert a key/record pair, returning the replaced record if any.
    pub fn insert(&mut self, key: Key, record: Record) -> Option<Record> {
        let idx = self.partition_for(&key);
        self.insert_in(idx, key, record)
    }

    /// Insert within a known partition (must be `partition_for(&key)`).
    #[inline]
    pub fn insert_in(&mut self, idx: usize, key: Key, record: Record) -> Option<Record> {
        debug_assert_eq!(idx, self.partition_for(&key));
        self.partitions[idx].tree.insert(key, record)
    }

    /// Remove within a known partition (must be `partition_for(key)`).
    #[inline]
    pub fn remove_in(&mut self, idx: usize, key: &Key) -> Option<Record> {
        debug_assert_eq!(idx, self.partition_for(key));
        self.partitions[idx].tree.remove(key)
    }

    /// Remove a key, returning the removed record if any.
    pub fn remove(&mut self, key: &Key) -> Option<Record> {
        let idx = self.partition_for(key);
        self.partitions[idx].tree.remove(key)
    }

    /// Iterate over all entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &Record)> {
        self.partitions.iter().flat_map(|p| p.tree.iter())
    }

    /// Collect entries in `[from, to)` across partitions.
    pub fn range(&self, from: Option<&Key>, to: Option<&Key>) -> Vec<(&Key, &Record)> {
        let mut out = Vec::new();
        for p in &self.partitions {
            out.extend(p.tree.range(from, to));
        }
        out
    }

    /// Move the memory allocation of partition `idx` to `node` (models
    /// `numactl`-style placement and ATraPos partition placement).
    pub fn set_memory_node(&mut self, idx: usize, node: SocketId) {
        self.partitions[idx].memory_node = node;
        self.partitions[idx].latch = SimResource::new(node);
    }

    /// Split partition `idx` at `boundary`.  The upper half becomes a new
    /// partition (inserted at `idx + 1`) allocated on `new_node`.
    ///
    /// Returns the number of records moved.
    pub fn split_partition(
        &mut self,
        idx: usize,
        boundary: Key,
        new_node: SocketId,
    ) -> StorageResult<usize> {
        if idx >= self.partitions.len() {
            return Err(StorageError::InvalidPartitionBoundary(format!(
                "partition index {idx} out of range"
            )));
        }
        // The boundary must lie strictly inside the partition's range.
        if let Some(lower) = &self.partitions[idx].lower {
            if boundary <= *lower {
                return Err(StorageError::InvalidPartitionBoundary(format!(
                    "boundary {boundary} not above partition lower bound {lower}"
                )));
            }
        }
        if let Some(upper) = self.upper_bound(idx) {
            if boundary >= *upper {
                return Err(StorageError::InvalidPartitionBoundary(format!(
                    "boundary {boundary} not below next partition bound {upper}"
                )));
            }
        }
        let right_tree = self.partitions[idx].tree.split_off(&boundary);
        let moved = right_tree.len();
        let mut new_part = PartitionTree::new(Some(boundary), new_node);
        new_part.tree = right_tree;
        self.partitions.insert(idx + 1, new_part);
        Ok(moved)
    }

    /// Merge partition `idx + 1` into partition `idx`.
    ///
    /// Returns the number of records moved.
    pub fn merge_with_next(&mut self, idx: usize) -> StorageResult<usize> {
        if idx + 1 >= self.partitions.len() {
            return Err(StorageError::InvalidPartitionBoundary(format!(
                "no partition after index {idx} to merge with"
            )));
        }
        let right = self.partitions.remove(idx + 1);
        let moved = right.tree.len();
        self.partitions[idx].tree.merge_from(right.tree);
        Ok(moved)
    }

    /// Check structural invariants: boundaries strictly increasing, every
    /// key within its partition's range, every per-partition tree valid.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.partitions.is_empty() {
            return Err("multi-rooted tree must have at least one partition".into());
        }
        if self.partitions[0].lower.is_some() {
            return Err("first partition must be unbounded below".into());
        }
        for w in self.partitions.windows(2) {
            match (&w[0].lower, &w[1].lower) {
                (_, None) => return Err("only the first partition may be unbounded".into()),
                (Some(a), Some(b)) if a >= b => {
                    return Err(format!("partition bounds out of order: {a} >= {b}"))
                }
                _ => {}
            }
        }
        for (i, p) in self.partitions.iter().enumerate() {
            p.tree.check_invariants()?;
            let lower = p.lower.as_ref();
            let upper = self.upper_bound(i);
            for (k, _) in p.tree.iter() {
                if let Some(lo) = lower {
                    if k < lo {
                        return Err(format!("key {k} below partition {i} lower bound {lo}"));
                    }
                }
                if let Some(hi) = upper {
                    if k >= hi {
                        return Err(format!("key {k} at/above partition {i} upper bound {hi}"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Value;

    fn rec(v: i64) -> Record {
        Record::new(vec![Value::Int(v)])
    }

    fn loaded(n: i64, parts: usize) -> MrBTree {
        let boundaries: Vec<Key> = (1..parts as i64)
            .map(|i| Key::int(i * n / parts as i64))
            .collect();
        let nodes = vec![SocketId(0); parts];
        let mut t = MrBTree::range_partitioned(boundaries, nodes);
        for i in 0..n {
            t.insert(Key::int(i), rec(i));
        }
        t
    }

    #[test]
    fn single_partition_roundtrip() {
        let mut t = MrBTree::new(SocketId(0));
        for i in 0..100 {
            t.insert(Key::int(i), rec(i));
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.num_partitions(), 1);
        assert!(t.contains(&Key::int(50)));
        t.check_invariants().unwrap();
    }

    #[test]
    fn range_partitioning_routes_keys_to_the_right_partition() {
        let t = loaded(1000, 4);
        assert_eq!(t.num_partitions(), 4);
        assert_eq!(t.partition_for(&Key::int(0)), 0);
        assert_eq!(t.partition_for(&Key::int(249)), 0);
        assert_eq!(t.partition_for(&Key::int(250)), 1);
        assert_eq!(t.partition_for(&Key::int(999)), 3);
        // Every partition got roughly a quarter of the data.
        for i in 0..4 {
            assert_eq!(t.partition(i).tree.len(), 250);
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn split_moves_upper_range_to_new_partition() {
        let mut t = loaded(1000, 2);
        assert_eq!(t.num_partitions(), 2);
        let moved = t.split_partition(0, Key::int(100), SocketId(1)).unwrap();
        assert_eq!(moved, 400); // keys 100..500 move
        assert_eq!(t.num_partitions(), 3);
        assert_eq!(t.partition(1).memory_node, SocketId(1));
        assert_eq!(t.len(), 1000);
        t.check_invariants().unwrap();
        assert_eq!(t.partition_for(&Key::int(99)), 0);
        assert_eq!(t.partition_for(&Key::int(100)), 1);
        assert_eq!(t.partition_for(&Key::int(500)), 2);
    }

    #[test]
    fn split_rejects_out_of_range_boundaries() {
        let mut t = loaded(1000, 2);
        assert!(t.split_partition(1, Key::int(100), SocketId(0)).is_err());
        assert!(t.split_partition(0, Key::int(500), SocketId(0)).is_err());
        assert!(t.split_partition(5, Key::int(100), SocketId(0)).is_err());
    }

    #[test]
    fn merge_combines_adjacent_partitions() {
        let mut t = loaded(1000, 4);
        let moved = t.merge_with_next(1).unwrap();
        assert_eq!(moved, 250);
        assert_eq!(t.num_partitions(), 3);
        assert_eq!(t.len(), 1000);
        t.check_invariants().unwrap();
        // All keys still reachable.
        for i in (0..1000).step_by(37) {
            assert!(t.contains(&Key::int(i)));
        }
        assert!(t.merge_with_next(2).is_err());
    }

    #[test]
    fn rearrangement_is_a_split_plus_merge() {
        let mut t = loaded(1000, 4);
        // Move the 600..750 range from partition 2 into partition 3:
        // split partition 2 at 600, then merge the new middle piece right.
        t.split_partition(2, Key::int(600), SocketId(3)).unwrap();
        assert_eq!(t.num_partitions(), 5);
        t.merge_with_next(3).unwrap();
        assert_eq!(t.num_partitions(), 4);
        assert_eq!(t.len(), 1000);
        t.check_invariants().unwrap();
    }

    #[test]
    fn removal_and_iteration() {
        let mut t = loaded(100, 3);
        assert!(t.remove(&Key::int(42)).is_some());
        assert!(t.remove(&Key::int(42)).is_none());
        assert_eq!(t.len(), 99);
        let keys: Vec<i64> = t.iter().map(|(k, _)| k.head_int()).collect();
        assert_eq!(keys.len(), 99);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn memory_node_reassignment() {
        let mut t = loaded(100, 2);
        t.set_memory_node(1, SocketId(5));
        assert_eq!(t.partition(1).memory_node, SocketId(5));
    }
}
