//! Error types for the storage manager.

use crate::record::Key;
use crate::schema::TableId;
use std::fmt;

/// Result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors raised by storage-manager operations.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// The referenced table does not exist.
    UnknownTable(TableId),
    /// The key was not found in the table.
    KeyNotFound { table: TableId, key: Key },
    /// An insert collided with an existing key.
    DuplicateKey { table: TableId, key: Key },
    /// A record did not match the table schema.
    SchemaMismatch {
        table: TableId,
        expected: usize,
        got: usize,
    },
    /// A lock could not be granted (used for deadlock-avoidance aborts).
    LockConflict { requested: String, held: String },
    /// The transaction was aborted.
    TxnAborted(u64),
    /// A two-phase-commit participant voted to abort.
    TwoPcAborted { participant: usize },
    /// A repartitioning operation referenced an invalid partition boundary.
    InvalidPartitionBoundary(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            StorageError::KeyNotFound { table, key } => {
                write!(f, "key {key:?} not found in table {table:?}")
            }
            StorageError::DuplicateKey { table, key } => {
                write!(f, "duplicate key {key:?} in table {table:?}")
            }
            StorageError::SchemaMismatch {
                table,
                expected,
                got,
            } => write!(
                f,
                "schema mismatch on table {table:?}: expected {expected} columns, got {got}"
            ),
            StorageError::LockConflict { requested, held } => {
                write!(f, "lock conflict: requested {requested}, held {held}")
            }
            StorageError::TxnAborted(id) => write!(f, "transaction {id} aborted"),
            StorageError::TwoPcAborted { participant } => {
                write!(f, "two-phase commit aborted by participant {participant}")
            }
            StorageError::InvalidPartitionBoundary(msg) => {
                write!(f, "invalid partition boundary: {msg}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Value;

    #[test]
    fn errors_render_human_readable_messages() {
        let e = StorageError::KeyNotFound {
            table: TableId(3),
            key: Key::from(vec![Value::Int(42)]),
        };
        let msg = e.to_string();
        assert!(msg.contains("not found"));
        assert!(msg.contains("42"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&StorageError::TxnAborted(7));
    }
}
