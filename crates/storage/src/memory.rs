//! Memory-placement policies.
//!
//! Reproduces the `numactl`-style placement modes of the paper's §III-D
//! (Table I): each shared-nothing instance (or each table partition) can
//! allocate its memory on its local NUMA node, on one central node, or on a
//! deliberately remote node.

use atrapos_numa::{SocketId, Topology};
use serde::{Deserialize, Serialize};

/// Where the data of an instance/partition running on a given socket is
/// allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemoryPolicy {
    /// Allocate on the instance's own NUMA node (`numactl --localalloc`).
    Local,
    /// Allocate everything on one designated node (`numactl --membind=N`).
    Central(SocketId),
    /// Allocate on a node that is guaranteed to be remote (each instance
    /// binds to a different remote node, as in the paper's third mode).
    Remote,
}

impl MemoryPolicy {
    /// The memory node the data of an instance running on `socket` ends up
    /// on under this policy.
    pub fn node_for(&self, socket: SocketId, topo: &Topology) -> SocketId {
        match self {
            MemoryPolicy::Local => socket,
            MemoryPolicy::Central(node) => *node,
            MemoryPolicy::Remote => {
                let n = topo.num_sockets() as u16;
                if n <= 1 {
                    socket
                } else {
                    // The "opposite" socket: guaranteed different and, on the
                    // twisted cube, usually more than one hop away.
                    SocketId((socket.0 + n / 2) % n)
                }
            }
        }
    }

    /// Human-readable label matching Table I's row names.
    pub fn label(&self) -> &'static str {
        match self {
            MemoryPolicy::Local => "Local",
            MemoryPolicy::Central(_) => "Central",
            MemoryPolicy::Remote => "Remote",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_policy_keeps_data_on_the_socket() {
        let topo = Topology::multisocket(8, 2);
        assert_eq!(
            MemoryPolicy::Local.node_for(SocketId(5), &topo),
            SocketId(5)
        );
    }

    #[test]
    fn central_policy_uses_the_designated_node() {
        let topo = Topology::multisocket(8, 2);
        let p = MemoryPolicy::Central(SocketId(7));
        for s in 0..8 {
            assert_eq!(p.node_for(SocketId(s), &topo), SocketId(7));
        }
    }

    #[test]
    fn remote_policy_always_picks_a_different_node() {
        let topo = Topology::multisocket(8, 2);
        for s in 0..8 {
            let node = MemoryPolicy::Remote.node_for(SocketId(s), &topo);
            assert_ne!(node, SocketId(s));
        }
        // Different instances use different remote nodes.
        let a = MemoryPolicy::Remote.node_for(SocketId(0), &topo);
        let b = MemoryPolicy::Remote.node_for(SocketId(1), &topo);
        assert_ne!(a, b);
    }

    #[test]
    fn remote_policy_on_single_socket_degenerates_to_local() {
        let topo = Topology::single_socket(4);
        assert_eq!(
            MemoryPolicy::Remote.node_for(SocketId(0), &topo),
            SocketId(0)
        );
    }
}
