//! Relational schema metadata: tables, columns, and foreign-key
//! dependencies.
//!
//! The ATraPos cost model uses *static workload information* extracted from
//! the schema (paper §V-A): foreign-key dependencies between tables tell
//! the partitioner which actions of a transaction are correlated.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a table within a database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TableId(pub u32);

impl TableId {
    /// Index usable for vector lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// SQL-ish column types supported by the storage manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Int,
    /// Variable-length string.
    Text,
    /// 64-bit float (never used as a key column).
    Double,
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

impl Column {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Self {
            name: name.into(),
            ty,
        }
    }
}

/// A foreign-key reference from this table to another table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForeignKey {
    /// Columns of this table forming the reference.
    pub columns: Vec<usize>,
    /// The referenced table.
    pub references: TableId,
}

/// A table schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    /// Table name.
    pub name: String,
    /// Column definitions.
    pub columns: Vec<Column>,
    /// Indices (into `columns`) of the primary-key columns, in key order.
    pub primary_key: Vec<usize>,
    /// Foreign-key dependencies (static data dependencies for the cost
    /// model).
    pub foreign_keys: Vec<ForeignKey>,
    /// Approximate size of one record in bytes (used for memory-placement
    /// and data-exchange cost accounting).
    pub record_bytes: u64,
}

impl Schema {
    /// Build a schema; the record size is estimated from the column types.
    pub fn new(name: impl Into<String>, columns: Vec<Column>, primary_key: Vec<usize>) -> Self {
        assert!(!columns.is_empty(), "a table needs at least one column");
        assert!(!primary_key.is_empty(), "a table needs a primary key");
        for &pk in &primary_key {
            assert!(pk < columns.len(), "primary key column out of range");
        }
        let record_bytes = columns
            .iter()
            .map(|c| match c.ty {
                ColumnType::Int => 8,
                ColumnType::Double => 8,
                ColumnType::Text => 24,
            })
            .sum();
        Self {
            name: name.into(),
            columns,
            primary_key,
            foreign_keys: Vec::new(),
            record_bytes,
        }
    }

    /// Add a foreign-key dependency.
    pub fn with_foreign_key(mut self, columns: Vec<usize>, references: TableId) -> Self {
        for &c in &columns {
            assert!(c < self.columns.len(), "foreign key column out of range");
        }
        self.foreign_keys.push(ForeignKey {
            columns,
            references,
        });
        self
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Whether `other` is referenced by one of this schema's foreign keys.
    pub fn references(&self, other: TableId) -> bool {
        self.foreign_keys.iter().any(|fk| fk.references == other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(
            "subscriber",
            vec![
                Column::new("s_id", ColumnType::Int),
                Column::new("sub_nbr", ColumnType::Text),
                Column::new("bit_1", ColumnType::Int),
                Column::new("msc_location", ColumnType::Double),
            ],
            vec![0],
        )
    }

    #[test]
    fn record_size_is_estimated_from_columns() {
        let s = sample();
        assert_eq!(s.record_bytes, 8 + 24 + 8 + 8);
        assert_eq!(s.arity(), 4);
    }

    #[test]
    fn foreign_keys_record_dependencies() {
        let s = sample().with_foreign_key(vec![0], TableId(7));
        assert!(s.references(TableId(7)));
        assert!(!s.references(TableId(8)));
    }

    #[test]
    #[should_panic(expected = "primary key")]
    fn schema_requires_primary_key() {
        let _ = Schema::new("t", vec![Column::new("a", ColumnType::Int)], vec![]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn schema_validates_pk_columns() {
        let _ = Schema::new("t", vec![Column::new("a", ColumnType::Int)], vec![3]);
    }
}
