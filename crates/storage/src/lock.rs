//! Logical lock modes and lock identifiers.
//!
//! The lock manager implements standard hierarchical two-phase locking:
//! intention locks at the table level and shared/exclusive locks at the
//! record level, as in Shore-MT.

use crate::record::Key;
use crate::schema::TableId;
use serde::{Deserialize, Serialize};

/// Lock modes (subset of the classic hierarchy used by the workloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LockMode {
    /// Intention shared (table level).
    IS,
    /// Intention exclusive (table level).
    IX,
    /// Shared (record level).
    S,
    /// Exclusive (record level).
    X,
}

impl LockMode {
    /// Standard compatibility matrix.
    pub fn compatible(self, other: LockMode) -> bool {
        use LockMode::*;
        matches!(
            (self, other),
            (IS, IS) | (IS, IX) | (IS, S) | (IX, IS) | (IX, IX) | (S, IS) | (S, S)
        )
    }

    /// Whether this mode implies write intent.
    pub fn is_exclusive(self) -> bool {
        matches!(self, LockMode::X | LockMode::IX)
    }
}

/// What a lock protects.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LockId {
    /// A whole table (intention locks).
    Table(TableId),
    /// A single record.
    Record(TableId, Key),
}

impl LockId {
    /// The table this lock belongs to.
    pub fn table(&self) -> TableId {
        match self {
            LockId::Table(t) => *t,
            LockId::Record(t, _) => *t,
        }
    }

    /// A stable hash used to pick a lock-manager bucket.
    pub fn bucket_hash(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compatibility_matrix_matches_textbook() {
        use LockMode::*;
        assert!(S.compatible(S));
        assert!(!S.compatible(X));
        assert!(!X.compatible(S));
        assert!(!X.compatible(X));
        assert!(IS.compatible(IX));
        assert!(IX.compatible(IX));
        assert!(!IX.compatible(S));
        assert!(S.compatible(IS));
    }

    #[test]
    fn exclusivity_flags() {
        assert!(LockMode::X.is_exclusive());
        assert!(LockMode::IX.is_exclusive());
        assert!(!LockMode::S.is_exclusive());
        assert!(!LockMode::IS.is_exclusive());
    }

    #[test]
    fn lock_ids_hash_consistently() {
        let a = LockId::Record(TableId(1), Key::int(5));
        let b = LockId::Record(TableId(1), Key::int(5));
        let c = LockId::Record(TableId(1), Key::int(6));
        assert_eq!(a.bucket_hash(), b.bucket_hash());
        assert_ne!(a.bucket_hash(), c.bucket_hash());
        assert_eq!(a.table(), TableId(1));
        assert_eq!(LockId::Table(TableId(3)).table(), TableId(3));
    }
}
