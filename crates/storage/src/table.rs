//! Tables: schema + a (possibly partitioned) primary index holding the
//! records.
//!
//! Every simulated access charges an index-probe cost proportional to the
//! tree height plus a memory access to the partition's NUMA node, so the
//! remote-memory experiments (paper §III-D, Table I) and the partition
//! placement decisions of ATraPos have a physical effect.

use crate::error::{StorageError, StorageResult};
use crate::mrbtree::MrBTree;
use crate::record::{Key, Record, Value};
use crate::schema::{Schema, TableId};
use atrapos_numa::{Component, SimCtx, SocketId};
use serde::{Deserialize, Serialize};

/// Instruction cost of descending one B+-tree level.
const PROBE_INSTRUCTIONS_PER_LEVEL: u64 = 55;
/// Fixed instruction cost of a tuple read/update once located.
const TUPLE_WORK_INSTRUCTIONS: u64 = 140;
/// Extra instruction cost of an insert/delete (leaf maintenance).
const STRUCTURE_CHANGE_INSTRUCTIONS: u64 = 220;

/// A table: schema plus the multi-rooted primary index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Table identifier.
    pub id: TableId,
    /// Table schema.
    pub schema: Schema,
    index: MrBTree,
}

impl Table {
    /// A single-partition table allocated on `memory_node`.
    pub fn new(id: TableId, schema: Schema, memory_node: SocketId) -> Self {
        Self {
            id,
            schema,
            index: MrBTree::new(memory_node),
        }
    }

    /// A range-partitioned table (see [`MrBTree::range_partitioned`]).
    pub fn range_partitioned(
        id: TableId,
        schema: Schema,
        boundaries: Vec<Key>,
        memory_nodes: Vec<SocketId>,
    ) -> Self {
        Self {
            id,
            schema,
            index: MrBTree::range_partitioned(boundaries, memory_nodes),
        }
    }

    /// Table name (from the schema).
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Direct access to the underlying multi-rooted index (partitioning
    /// metadata, repartitioning).
    pub fn index(&self) -> &MrBTree {
        &self.index
    }

    /// Mutable access to the underlying index.
    pub fn index_mut(&mut self) -> &mut MrBTree {
        &mut self.index
    }

    /// Populate the table outside of simulation (initial load).  Returns an
    /// error on schema mismatch or duplicate key.
    pub fn load(&mut self, record: Record) -> StorageResult<()> {
        if !record.conforms_to(&self.schema) {
            return Err(StorageError::SchemaMismatch {
                table: self.id,
                expected: self.schema.arity(),
                got: record.arity(),
            });
        }
        let key = record.key(&self.schema);
        if self.index.insert(key.clone(), record).is_some() {
            return Err(StorageError::DuplicateKey {
                table: self.id,
                key,
            });
        }
        Ok(())
    }

    /// Bulk-populate from an iterator of records (initial load).
    pub fn load_many(&mut self, records: impl IntoIterator<Item = Record>) -> StorageResult<usize> {
        let mut n = 0;
        for r in records {
            self.load(r)?;
            n += 1;
        }
        Ok(n)
    }

    fn charge_probe(&self, ctx: &mut SimCtx<'_>, partition: usize) {
        let p = self.index.partition(partition);
        let height = p.tree.height() as u64;
        ctx.work(
            Component::XctExecution,
            PROBE_INSTRUCTIONS_PER_LEVEL * height,
        );
        ctx.memory_read(
            Component::XctExecution,
            p.memory_node,
            self.schema.record_bytes,
        );
    }

    /// Read a record by primary key.  Returns a borrow — the hot path only
    /// inspects the record (sizes, column values); callers that need an
    /// owned copy clone at the call site.
    pub fn read(&self, ctx: &mut SimCtx<'_>, key: &Key) -> StorageResult<&Record> {
        let partition = self.index.partition_for(key);
        self.charge_probe(ctx, partition);
        ctx.work(Component::XctExecution, TUPLE_WORK_INSTRUCTIONS);
        self.index
            .get_in(partition, key)
            .ok_or_else(|| StorageError::KeyNotFound {
                table: self.id,
                key: key.clone(),
            })
    }

    /// Update columns of an existing record.
    pub fn update(
        &mut self,
        ctx: &mut SimCtx<'_>,
        key: &Key,
        changes: &[(usize, Value)],
    ) -> StorageResult<()> {
        let partition = self.index.partition_for(key);
        self.charge_probe(ctx, partition);
        ctx.work(
            Component::XctExecution,
            TUPLE_WORK_INSTRUCTIONS + 30 * changes.len() as u64,
        );
        let record =
            self.index
                .get_mut_in(partition, key)
                .ok_or_else(|| StorageError::KeyNotFound {
                    table: self.id,
                    key: key.clone(),
                })?;
        for (col, value) in changes {
            record.set(*col, value.clone());
        }
        Ok(())
    }

    /// Insert a new record.
    pub fn insert(&mut self, ctx: &mut SimCtx<'_>, record: Record) -> StorageResult<Key> {
        if !record.conforms_to(&self.schema) {
            return Err(StorageError::SchemaMismatch {
                table: self.id,
                expected: self.schema.arity(),
                got: record.arity(),
            });
        }
        let key = record.key(&self.schema);
        let partition = self.index.partition_for(&key);
        self.charge_probe(ctx, partition);
        ctx.work(
            Component::XctExecution,
            TUPLE_WORK_INSTRUCTIONS + STRUCTURE_CHANGE_INSTRUCTIONS,
        );
        if self
            .index
            .insert_in(partition, key.clone(), record)
            .is_some()
        {
            return Err(StorageError::DuplicateKey {
                table: self.id,
                key,
            });
        }
        Ok(key)
    }

    /// Delete a record by primary key.
    pub fn delete(&mut self, ctx: &mut SimCtx<'_>, key: &Key) -> StorageResult<Record> {
        let partition = self.index.partition_for(key);
        self.charge_probe(ctx, partition);
        ctx.work(
            Component::XctExecution,
            TUPLE_WORK_INSTRUCTIONS + STRUCTURE_CHANGE_INSTRUCTIONS,
        );
        self.index
            .remove_in(partition, key)
            .ok_or_else(|| StorageError::KeyNotFound {
                table: self.id,
                key: key.clone(),
            })
    }

    /// Read up to `limit` records with keys in `[from, to)`.  Returns
    /// borrows for the same reason as [`Table::read`].
    pub fn range_read(
        &self,
        ctx: &mut SimCtx<'_>,
        from: Option<&Key>,
        to: Option<&Key>,
        limit: usize,
    ) -> Vec<&Record> {
        let rows: Vec<&Record> = self
            .index
            .range(from, to)
            .into_iter()
            .take(limit)
            .map(|(_, r)| r)
            .collect();
        // Charge a probe on the first relevant partition plus streaming cost
        // for the scanned rows.
        let start_partition = from.map(|k| self.index.partition_for(k)).unwrap_or(0);
        self.charge_probe(ctx, start_partition);
        let node = self.index.partition(start_partition).memory_node;
        ctx.memory_read(
            Component::XctExecution,
            node,
            self.schema.record_bytes * rows.len() as u64,
        );
        ctx.work(
            Component::XctExecution,
            TUPLE_WORK_INSTRUCTIONS / 4 * rows.len() as u64,
        );
        rows
    }

    /// Read a record without charging simulation costs (tests, loaders,
    /// consistency checks).
    pub fn peek(&self, key: &Key) -> Option<&Record> {
        self.index.get(key)
    }

    /// Number of partitions of the primary index.
    pub fn num_partitions(&self) -> usize {
        self.index.num_partitions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};
    use atrapos_numa::{CoreId, CostModel, Topology};

    fn schema() -> Schema {
        Schema::new(
            "accounts",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("balance", ColumnType::Int),
                Column::new("owner", ColumnType::Text),
            ],
            vec![0],
        )
    }

    fn rec(id: i64, balance: i64) -> Record {
        Record::new(vec![
            Value::Int(id),
            Value::Int(balance),
            Value::from(format!("owner-{id}")),
        ])
    }

    fn env() -> (Topology, CostModel) {
        (Topology::multisocket(4, 2), CostModel::westmere())
    }

    #[test]
    fn load_and_read_roundtrip() {
        let (t, c) = env();
        let mut table = Table::new(TableId(0), schema(), SocketId(0));
        table.load_many((0..100).map(|i| rec(i, 1000 + i))).unwrap();
        assert_eq!(table.len(), 100);
        let mut ctx = SimCtx::new(&t, &c, CoreId(0), 0);
        let r = table.read(&mut ctx, &Key::int(42)).unwrap();
        assert_eq!(r.get(1).as_int(), 1042);
        assert!(ctx.elapsed() > 0);
        assert!(matches!(
            table.read(&mut ctx, &Key::int(500)),
            Err(StorageError::KeyNotFound { .. })
        ));
    }

    #[test]
    fn duplicate_load_is_rejected() {
        let mut table = Table::new(TableId(0), schema(), SocketId(0));
        table.load(rec(1, 10)).unwrap();
        assert!(matches!(
            table.load(rec(1, 20)),
            Err(StorageError::DuplicateKey { .. })
        ));
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let mut table = Table::new(TableId(0), schema(), SocketId(0));
        let bad = Record::new(vec![Value::Int(1), Value::Int(2)]);
        assert!(matches!(
            table.load(bad),
            Err(StorageError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn update_changes_selected_columns() {
        let (t, c) = env();
        let mut table = Table::new(TableId(0), schema(), SocketId(0));
        table.load(rec(7, 700)).unwrap();
        let mut ctx = SimCtx::new(&t, &c, CoreId(0), 0);
        table
            .update(&mut ctx, &Key::int(7), &[(1, Value::Int(999))])
            .unwrap();
        assert_eq!(table.peek(&Key::int(7)).unwrap().get(1).as_int(), 999);
        assert_eq!(
            table.peek(&Key::int(7)).unwrap().get(2).as_text(),
            "owner-7"
        );
    }

    #[test]
    fn insert_and_delete_in_simulation() {
        let (t, c) = env();
        let mut table = Table::new(TableId(0), schema(), SocketId(0));
        let mut ctx = SimCtx::new(&t, &c, CoreId(0), 0);
        let key = table.insert(&mut ctx, rec(1, 100)).unwrap();
        assert_eq!(key, Key::int(1));
        assert!(table.insert(&mut ctx, rec(1, 100)).is_err());
        let removed = table.delete(&mut ctx, &Key::int(1)).unwrap();
        assert_eq!(removed.get(1).as_int(), 100);
        assert!(table.delete(&mut ctx, &Key::int(1)).is_err());
    }

    #[test]
    fn remote_partition_reads_cost_more_than_local() {
        let (t, c) = env();
        // Same data, one table on the local node, one on a remote node.
        let mut local = Table::new(TableId(0), schema(), SocketId(0));
        let mut remote = Table::new(TableId(1), schema(), SocketId(3));
        local.load(rec(1, 1)).unwrap();
        remote.load(rec(1, 1)).unwrap();
        let mut ctx_l = SimCtx::new(&t, &c, CoreId(0), 0);
        local.read(&mut ctx_l, &Key::int(1)).unwrap();
        let mut ctx_r = SimCtx::new(&t, &c, CoreId(0), 0);
        remote.read(&mut ctx_r, &Key::int(1)).unwrap();
        assert!(ctx_r.elapsed() > ctx_l.elapsed());
    }

    #[test]
    fn range_read_respects_limit_and_bounds() {
        let (t, c) = env();
        let mut table = Table::new(TableId(0), schema(), SocketId(0));
        table.load_many((0..50).map(|i| rec(i, i))).unwrap();
        let mut ctx = SimCtx::new(&t, &c, CoreId(0), 0);
        let rows = table.range_read(&mut ctx, Some(&Key::int(10)), Some(&Key::int(40)), 5);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].get(0).as_int(), 10);
    }

    #[test]
    fn partitioned_table_routes_by_key() {
        let boundaries = vec![Key::int(50)];
        let table = Table::range_partitioned(
            TableId(0),
            schema(),
            boundaries,
            vec![SocketId(0), SocketId(1)],
        );
        assert_eq!(table.num_partitions(), 2);
        assert_eq!(table.index().partition_for(&Key::int(10)), 0);
        assert_eq!(table.index().partition_for(&Key::int(60)), 1);
    }
}
