//! Physical latches for shared internal structures.
//!
//! The centralized baseline latches pages and shared metadata structures on
//! every access; PLP removes page latches from the critical path by making
//! subtree accesses thread-local (paper §III-A), and ATraPos inherits that.
//! This module provides a small named set of latches used for the remaining
//! shared structures (buffer-pool metadata, catalog) by the designs that
//! still need them.

use atrapos_numa::{Component, Cycles, SimCtx, SimResource, SocketId, WaitMode};
use serde::{Deserialize, Serialize};

/// A named collection of latches.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatchSet {
    names: Vec<String>,
    latches: Vec<SimResource>,
}

impl LatchSet {
    /// Create an empty set.
    pub fn new() -> Self {
        Self {
            names: Vec::new(),
            latches: Vec::new(),
        }
    }

    /// Add a latch homed on `home`; returns its index.
    pub fn add(&mut self, name: impl Into<String>, home: SocketId) -> usize {
        self.names.push(name.into());
        self.latches.push(SimResource::new(home));
        self.latches.len() - 1
    }

    /// Number of latches.
    pub fn len(&self) -> usize {
        self.latches.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.latches.is_empty()
    }

    /// Acquire latch `idx` exclusively, perform `hold_instructions` of work
    /// under it, and release.  Returns the cycles spent.
    pub fn with_latch(
        &mut self,
        ctx: &mut SimCtx<'_>,
        idx: usize,
        hold_instructions: u64,
    ) -> Cycles {
        ctx.acquire_resource_for(
            Component::Latching,
            &mut self.latches[idx],
            hold_instructions,
            WaitMode::Spin,
        )
    }

    /// Contention statistics: (acquisitions, contended acquisitions) summed
    /// over all latches.
    pub fn contention(&self) -> (u64, u64) {
        self.latches
            .iter()
            .fold((0, 0), |(a, c), l| (a + l.acquisitions, c + l.contended))
    }

    /// Name of latch `idx`.
    pub fn name(&self, idx: usize) -> &str {
        &self.names[idx]
    }
}

impl Default for LatchSet {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atrapos_numa::{CoreId, CostModel, Topology};

    #[test]
    fn latches_serialize_holders_and_track_contention() {
        let topo = Topology::multisocket(2, 2);
        let cost = CostModel::westmere();
        let mut set = LatchSet::new();
        let idx = set.add("buffer-pool", SocketId(0));
        assert_eq!(set.len(), 1);
        assert_eq!(set.name(idx), "buffer-pool");

        let mut a = SimCtx::new(&topo, &cost, CoreId(0), 0);
        set.with_latch(&mut a, idx, 5_000);
        let release = a.now();
        let mut b = SimCtx::new(&topo, &cost, CoreId(2), 10);
        set.with_latch(&mut b, idx, 100);
        assert!(b.now() > release);
        let (acq, contended) = set.contention();
        assert_eq!(acq, 2);
        assert_eq!(contended, 1);
    }
}
