//! The list of active transactions.
//!
//! In Shore-MT this is a centralized lock-free list: beginning a transaction
//! CASes the list head, and so does removing it at commit.  On a multisocket
//! machine the head's cache line bounces between sockets and every
//! short-lived transaction pays hundreds of cycles for it (paper §IV, "List
//! of transactions").  ATraPos replaces it with one list per socket: adding
//! and removing are then socket-local, and background operations that need
//! the global view (checkpointing, page cleaning) simply walk all per-socket
//! lists.

use crate::txn::TxnId;
use atrapos_numa::{AccessKind, Component, ContendedLine, SimCtx, SocketId, WaitMode};
use serde::{Deserialize, Serialize};

/// Instruction cost of the list manipulation itself (pointer swizzling),
/// excluding the cache-line transfer which the simulator charges separately.
const LIST_OP_INSTRUCTIONS: u64 = 40;

/// A list of active transactions: either one centralized list or one list
/// per socket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TxnList {
    partitions: Vec<TxnListPartition>,
    /// Maps a socket to the partition index it should use (all zeros for the
    /// centralized variant).
    socket_to_partition: Vec<usize>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct TxnListPartition {
    head: ContendedLine,
    active: Vec<TxnId>,
}

impl TxnList {
    /// A single centralized list whose head line is homed on socket 0, as in
    /// stock Shore-MT.
    pub fn centralized(n_sockets: usize) -> Self {
        Self {
            partitions: vec![TxnListPartition {
                head: ContendedLine::new(SocketId(0)),
                active: Vec::new(),
            }],
            socket_to_partition: vec![0; n_sockets],
        }
    }

    /// One list per socket (the ATraPos NUMA-aware variant).
    pub fn per_socket(n_sockets: usize) -> Self {
        Self {
            partitions: (0..n_sockets)
                .map(|s| TxnListPartition {
                    head: ContendedLine::new(SocketId(s as u16)),
                    active: Vec::new(),
                })
                .collect(),
            socket_to_partition: (0..n_sockets).collect(),
        }
    }

    /// Whether this is the NUMA-partitioned variant.
    pub fn is_partitioned(&self) -> bool {
        self.partitions.len() > 1
    }

    fn partition_for(&self, socket: SocketId) -> usize {
        self.socket_to_partition[socket.index()]
    }

    /// Register a transaction as active.  Charges the CAS on the list head
    /// of the caller's partition.
    pub fn add(&mut self, ctx: &mut SimCtx<'_>, txn: TxnId) {
        let p = self.partition_for(ctx.socket());
        let part = &mut self.partitions[p];
        ctx.access_line(
            Component::XctManagement,
            &mut part.head,
            AccessKind::Rmw,
            WaitMode::Stall,
        );
        ctx.work(Component::XctManagement, LIST_OP_INSTRUCTIONS);
        part.active.push(txn);
    }

    /// Remove a transaction at commit/abort.  Must be called from the same
    /// socket that added it (ATraPos guarantees this through thread
    /// binding).
    pub fn remove(&mut self, ctx: &mut SimCtx<'_>, txn: TxnId) {
        let p = self.partition_for(ctx.socket());
        let part = &mut self.partitions[p];
        ctx.access_line(
            Component::XctManagement,
            &mut part.head,
            AccessKind::Rmw,
            WaitMode::Stall,
        );
        ctx.work(Component::XctManagement, LIST_OP_INSTRUCTIONS);
        if let Some(pos) = part.active.iter().position(|t| *t == txn) {
            part.active.swap_remove(pos);
        }
    }

    /// Number of currently active transactions across all partitions
    /// (a background-thread style traversal; not charged to any context).
    pub fn active_count(&self) -> usize {
        self.partitions.iter().map(|p| p.active.len()).sum()
    }

    /// Snapshot of all active transactions, as a checkpointing thread would
    /// collect it.  Charges one read of every partition head to `ctx`.
    pub fn snapshot(&mut self, ctx: &mut SimCtx<'_>) -> Vec<TxnId> {
        let mut out = Vec::with_capacity(self.active_count());
        for part in &mut self.partitions {
            ctx.access_line(
                Component::XctManagement,
                &mut part.head,
                AccessKind::Read,
                WaitMode::Stall,
            );
            ctx.work(Component::XctManagement, part.active.len() as u64 * 8);
            out.extend(part.active.iter().copied());
        }
        out
    }

    /// Total number of exclusive accesses to list heads (contention metric).
    pub fn total_head_rmws(&self) -> u64 {
        self.partitions.iter().map(|p| p.head.rmw_count).sum()
    }

    /// Exclusive head accesses that crossed a socket boundary.
    pub fn remote_head_accesses(&self) -> u64 {
        self.partitions.iter().map(|p| p.head.remote_accesses).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atrapos_numa::{CoreId, CostModel, Topology};

    fn machine() -> (Topology, CostModel) {
        (Topology::multisocket(4, 2), CostModel::westmere())
    }

    #[test]
    fn add_and_remove_maintain_active_set() {
        let (t, c) = machine();
        let mut list = TxnList::centralized(4);
        let mut ctx = SimCtx::new(&t, &c, CoreId(0), 0);
        list.add(&mut ctx, TxnId(1));
        list.add(&mut ctx, TxnId(2));
        assert_eq!(list.active_count(), 2);
        list.remove(&mut ctx, TxnId(1));
        assert_eq!(list.active_count(), 1);
        let snap = list.snapshot(&mut ctx);
        assert_eq!(snap, vec![TxnId(2)]);
    }

    #[test]
    fn centralized_list_bounces_across_sockets() {
        let (t, c) = machine();
        let mut list = TxnList::centralized(4);
        // Cores on different sockets take turns: every access is remote
        // relative to the previous owner.
        let mut now = 0;
        for i in 0..8u64 {
            let core = CoreId(((i % 4) * 2) as u32);
            let mut ctx = SimCtx::new(&t, &c, core, now);
            list.add(&mut ctx, TxnId(i));
            now = ctx.now();
        }
        assert!(list.remote_head_accesses() >= 6);
    }

    #[test]
    fn per_socket_lists_keep_accesses_local() {
        let (t, c) = machine();
        let mut list = TxnList::per_socket(4);
        assert!(list.is_partitioned());
        let mut now = 0;
        for i in 0..8u64 {
            let core = CoreId(((i % 4) * 2) as u32);
            let mut ctx = SimCtx::new(&t, &c, core, now);
            list.add(&mut ctx, TxnId(i));
            now = ctx.now();
        }
        assert_eq!(list.remote_head_accesses(), 0);
        assert_eq!(list.active_count(), 8);
    }

    #[test]
    fn per_socket_add_is_cheaper_than_contended_centralized_add() {
        let (t, c) = machine();
        let mut central = TxnList::centralized(4);
        let mut local = TxnList::per_socket(4);
        // Prime the centralized head from socket 3 (so socket 0 pays a
        // remote transfer) and socket 0's local list from socket 0 itself
        // (so its head stays in the local cache).
        let mut ctx = SimCtx::new(&t, &c, CoreId(6), 0);
        central.add(&mut ctx, TxnId(0));
        let mut ctx = SimCtx::new(&t, &c, CoreId(0), 0);
        local.add(&mut ctx, TxnId(0));

        let mut ctx_central = SimCtx::new(&t, &c, CoreId(0), 10_000);
        central.add(&mut ctx_central, TxnId(1));
        let central_cost = ctx_central.elapsed();

        let mut ctx_local = SimCtx::new(&t, &c, CoreId(0), 10_000);
        local.add(&mut ctx_local, TxnId(1));
        let local_cost = ctx_local.elapsed();

        assert!(
            central_cost > 2 * local_cost,
            "centralized {central_cost} vs per-socket {local_cost}"
        );
    }
}
