//! Transaction descriptors.

use crate::lock::{LockId, LockMode};
use serde::{Deserialize, Serialize};

/// Transaction identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TxnId(pub u64);

/// Lifecycle state of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxnState {
    /// Executing.
    Active,
    /// Prepared (two-phase commit participant waiting for the decision).
    Prepared,
    /// Committed.
    Committed,
    /// Aborted.
    Aborted,
}

/// A transaction descriptor: identity, state, and the locks it holds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Txn {
    /// Identifier.
    pub id: TxnId,
    /// Current state.
    pub state: TxnState,
    /// Locks held (released at commit/abort: strict two-phase locking).
    pub held_locks: Vec<(LockId, LockMode)>,
    /// Bytes of log payload generated so far.
    pub log_bytes: u64,
    /// Whether this transaction is (part of) a distributed transaction.
    pub distributed: bool,
}

impl Txn {
    /// A fresh, active transaction.
    pub fn begin(id: TxnId) -> Self {
        Self {
            id,
            state: TxnState::Active,
            held_locks: Vec::new(),
            log_bytes: 0,
            distributed: false,
        }
    }

    /// Reset this descriptor for reuse as a fresh, active transaction.
    /// Keeps the held-lock list's capacity, so executors that pump many
    /// transactions through one descriptor allocate nothing per
    /// transaction.
    pub fn reset(&mut self, id: TxnId) {
        self.id = id;
        self.state = TxnState::Active;
        self.held_locks.clear();
        self.log_bytes = 0;
        self.distributed = false;
    }

    /// Record a granted lock.
    pub fn add_lock(&mut self, id: LockId, mode: LockMode) {
        self.held_locks.push((id, mode));
    }

    /// Whether the transaction already holds `id` in a mode at least as
    /// strong as `mode` (lock-upgrade short-circuit).
    pub fn holds(&self, id: &LockId, mode: LockMode) -> bool {
        self.held_locks.iter().any(|(held, m)| {
            held == id && (*m == mode || (m.is_exclusive() && !mode.is_exclusive()))
        })
    }

    /// Move to the committed state.
    pub fn commit(&mut self) {
        debug_assert!(matches!(self.state, TxnState::Active | TxnState::Prepared));
        self.state = TxnState::Committed;
    }

    /// Move to the aborted state.
    pub fn abort(&mut self) {
        self.state = TxnState::Aborted;
    }

    /// Whether the transaction has finished (committed or aborted).
    pub fn is_finished(&self) -> bool {
        matches!(self.state, TxnState::Committed | TxnState::Aborted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableId;

    #[test]
    fn lifecycle() {
        let mut t = Txn::begin(TxnId(1));
        assert_eq!(t.state, TxnState::Active);
        assert!(!t.is_finished());
        t.commit();
        assert_eq!(t.state, TxnState::Committed);
        assert!(t.is_finished());

        let mut t = Txn::begin(TxnId(2));
        t.abort();
        assert_eq!(t.state, TxnState::Aborted);
    }

    #[test]
    fn lock_bookkeeping_and_upgrade_check() {
        let mut t = Txn::begin(TxnId(1));
        let rec = LockId::Record(TableId(0), crate::record::Key::int(7));
        t.add_lock(rec.clone(), LockMode::X);
        assert!(t.holds(&rec, LockMode::X));
        // Holding X is enough for an S request on the same lock.
        assert!(t.holds(&rec, LockMode::S));
        assert!(!t.holds(&LockId::Table(TableId(0)), LockMode::IS));
    }
}
