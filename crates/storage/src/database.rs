//! A database: a collection of tables addressed by [`TableId`].

use crate::error::{StorageError, StorageResult};
use crate::schema::TableId;
use crate::table::Table;
use serde::{Deserialize, Serialize};

/// A collection of tables.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Database {
    tables: Vec<Option<Table>>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table.  Its [`TableId`] determines its slot; re-adding an
    /// id replaces the previous table.
    pub fn add_table(&mut self, table: Table) {
        let idx = table.id.index();
        if idx >= self.tables.len() {
            self.tables.resize_with(idx + 1, || None);
        }
        self.tables[idx] = Some(table);
    }

    /// Look up a table.
    pub fn table(&self, id: TableId) -> StorageResult<&Table> {
        self.tables
            .get(id.index())
            .and_then(|t| t.as_ref())
            .ok_or(StorageError::UnknownTable(id))
    }

    /// Look up a table mutably.
    pub fn table_mut(&mut self, id: TableId) -> StorageResult<&mut Table> {
        self.tables
            .get_mut(id.index())
            .and_then(|t| t.as_mut())
            .ok_or(StorageError::UnknownTable(id))
    }

    /// Find a table by name.
    pub fn table_by_name(&self, name: &str) -> Option<&Table> {
        self.tables.iter().flatten().find(|t| t.name() == name)
    }

    /// All registered tables.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.iter().flatten()
    }

    /// All registered tables, mutably.
    pub fn tables_mut(&mut self) -> impl Iterator<Item = &mut Table> {
        self.tables.iter_mut().flatten()
    }

    /// Number of registered tables.
    pub fn num_tables(&self) -> usize {
        self.tables.iter().flatten().count()
    }

    /// Total number of records across all tables.
    pub fn total_records(&self) -> usize {
        self.tables().map(|t| t.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Record, Value};
    use crate::schema::{Column, ColumnType, Schema};
    use atrapos_numa::SocketId;

    fn table(id: u32, name: &str) -> Table {
        Table::new(
            TableId(id),
            Schema::new(name, vec![Column::new("id", ColumnType::Int)], vec![0]),
            SocketId(0),
        )
    }

    #[test]
    fn add_and_lookup_tables() {
        let mut db = Database::new();
        db.add_table(table(0, "alpha"));
        db.add_table(table(3, "beta"));
        assert_eq!(db.num_tables(), 2);
        assert_eq!(db.table(TableId(0)).unwrap().name(), "alpha");
        assert_eq!(db.table(TableId(3)).unwrap().name(), "beta");
        assert!(matches!(
            db.table(TableId(1)),
            Err(StorageError::UnknownTable(_))
        ));
        assert!(db.table_by_name("beta").is_some());
        assert!(db.table_by_name("gamma").is_none());
    }

    #[test]
    fn total_records_sums_tables() {
        let mut db = Database::new();
        let mut t = table(0, "alpha");
        for i in 0..10 {
            t.load(Record::new(vec![Value::Int(i)])).unwrap();
        }
        db.add_table(t);
        db.add_table(table(1, "beta"));
        assert_eq!(db.total_records(), 10);
    }

    #[test]
    fn re_adding_a_table_replaces_it() {
        let mut db = Database::new();
        db.add_table(table(0, "alpha"));
        db.add_table(table(0, "alpha_v2"));
        assert_eq!(db.num_tables(), 1);
        assert_eq!(db.table(TableId(0)).unwrap().name(), "alpha_v2");
    }
}
