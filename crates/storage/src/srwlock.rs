//! Shared state read/write locks: centralized vs NUMA-partitioned.
//!
//! A typical storage manager protects global state (volume metadata,
//! checkpoint state, ...) with read/write locks that every transaction
//! acquires in *read* mode for a short moment in its critical path, while
//! background tasks (checkpointing) occasionally acquire them in *write*
//! mode (paper §IV, "Shared locks").  Acquiring even a read lock writes the
//! lock word, so on a multisocket machine every transaction pays a remote
//! cache-line transfer.
//!
//! The NUMA-aware variant keeps one lock per socket: readers touch only
//! their socket-local lock word, writers acquire every per-socket lock.

use atrapos_numa::{AccessKind, Component, ContendedLine, Cycles, SimCtx, SocketId, WaitMode};
use serde::{Deserialize, Serialize};

/// Instruction cost of the read-lock fast path (check + increment).
const READ_LOCK_INSTRUCTIONS: u64 = 20;

/// A state read/write lock, possibly partitioned by socket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StateRwLock {
    /// Human-readable name (e.g. "volume lock", "checkpoint mutex").
    pub name: String,
    words: Vec<ContendedLine>,
    /// Maps a socket to the word it should use.
    socket_to_word: Vec<usize>,
    /// Number of write (background) acquisitions.
    pub write_acquisitions: u64,
}

impl StateRwLock {
    /// A single centralized lock word homed on socket 0.
    pub fn centralized(name: impl Into<String>, n_sockets: usize) -> Self {
        Self {
            name: name.into(),
            words: vec![ContendedLine::new(SocketId(0))],
            socket_to_word: vec![0; n_sockets],
            write_acquisitions: 0,
        }
    }

    /// One lock word per socket (NUMA-aware).
    pub fn per_socket(name: impl Into<String>, n_sockets: usize) -> Self {
        Self {
            name: name.into(),
            words: (0..n_sockets)
                .map(|s| ContendedLine::new(SocketId(s as u16)))
                .collect(),
            socket_to_word: (0..n_sockets).collect(),
            write_acquisitions: 0,
        }
    }

    /// Whether this is the NUMA-partitioned variant.
    pub fn is_partitioned(&self) -> bool {
        self.words.len() > 1
    }

    /// Acquire in read mode from the calling context's socket (critical
    /// path).  Returns the cycles consumed.
    pub fn read_acquire(&mut self, ctx: &mut SimCtx<'_>) -> Cycles {
        let w = self.socket_to_word[ctx.socket().index()];
        let spent = ctx.access_line(
            Component::XctManagement,
            &mut self.words[w],
            AccessKind::Rmw,
            WaitMode::Stall,
        );
        ctx.work(Component::XctManagement, READ_LOCK_INSTRUCTIONS);
        spent
    }

    /// Release a read acquisition (decrement of the local word).
    pub fn read_release(&mut self, ctx: &mut SimCtx<'_>) -> Cycles {
        let w = self.socket_to_word[ctx.socket().index()];

        ctx.access_line(
            Component::XctManagement,
            &mut self.words[w],
            AccessKind::Rmw,
            WaitMode::Stall,
        )
    }

    /// Acquire in write mode (background task): in the centralized variant
    /// this is a single exclusive access, in the partitioned variant every
    /// per-socket word must be taken.  Returns the cycles consumed.
    pub fn write_acquire(&mut self, ctx: &mut SimCtx<'_>) -> Cycles {
        self.write_acquisitions += 1;
        let mut total = 0;
        for word in &mut self.words {
            total += ctx.access_line(
                Component::XctManagement,
                word,
                AccessKind::Rmw,
                WaitMode::Stall,
            );
        }
        total
    }

    /// Exclusive accesses that crossed a socket boundary.
    pub fn remote_accesses(&self) -> u64 {
        self.words.iter().map(|w| w.remote_accesses).sum()
    }

    /// Total exclusive accesses.
    pub fn total_rmws(&self) -> u64 {
        self.words.iter().map(|w| w.rmw_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atrapos_numa::{CoreId, CostModel, Topology};

    #[test]
    fn partitioned_read_acquisitions_stay_local() {
        let topo = Topology::multisocket(8, 2);
        let cost = CostModel::westmere();
        let mut lock = StateRwLock::per_socket("volume", 8);
        let mut now = 0;
        for i in 0..16u32 {
            let mut ctx = SimCtx::new(&topo, &cost, CoreId(i % 16), now);
            lock.read_acquire(&mut ctx);
            lock.read_release(&mut ctx);
            now = ctx.now();
        }
        assert_eq!(lock.remote_accesses(), 0);
    }

    #[test]
    fn centralized_read_acquisitions_bounce() {
        let topo = Topology::multisocket(8, 2);
        let cost = CostModel::westmere();
        let mut lock = StateRwLock::centralized("volume", 8);
        let mut now = 0;
        let mut remote_cost = 0;
        for i in 0..16u32 {
            let mut ctx = SimCtx::new(&topo, &cost, CoreId((i * 2) % 16), now);
            lock.read_acquire(&mut ctx);
            remote_cost += ctx.elapsed();
            now = ctx.now();
        }
        assert!(lock.remote_accesses() > 0);
        assert!(remote_cost > 16 * cost.llc_local);
    }

    #[test]
    fn write_acquire_touches_every_partition() {
        let topo = Topology::multisocket(4, 2);
        let cost = CostModel::westmere();
        let mut lock = StateRwLock::per_socket("checkpoint", 4);
        let mut ctx = SimCtx::new(&topo, &cost, CoreId(0), 0);
        lock.write_acquire(&mut ctx);
        assert_eq!(lock.write_acquisitions, 1);
        assert_eq!(lock.total_rmws(), 4);
        // Three of the four words live on remote sockets.
        assert_eq!(lock.remote_accesses(), 3);
    }
}
