//! The logical lock manager: hierarchical two-phase locking with either a
//! centralized lock table or partition-local lock tables.
//!
//! The centralized variant models Shore-MT's global lock manager: a hash
//! table of buckets, each protected by a latch.  Table-level intention locks
//! all hash to the same entry, so its bucket latch is the classic
//! shared-everything hot spot — threads *spin* on it, which is why the
//! centralized design's IPC rises while its throughput collapses (paper
//! Figure 1).  The partition-local variant is what PLP and ATraPos use: each
//! partition worker owns a small lock table that only it touches, so
//! acquisitions are socket-local and uncontended.

use crate::lock::{LockId, LockMode};
use crate::txn::{Txn, TxnId};
use atrapos_numa::{Component, ContendedLine, Cycles, SimCtx, SocketId, WaitMode};
use serde::{Deserialize, Serialize};
use std::hash::{BuildHasherDefault, Hasher};

/// A fast, deterministic multiply-xor hasher (FxHash-style) for the lock
/// tables.  Lock entries are probed four times per simulated action, and
/// nothing observable depends on the map's iteration order, so trading
/// SipHash's DoS resistance for speed is free here.  (The *bucket* hash of
/// [`LockId::bucket_hash`] is unchanged — it feeds the simulation model.)
#[derive(Default)]
pub struct FxHasher64 {
    hash: u64,
}

impl FxHasher64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type FxBuild = BuildHasherDefault<FxHasher64>;

/// A hash map with the deterministic [`FxHasher64`]: the hasher is fixed
/// (not randomly seeded), so this type is exempt from the workspace-wide
/// `HashMap` ban — every instance hashes identically in every process.
#[allow(clippy::disallowed_types)]
type FxMap<K, V> = std::collections::HashMap<K, V, FxBuild>;

/// Instruction cost of a lock-table probe + queue manipulation.
const LOCK_TABLE_WORK: u64 = 120;
/// Instruction cost of releasing one lock.
const LOCK_RELEASE_WORK: u64 = 60;

/// Which flavour of lock manager this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LockManagerKind {
    /// One global lock table shared by every thread (stock Shore-MT).
    Centralized,
    /// A partition-local lock table, owned by a single worker thread
    /// (PLP / ATraPos).
    PartitionLocal,
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct LockEntry {
    holders: Vec<(TxnId, LockMode)>,
    /// Virtual time until which an exclusive holder occupies the lock.
    exclusive_until: Cycles,
    /// Virtual time until which shared holders occupy the lock.
    shared_until: Cycles,
    /// Total times a requester had to wait for a logical conflict.
    conflicts: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Bucket {
    latch: ContendedLine,
    entries: FxMap<LockId, LockEntry>,
}

/// A lock manager instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LockManager {
    kind: LockManagerKind,
    buckets: Vec<Bucket>,
    /// Waiting policy: the centralized manager spins (cache-friendly
    /// back-off loop on a locally cached latch word), partition-local
    /// managers never wait in practice.
    wait_mode: WaitMode,
    /// Total lock acquisitions.
    pub acquisitions: u64,
    /// Acquisitions that waited for a logical conflict.
    pub logical_waits: u64,
}

impl LockManager {
    /// The centralized (shared-everything) lock manager with `n_buckets`
    /// buckets whose latches are spread round-robin over `n_sockets`
    /// memory nodes.
    pub fn centralized(n_buckets: usize, n_sockets: usize) -> Self {
        assert!(n_buckets >= 1);
        let buckets = (0..n_buckets)
            .map(|i| Bucket {
                latch: ContendedLine::new(SocketId((i % n_sockets.max(1)) as u16)),
                entries: FxMap::default(),
            })
            .collect();
        Self {
            kind: LockManagerKind::Centralized,
            buckets,
            wait_mode: WaitMode::Spin,
            acquisitions: 0,
            logical_waits: 0,
        }
    }

    /// A partition-local lock table homed on `home`.
    pub fn partition_local(home: SocketId) -> Self {
        Self {
            kind: LockManagerKind::PartitionLocal,
            buckets: vec![Bucket {
                latch: ContendedLine::new(home),
                entries: FxMap::default(),
            }],
            wait_mode: WaitMode::Stall,
            acquisitions: 0,
            logical_waits: 0,
        }
    }

    /// Which flavour this manager is.
    pub fn kind(&self) -> LockManagerKind {
        self.kind
    }

    fn bucket_index(&self, id: &LockId) -> usize {
        (id.bucket_hash() as usize) % self.buckets.len()
    }

    /// Acquire `id` in `mode` on behalf of `txn`.  Blocks (in virtual time)
    /// until conflicting holders have released.  Returns the cycles spent.
    pub fn acquire(
        &mut self,
        ctx: &mut SimCtx<'_>,
        txn: &mut Txn,
        id: LockId,
        mode: LockMode,
    ) -> Cycles {
        let before = ctx.now();
        if txn.holds(&id, mode) {
            // Lock-upgrade fast path: already held in a sufficient mode.
            ctx.work(Component::Locking, 10);
            return ctx.now() - before;
        }
        self.acquisitions += 1;
        let b = self.bucket_index(&id);
        let bucket = &mut self.buckets[b];
        // Latch the bucket (the physically contended part): a short critical
        // section on the bucket's latch word.
        ctx.critical_section(
            Component::Locking,
            &mut bucket.latch,
            self.wait_mode,
            LOCK_TABLE_WORK,
        );
        let entry = bucket.entries.entry(id.clone()).or_default();
        // Logical conflict: wait until the conflicting occupancy drains.
        // The latch is not held while waiting (a real lock manager enqueues
        // the request and blocks).
        let wait_until = match mode {
            LockMode::X | LockMode::IX => entry.exclusive_until.max(if mode == LockMode::X {
                entry.shared_until
            } else {
                0
            }),
            LockMode::S | LockMode::IS => entry.exclusive_until,
        };
        if wait_until > ctx.now() {
            entry.conflicts += 1;
            self.logical_waits += 1;
            ctx.wait_until(Component::Locking, wait_until, WaitMode::Stall);
        }
        entry.holders.push((txn.id, mode));
        txn.add_lock(id, mode);
        ctx.now() - before
    }

    /// Release every lock held by `txn` (strict two-phase locking at
    /// commit/abort).  Returns the cycles spent.
    ///
    /// The held-lock list is cleared in place (not taken), so a reused
    /// transaction descriptor keeps its capacity and the next
    /// transaction's lock bookkeeping is allocation-free.
    pub fn release_all(&mut self, ctx: &mut SimCtx<'_>, txn: &mut Txn) -> Cycles {
        let before = ctx.now();
        for (id, mode) in &txn.held_locks {
            let b = self.bucket_index(id);
            let bucket = &mut self.buckets[b];
            ctx.critical_section(
                Component::Locking,
                &mut bucket.latch,
                self.wait_mode,
                LOCK_RELEASE_WORK,
            );
            if let Some(entry) = bucket.entries.get_mut(id) {
                if let Some(pos) = entry
                    .holders
                    .iter()
                    .position(|(t, m)| *t == txn.id && *m == *mode)
                {
                    entry.holders.swap_remove(pos);
                }
                let now = ctx.now();
                if mode.is_exclusive() {
                    entry.exclusive_until = entry.exclusive_until.max(now);
                } else {
                    entry.shared_until = entry.shared_until.max(now);
                }
            }
        }
        txn.held_locks.clear();
        ctx.now() - before
    }

    /// Number of logical conflicts observed on `id` so far.
    pub fn conflicts_on(&self, id: &LockId) -> u64 {
        let b = self.bucket_index(id);
        self.buckets[b]
            .entries
            .get(id)
            .map(|e| e.conflicts)
            .unwrap_or(0)
    }

    /// Current holders of `id` (for tests and invariant checks).
    pub fn holders_of(&self, id: &LockId) -> Vec<(TxnId, LockMode)> {
        let b = self.bucket_index(id);
        self.buckets[b]
            .entries
            .get(id)
            .map(|e| e.holders.clone())
            .unwrap_or_default()
    }

    /// Check that no two current holders of any lock are incompatible
    /// (ignoring same-transaction grants).  Used by tests.
    pub fn check_grant_invariants(&self) -> Result<(), String> {
        for bucket in &self.buckets {
            for (id, entry) in &bucket.entries {
                for (i, (ta, ma)) in entry.holders.iter().enumerate() {
                    for (tb, mb) in entry.holders.iter().skip(i + 1) {
                        if ta != tb && !ma.compatible(*mb) {
                            return Err(format!(
                                "incompatible holders on {id:?}: {ta:?}:{ma:?} vs {tb:?}:{mb:?}"
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Key;
    use crate::schema::TableId;
    use atrapos_numa::{CoreId, CostModel, Topology};

    fn env() -> (Topology, CostModel) {
        (Topology::multisocket(4, 2), CostModel::westmere())
    }

    #[test]
    fn shared_locks_do_not_conflict() {
        let (t, c) = env();
        let mut lm = LockManager::centralized(64, 4);
        let id = LockId::Record(TableId(0), Key::int(1));
        let mut t1 = Txn::begin(TxnId(1));
        let mut t2 = Txn::begin(TxnId(2));
        let mut ctx1 = SimCtx::new(&t, &c, CoreId(0), 0);
        lm.acquire(&mut ctx1, &mut t1, id.clone(), LockMode::S);
        let mut ctx2 = SimCtx::new(&t, &c, CoreId(2), 0);
        lm.acquire(&mut ctx2, &mut t2, id.clone(), LockMode::S);
        assert_eq!(lm.logical_waits, 0);
        assert_eq!(lm.holders_of(&id).len(), 2);
        lm.check_grant_invariants().unwrap();
    }

    #[test]
    fn exclusive_lock_blocks_later_requester_until_release() {
        let (t, c) = env();
        let mut lm = LockManager::centralized(64, 4);
        let id = LockId::Record(TableId(0), Key::int(9));
        // T1 takes X, works for a while, and releases.
        let mut t1 = Txn::begin(TxnId(1));
        let mut ctx1 = SimCtx::new(&t, &c, CoreId(0), 0);
        lm.acquire(&mut ctx1, &mut t1, id.clone(), LockMode::X);
        ctx1.work(Component::XctExecution, 50_000);
        lm.release_all(&mut ctx1, &mut t1);
        let release_time = ctx1.now();
        // T2 starts earlier but must wait (in virtual time) for the release.
        let mut t2 = Txn::begin(TxnId(2));
        let mut ctx2 = SimCtx::new(&t, &c, CoreId(2), 100);
        lm.acquire(&mut ctx2, &mut t2, id.clone(), LockMode::X);
        assert!(ctx2.now() >= release_time);
        assert_eq!(lm.logical_waits, 1);
    }

    #[test]
    fn upgrade_fast_path_skips_reacquisition() {
        let (t, c) = env();
        let mut lm = LockManager::centralized(64, 4);
        let id = LockId::Record(TableId(0), Key::int(3));
        let mut txn = Txn::begin(TxnId(1));
        let mut ctx = SimCtx::new(&t, &c, CoreId(0), 0);
        lm.acquire(&mut ctx, &mut txn, id.clone(), LockMode::X);
        let acq = lm.acquisitions;
        lm.acquire(&mut ctx, &mut txn, id.clone(), LockMode::S);
        assert_eq!(lm.acquisitions, acq, "S under held X must not re-acquire");
    }

    #[test]
    fn release_all_clears_held_locks() {
        let (t, c) = env();
        let mut lm = LockManager::partition_local(SocketId(1));
        let mut txn = Txn::begin(TxnId(1));
        let mut ctx = SimCtx::new(&t, &c, CoreId(2), 0);
        lm.acquire(&mut ctx, &mut txn, LockId::Table(TableId(0)), LockMode::IX);
        lm.acquire(
            &mut ctx,
            &mut txn,
            LockId::Record(TableId(0), Key::int(5)),
            LockMode::X,
        );
        assert_eq!(txn.held_locks.len(), 2);
        lm.release_all(&mut ctx, &mut txn);
        assert!(txn.held_locks.is_empty());
        assert!(lm.holders_of(&LockId::Table(TableId(0))).is_empty());
        lm.check_grant_invariants().unwrap();
    }

    #[test]
    fn centralized_manager_spins_partition_local_is_cheap() {
        let (t, c) = env();
        let mut central = LockManager::centralized(64, 4);
        let mut local = LockManager::partition_local(SocketId(0));
        let id = LockId::Table(TableId(0));
        // Warm both from a remote socket so the next access pays a transfer
        // in the centralized case.
        let mut warm = Txn::begin(TxnId(1));
        let mut ctx = SimCtx::new(&t, &c, CoreId(6), 0);
        central.acquire(&mut ctx, &mut warm, id.clone(), LockMode::IS);
        let mut warm2 = Txn::begin(TxnId(2));
        let mut ctx = SimCtx::new(&t, &c, CoreId(0), 0);
        local.acquire(&mut ctx, &mut warm2, id.clone(), LockMode::IS);

        let mut txn = Txn::begin(TxnId(3));
        let mut ctx_c = SimCtx::new(&t, &c, CoreId(0), 1_000_000);
        central.acquire(&mut ctx_c, &mut txn, id.clone(), LockMode::IS);
        let central_cost = ctx_c.elapsed();

        let mut txn2 = Txn::begin(TxnId(4));
        let mut ctx_l = SimCtx::new(&t, &c, CoreId(0), 1_000_000);
        local.acquire(&mut ctx_l, &mut txn2, id, LockMode::IS);
        let local_cost = ctx_l.elapsed();
        assert!(central_cost > local_cost);
    }
}
