//! Two-phase commit for the shared-nothing configurations.
//!
//! When a multi-site transaction spans several shared-nothing instances, the
//! paper's distributed-transaction layer runs standard two-phase commit over
//! shared-memory channels (§III-C).  The measured overheads are: holding
//! locks until every participant reaches a decision, extra log records
//! (prepare + decision), and the round-trip communication itself —
//! Figure 4 breaks a transaction's time into exactly these components.
//!
//! The coordinator-side model below charges all phases to the coordinating
//! context; participant-side log writes are charged at the same cost as
//! coordinator log writes, which preserves the per-transaction totals the
//! figure reports.

use crate::log::{LogManager, LogRecordKind};
use crate::txn::TxnId;
use atrapos_numa::{Component, Cycles, SimCtx, SocketId};
use serde::{Deserialize, Serialize};

/// Outcome of a two-phase commit round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TwoPcOutcome {
    /// Every participant voted yes and the transaction committed.
    Committed,
    /// A participant voted no; the transaction aborted.
    Aborted {
        /// Index of the first participant that voted no.
        participant: usize,
    },
}

/// Two-phase-commit protocol parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TwoPhaseCommit {
    /// Size of a prepare/vote/decision/ack message in bytes.
    pub message_bytes: u64,
    /// Payload size of a participant's prepare log record.
    pub prepare_log_bytes: u64,
    /// Payload size of the coordinator's decision log record.
    pub decision_log_bytes: u64,
    /// Instruction cost of coordinator/participant state bookkeeping per
    /// participant.
    pub state_instructions: u64,
}

impl Default for TwoPhaseCommit {
    fn default() -> Self {
        Self {
            message_bytes: 96,
            prepare_log_bytes: 64,
            decision_log_bytes: 48,
            state_instructions: 400,
        }
    }
}

/// Statistics of a completed 2PC round.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TwoPcStats {
    /// Messages exchanged.
    pub messages: u64,
    /// Log records written (coordinator + participants).
    pub log_records: u64,
    /// Cycles spent in the protocol.
    pub cycles: Cycles,
}

impl TwoPhaseCommit {
    /// Run two-phase commit from the coordinator's context.
    ///
    /// * `participants` — sockets of the remote instances involved (the
    ///   coordinator's own instance is not included).
    /// * `log` — the coordinator's log manager (participant log writes are
    ///   charged here too, see module docs).
    /// * `abort_vote` — when `Some(i)`, participant `i` votes no and the
    ///   round aborts after the voting phase.
    pub fn coordinate(
        &self,
        ctx: &mut SimCtx<'_>,
        txn: TxnId,
        participants: &[SocketId],
        log: &mut LogManager,
        abort_vote: Option<usize>,
    ) -> (TwoPcOutcome, TwoPcStats) {
        let start = ctx.now();
        let mut stats = TwoPcStats::default();
        if participants.is_empty() {
            // Not a distributed transaction: nothing to do.
            return (TwoPcOutcome::Committed, stats);
        }

        // Phase 1: prepare requests + participant prepare records + votes.
        for &p in participants {
            ctx.send_message(Component::Communication, p, self.message_bytes);
            stats.messages += 1;
            ctx.work(Component::XctManagement, self.state_instructions);
            // The participant must force its prepare record to the log
            // before it may vote yes.
            log.insert(ctx, txn, LogRecordKind::Prepare, self.prepare_log_bytes);
            log.commit_flush(ctx);
            stats.log_records += 1;
            // Vote reply.
            ctx.send_message(Component::Communication, p, self.message_bytes);
            stats.messages += 1;
        }

        let outcome = match abort_vote {
            Some(i) if i < participants.len() => TwoPcOutcome::Aborted { participant: i },
            _ => TwoPcOutcome::Committed,
        };

        // Coordinator decision record (commit or abort) is forced to disk.
        let decision_kind = match outcome {
            TwoPcOutcome::Committed => LogRecordKind::DistributedCommit,
            TwoPcOutcome::Aborted { .. } => LogRecordKind::Abort,
        };
        log.insert(ctx, txn, decision_kind, self.decision_log_bytes);
        stats.log_records += 1;
        log.commit_flush(ctx);

        // Phase 2: decision messages + participant decision records + acks.
        for &p in participants {
            ctx.send_message(Component::Communication, p, self.message_bytes);
            stats.messages += 1;
            log.insert(ctx, txn, decision_kind, self.decision_log_bytes);
            stats.log_records += 1;
            ctx.work(Component::XctManagement, self.state_instructions);
            ctx.send_message(Component::Communication, p, self.message_bytes);
            stats.messages += 1;
        }

        stats.cycles = ctx.now() - start;
        (outcome, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atrapos_numa::{CoreId, CostModel, Topology};

    fn env() -> (Topology, CostModel) {
        (Topology::multisocket(8, 2), CostModel::westmere())
    }

    #[test]
    fn local_transactions_pay_nothing() {
        let (t, c) = env();
        let mut log = LogManager::per_socket(8);
        let mut ctx = SimCtx::new(&t, &c, CoreId(0), 0);
        let (outcome, stats) =
            TwoPhaseCommit::default().coordinate(&mut ctx, TxnId(1), &[], &mut log, None);
        assert_eq!(outcome, TwoPcOutcome::Committed);
        assert_eq!(stats.messages, 0);
        assert_eq!(ctx.elapsed(), 0);
    }

    #[test]
    fn cost_grows_with_participants() {
        let (t, c) = env();
        let tpc = TwoPhaseCommit::default();
        let run = |n: usize| {
            let mut log = LogManager::per_socket(8);
            let mut ctx = SimCtx::new(&t, &c, CoreId(0), 0);
            let participants: Vec<SocketId> = (1..=n).map(|i| SocketId(i as u16)).collect();
            let (_, stats) = tpc.coordinate(&mut ctx, TxnId(1), &participants, &mut log, None);
            (ctx.elapsed(), stats)
        };
        let (c1, s1) = run(1);
        let (c4, s4) = run(4);
        assert!(c4 > 2 * c1);
        assert_eq!(s1.messages, 4);
        assert_eq!(s4.messages, 16);
        assert!(s4.log_records > s1.log_records);
    }

    #[test]
    fn abort_vote_aborts_the_round() {
        let (t, c) = env();
        let mut log = LogManager::per_socket(8);
        let mut ctx = SimCtx::new(&t, &c, CoreId(0), 0);
        let participants = [SocketId(1), SocketId(2)];
        let (outcome, _) = TwoPhaseCommit::default().coordinate(
            &mut ctx,
            TxnId(9),
            &participants,
            &mut log,
            Some(1),
        );
        assert_eq!(outcome, TwoPcOutcome::Aborted { participant: 1 });
    }

    #[test]
    fn distributed_commit_writes_prepare_and_decision_records() {
        let (t, c) = env();
        let mut log = LogManager::per_socket(8);
        let mut ctx = SimCtx::new(&t, &c, CoreId(0), 0);
        let participants = [SocketId(1), SocketId(3)];
        let (_, stats) =
            TwoPhaseCommit::default().coordinate(&mut ctx, TxnId(9), &participants, &mut log, None);
        // 2 prepare + 1 coordinator decision + 2 participant decisions.
        assert_eq!(stats.log_records, 5);
        assert_eq!(log.total_records(), 5);
    }
}
