//! Property-based tests for the storage substrate.
//!
//! These exercise the invariants that the rest of the system relies on: the
//! B+-tree and the multi-rooted B+-tree behave exactly like an ordered map,
//! repartitioning actions (split/merge) never lose or duplicate records,
//! keys order lexicographically, lock modes follow the hierarchical
//! compatibility matrix, and both log-manager variants account every record.

use atrapos_numa::{CoreId, CostModel, SimCtx, SocketId, Topology};
use atrapos_storage::{
    BTree, Key, LockId, LockManager, LockMode, LogManager, LogRecordKind, MrBTree, Record,
    StateRwLock, TableId, Txn, TxnId, TxnList, Value,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn record_for(key: i64, payload: i64) -> Record {
    Record::new(vec![Value::Int(key), Value::Int(payload)])
}

/// A workload of keyed operations applied both to the tree under test and to
/// a `BTreeMap` model.
#[derive(Debug, Clone)]
enum MapOp {
    Insert(i64, i64),
    Remove(i64),
    Get(i64),
}

fn map_op_strategy(key_range: i64) -> impl Strategy<Value = MapOp> {
    prop_oneof![
        3 => (0..key_range, any::<i64>()).prop_map(|(k, v)| MapOp::Insert(k, v)),
        1 => (0..key_range).prop_map(MapOp::Remove),
        1 => (0..key_range).prop_map(MapOp::Get),
    ]
}

proptest! {
    // ------------------------------------------------------------------
    // B+-tree
    // ------------------------------------------------------------------

    /// The B+-tree behaves exactly like an ordered map under arbitrary
    /// insert/remove/get sequences, and its structural invariants hold at
    /// the end.
    #[test]
    fn btree_matches_ordered_map_model(ops in prop::collection::vec(map_op_strategy(512), 1..400)) {
        let mut tree = BTree::new();
        let mut model: BTreeMap<i64, i64> = BTreeMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    let prev_tree = tree.insert(Key::int(k), record_for(k, v));
                    let prev_model = model.insert(k, v);
                    prop_assert_eq!(prev_tree.is_some(), prev_model.is_some());
                }
                MapOp::Remove(k) => {
                    let removed_tree = tree.remove(&Key::int(k));
                    let removed_model = model.remove(&k);
                    prop_assert_eq!(removed_tree.is_some(), removed_model.is_some());
                }
                MapOp::Get(k) => {
                    let got = tree.get(&Key::int(k)).map(|r| r.get(1).as_int());
                    prop_assert_eq!(got, model.get(&k).copied());
                }
            }
        }
        prop_assert_eq!(tree.len(), model.len());
        tree.check_invariants().map_err(TestCaseError::fail)?;
        // Iteration yields exactly the model's entries, in order.
        let tree_entries: Vec<(i64, i64)> = tree
            .iter()
            .map(|(k, r)| (k.head_int(), r.get(1).as_int()))
            .collect();
        let model_entries: Vec<(i64, i64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(tree_entries, model_entries);
    }

    /// Iteration is always strictly sorted and `min_key`/`max_key` agree
    /// with it.
    #[test]
    fn btree_iteration_is_sorted_and_bounded(keys in prop::collection::btree_set(0i64..10_000, 1..300)) {
        let mut tree = BTree::new();
        for &k in &keys {
            tree.insert(Key::int(k), record_for(k, k));
        }
        let collected: Vec<i64> = tree.iter().map(|(k, _)| k.head_int()).collect();
        prop_assert!(collected.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(collected.first().copied(), keys.iter().next().copied());
        prop_assert_eq!(tree.min_key().map(|k| k.head_int()), keys.iter().next().copied());
        prop_assert_eq!(tree.max_key().map(|k| k.head_int()), keys.iter().next_back().copied());
    }

    /// `bulk_load` produces the same tree contents as inserting one by one.
    #[test]
    fn btree_bulk_load_equals_incremental_inserts(keys in prop::collection::btree_set(0i64..100_000, 0..500)) {
        let pairs: Vec<(Key, Record)> = keys
            .iter()
            .map(|&k| (Key::int(k), record_for(k, k * 3)))
            .collect();
        let bulk = BTree::bulk_load(pairs.clone());
        let mut incremental = BTree::new();
        for (k, r) in pairs {
            incremental.insert(k, r);
        }
        prop_assert_eq!(bulk.len(), incremental.len());
        bulk.check_invariants().map_err(TestCaseError::fail)?;
        let a: Vec<i64> = bulk.iter().map(|(k, _)| k.head_int()).collect();
        let b: Vec<i64> = incremental.iter().map(|(k, _)| k.head_int()).collect();
        prop_assert_eq!(a, b);
    }

    /// `range(from, to)` returns exactly the keys in `[from, to)`.
    #[test]
    fn btree_range_query_matches_model(
        keys in prop::collection::btree_set(0i64..2_000, 1..200),
        from in 0i64..2_000,
        width in 0i64..2_000,
    ) {
        let mut tree = BTree::new();
        for &k in &keys {
            tree.insert(Key::int(k), record_for(k, k));
        }
        let to = from + width;
        let got: Vec<i64> = tree
            .range(Some(&Key::int(from)), Some(&Key::int(to)))
            .iter()
            .map(|(k, _)| k.head_int())
            .collect();
        let expected: Vec<i64> = keys.iter().copied().filter(|&k| k >= from && k < to).collect();
        prop_assert_eq!(got, expected);
    }

    /// `split_off` then `merge_from` is the identity on the set of entries,
    /// and both halves are valid trees that partition the key space at the
    /// boundary.
    #[test]
    fn btree_split_then_merge_roundtrips(
        keys in prop::collection::btree_set(0i64..5_000, 1..300),
        boundary in 0i64..5_000,
    ) {
        let mut tree = BTree::new();
        for &k in &keys {
            tree.insert(Key::int(k), record_for(k, k + 7));
        }
        let original: Vec<i64> = tree.iter().map(|(k, _)| k.head_int()).collect();
        let right = tree.split_off(&Key::int(boundary));
        prop_assert!(tree.iter().all(|(k, _)| k.head_int() < boundary));
        prop_assert!(right.iter().all(|(k, _)| k.head_int() >= boundary));
        prop_assert_eq!(tree.len() + right.len(), original.len());
        tree.check_invariants().map_err(TestCaseError::fail)?;
        right.check_invariants().map_err(TestCaseError::fail)?;
        tree.merge_from(right);
        let merged: Vec<i64> = tree.iter().map(|(k, _)| k.head_int()).collect();
        prop_assert_eq!(merged, original);
        tree.check_invariants().map_err(TestCaseError::fail)?;
    }

    // ------------------------------------------------------------------
    // Multi-rooted B+-tree
    // ------------------------------------------------------------------

    /// A range-partitioned multi-rooted tree routes every key to the
    /// partition whose `[lower, upper)` range contains it, and behaves like
    /// an ordered map overall.
    #[test]
    fn mrbtree_routes_keys_to_covering_partitions(
        mut boundaries in prop::collection::btree_set(1i64..1_000, 0..6),
        keys in prop::collection::btree_set(0i64..1_000, 1..200),
    ) {
        let boundary_keys: Vec<Key> = boundaries.iter().map(|&b| Key::int(b)).collect();
        let nodes = vec![SocketId(0); boundary_keys.len() + 1];
        let mut mr = MrBTree::range_partitioned(boundary_keys, nodes);
        prop_assert_eq!(mr.num_partitions(), boundaries.len() + 1);
        for &k in &keys {
            mr.insert(Key::int(k), record_for(k, k));
        }
        mr.check_invariants().map_err(TestCaseError::fail)?;
        prop_assert_eq!(mr.len(), keys.len());
        boundaries.insert(0); // implicit lower bound of partition 0
        for &k in &keys {
            let key = Key::int(k);
            let idx = mr.partition_for(&key);
            if let Some(lower) = mr.lower_bound(idx) {
                prop_assert!(lower <= &key);
            }
            if let Some(upper) = mr.upper_bound(idx) {
                prop_assert!(&key < upper);
            }
            prop_assert_eq!(mr.get(&key).map(|r| r.get(0).as_int()), Some(k));
        }
        // Global iteration is sorted across partitions.
        let collected: Vec<i64> = mr.iter().map(|(k, _)| k.head_int()).collect();
        prop_assert!(collected.windows(2).all(|w| w[0] < w[1]));
    }

    /// Splitting a partition and merging it back never loses or duplicates
    /// records, regardless of where the boundary falls.
    #[test]
    fn mrbtree_split_and_merge_preserve_contents(
        keys in prop::collection::btree_set(0i64..2_000, 1..200),
        boundary in 1i64..2_000,
    ) {
        let mut mr = MrBTree::new(SocketId(0));
        for &k in &keys {
            mr.insert(Key::int(k), record_for(k, k));
        }
        let before: Vec<i64> = mr.iter().map(|(k, _)| k.head_int()).collect();
        let moved = mr
            .split_partition(0, Key::int(boundary), SocketId(1))
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(mr.num_partitions(), 2);
        prop_assert_eq!(moved, keys.iter().filter(|&&k| k >= boundary).count());
        prop_assert_eq!(mr.len(), keys.len());
        mr.check_invariants().map_err(TestCaseError::fail)?;
        // Every key still readable after the split.
        for &k in &keys {
            prop_assert!(mr.contains(&Key::int(k)));
        }
        mr.merge_with_next(0).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(mr.num_partitions(), 1);
        let after: Vec<i64> = mr.iter().map(|(k, _)| k.head_int()).collect();
        prop_assert_eq!(after, before);
        mr.check_invariants().map_err(TestCaseError::fail)?;
    }

    // ------------------------------------------------------------------
    // Keys
    // ------------------------------------------------------------------

    /// Composite integer keys order exactly like the tuples they encode
    /// (lexicographic order), which the range partitioning relies on.
    #[test]
    fn composite_keys_order_lexicographically(
        a in prop::collection::vec(-1_000i64..1_000, 1..4),
        b in prop::collection::vec(-1_000i64..1_000, 1..4),
    ) {
        let ka = Key::ints(&a);
        let kb = Key::ints(&b);
        prop_assert_eq!(ka.cmp(&kb), a.cmp(&b));
        prop_assert_eq!(ka == kb, a == b);
        prop_assert_eq!(ka.head_int(), a[0]);
        prop_assert_eq!(ka.len(), a.len());
    }

    // ------------------------------------------------------------------
    // Lock manager
    // ------------------------------------------------------------------

    /// The lock-mode compatibility matrix is symmetric and follows the
    /// hierarchical (IS/IX/S/X) rules: only X is exclusive against
    /// everything, and intention locks are mutually compatible.
    #[test]
    fn lock_mode_compatibility_is_symmetric(a_idx in 0usize..4, b_idx in 0usize..4) {
        let modes = [LockMode::IS, LockMode::IX, LockMode::S, LockMode::X];
        let a = modes[a_idx];
        let b = modes[b_idx];
        prop_assert_eq!(a.compatible(b), b.compatible(a));
        if a == LockMode::X || b == LockMode::X {
            prop_assert!(!a.compatible(b));
        }
        if matches!(a, LockMode::IS | LockMode::IX) && matches!(b, LockMode::IS | LockMode::IX) {
            prop_assert!(a.compatible(b));
        }
        // IX and X both carry write intent.
        prop_assert_eq!(a.is_exclusive(), matches!(a, LockMode::X | LockMode::IX));
    }

    /// Transactions executed back-to-back (acquire all locks, do work,
    /// release all — exactly how the engine drives the lock manager) never
    /// leave incompatible holders behind, leave no holders at all once every
    /// transaction released, and serialize conflicting accesses in virtual
    /// time: a writer that logically starts before an earlier-processed
    /// holder's release is pushed past that release.
    #[test]
    fn lock_manager_serializes_sequentially_executed_transactions(
        txn_requests in prop::collection::vec(
            prop::collection::vec((0i64..20, any::<bool>()), 1..6),
            1..25,
        ),
        centralized in any::<bool>(),
    ) {
        let topo = Topology::multisocket(2, 2);
        let cost = CostModel::westmere();
        let mut lm = if centralized {
            LockManager::centralized(16, 2)
        } else {
            LockManager::partition_local(SocketId(0))
        };
        // The latest virtual time at which a key was released with write
        // intent, to check serialization below.
        let mut write_release: std::collections::BTreeMap<i64, u64> = std::collections::BTreeMap::new();
        for (i, requests) in txn_requests.iter().enumerate() {
            let mut txn = Txn::begin(TxnId(i as u64 + 1));
            // Every transaction starts at virtual time 0: conflicts with the
            // (virtual-time-overlapping) earlier transactions must be
            // resolved by waiting.
            let mut ctx = SimCtx::new(&topo, &cost, CoreId((i % 4) as u32), 0);
            let mut conflicting_floor = 0u64;
            for (key, write) in requests {
                let (table_mode, record_mode) = if *write {
                    (LockMode::IX, LockMode::X)
                } else {
                    (LockMode::IS, LockMode::S)
                };
                if *write {
                    if let Some(&t) = write_release.get(key) {
                        conflicting_floor = conflicting_floor.max(t);
                    }
                }
                lm.acquire(&mut ctx, &mut txn, LockId::Table(TableId(0)), table_mode);
                lm.acquire(&mut ctx, &mut txn, LockId::Record(TableId(0), Key::int(*key)), record_mode);
                lm.check_grant_invariants().map_err(TestCaseError::fail)?;
            }
            ctx.work(atrapos_numa::Component::XctExecution, 500);
            lm.release_all(&mut ctx, &mut txn);
            let release_time = ctx.now();
            prop_assert!(
                release_time >= conflicting_floor,
                "a writer must not finish before the conflicting writers it waited for"
            );
            for (key, write) in requests {
                if *write {
                    let e = write_release.entry(*key).or_insert(0);
                    *e = (*e).max(release_time);
                }
            }
            prop_assert!(txn.held_locks.is_empty());
            lm.check_grant_invariants().map_err(TestCaseError::fail)?;
        }
        for key in 0..20 {
            prop_assert!(lm.holders_of(&LockId::Record(TableId(0), Key::int(key))).is_empty());
        }
        prop_assert!(lm.holders_of(&LockId::Table(TableId(0))).is_empty());
        prop_assert_eq!(lm.acquisitions > 0, true);
    }

    // ------------------------------------------------------------------
    // Log manager
    // ------------------------------------------------------------------

    /// Both log-manager variants account every inserted record and its
    /// bytes, regardless of which core/socket wrote it, and the per-socket
    /// variant never performs remote log-buffer reservations.
    #[test]
    fn log_managers_account_all_records(
        writes in prop::collection::vec((0u32..8, 32u64..512), 1..80),
        per_socket in any::<bool>(),
    ) {
        let topo = Topology::multisocket(4, 2);
        let cost = CostModel::westmere();
        let mut log = if per_socket {
            LogManager::per_socket(4)
        } else {
            LogManager::centralized(4)
        };
        let mut now = 0;
        let mut expected_bytes = 0u64;
        for (i, (core, bytes)) in writes.iter().enumerate() {
            let mut ctx = SimCtx::new(&topo, &cost, CoreId(*core), now);
            log.insert(&mut ctx, TxnId(i as u64 + 1), LogRecordKind::Update, *bytes);
            expected_bytes += *bytes;
            now = ctx.now();
        }
        prop_assert_eq!(log.total_records(), writes.len() as u64);
        prop_assert!(log.total_bytes() >= expected_bytes);
        if per_socket {
            prop_assert_eq!(log.num_buffers(), 4);
            prop_assert_eq!(log.remote_reservations(), 0);
        } else {
            prop_assert_eq!(log.num_buffers(), 1);
        }
    }

    // ------------------------------------------------------------------
    // Transaction list and state locks (NUMA-aware variants)
    // ------------------------------------------------------------------

    /// The per-socket transaction list keeps every add/remove socket-local
    /// and preserves the active set; the centralized list preserves the same
    /// active set but pays remote accesses.
    #[test]
    fn txn_list_variants_preserve_active_set(
        ops in prop::collection::vec((0u32..8, any::<bool>()), 1..100),
        per_socket in any::<bool>(),
    ) {
        let topo = Topology::multisocket(4, 2);
        let cost = CostModel::westmere();
        let mut list = if per_socket {
            TxnList::per_socket(4)
        } else {
            TxnList::centralized(4)
        };
        // Track which transactions are active, and from which core they were
        // added (removal must come from the same socket, as ATraPos
        // guarantees through thread binding).
        let mut active: Vec<(u64, u32)> = Vec::new();
        let mut next_id = 1u64;
        let mut now = 0;
        for (core, add) in ops {
            if add || active.is_empty() {
                let mut ctx = SimCtx::new(&topo, &cost, CoreId(core), now);
                list.add(&mut ctx, TxnId(next_id));
                active.push((next_id, core));
                next_id += 1;
                now = ctx.now();
            } else {
                let (id, owner_core) = active.swap_remove(0);
                let mut ctx = SimCtx::new(&topo, &cost, CoreId(owner_core), now);
                list.remove(&mut ctx, TxnId(id));
                now = ctx.now();
            }
        }
        prop_assert_eq!(list.active_count(), active.len());
        if per_socket {
            // Adds and removes are socket-local in the NUMA-aware variant;
            // only the (background) snapshot below may cross sockets.
            prop_assert!(list.is_partitioned());
            prop_assert_eq!(list.remote_head_accesses(), 0);
        }
        let mut ctx = SimCtx::new(&topo, &cost, CoreId(0), now);
        let snapshot = list.snapshot(&mut ctx);
        prop_assert_eq!(snapshot.len(), active.len());
        if per_socket {
            // The checkpoint-style snapshot reads every per-socket head once,
            // so it crosses at most (sockets - 1) boundaries.
            prop_assert!(list.remote_head_accesses() <= 3);
        }
    }

    /// Per-socket state read/write locks never touch remote cache lines on
    /// the read path, whatever the sequence of readers; write acquisitions
    /// touch every partition exactly once.
    #[test]
    fn per_socket_state_lock_read_path_is_local(readers in prop::collection::vec(0u32..16, 1..80)) {
        let topo = Topology::multisocket(8, 2);
        let cost = CostModel::westmere();
        let mut lock = StateRwLock::per_socket("volume", 8);
        let mut now = 0;
        for core in readers {
            let mut ctx = SimCtx::new(&topo, &cost, CoreId(core), now);
            lock.read_acquire(&mut ctx);
            lock.read_release(&mut ctx);
            now = ctx.now();
        }
        prop_assert_eq!(lock.remote_accesses(), 0);
        let rmws_before = lock.total_rmws();
        let mut ctx = SimCtx::new(&topo, &cost, CoreId(0), now);
        lock.write_acquire(&mut ctx);
        prop_assert_eq!(lock.total_rmws() - rmws_before, 8);
    }
}
