//! Model-based property tests: the storage structures against naive
//! oracles.
//!
//! * The B+-tree (and its repartitioning actions `split_off` /
//!   `merge_from`) is driven against a `std::collections::BTreeMap` under
//!   random operation sequences that include range scans and structural
//!   splits/merges — if the tree and the ordered map ever disagree on any
//!   observable, the sequence shrinks to a minimal reproducer.
//! * The lock manager is driven against a naive lock-table oracle that
//!   tracks, per lock, exactly which transactions hold it in which mode,
//!   and per transaction the set of grants — verifying holder sets, the
//!   upgrade fast path, release-all semantics, and the grant-compatibility
//!   invariant after every step.

use atrapos_numa::{CoreId, CostModel, SimCtx, Topology};
use atrapos_storage::{
    BTree, Key, LockId, LockManager, LockMode, Record, TableId, Txn, TxnId, Value,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
// `LockId` has no `Ord` impl, so the oracle's holder table must stay a
// hash map; the oracle only does keyed access and sorts before comparing,
// so iteration order never reaches an assertion.
#[allow(clippy::disallowed_types)]
use std::collections::HashMap;

fn record_for(key: i64, payload: i64) -> Record {
    Record::new(vec![Value::Int(key), Value::Int(payload)])
}

/// Operations of the B+-tree model workload.  `SplitMerge` performs the
/// physical repartitioning round-trip (split at a boundary, then merge the
/// right half back), which must be a no-op on the logical contents.
#[derive(Debug, Clone)]
enum TreeOp {
    Insert(i64, i64),
    Remove(i64),
    Get(i64),
    Range(i64, i64),
    SplitMerge(i64),
}

fn tree_op_strategy(key_range: i64) -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        4 => (0..key_range, any::<i64>()).prop_map(|(k, v)| TreeOp::Insert(k, v)),
        2 => (0..key_range).prop_map(TreeOp::Remove),
        2 => (0..key_range).prop_map(TreeOp::Get),
        1 => (0..key_range, 0..key_range).prop_map(|(a, b)| TreeOp::Range(a.min(b), a.max(b))),
        1 => (0..key_range).prop_map(TreeOp::SplitMerge),
    ]
}

proptest! {
    /// The tree agrees with the ordered-map model on every lookup, range
    /// scan, and iteration — even with structural splits and merges
    /// interleaved.
    #[test]
    fn btree_with_splits_matches_ordered_map(
        ops in prop::collection::vec(tree_op_strategy(256), 1..300),
    ) {
        let mut tree = BTree::new();
        let mut model: BTreeMap<i64, i64> = BTreeMap::new();
        for op in ops {
            match op {
                TreeOp::Insert(k, v) => {
                    let a = tree.insert(Key::int(k), record_for(k, v)).is_some();
                    let b = model.insert(k, v).is_some();
                    prop_assert_eq!(a, b);
                }
                TreeOp::Remove(k) => {
                    let a = tree.remove(&Key::int(k)).is_some();
                    let b = model.remove(&k).is_some();
                    prop_assert_eq!(a, b);
                }
                TreeOp::Get(k) => {
                    let a = tree.get(&Key::int(k)).map(|r| r.get(1).as_int());
                    let b = model.get(&k).copied();
                    prop_assert_eq!(a, b);
                }
                TreeOp::Range(lo, hi) => {
                    let a: Vec<(i64, i64)> = tree
                        .range(Some(&Key::int(lo)), Some(&Key::int(hi)))
                        .into_iter()
                        .map(|(k, r)| (k.head_int(), r.get(1).as_int()))
                        .collect();
                    let b: Vec<(i64, i64)> =
                        model.range(lo..hi).map(|(&k, &v)| (k, v)).collect();
                    prop_assert_eq!(a, b);
                }
                TreeOp::SplitMerge(boundary) => {
                    let right = tree.split_off(&Key::int(boundary));
                    // Both halves are well-formed and partition the keys.
                    prop_assert!(tree.iter().all(|(k, _)| k < &Key::int(boundary)));
                    prop_assert!(right.iter().all(|(k, _)| k >= &Key::int(boundary)));
                    tree.merge_from(right);
                }
            }
            prop_assert_eq!(tree.len(), model.len());
        }
        tree.check_invariants().map_err(TestCaseError::fail)?;
        let a: Vec<(i64, i64)> = tree
            .iter()
            .map(|(k, r)| (k.head_int(), r.get(1).as_int()))
            .collect();
        let b: Vec<(i64, i64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(a, b);
    }
}

// ----------------------------------------------------------------------
// Lock manager vs. naive oracle
// ----------------------------------------------------------------------

/// The naive oracle: per lock the exact multiset of (txn, mode) grants,
/// per transaction its grant list in acquisition order.
#[derive(Debug, Default)]
struct LockOracle {
    #[allow(clippy::disallowed_types)]
    holders: HashMap<LockId, Vec<(TxnId, LockMode)>>,
    held: BTreeMap<TxnId, Vec<(LockId, LockMode)>>,
}

impl LockOracle {
    /// Whether `txn` already holds `id` in a mode at least as strong as
    /// `mode` (the upgrade fast path must skip the acquisition).
    fn holds(&self, txn: TxnId, id: &LockId, mode: LockMode) -> bool {
        self.held
            .get(&txn)
            .map(|locks| {
                locks.iter().any(|(held, m)| {
                    held == id && (*m == mode || (m.is_exclusive() && !mode.is_exclusive()))
                })
            })
            .unwrap_or(false)
    }

    fn grant(&mut self, txn: TxnId, id: LockId, mode: LockMode) {
        self.holders
            .entry(id.clone())
            .or_default()
            .push((txn, mode));
        self.held.entry(txn).or_default().push((id, mode));
    }

    fn release_all(&mut self, txn: TxnId) {
        for (id, mode) in self.held.remove(&txn).unwrap_or_default() {
            if let Some(hs) = self.holders.get_mut(&id) {
                if let Some(pos) = hs.iter().position(|(t, m)| *t == txn && *m == mode) {
                    hs.swap_remove(pos);
                }
            }
        }
    }

    fn sorted_holders(&self, id: &LockId) -> Vec<(TxnId, LockMode)> {
        let mut v = self.holders.get(id).cloned().unwrap_or_default();
        v.sort_by_key(|(t, m)| (*t, format!("{m:?}")));
        v
    }
}

fn lock_id(l: u8) -> LockId {
    if l < 3 {
        LockId::Table(TableId(u32::from(l)))
    } else {
        LockId::Record(TableId(u32::from(l % 3)), Key::int(i64::from(l)))
    }
}

fn lock_mode(m: u8) -> LockMode {
    match m {
        0 => LockMode::IS,
        1 => LockMode::IX,
        2 => LockMode::S,
        _ => LockMode::X,
    }
}

proptest! {
    /// Transactions acquire batches of locks and release them all at
    /// commit — the exact pattern the execution designs use (strict 2PL,
    /// with each `execute` call fully releasing before the next begins).
    /// The lock manager's observable state — holder sets, per-transaction
    /// grant lists, the upgrade fast path, acquisition counts, wait
    /// accounting, and the grant-compatibility invariant — must match the
    /// naive oracle at every step.
    #[test]
    fn lock_manager_matches_naive_oracle(
        centralized in any::<bool>(),
        txn_batches in prop::collection::vec(
            prop::collection::vec((0..12u8, 0..4u8), 1..10),
            1..40,
        ),
    ) {
        let topo = Topology::multisocket(4, 2);
        let cost = CostModel::westmere();
        let mut lm = if centralized {
            LockManager::centralized(16, 4)
        } else {
            LockManager::partition_local(atrapos_numa::SocketId(0))
        };
        let mut oracle = LockOracle::default();
        // Locks a previous transaction has held exclusively (or at all, for
        // X requests): the only locks a later request may ever wait on.
        let mut ever_exclusive: Vec<bool> = vec![false; 12];
        let mut ever_held: Vec<bool> = vec![false; 12];
        let mut now = 0;

        for (i, batch) in txn_batches.iter().enumerate() {
            let mut txn = Txn::begin(TxnId(i as u64 + 1));
            let core = CoreId(((i % 4) * 2) as u32);
            for &(l, m) in batch {
                let id = lock_id(l);
                let mode = lock_mode(m);
                let expect_fast_path = oracle.holds(txn.id, &id, mode);
                prop_assert_eq!(
                    expect_fast_path,
                    txn.holds(&id, mode),
                    "oracle and Txn::holds disagree"
                );
                let acquisitions_before = lm.acquisitions;
                let waits_before = lm.logical_waits;
                let mut ctx = SimCtx::new(&topo, &cost, core, now);
                lm.acquire(&mut ctx, &mut txn, id.clone(), mode);
                now = ctx.now();
                if expect_fast_path {
                    prop_assert_eq!(lm.acquisitions, acquisitions_before,
                        "upgrade fast path re-acquired");
                    prop_assert_eq!(lm.logical_waits, waits_before);
                } else {
                    prop_assert_eq!(lm.acquisitions, acquisitions_before + 1);
                    oracle.grant(txn.id, id.clone(), mode);
                    // A request can only wait on occupancy a previous
                    // holder left behind.
                    let could_wait = if mode == LockMode::X {
                        ever_held[l as usize]
                    } else {
                        ever_exclusive[l as usize]
                    };
                    if !could_wait {
                        prop_assert_eq!(lm.logical_waits, waits_before,
                            "waited on a never-contended lock");
                    }
                }
                // Holder multisets agree.
                let mut got = lm.holders_of(&id);
                got.sort_by_key(|(t, m)| (*t, format!("{m:?}")));
                prop_assert_eq!(got, oracle.sorted_holders(&id));
                // The transaction's grant list agrees exactly (order
                // preserved).
                let want = oracle.held.get(&txn.id).cloned().unwrap_or_default();
                prop_assert_eq!(&txn.held_locks, &want);
                lm.check_grant_invariants().map_err(TestCaseError::fail)?;
            }
            // Commit: strict 2PL releases everything.
            for (l, m) in batch {
                ever_held[*l as usize] = true;
                if lock_mode(*m).is_exclusive() {
                    ever_exclusive[*l as usize] = true;
                }
            }
            let mut ctx = SimCtx::new(&topo, &cost, core, now);
            lm.release_all(&mut ctx, &mut txn);
            now = ctx.now();
            oracle.release_all(txn.id);
            prop_assert!(txn.held_locks.is_empty());
            for l in 0..12u8 {
                prop_assert!(
                    lm.holders_of(&lock_id(l)).is_empty(),
                    "holders survive release_all"
                );
            }
        }
    }
}
