//! Transactions, actions, and flow graphs.
//!
//! Following the data-oriented execution model the paper builds on
//! (DORA/PLP, §V-A), a transaction is decomposed into *actions*, each of
//! which touches exactly one table (and therefore one data partition), and
//! *synchronization points* where actions exchange data.  A
//! [`TransactionSpec`] is the instantiated flow graph of one transaction:
//! an ordered list of [`Phase`]s, each containing actions that may run in
//! parallel on their partitions, terminated by a synchronization point.
//!
//! The paper's Figure 7 (the TPC-C NewOrder flow graph) maps directly onto
//! this representation: its fixed part and variable part become phases, and
//! its four synchronization points become the phase boundaries.

use atrapos_numa::Cycles;
use atrapos_storage::{Key, Record, TableId, Value};
use serde::{Deserialize, Serialize};

/// What an action does to its table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ActionOp {
    /// Read one record by primary key.
    Read {
        /// Table to read from.
        table: TableId,
        /// Primary key.
        key: Key,
    },
    /// Read up to `limit` records in `[from, to)`.
    ReadRange {
        /// Table to scan.
        table: TableId,
        /// Inclusive lower bound.
        from: Key,
        /// Exclusive upper bound.
        to: Key,
        /// Maximum rows returned.
        limit: usize,
    },
    /// Overwrite columns of one record.
    Update {
        /// Table to update.
        table: TableId,
        /// Primary key.
        key: Key,
        /// `(column index, new value)` pairs.
        changes: Vec<(usize, Value)>,
    },
    /// Add a signed delta to an integer column (used for balances and
    /// counters so that consistency checks remain meaningful).
    Increment {
        /// Table to update.
        table: TableId,
        /// Primary key.
        key: Key,
        /// Column to adjust.
        column: usize,
        /// Signed delta.
        delta: i64,
    },
    /// Insert a new record.
    Insert {
        /// Table to insert into.
        table: TableId,
        /// The record.
        record: Record,
    },
    /// Delete a record by primary key.
    Delete {
        /// Table to delete from.
        table: TableId,
        /// Primary key.
        key: Key,
    },
}

impl ActionOp {
    /// The table this action touches.
    pub fn table(&self) -> TableId {
        match self {
            ActionOp::Read { table, .. }
            | ActionOp::ReadRange { table, .. }
            | ActionOp::Update { table, .. }
            | ActionOp::Increment { table, .. }
            | ActionOp::Insert { table, .. }
            | ActionOp::Delete { table, .. } => *table,
        }
    }

    /// The primary key this action is routed by (the range scan routes by
    /// its lower bound; the insert by the record's first column).
    pub fn routing_key_head(&self) -> i64 {
        match self {
            ActionOp::Read { key, .. }
            | ActionOp::Update { key, .. }
            | ActionOp::Increment { key, .. }
            | ActionOp::Delete { key, .. } => key.head_int(),
            ActionOp::ReadRange { from, .. } => from.head_int(),
            ActionOp::Insert { record, .. } => match record.get(0) {
                Value::Int(v) => *v,
                _ => 0,
            },
        }
    }

    /// Whether the action modifies data (and therefore needs an exclusive
    /// lock and a log record).
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            ActionOp::Update { .. }
                | ActionOp::Increment { .. }
                | ActionOp::Insert { .. }
                | ActionOp::Delete { .. }
        )
    }
}

/// One action of a transaction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Action {
    /// The storage operation.
    pub op: ActionOp,
    /// Business-logic instructions executed around the storage operation.
    pub extra_instructions: u64,
}

impl Action {
    /// An action with the default amount of surrounding business logic.
    pub fn new(op: ActionOp) -> Self {
        Self {
            op,
            extra_instructions: 300,
        }
    }

    /// Override the business-logic instruction count.
    pub fn with_extra_instructions(mut self, instructions: u64) -> Self {
        self.extra_instructions = instructions;
        self
    }
}

/// A phase: actions that can run in parallel, terminated by a
/// synchronization point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Actions of this phase.
    pub actions: Vec<Action>,
    /// Bytes exchanged at the synchronization point that ends this phase.
    pub sync_bytes: u64,
}

impl Phase {
    /// A phase with the default synchronization payload (one cache line per
    /// action).
    pub fn new(actions: Vec<Action>) -> Self {
        let sync_bytes = 64 * actions.len() as u64;
        Self {
            actions,
            sync_bytes,
        }
    }

    /// Override the synchronization payload.
    pub fn with_sync_bytes(mut self, bytes: u64) -> Self {
        self.sync_bytes = bytes;
        self
    }
}

/// A fully instantiated transaction: its class and its flow graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransactionSpec {
    /// Transaction class (e.g. "GetSubData", "NewOrder").
    pub class: &'static str,
    /// Phases in execution order.
    pub phases: Vec<Phase>,
}

impl TransactionSpec {
    /// An empty spec, for use as a reusable generation buffer (see
    /// [`TransactionSpec::refill`]).
    pub fn empty() -> Self {
        Self {
            class: "",
            phases: Vec::new(),
        }
    }

    /// Begin refilling this spec in place for a new transaction.
    ///
    /// Workload generators run once per simulated transaction, which made
    /// their nested `Vec<Phase>` / `Vec<Action>` construction one of the
    /// executor's main allocation sources.  Refilling reuses the buffers
    /// of the previous transaction: phases are overwritten slot by slot
    /// (their action vectors keep their capacity) and unused trailing
    /// phases are dropped by [`SpecRefill::finish`].
    pub fn refill(&mut self, class: &'static str) -> SpecRefill<'_> {
        self.class = class;
        SpecRefill {
            spec: self,
            used: 0,
        }
    }

    /// A transaction with a single phase.
    pub fn single_phase(class: &'static str, actions: Vec<Action>) -> Self {
        Self {
            class,
            phases: vec![Phase::new(actions)],
        }
    }

    /// A transaction with explicit phases.
    pub fn new(class: &'static str, phases: Vec<Phase>) -> Self {
        Self { class, phases }
    }

    /// Total number of actions.
    pub fn num_actions(&self) -> usize {
        self.phases.iter().map(|p| p.actions.len()).sum()
    }

    /// Number of synchronization points (phase boundaries with more than
    /// one participating action, plus joins between phases).
    pub fn num_sync_points(&self) -> usize {
        self.phases.iter().filter(|p| p.actions.len() > 1).count()
            + self.phases.len().saturating_sub(1)
    }

    /// Whether any action writes.
    pub fn is_update(&self) -> bool {
        self.phases
            .iter()
            .any(|p| p.actions.iter().any(|a| a.op.is_write()))
    }

    /// Tables touched, in first-touch order (no duplicates).
    pub fn tables_touched(&self) -> Vec<TableId> {
        let mut out = Vec::new();
        for p in &self.phases {
            for a in &p.actions {
                let t = a.op.table();
                if !out.contains(&t) {
                    out.push(t);
                }
            }
        }
        out
    }
}

/// In-place refiller for a reusable [`TransactionSpec`] buffer (created by
/// [`TransactionSpec::refill`]).
pub struct SpecRefill<'a> {
    spec: &'a mut TransactionSpec,
    used: usize,
}

impl SpecRefill<'_> {
    /// Start the next phase and return its action buffer, cleared but with
    /// capacity preserved.
    pub fn phase(&mut self) -> &mut Vec<Action> {
        if self.used == self.spec.phases.len() {
            self.spec.phases.push(Phase {
                actions: Vec::new(),
                sync_bytes: 0,
            });
        }
        let p = &mut self.spec.phases[self.used];
        self.used += 1;
        p.actions.clear();
        &mut p.actions
    }

    /// Finish the refill: drop unused trailing phases and give every phase
    /// the default synchronization payload of one cache line per action,
    /// exactly as [`Phase::new`] would.
    pub fn finish(self) {
        self.spec.phases.truncate(self.used);
        for p in &mut self.spec.phases {
            p.sync_bytes = 64 * p.actions.len() as u64;
        }
    }
}

/// The result of executing one transaction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TxnOutcome {
    /// Whether the transaction committed.
    pub committed: bool,
    /// Virtual time at which the transaction started.
    pub start: Cycles,
    /// Virtual time at which it finished (committed or aborted).
    pub end: Cycles,
}

impl TxnOutcome {
    /// Transaction latency in cycles.
    pub fn latency(&self) -> Cycles {
        self.end - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(table: u32, key: i64) -> Action {
        Action::new(ActionOp::Read {
            table: TableId(table),
            key: Key::int(key),
        })
    }

    #[test]
    fn action_metadata() {
        let a = read(3, 42);
        assert_eq!(a.op.table(), TableId(3));
        assert_eq!(a.op.routing_key_head(), 42);
        assert!(!a.op.is_write());
        let w = Action::new(ActionOp::Increment {
            table: TableId(1),
            key: Key::int(7),
            column: 2,
            delta: -5,
        });
        assert!(w.op.is_write());
        assert_eq!(w.op.routing_key_head(), 7);
    }

    #[test]
    fn spec_statistics() {
        let spec = TransactionSpec::new(
            "test",
            vec![
                Phase::new(vec![read(0, 1), read(1, 1)]),
                Phase::new(vec![read(2, 5)]),
            ],
        );
        assert_eq!(spec.num_actions(), 3);
        assert_eq!(spec.num_sync_points(), 2);
        assert!(!spec.is_update());
        assert_eq!(
            spec.tables_touched(),
            vec![TableId(0), TableId(1), TableId(2)]
        );
    }

    #[test]
    fn single_phase_constructor() {
        let spec = TransactionSpec::single_phase("t", vec![read(0, 1)]);
        assert_eq!(spec.phases.len(), 1);
        assert_eq!(spec.num_sync_points(), 0);
        let out = TxnOutcome {
            committed: true,
            start: 100,
            end: 350,
        };
        assert_eq!(out.latency(), 250);
    }
}
