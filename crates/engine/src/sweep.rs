//! The parallel experiment lab.
//!
//! Every experiment in the repo — the Figure 10–13 timelines, the TATP and
//! TPC-C design sweeps, the ablations, the wallclock bundle — decomposes
//! into fully independent (design × workload × scenario) simulations.  Each
//! one is deterministic in isolation (same seed ⇒ same simulated history),
//! so the only thing serial execution buys is wasted cores.
//!
//! A [`SweepJob`] describes one such simulation as data: a machine, a
//! serializable [`DesignSpec`], a boxed [`Workload`] generator, a
//! [`Scenario`] timeline, and the executor configuration.  [`run_sweep`]
//! executes a list of jobs on a pool of scoped OS threads and returns the
//! results *in job order*, so a sweep's output is byte-identical no matter
//! how many threads ran it — `threads = 1` and `threads = N` produce the
//! same report, and the regression suite pins that.
//!
//! The scheduling is a plain shared-counter work queue: workers grab the
//! next unclaimed job index until none remain.  Job-to-thread assignment
//! therefore varies between runs, but since jobs share no state and each
//! result lands in its own slot, nothing observable depends on it.

use crate::designs::spec::DesignSpec;
use crate::executor::{ExecutorConfig, VirtualExecutor};
use crate::scenario::{Scenario, ScenarioError, ScenarioOutcome};
use crate::workload::Workload;
use atrapos_numa::Machine;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One independent experiment: a design, a workload, and a timeline to run
/// on a given machine.
pub struct SweepJob {
    /// Job name, carried through to the result (e.g. `"tatp/PLP"`).
    pub name: String,
    /// The simulated machine the job runs on.
    pub machine: Machine,
    /// The design under test, as a serializable spec (built on the worker
    /// thread, so population cost parallelizes too).
    pub design: DesignSpec,
    /// The workload generator.
    pub workload: Box<dyn Workload>,
    /// The experiment timeline.  A design-sweep measurement is simply an
    /// eventless scenario of the measurement duration.
    pub scenario: Scenario,
    /// Executor parameters (seed, monitoring interval, bucket width).
    pub config: ExecutorConfig,
}

impl SweepJob {
    /// A single-measurement job: run `workload` against `design` for the
    /// scenario's duration with no mid-run events.
    pub fn measurement(
        name: impl Into<String>,
        machine: Machine,
        design: DesignSpec,
        workload: Box<dyn Workload>,
        secs: f64,
        config: ExecutorConfig,
    ) -> Self {
        let name = name.into();
        Self {
            machine,
            design,
            workload,
            scenario: Scenario::new(name.clone(), secs),
            config,
            name,
        }
    }

    /// Build the job's executor (design instantiation + data population).
    fn into_executor(self) -> (Scenario, VirtualExecutor) {
        let design = self.design.build(&self.machine, self.workload.as_ref());
        let ex = VirtualExecutor::new(self.machine, design, self.workload, self.config);
        (self.scenario, ex)
    }

    /// Run the job to completion on the current thread.
    pub fn run(self) -> Result<ScenarioOutcome, ScenarioError> {
        let (scenario, mut ex) = self.into_executor();
        ex.run_scenario(&scenario)
    }
}

/// The result of one [`SweepJob`], in the order the jobs were submitted.
pub struct SweepResult {
    /// The job's name.
    pub name: String,
    /// Wall-clock milliseconds the job spent simulating its scenario —
    /// design build and data population are excluded, matching the
    /// hand-rolled per-component timers the lab replaced.  Measured on the
    /// worker thread; with more jobs than cores, contention inflates this.
    pub wall_ms: f64,
    /// The simulation outcome.
    pub outcome: Result<ScenarioOutcome, ScenarioError>,
}

/// Run every job on a pool of `threads` scoped OS threads and return the
/// results in job order.
///
/// Each job is an independent deterministic simulation, so the returned
/// stats are identical for every `threads` value; only wall-clock time
/// changes.  `threads` is clamped to at least 1; pass
/// [`default_threads()`] to use every available core.
pub fn run_sweep(jobs: Vec<SweepJob>, threads: usize) -> Vec<SweepResult> {
    parallel_map(jobs, threads, |job| {
        let name = job.name.clone();
        let (scenario, mut ex) = job.into_executor();
        // Harness-side instrumentation: `wall_ms` reports how long the host
        // took to run the job, never feeds the simulation, and is excluded
        // from all determinism comparisons (see tests/sweep_determinism.rs).
        #[allow(clippy::disallowed_methods)]
        // lint: allow(wall-clock) — host wall time of a finished job report, outside the simulated timeline
        let start = std::time::Instant::now();
        let outcome = ex.run_scenario(&scenario);
        SweepResult {
            name,
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
            outcome,
        }
    })
}

/// Apply `f` to every item on a pool of `threads` scoped OS threads,
/// returning the results in item order.
///
/// This is the lab's scheduling primitive: a shared-counter work queue over
/// the item list.  Results are placed by index, so the output order is the
/// input order regardless of which worker ran what.  A panic in `f`
/// propagates to the caller once the scope joins.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("job slot poisoned")
                    .take()
                    .expect("each index is claimed exactly once");
                let r = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("scope joined, every slot filled")
        })
        .collect()
}

/// The lab's default thread count: `ATRAPOS_THREADS` when set to a positive
/// integer, otherwise the host's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("ATRAPOS_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioEvent;
    use crate::workload::testing::TinyWorkload;
    use atrapos_numa::{CostModel, Topology};

    fn tiny_jobs(n: usize) -> Vec<SweepJob> {
        (0..n)
            .map(|i| {
                SweepJob::measurement(
                    format!("job{i}"),
                    Machine::new(Topology::multisocket(2, 2), CostModel::westmere()),
                    DesignSpec::atrapos(),
                    Box::new(TinyWorkload { rows: 1_000 }),
                    0.004,
                    ExecutorConfig {
                        seed: 7 + i as u64,
                        default_interval_secs: 0.002,
                        time_series_bucket_secs: 0.002,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn parallel_map_preserves_item_order() {
        let out = parallel_map((0..64).collect::<Vec<_>>(), 8, |i| i * 2);
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_results_are_identical_across_thread_counts() {
        let serial = run_sweep(tiny_jobs(6), 1);
        let parallel = run_sweep(tiny_jobs(6), 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(parallel.iter()) {
            assert_eq!(s.name, p.name);
            let (so, po) = (s.outcome.as_ref().unwrap(), p.outcome.as_ref().unwrap());
            assert!(so.total_committed() > 0);
            assert_eq!(
                serde::json::to_string_pretty(so),
                serde::json::to_string_pretty(po),
                "job '{}' serialized differently under 1 vs 4 threads",
                s.name
            );
        }
    }

    #[test]
    fn sweep_job_with_events_matches_direct_scenario_run() {
        let scenario =
            Scenario::new("spanned", 0.004)
                .starting_as("a")
                .at(0.002, "b", ScenarioEvent::Measure);
        let machine = Machine::new(Topology::multisocket(2, 2), CostModel::westmere());
        let config = ExecutorConfig {
            seed: 3,
            default_interval_secs: 0.002,
            time_series_bucket_secs: 0.002,
        };
        let job = SweepJob {
            name: "spanned".into(),
            machine: machine.clone(),
            design: DesignSpec::atrapos(),
            workload: Box::new(TinyWorkload { rows: 1_000 }),
            scenario: scenario.clone(),
            config: config.clone(),
        };
        let via_sweep = run_sweep(vec![job], 2).remove(0).outcome.unwrap();
        let workload = TinyWorkload { rows: 1_000 };
        let design = DesignSpec::atrapos().build(&machine, &workload);
        let direct = VirtualExecutor::new(machine, design, Box::new(workload), config)
            .run_scenario(&scenario)
            .unwrap();
        assert_eq!(
            serde::json::to_string_pretty(&via_sweep),
            serde::json::to_string_pretty(&direct)
        );
    }

    #[test]
    fn invalid_scenarios_surface_as_per_job_errors() {
        let mut jobs = tiny_jobs(2);
        jobs[1].scenario = Scenario::new("broken", -1.0);
        let results = run_sweep(jobs, 2);
        assert!(results[0].outcome.is_ok());
        assert!(matches!(
            results[1].outcome,
            Err(ScenarioError::BadTimeline { .. })
        ));
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
