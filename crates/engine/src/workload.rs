//! The workload abstraction: schemas, population, and transaction
//! generation.

use crate::action::TransactionSpec;
use atrapos_core::{KeyDistribution, KeyDomain};
use atrapos_numa::CoreId;
use atrapos_storage::{Database, Key, Schema, TableId};
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Description of one table of a workload.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Table identifier.
    pub id: TableId,
    /// Table schema.
    pub schema: Schema,
    /// Integer key domain (head column of the primary key).
    pub domain: KeyDomain,
    /// Approximate number of rows the populated table holds.
    pub rows: u64,
}

/// A typed runtime reconfiguration of a workload.
///
/// The adaptive experiments of the paper (Figures 10–13) change the
/// workload mid-run: they switch the transaction mix, introduce access
/// skew, or both.  `WorkloadChange` is the serializable vocabulary of those
/// changes — scenario timelines carry values of this type instead of
/// downcasting to concrete workload structs, so an experiment is plain
/// data that can be stored, replayed, and swept.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadChange {
    /// Run only the named transaction type (e.g. `"GetNewDest"` for TATP,
    /// `"NewOrder"` for TPC-C) — the workload-phase switches of Figures 10
    /// and 13.
    SingleTransaction {
        /// Transaction-type label as printed in the paper's figures.
        txn: String,
    },
    /// Restore the workload's standard transaction mix.
    StandardMix,
    /// Change the key-access distribution (Figure 11 introduces a hotspot
    /// where 50% of the requests hit 20% of the data).
    Distribution {
        /// The new distribution.
        distribution: KeyDistribution,
    },
    /// Change the percentage of multi-site transactions (the knob of the
    /// §III-C microbenchmark).
    MultiSitePercent {
        /// Percentage (0–100) of transactions that touch remote sites.
        percent: u32,
    },
    /// Set the key-access distribution to a Zipfian with the given
    /// exponent — the theta-ramp knob of the YCSB skew experiments.
    /// Shorthand for `Distribution { Zipfian { theta } }` that scenario
    /// timelines can step through to ramp skew up or down.
    ZipfianTheta {
        /// Zipfian exponent (0 = uniform; YCSB's standard is 0.99).
        theta: f64,
    },
    /// Switch to a named operation mix the workload defines (the YCSB
    /// core mixes are named "A" through "F").
    NamedMix {
        /// Mix name as the workload publishes it.
        name: String,
    },
}

impl fmt::Display for WorkloadChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadChange::SingleTransaction { txn } => write!(f, "single transaction '{txn}'"),
            WorkloadChange::StandardMix => write!(f, "standard mix"),
            WorkloadChange::Distribution { distribution } => {
                write!(f, "distribution {distribution:?}")
            }
            WorkloadChange::MultiSitePercent { percent } => {
                write!(f, "{percent}% multi-site")
            }
            WorkloadChange::ZipfianTheta { theta } => write!(f, "Zipfian theta {theta}"),
            WorkloadChange::NamedMix { name } => write!(f, "named mix '{name}'"),
        }
    }
}

/// Why a [`WorkloadChange`] could not be applied.
#[derive(Debug, Clone, PartialEq)]
pub enum ReconfigureError {
    /// The workload does not support this kind of change at all.
    Unsupported {
        /// Name of the workload.
        workload: String,
        /// The rejected change.
        change: WorkloadChange,
    },
    /// A `SingleTransaction` change named a transaction type the workload
    /// does not have.
    UnknownTransaction {
        /// Name of the workload.
        workload: String,
        /// The unrecognized label.
        txn: String,
        /// The labels the workload accepts.
        known: Vec<&'static str>,
    },
    /// A `NamedMix` change named a mix the workload does not define.
    UnknownMix {
        /// Name of the workload.
        workload: String,
        /// The unrecognized mix name.
        name: String,
        /// The mix names the workload accepts.
        known: Vec<&'static str>,
    },
}

impl fmt::Display for ReconfigureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconfigureError::Unsupported { workload, change } => {
                write!(f, "workload '{workload}' does not support {change}")
            }
            ReconfigureError::UnknownTransaction {
                workload,
                txn,
                known,
            } => write!(
                f,
                "workload '{workload}' has no transaction type '{txn}' (known: {})",
                known.join(", ")
            ),
            ReconfigureError::UnknownMix {
                workload,
                name,
                known,
            } => write!(
                f,
                "workload '{workload}' has no mix named '{name}' (known: {})",
                known.join(", ")
            ),
        }
    }
}

impl std::error::Error for ReconfigureError {}

/// A benchmark workload: its schema, how to populate it, and how to generate
/// transactions.
///
/// Population contract: `populate` loads rows *into the tables already
/// registered in the database* (designs pre-create them with their chosen
/// physical partitioning); if a table is missing it is created as a
/// single-partition table on socket 0.
///
/// Workloads are `Send`: generators own their state (configs, mixes,
/// per-table domains), so a `Box<dyn Workload>` can move to a worker thread
/// of the [`crate::sweep`] experiment lab.
pub trait Workload: Send {
    /// Workload name (e.g. "TATP", "TPC-C", "read-one-row").
    fn name(&self) -> &str;

    /// Tables of the workload.
    fn tables(&self) -> Vec<TableSpec>;

    /// Load rows into `db`.  Only rows for which `filter` returns true are
    /// loaded — shared-nothing designs use this to populate each instance
    /// with its slice of the data.
    fn populate(&self, db: &mut Database, filter: &dyn Fn(TableId, &Key) -> bool);

    /// Generate the next transaction, submitted by the client bound to
    /// `client` (site-aware workloads use it to decide which rows are
    /// "local" to the submitting site).
    fn next_transaction(&mut self, rng: &mut SmallRng, client: CoreId) -> TransactionSpec;

    /// Generate the next transaction into a reusable spec buffer.
    ///
    /// The executor calls this once per simulated transaction with the
    /// same buffer, so workloads that implement it via
    /// [`TransactionSpec::refill`] generate specs without allocating.
    /// Implementations must draw from `rng` in exactly the same order as
    /// `next_transaction` — the simulator's bit-for-bit reproducibility
    /// (and the golden-figure regression suite) depends on it.  The
    /// default simply overwrites the buffer with `next_transaction`.
    fn next_transaction_into(
        &mut self,
        rng: &mut SmallRng,
        client: CoreId,
        spec: &mut TransactionSpec,
    ) {
        *spec = self.next_transaction(rng, client);
    }

    /// Table ids and key domains (convenience for building partitioning
    /// schemes).
    fn table_domains(&self) -> Vec<(TableId, KeyDomain)> {
        self.tables().iter().map(|t| (t.id, t.domain)).collect()
    }

    /// Apply a typed runtime reconfiguration (switching the transaction
    /// mix, introducing skew, …).  The default rejects every change;
    /// workloads opt in per [`WorkloadChange`] variant.
    fn reconfigure(&mut self, change: &WorkloadChange) -> Result<(), ReconfigureError> {
        Err(ReconfigureError::Unsupported {
            workload: self.name().to_string(),
            change: change.clone(),
        })
    }
}

/// Populate every row (no filtering): the shared-everything designs use
/// this.
pub fn populate_all(workload: &dyn Workload, db: &mut Database) {
    workload.populate(db, &|_, _| true);
}

/// Ensure every table of the workload exists in `db` (as a single-partition
/// table on socket 0 if the caller did not pre-create it).
pub fn ensure_tables(workload: &dyn Workload, db: &mut Database) {
    use atrapos_numa::SocketId;
    for spec in workload.tables() {
        if db.table(spec.id).is_err() {
            db.add_table(atrapos_storage::Table::new(
                spec.id,
                spec.schema.clone(),
                SocketId(0),
            ));
        }
    }
}

/// Simple built-in workloads used by the engine's own tests and by the
/// quickstart example.
pub mod testing {
    use super::*;
    use crate::action::{Action, ActionOp};
    use atrapos_storage::{Column, ColumnType, Record, Value};
    use rand::Rng;

    /// A minimal workload: one table of `rows` rows, each transaction reads
    /// one uniformly random row.
    #[derive(Debug, Clone)]
    pub struct TinyWorkload {
        /// Number of rows.
        pub rows: i64,
    }

    impl Workload for TinyWorkload {
        fn name(&self) -> &str {
            "tiny"
        }

        fn tables(&self) -> Vec<TableSpec> {
            vec![TableSpec {
                id: TableId(0),
                schema: Schema::new(
                    "tiny",
                    vec![
                        Column::new("id", ColumnType::Int),
                        Column::new("v", ColumnType::Int),
                    ],
                    vec![0],
                ),
                domain: KeyDomain::new(0, self.rows),
                rows: self.rows as u64,
            }]
        }

        fn populate(&self, db: &mut Database, filter: &dyn Fn(TableId, &Key) -> bool) {
            ensure_tables(self, db);
            let table = db.table_mut(TableId(0)).expect("table created above");
            for i in 0..self.rows {
                let key = Key::int(i);
                if filter(TableId(0), &key) {
                    table
                        .load(Record::new(vec![Value::Int(i), Value::Int(i * 2)]))
                        .expect("unique keys");
                }
            }
        }

        fn next_transaction(&mut self, rng: &mut SmallRng, _client: CoreId) -> TransactionSpec {
            let k = rng.gen_range(0..self.rows);
            TransactionSpec::single_phase(
                "tiny-read",
                vec![Action::new(ActionOp::Read {
                    table: TableId(0),
                    key: Key::int(k),
                })],
            )
        }
    }

    /// A two-table workload whose transactions update one row in each table
    /// (used to exercise logging, locking, and synchronization points in
    /// tests).
    #[derive(Debug, Clone)]
    pub struct TinyUpdateWorkload {
        /// Rows per table.
        pub rows: i64,
    }

    impl Workload for TinyUpdateWorkload {
        fn name(&self) -> &str {
            "tiny-update"
        }

        fn tables(&self) -> Vec<TableSpec> {
            (0..2)
                .map(|t| TableSpec {
                    id: TableId(t),
                    schema: Schema::new(
                        format!("tiny{t}"),
                        vec![
                            Column::new("id", ColumnType::Int),
                            Column::new("v", ColumnType::Int),
                        ],
                        vec![0],
                    ),
                    domain: KeyDomain::new(0, self.rows),
                    rows: self.rows as u64,
                })
                .collect()
        }

        fn populate(&self, db: &mut Database, filter: &dyn Fn(TableId, &Key) -> bool) {
            ensure_tables(self, db);
            for t in 0..2u32 {
                let table = db.table_mut(TableId(t)).expect("table created above");
                for i in 0..self.rows {
                    let key = Key::int(i);
                    if filter(TableId(t), &key) {
                        table
                            .load(Record::new(vec![Value::Int(i), Value::Int(0)]))
                            .expect("unique keys");
                    }
                }
            }
        }

        fn next_transaction(&mut self, rng: &mut SmallRng, _client: CoreId) -> TransactionSpec {
            let k = rng.gen_range(0..self.rows);
            let mk = |t: u32| {
                Action::new(ActionOp::Increment {
                    table: TableId(t),
                    key: Key::int(k),
                    column: 1,
                    delta: 1,
                })
            };
            TransactionSpec::new(
                "tiny-update",
                vec![crate::action::Phase::new(vec![mk(0), mk(1)])],
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testing::{TinyUpdateWorkload, TinyWorkload};
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn tiny_workload_populates_with_filter() {
        let w = TinyWorkload { rows: 100 };
        let mut db = Database::new();
        w.populate(&mut db, &|_, k| k.head_int() < 50);
        assert_eq!(db.table(TableId(0)).unwrap().len(), 50);
        let mut full = Database::new();
        populate_all(&w, &mut full);
        assert_eq!(full.table(TableId(0)).unwrap().len(), 100);
    }

    #[test]
    fn tiny_workload_generates_reads_in_domain() {
        let mut w = TinyWorkload { rows: 100 };
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..20 {
            let spec = w.next_transaction(&mut rng, CoreId(0));
            assert_eq!(spec.num_actions(), 1);
            let head = spec.phases[0].actions[0].op.routing_key_head();
            assert!((0..100).contains(&head));
        }
    }

    #[test]
    fn tiny_update_workload_touches_both_tables() {
        let mut w = TinyUpdateWorkload { rows: 10 };
        let mut rng = SmallRng::seed_from_u64(1);
        let spec = w.next_transaction(&mut rng, CoreId(0));
        assert!(spec.is_update());
        assert_eq!(spec.tables_touched().len(), 2);
        let mut db = Database::new();
        populate_all(&w, &mut db);
        assert_eq!(db.total_records(), 20);
    }
}
