//! The deterministic virtual-time executor.
//!
//! The executor runs a closed-loop benchmark by default: one client per
//! active core submits transactions back-to-back against a
//! [`SystemDesign`], all in virtual time.  It tracks throughput, latency,
//! hardware-counter-derived metrics (IPC, interconnect traffic),
//! per-component time breakdowns, and a per-second throughput time series
//! (for the adaptive experiments of the paper's Figures 10–13).  At
//! monitoring-interval boundaries it hands control to the design, which
//! may repartition and pause execution.
//!
//! ## Open-loop serving
//!
//! Installing an [`ArrivalProcess`] (see
//! [`VirtualExecutor::set_arrival_process`]) switches the executor to
//! *open loop*: transactions arrive on their own deterministic schedule
//! and wait in a bounded admission queue for a free client, so offered
//! load and service capacity decouple — the executor then also reports
//! offered load, admission rejections, queue depths, and full latency
//! distributions (queueing delay included).  Closed-loop runs never touch
//! the open-loop machinery: `run_for` branches once at the top, and the
//! closed-loop path is the exact code it always was, so fixed seeds keep
//! producing bit-identical results.

use crate::action::{TransactionSpec, TxnOutcome};
use crate::arrival::ArrivalProcess;
use crate::designs::{DesignStats, SystemDesign};
use crate::workload::{ReconfigureError, Workload, WorkloadChange};
use atrapos_core::LatencyHistogram;
use atrapos_numa::{
    cycles_to_micros, frac_cycles_to_micros, secs_to_cycles, Breakdown, CoreId, Cycles,
    Interconnect, Machine, SocketId,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Executor parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutorConfig {
    /// Random seed for the workload generator.
    pub seed: u64,
    /// Default monitoring-interval length, in virtual seconds.
    pub default_interval_secs: f64,
    /// Width of the throughput time-series buckets, in virtual seconds.
    pub time_series_bucket_secs: f64,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            default_interval_secs: 1.0,
            time_series_bucket_secs: 1.0,
        }
    }
}

/// One point of the throughput time series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimePoint {
    /// End of the bucket, in virtual seconds from the executor's origin.
    pub secs: f64,
    /// Committed transactions per second during the bucket.
    pub tps: f64,
}

/// Admission-queue bound used when an arrival process is installed without
/// an explicit [`VirtualExecutor::set_admission_bound`] call.
pub const DEFAULT_ADMISSION_BOUND: u64 = 1024;

/// Statistics of one `run_for` segment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunStats {
    /// Committed transactions.
    pub committed: u64,
    /// Aborted transactions.
    pub aborted: u64,
    /// Segment length in virtual seconds.
    pub virtual_secs: f64,
    /// Committed transactions per virtual second (the goodput, in open
    /// loop).
    pub throughput_tps: f64,
    /// Mean transaction latency in microseconds.  In open loop this
    /// includes the time spent waiting in the admission queue.
    pub avg_latency_us: f64,
    /// Median latency of committed transactions in microseconds, from the
    /// log-bucketed histogram (≤ 3.2% relative bucket error).
    pub p50_latency_us: f64,
    /// 95th-percentile latency of committed transactions in microseconds.
    pub p95_latency_us: f64,
    /// 99th-percentile latency of committed transactions in microseconds.
    pub p99_latency_us: f64,
    /// 99.9th-percentile latency of committed transactions in microseconds.
    pub p999_latency_us: f64,
    /// Latency distribution of the segment's committed transactions, in
    /// CPU cycles (the source of the `p*_latency_us` fields).
    pub latency_histogram: LatencyHistogram,
    /// Machine-wide instructions per cycle over the segment.
    pub ipc: f64,
    /// Per-component cycle breakdown accumulated during the segment.
    pub breakdown: Breakdown,
    /// Ratio of interconnect to memory-controller traffic over the
    /// segment (computed from per-segment deltas).
    pub qpi_imc_ratio: f64,
    /// Aggregate interconnect bandwidth in Gbit/s over the segment.
    pub interconnect_gbps: f64,
    /// Throughput time series.
    pub time_series: Vec<TimePoint>,
    /// Repartitionings performed during the segment.
    pub repartitions: u64,
    /// Committed transactions per socket of the submitting client (the
    /// per-instance throughput of Table I).
    pub committed_by_socket: Vec<u64>,
    /// Whether the segment ran open-loop (an arrival process was
    /// installed).  All the fields below are zero for closed-loop runs.
    pub open_loop: bool,
    /// Transactions the arrival process generated during the segment.
    pub offered: u64,
    /// Offered arrivals that entered the admission queue.
    pub admitted: u64,
    /// Offered arrivals turned away because the queue was full.
    pub rejected: u64,
    /// Offered arrivals per virtual second.
    pub offered_tps: f64,
    /// Admission-queue depth when the segment began (work carried over
    /// from the previous segment).
    pub queue_depth_start: u64,
    /// Admission-queue depth when the segment ended.
    pub queue_depth_end: u64,
    /// Maximum admission-queue depth observed during the segment.
    pub queue_depth_max: u64,
}

impl RunStats {
    /// Mean time per transaction in microseconds, derived from the
    /// per-component breakdown (used for the paper's Figure 4).
    pub fn time_per_txn_us(&self, ghz: f64) -> f64 {
        if self.committed == 0 {
            return 0.0;
        }
        cycles_to_micros(self.breakdown.total(), ghz) / self.committed as f64
    }
}

#[derive(Debug, Clone)]
struct Client {
    core: CoreId,
    next_free: Cycles,
    active: bool,
}

/// Open-loop serving state: the arrival process, the sampled-but-not-yet-
/// offered next arrival, and the bounded admission queue of arrival
/// timestamps waiting for a free client.
struct OpenLoopState {
    process: ArrivalProcess,
    bound: u64,
    /// Dedicated arrival RNG: drawing arrivals never perturbs the workload
    /// generator's stream, so installing a process cannot change what
    /// transactions a given seed produces.
    rng: SmallRng,
    /// Absolute virtual time of the last sampled arrival, in seconds.
    last_arrival_secs: f64,
    /// Next sampled arrival (cycles), not yet counted as offered.
    next_arrival: Option<Cycles>,
    /// Admitted arrivals (their timestamps) waiting for a client.
    queue: VecDeque<Cycles>,
    // Per-segment accounting, reset by `run_open_loop`.
    offered: u64,
    admitted: u64,
    rejected: u64,
    depth_max: u64,
}

impl OpenLoopState {
    /// The next arrival's timestamp, sampling it if necessary.
    fn peek_next(&mut self, ghz: f64) -> Cycles {
        if self.next_arrival.is_none() {
            let t = self
                .process
                .next_arrival_secs(self.last_arrival_secs, &mut self.rng);
            self.last_arrival_secs = t;
            self.next_arrival = Some(secs_to_cycles(t, ghz));
        }
        self.next_arrival.unwrap()
    }

    /// Offer every arrival with timestamp strictly before `before` to the
    /// admission queue, rejecting when it is full.
    fn drain_arrivals(&mut self, before: Cycles, ghz: f64) {
        loop {
            let at = self.peek_next(ghz);
            if at >= before {
                return;
            }
            self.next_arrival = None;
            self.offered += 1;
            if self.queue.len() as u64 >= self.bound {
                self.rejected += 1;
            } else {
                self.queue.push_back(at);
                self.admitted += 1;
                self.depth_max = self.depth_max.max(self.queue.len() as u64);
            }
        }
    }
}

/// The segment's geometry: boundaries and time-series bucketing.
struct SegFrame {
    seg_start: Cycles,
    seg_len: Cycles,
    end_at: Cycles,
    bucket_len: Cycles,
    n_buckets: usize,
}

/// Hardware counters at the segment start, for per-segment deltas.
struct HwSnapshot {
    instr: u64,
    cycles: Cycles,
    breakdown: Breakdown,
    qpi_bytes: u64,
    local_bytes: u64,
}

/// Per-segment tallies shared by the closed- and open-loop paths.
struct SegCounters {
    committed: u64,
    aborted: u64,
    latency_sum: u128,
    repartitions: u64,
    committed_by_socket: Vec<u64>,
    latency_histogram: LatencyHistogram,
    buckets: Vec<u64>,
}

/// Open-loop accounting of one segment, for `finish_stats`.
struct OpenLoopSeg {
    offered: u64,
    admitted: u64,
    rejected: u64,
    depth_start: u64,
    depth_end: u64,
    depth_max: u64,
}

/// The virtual-time executor (closed loop by default; see the module docs
/// for the open-loop mode).
pub struct VirtualExecutor {
    machine: Machine,
    design: Box<dyn SystemDesign>,
    workload: Box<dyn Workload>,
    config: ExecutorConfig,
    rng: SmallRng,
    clients: Vec<Client>,
    clock: Cycles,
    next_interval_at: Cycles,
    interval_len: Cycles,
    interval_committed: u64,
    total_committed: u64,
    /// Reusable transaction-spec buffer: the workload refills it in place
    /// once per transaction, so generation does not allocate per
    /// transaction.
    spec_buf: TransactionSpec,
    /// Admission bound applied when (or while) an arrival process is
    /// installed.
    admission_bound: u64,
    /// Open-loop serving state; `None` means closed loop.
    open_loop: Option<OpenLoopState>,
}

impl VirtualExecutor {
    /// Build an executor: one client per active core of the machine.
    pub fn new(
        machine: Machine,
        design: Box<dyn SystemDesign>,
        workload: Box<dyn Workload>,
        config: ExecutorConfig,
    ) -> Self {
        let clients = machine
            .topology
            .active_cores()
            .into_iter()
            .map(|core| Client {
                core,
                next_free: 0,
                active: true,
            })
            .collect();
        let interval_len = secs_to_cycles(
            config.default_interval_secs,
            machine.topology.frequency_ghz(),
        );
        let rng = SmallRng::seed_from_u64(config.seed);
        Self {
            machine,
            design,
            workload,
            config,
            rng,
            clients,
            clock: 0,
            next_interval_at: interval_len,
            interval_len,
            interval_committed: 0,
            total_committed: 0,
            spec_buf: TransactionSpec::empty(),
            admission_bound: DEFAULT_ADMISSION_BOUND,
            open_loop: None,
        }
    }

    /// The simulated machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The design under test.
    pub fn design(&self) -> &dyn SystemDesign {
        self.design.as_ref()
    }

    /// Mutable access to the workload.
    pub fn workload_mut(&mut self) -> &mut dyn Workload {
        self.workload.as_mut()
    }

    /// Apply a typed reconfiguration to the workload (the adaptive
    /// experiments change the transaction mix or skew between segments).
    pub fn reconfigure_workload(
        &mut self,
        change: &WorkloadChange,
    ) -> Result<(), ReconfigureError> {
        self.workload.reconfigure(change)
    }

    /// The design's structured statistics (distributed-transaction counts,
    /// partition counts, repartitioning history).
    pub fn design_stats(&self) -> DesignStats {
        self.design.stats()
    }

    /// Change the default monitoring-interval length used from the next
    /// boundary on (adaptive designs may still override it per interval).
    pub fn set_default_interval_secs(&mut self, secs: f64) {
        assert!(secs > 0.0, "interval must be positive");
        self.config.default_interval_secs = secs;
    }

    /// Install (or replace) an arrival process, switching the executor to
    /// open-loop serving from the current virtual time on.  A pending
    /// unconsumed arrival of a previous process is discarded and sampling
    /// restarts from now; arrivals already admitted to the queue stay
    /// queued.  The process must satisfy [`ArrivalProcess::validate`].
    pub fn set_arrival_process(&mut self, process: ArrivalProcess) {
        process
            .validate()
            .unwrap_or_else(|e| panic!("invalid arrival process: {e}"));
        let now = self.now_secs();
        match &mut self.open_loop {
            Some(ol) => {
                ol.process = process;
                ol.next_arrival = None;
                ol.last_arrival_secs = ol.last_arrival_secs.max(now);
            }
            None => {
                self.open_loop = Some(OpenLoopState {
                    process,
                    bound: self.admission_bound,
                    // A fixed tweak keeps the arrival stream seeded from the
                    // run's seed but distinct from the workload stream.
                    rng: SmallRng::seed_from_u64(self.config.seed ^ 0x9E37_79B9_7F4A_7C15),
                    last_arrival_secs: now,
                    next_arrival: None,
                    queue: VecDeque::new(),
                    offered: 0,
                    admitted: 0,
                    rejected: 0,
                    depth_max: 0,
                });
            }
        }
    }

    /// Set the admission-queue bound (must be ≥ 1).  Takes effect
    /// immediately if a process is installed, and is remembered for
    /// processes installed later.  Shrinking the bound below the current
    /// queue depth rejects *new* arrivals only; queued work is never
    /// dropped.
    pub fn set_admission_bound(&mut self, bound: u64) {
        assert!(bound >= 1, "admission bound must be at least 1");
        self.admission_bound = bound;
        if let Some(ol) = &mut self.open_loop {
            ol.bound = bound;
        }
    }

    /// Whether an arrival process is installed (the executor serves open
    /// loop).
    pub fn is_open_loop(&self) -> bool {
        self.open_loop.is_some()
    }

    /// Current virtual time in seconds since the executor started.
    pub fn now_secs(&self) -> f64 {
        self.machine.secs(self.clock)
    }

    /// Total committed transactions since the executor started.
    pub fn total_committed(&self) -> u64 {
        self.total_committed
    }

    /// Fail a socket: its clients stop submitting and the design is
    /// notified (paper Figure 12).
    pub fn fail_socket(&mut self, socket: SocketId) {
        self.machine.topology.fail_socket(socket);
        for c in &mut self.clients {
            if self.machine.topology.socket_of(c.core) == socket {
                c.active = false;
            }
        }
        self.design.on_topology_change(&self.machine);
    }

    /// Restore a previously failed socket.
    pub fn restore_socket(&mut self, socket: SocketId) {
        self.machine.topology.restore_socket(socket);
        for c in &mut self.clients {
            if self.machine.topology.socket_of(c.core) == socket {
                c.active = true;
                c.next_free = c.next_free.max(self.clock);
            }
        }
        self.design.on_topology_change(&self.machine);
    }

    /// Run for `virtual_secs` of virtual time and return the segment's
    /// statistics.  Can be called repeatedly; state (virtual clock, client
    /// queues, design, workload, admission queue) carries over.  The loop
    /// is closed unless an arrival process is installed.
    pub fn run_for(&mut self, virtual_secs: f64) -> RunStats {
        if self.open_loop.is_some() {
            self.run_open_loop(virtual_secs)
        } else {
            self.run_closed_loop(virtual_secs)
        }
    }

    /// Segment geometry for a `run_for` of `virtual_secs`.
    fn seg_frame(&self, virtual_secs: f64) -> SegFrame {
        let ghz = self.machine.topology.frequency_ghz();
        let seg_start = self.clock;
        let seg_len = secs_to_cycles(virtual_secs, ghz);
        let bucket_len = secs_to_cycles(self.config.time_series_bucket_secs, ghz).max(1);
        let n_buckets = (seg_len.div_ceil(bucket_len) as usize).max(1);
        SegFrame {
            seg_start,
            seg_len,
            end_at: seg_start + seg_len,
            bucket_len,
            n_buckets,
        }
    }

    fn hw_snapshot(&self) -> HwSnapshot {
        HwSnapshot {
            instr: self.machine.total_instructions(),
            cycles: self.machine.total_occupied_cycles(),
            breakdown: self.machine.breakdown(),
            qpi_bytes: self.machine.interconnect.total_cross_socket_bytes(),
            local_bytes: self.machine.interconnect.local_memory_bytes,
        }
    }

    /// Cross every monitoring-interval boundary that elapsed before `t`,
    /// handing control to the design at each one.
    fn cross_interval_boundaries(&mut self, t: Cycles, ghz: f64, repartitions: &mut u64) {
        while self.next_interval_at <= t {
            let interval_secs = self.machine.secs(self.interval_len).max(1e-9);
            let tput = self.interval_committed as f64 / interval_secs;
            let boundary = self.next_interval_at;
            let out = self.design.on_interval(&mut self.machine, boundary, tput);
            self.interval_committed = 0;
            if out.pause_cycles > 0 {
                for c in &mut self.clients {
                    c.next_free = c.next_free.max(boundary + out.pause_cycles);
                }
            }
            if out.repartitioned {
                *repartitions += 1;
            }
            let next_secs = out
                .next_interval_secs
                .unwrap_or(self.config.default_interval_secs);
            self.interval_len = secs_to_cycles(next_secs, ghz).max(1);
            self.next_interval_at = boundary + self.interval_len;
        }
    }

    /// Assemble a segment's `RunStats` from its counters and hardware
    /// deltas.  Shared verbatim by the closed- and open-loop paths.
    fn finish_stats(
        &self,
        virtual_secs: f64,
        frame: &SegFrame,
        snap: &HwSnapshot,
        counters: SegCounters,
        open: Option<OpenLoopSeg>,
    ) -> RunStats {
        let ghz = self.machine.topology.frequency_ghz();
        let SegCounters {
            committed,
            aborted,
            latency_sum,
            repartitions,
            committed_by_socket,
            latency_histogram,
            buckets,
        } = counters;
        let executed = committed + aborted;
        let d_instr = self.machine.total_instructions() - snap.instr;
        let d_cycles = self.machine.total_occupied_cycles() - snap.cycles;
        let breakdown = self.machine.breakdown().saturating_sub(&snap.breakdown);
        // The last bucket may be truncated by the segment end
        // (`seg_len % bucket_len != 0`); normalize each bucket's count by
        // the bucket's actual width, not the configured width.
        let time_series = buckets
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let bucket_start = frame.seg_start + i as u64 * frame.bucket_len;
                let bucket_end = (bucket_start + frame.bucket_len).min(frame.end_at);
                let width_secs = self.machine.secs(bucket_end - bucket_start).max(1e-12);
                TimePoint {
                    secs: self.machine.secs(bucket_end),
                    tps: n as f64 / width_secs,
                }
            })
            .collect();
        let d_qpi_bytes = self.machine.interconnect.total_cross_socket_bytes() - snap.qpi_bytes;
        let d_local_bytes = self.machine.interconnect.local_memory_bytes - snap.local_bytes;
        let d_mem_bytes = d_qpi_bytes + d_local_bytes;
        let quantile_us = |q: f64| frac_cycles_to_micros(latency_histogram.quantile(q) as f64, ghz);
        RunStats {
            committed,
            aborted,
            virtual_secs,
            throughput_tps: committed as f64 / virtual_secs,
            avg_latency_us: if executed == 0 {
                0.0
            } else {
                frac_cycles_to_micros(latency_sum as f64 / executed as f64, ghz)
            },
            p50_latency_us: quantile_us(0.50),
            p95_latency_us: quantile_us(0.95),
            p99_latency_us: quantile_us(0.99),
            p999_latency_us: quantile_us(0.999),
            latency_histogram,
            ipc: if d_cycles == 0 {
                0.0
            } else {
                d_instr as f64 / d_cycles as f64
            },
            breakdown,
            qpi_imc_ratio: if d_mem_bytes == 0 {
                0.0
            } else {
                d_qpi_bytes as f64 / d_mem_bytes as f64
            },
            interconnect_gbps: Interconnect::bandwidth_gbps(
                d_qpi_bytes,
                frame.seg_len.max(1),
                &self.machine.topology,
            ),
            time_series,
            repartitions,
            committed_by_socket,
            open_loop: open.is_some(),
            offered: open.as_ref().map_or(0, |o| o.offered),
            admitted: open.as_ref().map_or(0, |o| o.admitted),
            rejected: open.as_ref().map_or(0, |o| o.rejected),
            offered_tps: open
                .as_ref()
                .map_or(0.0, |o| o.offered as f64 / virtual_secs),
            queue_depth_start: open.as_ref().map_or(0, |o| o.depth_start),
            queue_depth_end: open.as_ref().map_or(0, |o| o.depth_end),
            queue_depth_max: open.as_ref().map_or(0, |o| o.depth_max),
        }
    }

    /// The closed loop: every client resubmits the moment it is free.
    fn run_closed_loop(&mut self, virtual_secs: f64) -> RunStats {
        let ghz = self.machine.topology.frequency_ghz();
        let frame = self.seg_frame(virtual_secs);
        let SegFrame {
            seg_start,
            end_at,
            bucket_len,
            n_buckets,
            ..
        } = frame;
        let snap = self.hw_snapshot();
        let mut counters = SegCounters {
            committed: 0,
            aborted: 0,
            latency_sum: 0,
            repartitions: 0,
            committed_by_socket: vec![0u64; self.machine.topology.num_sockets()],
            latency_histogram: LatencyHistogram::new(),
            buckets: vec![0u64; n_buckets],
        };

        // Keep picking the next client ready to submit until no client is
        // active or the segment ends.  The loop body is the per-transaction
        // path made allocation-free in PR 2 (spec buffers are reused);
        // the marker makes the lint keep it that way.
        // lint: hot-path
        while let Some((ci, t)) = self
            .clients
            .iter()
            .enumerate()
            .filter(|(_, c)| c.active)
            .map(|(i, c)| (i, c.next_free))
            .min_by_key(|&(_, t)| t)
        {
            let t = t.max(seg_start);
            if t >= end_at {
                break;
            }
            // Monitoring-interval boundaries that elapsed before `t`.
            self.cross_interval_boundaries(t, ghz, &mut counters.repartitions);

            let client_core = self.clients[ci].core;
            self.workload
                .next_transaction_into(&mut self.rng, client_core, &mut self.spec_buf);
            let out: TxnOutcome =
                self.design
                    .execute(&mut self.machine, &self.spec_buf, client_core, t);
            self.clients[ci].next_free = out.end;
            self.clock = self.clock.max(out.end.min(end_at));
            counters.latency_sum += u128::from(out.latency());
            if out.committed {
                counters.committed += 1;
                counters.committed_by_socket
                    [self.machine.topology.socket_of(client_core).index()] += 1;
                counters.latency_histogram.record(out.latency());
                self.total_committed += 1;
                self.interval_committed += 1;
                if out.end < end_at {
                    let b = ((out.end - seg_start) / bucket_len) as usize;
                    counters.buckets[b.min(n_buckets - 1)] += 1;
                }
            } else {
                counters.aborted += 1;
            }
        }

        // Idle clients coast to the end of the segment.
        for c in &mut self.clients {
            if c.active {
                c.next_free = c.next_free.max(end_at);
            }
        }
        self.clock = end_at;
        self.finish_stats(virtual_secs, &frame, &snap, counters, None)
    }

    /// The open loop: arrivals come from the installed process, wait in
    /// the bounded admission queue, and are served by whichever client
    /// frees up first.  Latency spans arrival to commit, queue wait
    /// included.
    fn run_open_loop(&mut self, virtual_secs: f64) -> RunStats {
        let ghz = self.machine.topology.frequency_ghz();
        let frame = self.seg_frame(virtual_secs);
        let SegFrame {
            seg_start,
            end_at,
            bucket_len,
            n_buckets,
            ..
        } = frame;
        let snap = self.hw_snapshot();
        let mut counters = SegCounters {
            committed: 0,
            aborted: 0,
            latency_sum: 0,
            repartitions: 0,
            committed_by_socket: vec![0u64; self.machine.topology.num_sockets()],
            latency_histogram: LatencyHistogram::new(),
            buckets: vec![0u64; n_buckets],
        };
        let mut ol = self.open_loop.take().expect("open-loop state installed");
        let depth_start = ol.queue.len() as u64;
        ol.offered = 0;
        ol.admitted = 0;
        ol.rejected = 0;
        ol.depth_max = depth_start;

        // Allocation-free per-transaction serving loop, like the closed
        // loop above.
        // lint: hot-path
        while let Some((ci, t)) = self
            .clients
            .iter()
            .enumerate()
            .filter(|(_, c)| c.active)
            .map(|(i, c)| (i, c.next_free))
            .min_by_key(|&(_, t)| t)
        {
            let t_ready = t.max(seg_start);
            if t_ready >= end_at {
                break;
            }
            // Everything that arrived while this client was busy gets
            // offered (admitted or rejected) before service resumes.
            ol.drain_arrivals(t_ready.saturating_add(1), ghz);
            let (arrival, submit_at) = match ol.queue.pop_front() {
                // Queued work: the client starts it the moment it is free.
                Some(arrival) => (arrival, t_ready),
                None => {
                    // The system is idle; jump to the next arrival.
                    let next = ol.peek_next(ghz);
                    if next >= end_at {
                        break;
                    }
                    ol.drain_arrivals(next.saturating_add(1), ghz);
                    match ol.queue.pop_front() {
                        Some(arrival) => (arrival, next.max(t_ready)),
                        // Unreachable with bound ≥ 1 and an empty queue.
                        None => continue,
                    }
                }
            };
            self.cross_interval_boundaries(submit_at, ghz, &mut counters.repartitions);

            let client_core = self.clients[ci].core;
            self.workload
                .next_transaction_into(&mut self.rng, client_core, &mut self.spec_buf);
            let out: TxnOutcome =
                self.design
                    .execute(&mut self.machine, &self.spec_buf, client_core, submit_at);
            self.clients[ci].next_free = out.end;
            self.clock = self.clock.max(out.end.min(end_at));
            // Open-loop latency spans arrival to completion.
            let latency = out.end.saturating_sub(arrival);
            counters.latency_sum += u128::from(latency);
            if out.committed {
                counters.committed += 1;
                counters.committed_by_socket
                    [self.machine.topology.socket_of(client_core).index()] += 1;
                counters.latency_histogram.record(latency);
                self.total_committed += 1;
                self.interval_committed += 1;
                if out.end < end_at {
                    let b = ((out.end - seg_start) / bucket_len) as usize;
                    counters.buckets[b.min(n_buckets - 1)] += 1;
                }
            } else {
                counters.aborted += 1;
            }
        }

        // Arrivals up to the segment end are offered even if no client got
        // to them — they queue (or are rejected) and carry into the next
        // segment, so per-segment accounting is exact.
        ol.drain_arrivals(end_at, ghz);

        for c in &mut self.clients {
            if c.active {
                c.next_free = c.next_free.max(end_at);
            }
        }
        self.clock = end_at;
        let open = OpenLoopSeg {
            offered: ol.offered,
            admitted: ol.admitted,
            rejected: ol.rejected,
            depth_start,
            depth_end: ol.queue.len() as u64,
            depth_max: ol.depth_max,
        };
        self.open_loop = Some(ol);
        self.finish_stats(virtual_secs, &frame, &snap, counters, Some(open))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::atrapos::{AtraposConfig, AtraposDesign};
    use crate::designs::centralized::CentralizedDesign;
    use crate::workload::testing::TinyWorkload;
    use atrapos_numa::{CostModel, Topology};

    fn executor_with(design_kind: &str, sockets: usize, cores: usize) -> VirtualExecutor {
        let machine = Machine::new(Topology::multisocket(sockets, cores), CostModel::westmere());
        let workload = TinyWorkload { rows: 2000 };
        let design: Box<dyn SystemDesign> = match design_kind {
            "centralized" => Box::new(CentralizedDesign::new(&machine, &workload)),
            _ => Box::new(AtraposDesign::new(
                &machine,
                &workload,
                AtraposConfig::default(),
            )),
        };
        VirtualExecutor::new(
            machine,
            design,
            Box::new(workload),
            ExecutorConfig::default(),
        )
    }

    #[test]
    fn closed_loop_produces_throughput_and_time_series() {
        let mut ex = executor_with("atrapos", 2, 2);
        let stats = ex.run_for(0.02);
        assert!(stats.committed > 0);
        assert!(stats.throughput_tps > 0.0);
        assert!(stats.avg_latency_us > 0.0);
        assert!(stats.ipc > 0.0);
        assert_eq!(stats.aborted, 0);
        assert!(!stats.time_series.is_empty());
        assert!((ex.now_secs() - 0.02).abs() < 1e-9);
    }

    #[test]
    fn run_for_is_resumable_and_deterministic() {
        let mut a = executor_with("centralized", 2, 2);
        let mut b = executor_with("centralized", 2, 2);
        let a1 = a.run_for(0.01);
        let a2 = a.run_for(0.01);
        let b_total = b.run_for(0.02);
        // Same seed, same design: the two-segment run commits the same
        // number of transactions as the single longer run.
        assert_eq!(a1.committed + a2.committed, b_total.committed);
        assert!(a.now_secs() > 0.0);
        assert_eq!(a.total_committed(), b.total_committed());
    }

    #[test]
    fn failing_a_socket_stops_its_clients() {
        let mut ex = executor_with("atrapos", 2, 2);
        ex.run_for(0.01);
        let before = ex.machine().topology.num_active_cores();
        ex.fail_socket(SocketId(1));
        assert_eq!(ex.machine().topology.num_active_cores(), before - 2);
        let stats = ex.run_for(0.01);
        // The system keeps running on the remaining socket.
        assert!(stats.committed > 0);
        ex.restore_socket(SocketId(1));
        assert_eq!(ex.machine().topology.num_active_cores(), before);
    }

    #[test]
    fn partial_last_bucket_is_normalized_by_its_actual_width() {
        // 0.025 s segment with 0.01 s buckets: two full buckets plus a
        // 0.005 s partial one.  The partial bucket's tps must be normalized
        // by 0.005 s, not the configured 0.01 s.
        let machine = Machine::new(Topology::multisocket(2, 2), CostModel::westmere());
        let workload = TinyWorkload { rows: 2000 };
        let design: Box<dyn SystemDesign> = Box::new(AtraposDesign::new(
            &machine,
            &workload,
            AtraposConfig::default(),
        ));
        let mut ex = VirtualExecutor::new(
            machine,
            design,
            Box::new(workload),
            ExecutorConfig {
                seed: 42,
                default_interval_secs: 0.01,
                time_series_bucket_secs: 0.01,
            },
        );
        let stats = ex.run_for(0.025);
        let ts = &stats.time_series;
        assert_eq!(ts.len(), 3);
        assert!((ts[0].secs - 0.01).abs() < 1e-9);
        assert!((ts[1].secs - 0.02).abs() < 1e-9);
        // The last point ends at the segment end, not one full bucket later.
        assert!((ts[2].secs - 0.025).abs() < 1e-9, "got {}", ts[2].secs);
        // Per-bucket counts recovered from tps × actual width must be whole
        // numbers that sum to (at most) the committed count.
        let widths = [0.01, 0.01, 0.005];
        let mut bucketed = 0.0;
        for (p, w) in ts.iter().zip(widths) {
            let count = p.tps * w;
            assert!(
                (count - count.round()).abs() < 1e-6,
                "bucket at {} holds a fractional count {count}",
                p.secs
            );
            bucketed += count;
        }
        assert!(bucketed.round() as u64 <= stats.committed);
        // The workload is steady, so the partial bucket's *rate* must be in
        // line with the full buckets — the old code understated it 2×.
        let full_tps = (ts[0].tps + ts[1].tps) / 2.0;
        assert!(
            ts[2].tps > 0.75 * full_tps,
            "partial bucket tps {} far below the steady rate {}",
            ts[2].tps,
            full_tps
        );
    }

    #[test]
    fn interconnect_gbps_is_per_segment_not_cumulative() {
        // Centralized on two sockets generates steady cross-socket traffic.
        // The metric must be computed from the segment's own traffic and
        // time deltas: re-deriving each segment's byte delta from the
        // machine's cumulative counter must reproduce the reported numbers
        // for *every* segment, not only the first.
        let mut ex = executor_with("centralized", 2, 2);
        let ghz = ex.machine().topology.frequency_ghz();
        let mut prev_bytes = ex.machine().interconnect.total_cross_socket_bytes();
        for seg in 0..3 {
            let stats = ex.run_for(0.01);
            let now_bytes = ex.machine().interconnect.total_cross_socket_bytes();
            let d_bytes = now_bytes - prev_bytes;
            prev_bytes = now_bytes;
            let seg_secs = atrapos_numa::secs_to_cycles(0.01, ghz) as f64 / (ghz * 1e9);
            let expect = d_bytes as f64 * 8.0 / 1e9 / seg_secs;
            assert!(d_bytes > 0, "segment {seg} moved no cross-socket bytes");
            assert!(
                (stats.interconnect_gbps - expect).abs() <= 1e-9 * expect.max(1.0),
                "segment {seg}: reported {} Gbit/s, segment traffic implies {expect}",
                stats.interconnect_gbps
            );
        }
    }

    #[test]
    fn qpi_imc_ratio_is_per_segment_not_cumulative() {
        // Same shape as the interconnect_gbps regression above: re-deriving
        // each segment's QPI and local-memory byte deltas from the machine's
        // cumulative counters must reproduce the reported ratio for *every*
        // segment.  The old code reported the all-time running ratio, so
        // later segments leaked earlier traffic into the metric.
        let mut ex = executor_with("centralized", 2, 2);
        let mut prev_qpi = ex.machine().interconnect.total_cross_socket_bytes();
        let mut prev_local = ex.machine().interconnect.local_memory_bytes;
        for seg in 0..3 {
            let stats = ex.run_for(0.01);
            let now_qpi = ex.machine().interconnect.total_cross_socket_bytes();
            let now_local = ex.machine().interconnect.local_memory_bytes;
            let d_qpi = now_qpi - prev_qpi;
            let d_local = now_local - prev_local;
            prev_qpi = now_qpi;
            prev_local = now_local;
            let expect = d_qpi as f64 / (d_qpi + d_local) as f64;
            assert!(d_qpi + d_local > 0, "segment {seg} moved no memory bytes");
            assert!(
                (stats.qpi_imc_ratio - expect).abs() <= 1e-12,
                "segment {seg}: reported ratio {}, segment deltas imply {expect}",
                stats.qpi_imc_ratio
            );
        }
    }

    #[test]
    fn avg_latency_keeps_sub_cycle_precision() {
        let mut ex = executor_with("centralized", 1, 2);
        let stats = ex.run_for(0.01);
        assert!(stats.committed > 1);
        // The mean latency in cycles is almost surely not an integer; the
        // old u128 division truncated it to one.
        let ghz = ex.machine().topology.frequency_ghz();
        let cycles = stats.avg_latency_us * ghz * 1e3;
        assert!(
            (cycles - cycles.round()).abs() > 1e-6 || cycles == 0.0,
            "avg latency {cycles} cycles looks truncated to a whole cycle"
        );
    }

    #[test]
    fn more_cores_give_more_throughput_for_partitionable_work() {
        let mut small = executor_with("atrapos", 1, 2);
        let mut large = executor_with("atrapos", 4, 2);
        let s = small.run_for(0.02);
        let l = large.run_for(0.02);
        assert!(
            l.throughput_tps > 2.0 * s.throughput_tps,
            "8 cores {} should well exceed 2 cores {}",
            l.throughput_tps,
            s.throughput_tps
        );
    }

    #[test]
    fn closed_loop_reports_latency_quantiles() {
        let mut ex = executor_with("atrapos", 2, 2);
        let stats = ex.run_for(0.02);
        assert!(!stats.open_loop);
        assert_eq!(stats.offered, 0);
        assert_eq!(stats.latency_histogram.count(), stats.committed);
        assert!(stats.p50_latency_us > 0.0);
        assert!(stats.p50_latency_us <= stats.p95_latency_us);
        assert!(stats.p95_latency_us <= stats.p99_latency_us);
        assert!(stats.p99_latency_us <= stats.p999_latency_us);
    }

    #[test]
    fn open_loop_conserves_and_reports_queueing() {
        let mut ex = executor_with("atrapos", 2, 2);
        ex.set_admission_bound(32);
        ex.set_arrival_process(ArrivalProcess::Poisson {
            rate_tps: 100_000.0,
        });
        assert!(ex.is_open_loop());
        let stats = ex.run_for(0.02);
        assert!(stats.open_loop);
        assert!(stats.offered > 0, "no arrivals were generated");
        assert!(stats.committed > 0, "nothing got served");
        assert_eq!(stats.offered, stats.admitted + stats.rejected);
        assert_eq!(
            stats.admitted + stats.queue_depth_start,
            stats.committed + stats.aborted + stats.queue_depth_end,
            "admission-queue accounting must balance"
        );
        assert_eq!(stats.latency_histogram.count(), stats.committed);
        assert!(stats.offered_tps > 0.0);
        assert!(stats.queue_depth_max >= stats.queue_depth_end);
    }

    #[test]
    fn overload_rejects_and_underload_does_not() {
        // 1 000× the servable rate against a bound of 1: almost everything
        // is rejected, but the engine keeps committing (goodput survives).
        let mut hot = executor_with("atrapos", 2, 2);
        hot.set_admission_bound(1);
        hot.set_arrival_process(ArrivalProcess::Poisson {
            rate_tps: 50_000_000.0,
        });
        let h = hot.run_for(0.005);
        assert!(h.rejected > 0, "a full queue must reject");
        assert!(h.committed > 0, "overload must not stop goodput");
        assert!(h.rejected > h.committed);

        // A trickle far below capacity: nothing is ever rejected.
        let mut cold = executor_with("atrapos", 2, 2);
        cold.set_admission_bound(1);
        cold.set_arrival_process(ArrivalProcess::Poisson { rate_tps: 2_000.0 });
        let c = cold.run_for(0.02);
        assert!(c.offered > 0);
        assert_eq!(c.rejected, 0, "an idle system must admit everything");
        assert_eq!(c.committed + c.aborted + c.queue_depth_end, c.admitted);
    }

    #[test]
    fn open_loop_replays_byte_identically() {
        let run = || {
            let mut ex = executor_with("atrapos", 2, 2);
            ex.set_admission_bound(64);
            ex.set_arrival_process(ArrivalProcess::Burst {
                base_tps: 20_000.0,
                burst_tps: 200_000.0,
                period_secs: 0.005,
                burst_fraction: 0.3,
            });
            let s1 = ex.run_for(0.01);
            let s2 = ex.run_for(0.01);
            serde::json::to_string(&vec![s1, s2])
        };
        assert_eq!(run(), run(), "same seed must replay byte-identically");
    }

    #[test]
    fn open_loop_queue_carries_across_segments() {
        let mut ex = executor_with("atrapos", 2, 2);
        ex.set_admission_bound(10_000);
        ex.set_arrival_process(ArrivalProcess::Poisson {
            rate_tps: 20_000_000.0,
        });
        let s1 = ex.run_for(0.002);
        assert!(
            s1.queue_depth_end > 0,
            "a 20M tps flood must leave a backlog"
        );
        let s2 = ex.run_for(0.002);
        assert_eq!(
            s2.queue_depth_start, s1.queue_depth_end,
            "the backlog must carry into the next segment"
        );
    }

    #[test]
    fn installing_an_arrival_process_does_not_change_the_workload_stream() {
        // The arrival RNG is separate from the workload RNG: a closed-loop
        // run and an open-loop run at effectively unbounded rate generate
        // the same transaction sequence, so they commit the same count.
        let mut closed = executor_with("centralized", 1, 2);
        let c = closed.run_for(0.01);
        let mut open = executor_with("centralized", 1, 2);
        open.set_admission_bound(1_000_000);
        open.set_arrival_process(ArrivalProcess::Poisson {
            rate_tps: 1_000_000_000.0,
        });
        let o = open.run_for(0.01);
        // At 1G tps the queue never starves, so clients are as busy as in
        // the closed loop and the committed counts match.
        assert_eq!(c.committed, o.committed);
        assert_eq!(c.aborted, o.aborted);
    }

    #[test]
    fn run_stats_round_trip_through_json() {
        let mut ex = executor_with("atrapos", 2, 2);
        ex.set_arrival_process(ArrivalProcess::Poisson { rate_tps: 50_000.0 });
        let stats = ex.run_for(0.01);
        let text = serde::json::to_string(&stats);
        let back: RunStats = serde::json::from_str(&text).unwrap();
        assert_eq!(serde::json::to_string(&back), text);
        assert_eq!(back.latency_histogram, stats.latency_histogram);
        assert_eq!(back.offered, stats.offered);
    }
}
