//! The deterministic virtual-time executor.
//!
//! The executor runs a closed-loop benchmark: one client per active core
//! submits transactions back-to-back against a [`SystemDesign`], all in
//! virtual time.  It tracks throughput, latency, hardware-counter-derived
//! metrics (IPC, interconnect traffic), per-component time breakdowns, and a
//! per-second throughput time series (for the adaptive experiments of the
//! paper's Figures 10–13).  At monitoring-interval boundaries it hands
//! control to the design, which may repartition and pause execution.

use crate::action::{TransactionSpec, TxnOutcome};
use crate::designs::{DesignStats, SystemDesign};
use crate::workload::{ReconfigureError, Workload, WorkloadChange};
use atrapos_numa::{
    cycles_to_micros, frac_cycles_to_micros, secs_to_cycles, Breakdown, CoreId, Cycles,
    Interconnect, Machine, SocketId,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Executor parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutorConfig {
    /// Random seed for the workload generator.
    pub seed: u64,
    /// Default monitoring-interval length, in virtual seconds.
    pub default_interval_secs: f64,
    /// Width of the throughput time-series buckets, in virtual seconds.
    pub time_series_bucket_secs: f64,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            default_interval_secs: 1.0,
            time_series_bucket_secs: 1.0,
        }
    }
}

/// One point of the throughput time series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimePoint {
    /// End of the bucket, in virtual seconds from the executor's origin.
    pub secs: f64,
    /// Committed transactions per second during the bucket.
    pub tps: f64,
}

/// Statistics of one `run_for` segment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunStats {
    /// Committed transactions.
    pub committed: u64,
    /// Aborted transactions.
    pub aborted: u64,
    /// Segment length in virtual seconds.
    pub virtual_secs: f64,
    /// Committed transactions per virtual second.
    pub throughput_tps: f64,
    /// Mean transaction latency in microseconds.
    pub avg_latency_us: f64,
    /// Machine-wide instructions per cycle over the segment.
    pub ipc: f64,
    /// Per-component cycle breakdown accumulated during the segment.
    pub breakdown: Breakdown,
    /// Ratio of interconnect to memory-controller traffic (cumulative).
    pub qpi_imc_ratio: f64,
    /// Aggregate interconnect bandwidth in Gbit/s over the segment.
    pub interconnect_gbps: f64,
    /// Throughput time series.
    pub time_series: Vec<TimePoint>,
    /// Repartitionings performed during the segment.
    pub repartitions: u64,
    /// Committed transactions per socket of the submitting client (the
    /// per-instance throughput of Table I).
    pub committed_by_socket: Vec<u64>,
}

impl RunStats {
    /// Mean time per transaction in microseconds, derived from the
    /// per-component breakdown (used for the paper's Figure 4).
    pub fn time_per_txn_us(&self, ghz: f64) -> f64 {
        if self.committed == 0 {
            return 0.0;
        }
        cycles_to_micros(self.breakdown.total(), ghz) / self.committed as f64
    }
}

#[derive(Debug, Clone)]
struct Client {
    core: CoreId,
    next_free: Cycles,
    active: bool,
}

/// The closed-loop virtual-time executor.
pub struct VirtualExecutor {
    machine: Machine,
    design: Box<dyn SystemDesign>,
    workload: Box<dyn Workload>,
    config: ExecutorConfig,
    rng: SmallRng,
    clients: Vec<Client>,
    clock: Cycles,
    next_interval_at: Cycles,
    interval_len: Cycles,
    interval_committed: u64,
    total_committed: u64,
    /// Reusable transaction-spec buffer: the workload refills it in place
    /// once per transaction, so generation does not allocate per
    /// transaction.
    spec_buf: TransactionSpec,
}

impl VirtualExecutor {
    /// Build an executor: one client per active core of the machine.
    pub fn new(
        machine: Machine,
        design: Box<dyn SystemDesign>,
        workload: Box<dyn Workload>,
        config: ExecutorConfig,
    ) -> Self {
        let clients = machine
            .topology
            .active_cores()
            .into_iter()
            .map(|core| Client {
                core,
                next_free: 0,
                active: true,
            })
            .collect();
        let interval_len = secs_to_cycles(
            config.default_interval_secs,
            machine.topology.frequency_ghz(),
        );
        let rng = SmallRng::seed_from_u64(config.seed);
        Self {
            machine,
            design,
            workload,
            config,
            rng,
            clients,
            clock: 0,
            next_interval_at: interval_len,
            interval_len,
            interval_committed: 0,
            total_committed: 0,
            spec_buf: TransactionSpec::empty(),
        }
    }

    /// The simulated machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The design under test.
    pub fn design(&self) -> &dyn SystemDesign {
        self.design.as_ref()
    }

    /// Mutable access to the workload.
    pub fn workload_mut(&mut self) -> &mut dyn Workload {
        self.workload.as_mut()
    }

    /// Apply a typed reconfiguration to the workload (the adaptive
    /// experiments change the transaction mix or skew between segments).
    pub fn reconfigure_workload(
        &mut self,
        change: &WorkloadChange,
    ) -> Result<(), ReconfigureError> {
        self.workload.reconfigure(change)
    }

    /// The design's structured statistics (distributed-transaction counts,
    /// partition counts, repartitioning history).
    pub fn design_stats(&self) -> DesignStats {
        self.design.stats()
    }

    /// Change the default monitoring-interval length used from the next
    /// boundary on (adaptive designs may still override it per interval).
    pub fn set_default_interval_secs(&mut self, secs: f64) {
        assert!(secs > 0.0, "interval must be positive");
        self.config.default_interval_secs = secs;
    }

    /// Current virtual time in seconds since the executor started.
    pub fn now_secs(&self) -> f64 {
        self.machine.secs(self.clock)
    }

    /// Total committed transactions since the executor started.
    pub fn total_committed(&self) -> u64 {
        self.total_committed
    }

    /// Fail a socket: its clients stop submitting and the design is
    /// notified (paper Figure 12).
    pub fn fail_socket(&mut self, socket: SocketId) {
        self.machine.topology.fail_socket(socket);
        for c in &mut self.clients {
            if self.machine.topology.socket_of(c.core) == socket {
                c.active = false;
            }
        }
        self.design.on_topology_change(&self.machine);
    }

    /// Restore a previously failed socket.
    pub fn restore_socket(&mut self, socket: SocketId) {
        self.machine.topology.restore_socket(socket);
        for c in &mut self.clients {
            if self.machine.topology.socket_of(c.core) == socket {
                c.active = true;
                c.next_free = c.next_free.max(self.clock);
            }
        }
        self.design.on_topology_change(&self.machine);
    }

    /// Run the closed loop for `virtual_secs` of virtual time and return the
    /// segment's statistics.  Can be called repeatedly; state (virtual
    /// clock, client queues, design, workload) carries over.
    pub fn run_for(&mut self, virtual_secs: f64) -> RunStats {
        let ghz = self.machine.topology.frequency_ghz();
        let seg_start = self.clock;
        let seg_len = secs_to_cycles(virtual_secs, ghz);
        let end_at = seg_start + seg_len;
        let bucket_len = secs_to_cycles(self.config.time_series_bucket_secs, ghz).max(1);
        let n_buckets = seg_len.div_ceil(bucket_len) as usize;
        let mut buckets = vec![0u64; n_buckets.max(1)];

        let instr0 = self.machine.total_instructions();
        let cycles0 = self.machine.total_occupied_cycles();
        let breakdown0 = self.machine.breakdown();
        let qpi_bytes0 = self.machine.interconnect.total_cross_socket_bytes();
        let mut committed = 0u64;
        let mut aborted = 0u64;
        let mut latency_sum: u128 = 0;
        let mut repartitions = 0u64;
        let mut committed_by_socket = vec![0u64; self.machine.topology.num_sockets()];

        // Keep picking the next client ready to submit until no client is
        // active or the segment ends.
        while let Some((ci, t)) = self
            .clients
            .iter()
            .enumerate()
            .filter(|(_, c)| c.active)
            .map(|(i, c)| (i, c.next_free))
            .min_by_key(|&(_, t)| t)
        {
            let t = t.max(seg_start);
            if t >= end_at {
                break;
            }
            // Monitoring-interval boundaries that elapsed before `t`.
            while self.next_interval_at <= t {
                let interval_secs = self.machine.secs(self.interval_len).max(1e-9);
                let tput = self.interval_committed as f64 / interval_secs;
                let boundary = self.next_interval_at;
                let out = self.design.on_interval(&mut self.machine, boundary, tput);
                self.interval_committed = 0;
                if out.pause_cycles > 0 {
                    for c in &mut self.clients {
                        c.next_free = c.next_free.max(boundary + out.pause_cycles);
                    }
                }
                if out.repartitioned {
                    repartitions += 1;
                }
                let next_secs = out
                    .next_interval_secs
                    .unwrap_or(self.config.default_interval_secs);
                self.interval_len = secs_to_cycles(next_secs, ghz).max(1);
                self.next_interval_at = boundary + self.interval_len;
            }

            let client_core = self.clients[ci].core;
            self.workload
                .next_transaction_into(&mut self.rng, client_core, &mut self.spec_buf);
            let out: TxnOutcome =
                self.design
                    .execute(&mut self.machine, &self.spec_buf, client_core, t);
            self.clients[ci].next_free = out.end;
            self.clock = self.clock.max(out.end.min(end_at));
            latency_sum += u128::from(out.latency());
            if out.committed {
                committed += 1;
                committed_by_socket[self.machine.topology.socket_of(client_core).index()] += 1;
                self.total_committed += 1;
                self.interval_committed += 1;
                if out.end < end_at {
                    let b = ((out.end - seg_start) / bucket_len) as usize;
                    buckets[b.min(n_buckets - 1)] += 1;
                }
            } else {
                aborted += 1;
            }
        }

        // Idle clients coast to the end of the segment.
        for c in &mut self.clients {
            if c.active {
                c.next_free = c.next_free.max(end_at);
            }
        }
        self.clock = end_at;

        let executed = committed + aborted;
        let d_instr = self.machine.total_instructions() - instr0;
        let d_cycles = self.machine.total_occupied_cycles() - cycles0;
        let breakdown = self.machine.breakdown().saturating_sub(&breakdown0);
        // The last bucket may be truncated by the segment end
        // (`seg_len % bucket_len != 0`); normalize each bucket's count by
        // the bucket's actual width, not the configured width.
        let time_series = buckets
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let bucket_start = seg_start + i as u64 * bucket_len;
                let bucket_end = (bucket_start + bucket_len).min(end_at);
                let width_secs = self.machine.secs(bucket_end - bucket_start).max(1e-12);
                TimePoint {
                    secs: self.machine.secs(bucket_end),
                    tps: n as f64 / width_secs,
                }
            })
            .collect();
        let d_qpi_bytes = self.machine.interconnect.total_cross_socket_bytes() - qpi_bytes0;
        RunStats {
            committed,
            aborted,
            virtual_secs,
            throughput_tps: committed as f64 / virtual_secs,
            avg_latency_us: if executed == 0 {
                0.0
            } else {
                frac_cycles_to_micros(latency_sum as f64 / executed as f64, ghz)
            },
            ipc: if d_cycles == 0 {
                0.0
            } else {
                d_instr as f64 / d_cycles as f64
            },
            breakdown,
            qpi_imc_ratio: self.machine.interconnect.qpi_to_imc_ratio(),
            interconnect_gbps: Interconnect::bandwidth_gbps(
                d_qpi_bytes,
                seg_len.max(1),
                &self.machine.topology,
            ),
            time_series,
            repartitions,
            committed_by_socket,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::atrapos::{AtraposConfig, AtraposDesign};
    use crate::designs::centralized::CentralizedDesign;
    use crate::workload::testing::TinyWorkload;
    use atrapos_numa::{CostModel, Topology};

    fn executor_with(design_kind: &str, sockets: usize, cores: usize) -> VirtualExecutor {
        let machine = Machine::new(Topology::multisocket(sockets, cores), CostModel::westmere());
        let workload = TinyWorkload { rows: 2000 };
        let design: Box<dyn SystemDesign> = match design_kind {
            "centralized" => Box::new(CentralizedDesign::new(&machine, &workload)),
            _ => Box::new(AtraposDesign::new(
                &machine,
                &workload,
                AtraposConfig::default(),
            )),
        };
        VirtualExecutor::new(
            machine,
            design,
            Box::new(workload),
            ExecutorConfig::default(),
        )
    }

    #[test]
    fn closed_loop_produces_throughput_and_time_series() {
        let mut ex = executor_with("atrapos", 2, 2);
        let stats = ex.run_for(0.02);
        assert!(stats.committed > 0);
        assert!(stats.throughput_tps > 0.0);
        assert!(stats.avg_latency_us > 0.0);
        assert!(stats.ipc > 0.0);
        assert_eq!(stats.aborted, 0);
        assert!(!stats.time_series.is_empty());
        assert!((ex.now_secs() - 0.02).abs() < 1e-9);
    }

    #[test]
    fn run_for_is_resumable_and_deterministic() {
        let mut a = executor_with("centralized", 2, 2);
        let mut b = executor_with("centralized", 2, 2);
        let a1 = a.run_for(0.01);
        let a2 = a.run_for(0.01);
        let b_total = b.run_for(0.02);
        // Same seed, same design: the two-segment run commits the same
        // number of transactions as the single longer run.
        assert_eq!(a1.committed + a2.committed, b_total.committed);
        assert!(a.now_secs() > 0.0);
        assert_eq!(a.total_committed(), b.total_committed());
    }

    #[test]
    fn failing_a_socket_stops_its_clients() {
        let mut ex = executor_with("atrapos", 2, 2);
        ex.run_for(0.01);
        let before = ex.machine().topology.num_active_cores();
        ex.fail_socket(SocketId(1));
        assert_eq!(ex.machine().topology.num_active_cores(), before - 2);
        let stats = ex.run_for(0.01);
        // The system keeps running on the remaining socket.
        assert!(stats.committed > 0);
        ex.restore_socket(SocketId(1));
        assert_eq!(ex.machine().topology.num_active_cores(), before);
    }

    #[test]
    fn partial_last_bucket_is_normalized_by_its_actual_width() {
        // 0.025 s segment with 0.01 s buckets: two full buckets plus a
        // 0.005 s partial one.  The partial bucket's tps must be normalized
        // by 0.005 s, not the configured 0.01 s.
        let machine = Machine::new(Topology::multisocket(2, 2), CostModel::westmere());
        let workload = TinyWorkload { rows: 2000 };
        let design: Box<dyn SystemDesign> = Box::new(AtraposDesign::new(
            &machine,
            &workload,
            AtraposConfig::default(),
        ));
        let mut ex = VirtualExecutor::new(
            machine,
            design,
            Box::new(workload),
            ExecutorConfig {
                seed: 42,
                default_interval_secs: 0.01,
                time_series_bucket_secs: 0.01,
            },
        );
        let stats = ex.run_for(0.025);
        let ts = &stats.time_series;
        assert_eq!(ts.len(), 3);
        assert!((ts[0].secs - 0.01).abs() < 1e-9);
        assert!((ts[1].secs - 0.02).abs() < 1e-9);
        // The last point ends at the segment end, not one full bucket later.
        assert!((ts[2].secs - 0.025).abs() < 1e-9, "got {}", ts[2].secs);
        // Per-bucket counts recovered from tps × actual width must be whole
        // numbers that sum to (at most) the committed count.
        let widths = [0.01, 0.01, 0.005];
        let mut bucketed = 0.0;
        for (p, w) in ts.iter().zip(widths) {
            let count = p.tps * w;
            assert!(
                (count - count.round()).abs() < 1e-6,
                "bucket at {} holds a fractional count {count}",
                p.secs
            );
            bucketed += count;
        }
        assert!(bucketed.round() as u64 <= stats.committed);
        // The workload is steady, so the partial bucket's *rate* must be in
        // line with the full buckets — the old code understated it 2×.
        let full_tps = (ts[0].tps + ts[1].tps) / 2.0;
        assert!(
            ts[2].tps > 0.75 * full_tps,
            "partial bucket tps {} far below the steady rate {}",
            ts[2].tps,
            full_tps
        );
    }

    #[test]
    fn interconnect_gbps_is_per_segment_not_cumulative() {
        // Centralized on two sockets generates steady cross-socket traffic.
        // The metric must be computed from the segment's own traffic and
        // time deltas: re-deriving each segment's byte delta from the
        // machine's cumulative counter must reproduce the reported numbers
        // for *every* segment, not only the first.
        let mut ex = executor_with("centralized", 2, 2);
        let ghz = ex.machine().topology.frequency_ghz();
        let mut prev_bytes = ex.machine().interconnect.total_cross_socket_bytes();
        for seg in 0..3 {
            let stats = ex.run_for(0.01);
            let now_bytes = ex.machine().interconnect.total_cross_socket_bytes();
            let d_bytes = now_bytes - prev_bytes;
            prev_bytes = now_bytes;
            let seg_secs = atrapos_numa::secs_to_cycles(0.01, ghz) as f64 / (ghz * 1e9);
            let expect = d_bytes as f64 * 8.0 / 1e9 / seg_secs;
            assert!(d_bytes > 0, "segment {seg} moved no cross-socket bytes");
            assert!(
                (stats.interconnect_gbps - expect).abs() <= 1e-9 * expect.max(1.0),
                "segment {seg}: reported {} Gbit/s, segment traffic implies {expect}",
                stats.interconnect_gbps
            );
        }
    }

    #[test]
    fn avg_latency_keeps_sub_cycle_precision() {
        let mut ex = executor_with("centralized", 1, 2);
        let stats = ex.run_for(0.01);
        assert!(stats.committed > 1);
        // The mean latency in cycles is almost surely not an integer; the
        // old u128 division truncated it to one.
        let ghz = ex.machine().topology.frequency_ghz();
        let cycles = stats.avg_latency_us * ghz * 1e3;
        assert!(
            (cycles - cycles.round()).abs() > 1e-6 || cycles == 0.0,
            "avg latency {cycles} cycles looks truncated to a whole cycle"
        );
    }

    #[test]
    fn more_cores_give_more_throughput_for_partitionable_work() {
        let mut small = executor_with("atrapos", 1, 2);
        let mut large = executor_with("atrapos", 4, 2);
        let s = small.run_for(0.02);
        let l = large.run_for(0.02);
        assert!(
            l.throughput_tps > 2.0 * s.throughput_tps,
            "8 cores {} should well exceed 2 cores {}",
            l.throughput_tps,
            s.throughput_tps
        );
    }
}
