//! Declarative experiment timelines.
//!
//! The paper's headline experiments (Figures 10–13, the hardware-failure
//! run) are *scenarios*: a workload runs while typed events fire at
//! virtual-time offsets — the transaction mix switches, skew appears, a
//! processor socket fails.  A [`Scenario`] captures such a timeline as
//! plain serializable data: an event list plus a total duration.  The
//! executor interprets it with [`VirtualExecutor::run_scenario`], emitting
//! one labelled [`RunStats`] segment per inter-event span, so the same
//! scenario can be stored in a file, replayed, swept over designs, and
//! compared — no hand-rolled phase loops, no downcasts.
//!
//! ```
//! use atrapos_engine::scenario::{Scenario, ScenarioEvent};
//!
//! // Figure 10 in miniature: two mix switches at 0.25s and 0.5s.
//! let scenario = Scenario::new("adapt-to-workload-change", 0.75)
//!     .starting_as("UpdSubData")
//!     .at(0.25, "GetNewDest", ScenarioEvent::SetWorkloadPhase { txn: "GetNewDest".into() })
//!     .at(0.50, "TATP-Mix", ScenarioEvent::SetMix);
//! assert_eq!(scenario.events.len(), 2);
//! let json = scenario.to_json();
//! assert_eq!(Scenario::from_json(&json).unwrap(), scenario);
//! ```

use crate::arrival::ArrivalProcess;
use crate::designs::DesignStats;
use crate::executor::{RunStats, TimePoint, VirtualExecutor};
use crate::workload::{ReconfigureError, WorkloadChange};
use atrapos_core::KeyDistribution;
use atrapos_numa::SocketId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A typed event on a scenario timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScenarioEvent {
    /// Switch the workload to a single transaction type — the phase
    /// changes of Figures 10 and 13.
    SetWorkloadPhase {
        /// Transaction-type label (e.g. `"GetNewDest"`).
        txn: String,
    },
    /// Restore the workload's standard transaction mix.
    SetMix,
    /// Change the key-access distribution — Figure 11's sudden hotspot.
    SetSkew {
        /// The new distribution.
        distribution: KeyDistribution,
    },
    /// Set the key-access distribution to a Zipfian with the given
    /// exponent.  A sequence of these events at increasing offsets is a
    /// *theta ramp* — skew that tightens (or relaxes) over the timeline.
    SetZipfTheta {
        /// Zipfian exponent (0 = uniform; YCSB's standard is 0.99).
        theta: f64,
    },
    /// Switch to a named operation mix the workload defines (the YCSB
    /// core mixes "A"–"F").
    SetNamedMix {
        /// Mix name.
        name: String,
    },
    /// Apply any other typed workload change (escape hatch covering the
    /// full [`WorkloadChange`] vocabulary).
    ChangeWorkload {
        /// The change.
        change: WorkloadChange,
    },
    /// Fail a processor socket — the hardware change of Figure 12.
    FailSocket {
        /// Socket index.
        socket: u16,
    },
    /// Restore a previously failed socket.
    RestoreSocket {
        /// Socket index.
        socket: u16,
    },
    /// Override the executor's default monitoring interval from this point
    /// on.
    SetInterval {
        /// New default interval in virtual seconds.
        secs: f64,
    },
    /// Switch the executor to open-loop serving with Poisson arrivals at
    /// the given mean rate (or retune the rate of an already-installed
    /// process).  The rate must be positive and finite.
    SetArrivalRate {
        /// Mean offered load in transactions per virtual second.
        rate_tps: f64,
    },
    /// Set the admission-queue bound for open-loop serving (must be ≥ 1).
    /// Applies immediately if a process is installed, and is remembered
    /// for processes installed later on the timeline.
    SetAdmissionBound {
        /// Maximum queued arrivals before new ones are rejected.
        bound: u64,
    },
    /// Install an arbitrary arrival process — the escape hatch covering
    /// the full [`ArrivalProcess`] vocabulary (bursts, diurnal cycles).
    SetArrivalProcess {
        /// The process.
        process: ArrivalProcess,
    },
    /// Pure measurement boundary: close the current segment and start a
    /// new one without changing anything.
    Measure,
}

impl ScenarioEvent {
    /// The workload change this event carries, if any.
    fn workload_change(&self) -> Option<WorkloadChange> {
        match self {
            ScenarioEvent::SetWorkloadPhase { txn } => {
                Some(WorkloadChange::SingleTransaction { txn: txn.clone() })
            }
            ScenarioEvent::SetMix => Some(WorkloadChange::StandardMix),
            ScenarioEvent::SetSkew { distribution } => Some(WorkloadChange::Distribution {
                distribution: *distribution,
            }),
            ScenarioEvent::SetZipfTheta { theta } => {
                Some(WorkloadChange::ZipfianTheta { theta: *theta })
            }
            ScenarioEvent::SetNamedMix { name } => {
                Some(WorkloadChange::NamedMix { name: name.clone() })
            }
            ScenarioEvent::ChangeWorkload { change } => Some(change.clone()),
            _ => None,
        }
    }
}

/// An event bound to a virtual-time offset, optionally starting a new
/// labelled segment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// Offset from the scenario start, in virtual seconds.
    pub at_secs: f64,
    /// Label of the segment that begins at this event; `None` keeps the
    /// previous label.
    pub label: Option<String>,
    /// The event.
    pub event: ScenarioEvent,
}

/// A declarative experiment timeline: an event list plus a total duration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name (used in reports).
    pub name: String,
    /// Label of the initial segment (before any event fires).
    pub initial_label: String,
    /// Total duration in virtual seconds.
    pub duration_secs: f64,
    /// Events, at offsets within `[0, duration_secs]`.
    pub events: Vec<TimedEvent>,
}

impl Scenario {
    /// An empty scenario of the given virtual duration.
    pub fn new(name: impl Into<String>, duration_secs: f64) -> Self {
        Self {
            name: name.into(),
            initial_label: "start".to_string(),
            duration_secs,
            events: Vec::new(),
        }
    }

    /// Name the initial segment (before any event fires).
    pub fn starting_as(mut self, label: impl Into<String>) -> Self {
        self.initial_label = label.into();
        self
    }

    /// Add an event starting a new labelled segment.
    pub fn at(mut self, at_secs: f64, label: impl Into<String>, event: ScenarioEvent) -> Self {
        self.events.push(TimedEvent {
            at_secs,
            label: Some(label.into()),
            event,
        });
        self
    }

    /// Add an event that keeps the current segment label.
    pub fn at_unlabelled(mut self, at_secs: f64, event: ScenarioEvent) -> Self {
        self.events.push(TimedEvent {
            at_secs,
            label: None,
            event,
        });
        self
    }

    /// Check the timeline is well-formed: positive duration, events in
    /// non-decreasing time order, offsets within the duration.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        // NaN durations/offsets fail the `is_finite` checks, so a timeline
        // with unparseable numbers can never validate.
        if !self.duration_secs.is_finite() || self.duration_secs <= 0.0 {
            return Err(ScenarioError::BadTimeline {
                scenario: self.name.clone(),
                reason: format!("duration must be positive, got {}", self.duration_secs),
            });
        }
        let mut last = 0.0f64;
        for (i, e) in self.events.iter().enumerate() {
            if !e.at_secs.is_finite() || e.at_secs < 0.0 || e.at_secs > self.duration_secs {
                return Err(ScenarioError::BadTimeline {
                    scenario: self.name.clone(),
                    reason: format!(
                        "event {i} at {}s lies outside [0, {}]",
                        e.at_secs, self.duration_secs
                    ),
                });
            }
            if e.at_secs < last {
                return Err(ScenarioError::BadTimeline {
                    scenario: self.name.clone(),
                    reason: format!(
                        "event {i} at {}s is earlier than its predecessor at {last}s",
                        e.at_secs
                    ),
                });
            }
            if let ScenarioEvent::SetInterval { secs } = &e.event {
                if !secs.is_finite() || *secs <= 0.0 {
                    return Err(ScenarioError::BadTimeline {
                        scenario: self.name.clone(),
                        reason: format!(
                            "event {i}: SetInterval needs a positive interval, got {secs}"
                        ),
                    });
                }
            }
            if let ScenarioEvent::SetArrivalRate { rate_tps } = &e.event {
                if !rate_tps.is_finite() || *rate_tps <= 0.0 {
                    return Err(ScenarioError::BadTimeline {
                        scenario: self.name.clone(),
                        reason: format!(
                            "event {i}: SetArrivalRate needs a positive finite rate, \
                             got {rate_tps}"
                        ),
                    });
                }
            }
            if let ScenarioEvent::SetAdmissionBound { bound } = &e.event {
                if *bound < 1 {
                    return Err(ScenarioError::BadTimeline {
                        scenario: self.name.clone(),
                        reason: format!("event {i}: SetAdmissionBound needs a bound ≥ 1"),
                    });
                }
            }
            if let ScenarioEvent::SetArrivalProcess { process } = &e.event {
                if let Err(reason) = process.validate() {
                    return Err(ScenarioError::BadTimeline {
                        scenario: self.name.clone(),
                        reason: format!("event {i}: {reason}"),
                    });
                }
            }
            if let ScenarioEvent::SetZipfTheta { theta } = &e.event {
                if !theta.is_finite() || *theta < 0.0 {
                    return Err(ScenarioError::BadTimeline {
                        scenario: self.name.clone(),
                        reason: format!(
                            "event {i}: SetZipfTheta needs a finite non-negative exponent, \
                             got {theta}"
                        ),
                    });
                }
            }
            last = e.at_secs;
        }
        Ok(())
    }

    /// Serialize to pretty JSON (scenarios are data — store them in
    /// files).
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parse a scenario from JSON text.  The parsed timeline is validated,
    /// so a malformed file (unsorted or out-of-range offsets) is rejected at
    /// load time with a typed error instead of misbehaving mid-run.
    pub fn from_json(text: &str) -> Result<Self, ScenarioError> {
        let scenario: Self =
            serde::json::from_str(text).map_err(|e| ScenarioError::BadTimeline {
                scenario: "<json>".to_string(),
                reason: e.to_string(),
            })?;
        scenario.validate()?;
        Ok(scenario)
    }
}

/// Why a scenario could not be run.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The timeline itself is malformed (or failed to parse).
    BadTimeline {
        /// Scenario name.
        scenario: String,
        /// What is wrong.
        reason: String,
    },
    /// A workload-change event was rejected by the workload.
    Reconfigure {
        /// Scenario name.
        scenario: String,
        /// Offset of the rejected event.
        at_secs: f64,
        /// The underlying rejection.
        source: ReconfigureError,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::BadTimeline { scenario, reason } => {
                write!(f, "scenario '{scenario}': {reason}")
            }
            ScenarioError::Reconfigure {
                scenario,
                at_secs,
                source,
            } => write!(f, "scenario '{scenario}' at {at_secs}s: {source}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// One measured segment of a scenario run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SegmentStats {
    /// Label of the segment (from the event that started it).
    pub label: String,
    /// Segment start, as an offset from the scenario start in virtual
    /// seconds.
    pub start_secs: f64,
    /// Executor statistics of the segment.
    pub stats: RunStats,
}

/// The full result of a scenario run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Name of the scenario that ran.
    pub scenario: String,
    /// Name of the design it ran against.
    pub design: String,
    /// Per-segment statistics, in timeline order.
    pub segments: Vec<SegmentStats>,
    /// The design's structured statistics after the run.
    pub design_stats: DesignStats,
}

impl ScenarioOutcome {
    /// The concatenated throughput time series of every segment (time
    /// points carry absolute virtual time, so segments chain naturally).
    pub fn time_series(&self) -> Vec<TimePoint> {
        self.segments
            .iter()
            .flat_map(|s| s.stats.time_series.iter().copied())
            .collect()
    }

    /// Total committed transactions over the whole run.
    pub fn total_committed(&self) -> u64 {
        self.segments.iter().map(|s| s.stats.committed).sum()
    }

    /// Total repartitionings over the whole run.
    pub fn total_repartitions(&self) -> u64 {
        self.segments.iter().map(|s| s.stats.repartitions).sum()
    }

    /// The segments carrying a given label, in order.
    pub fn segments_labelled<'a>(
        &'a self,
        label: &'a str,
    ) -> impl Iterator<Item = &'a SegmentStats> {
        self.segments.iter().filter(move |s| s.label == label)
    }
}

impl VirtualExecutor {
    /// Interpret a scenario timeline: run each inter-event span as one
    /// measured segment, applying events at their offsets.
    ///
    /// Offsets are relative to the executor's current virtual time, so a
    /// scenario can run on a fresh executor or continue an existing run.
    /// Events sharing an offset apply in list order without producing
    /// zero-length segments.
    pub fn run_scenario(&mut self, scenario: &Scenario) -> Result<ScenarioOutcome, ScenarioError> {
        scenario.validate()?;
        let mut segments = Vec::new();
        let mut label = scenario.initial_label.clone();
        let mut now = 0.0f64;
        let run_segment =
            |ex: &mut Self, from: f64, to: f64, label: &str, out: &mut Vec<SegmentStats>| {
                if to > from + 1e-12 {
                    let stats = ex.run_for(to - from);
                    out.push(SegmentStats {
                        label: label.to_string(),
                        start_secs: from,
                        stats,
                    });
                }
            };
        for e in &scenario.events {
            run_segment(self, now, e.at_secs, &label, &mut segments);
            now = now.max(e.at_secs);
            if let Some(l) = &e.label {
                label = l.clone();
            }
            if let Some(change) = e.event.workload_change() {
                self.reconfigure_workload(&change).map_err(|source| {
                    ScenarioError::Reconfigure {
                        scenario: scenario.name.clone(),
                        at_secs: e.at_secs,
                        source,
                    }
                })?;
            } else {
                match &e.event {
                    ScenarioEvent::FailSocket { socket } => self.fail_socket(SocketId(*socket)),
                    ScenarioEvent::RestoreSocket { socket } => {
                        self.restore_socket(SocketId(*socket))
                    }
                    ScenarioEvent::SetInterval { secs } => self.set_default_interval_secs(*secs),
                    ScenarioEvent::SetArrivalRate { rate_tps } => {
                        self.set_arrival_process(ArrivalProcess::Poisson {
                            rate_tps: *rate_tps,
                        })
                    }
                    ScenarioEvent::SetAdmissionBound { bound } => self.set_admission_bound(*bound),
                    ScenarioEvent::SetArrivalProcess { process } => {
                        self.set_arrival_process(*process)
                    }
                    ScenarioEvent::Measure => {}
                    // Workload changes were handled above.
                    _ => {}
                }
            }
        }
        run_segment(self, now, scenario.duration_secs, &label, &mut segments);
        Ok(ScenarioOutcome {
            scenario: scenario.name.clone(),
            design: self.design().name().to_string(),
            segments,
            design_stats: self.design_stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::atrapos::{AtraposConfig, AtraposDesign};
    use crate::designs::SystemDesign;
    use crate::executor::ExecutorConfig;
    use crate::workload::testing::TinyWorkload;
    use atrapos_numa::{CostModel, Machine, Topology};

    fn executor() -> VirtualExecutor {
        let machine = Machine::new(Topology::multisocket(2, 2), CostModel::westmere());
        let workload = TinyWorkload { rows: 2_000 };
        let design: Box<dyn SystemDesign> = Box::new(AtraposDesign::new(
            &machine,
            &workload,
            AtraposConfig::default(),
        ));
        VirtualExecutor::new(
            machine,
            design,
            Box::new(workload),
            ExecutorConfig {
                seed: 9,
                default_interval_secs: 0.002,
                time_series_bucket_secs: 0.002,
            },
        )
    }

    #[test]
    fn scenario_emits_one_segment_per_span() {
        let scenario = Scenario::new("three-phases", 0.03)
            .starting_as("a")
            .at(0.01, "b", ScenarioEvent::Measure)
            .at(0.02, "c", ScenarioEvent::Measure);
        let outcome = executor().run_scenario(&scenario).unwrap();
        let labels: Vec<&str> = outcome.segments.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, vec!["a", "b", "c"]);
        assert!(outcome.segments.iter().all(|s| s.stats.committed > 0));
        assert_eq!(
            outcome.total_committed(),
            outcome
                .segments
                .iter()
                .map(|s| s.stats.committed)
                .sum::<u64>()
        );
    }

    #[test]
    fn scenario_matches_equivalent_run_for_calls() {
        let scenario = Scenario::new("plain", 0.03).at_unlabelled(0.015, ScenarioEvent::Measure);
        let outcome = executor().run_scenario(&scenario).unwrap();
        let mut manual = executor();
        let m1 = manual.run_for(0.015);
        let m2 = manual.run_for(0.015);
        assert_eq!(
            outcome.total_committed(),
            m1.committed + m2.committed,
            "scenario runner must be a pure reformulation of run_for"
        );
    }

    #[test]
    fn fail_and_restore_events_change_the_topology() {
        let scenario = Scenario::new("hw", 0.03)
            .starting_as("before")
            .at(0.01, "failed", ScenarioEvent::FailSocket { socket: 1 })
            .at(0.02, "restored", ScenarioEvent::RestoreSocket { socket: 1 });
        let mut ex = executor();
        let cores_before = ex.machine().topology.num_active_cores();
        let outcome = ex.run_scenario(&scenario).unwrap();
        assert_eq!(ex.machine().topology.num_active_cores(), cores_before);
        assert_eq!(outcome.segments.len(), 3);
        assert!(outcome
            .segments_labelled("failed")
            .all(|s| s.stats.committed > 0));
    }

    #[test]
    fn unsupported_workload_change_is_reported_with_offset() {
        let scenario = Scenario::new("bad", 0.02).at(0.01, "x", ScenarioEvent::SetMix);
        // TinyWorkload supports no reconfiguration at all.
        let err = executor().run_scenario(&scenario).unwrap_err();
        match err {
            ScenarioError::Reconfigure { at_secs, .. } => assert_eq!(at_secs, 0.01),
            other => panic!("expected Reconfigure error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_timelines_are_rejected() {
        assert!(Scenario::new("empty", 0.0).validate().is_err());
        let out_of_range = Scenario::new("oor", 0.01).at(0.5, "x", ScenarioEvent::Measure);
        assert!(out_of_range.validate().is_err());
        let unordered = Scenario::new("uo", 1.0)
            .at(0.5, "a", ScenarioEvent::Measure)
            .at(0.25, "b", ScenarioEvent::Measure);
        assert!(unordered.validate().is_err());
        // A non-positive interval must be caught at validation time, not by
        // the executor's assert mid-run.
        let bad_interval =
            Scenario::new("bi", 1.0).at(0.5, "x", ScenarioEvent::SetInterval { secs: 0.0 });
        assert!(bad_interval.validate().is_err());
        assert!(executor().run_scenario(&bad_interval).is_err());
        // Zipfian exponents must be finite and non-negative.
        let bad_theta =
            Scenario::new("bt", 1.0).at(0.5, "x", ScenarioEvent::SetZipfTheta { theta: -0.5 });
        assert!(bad_theta.validate().is_err());
        let nan_theta =
            Scenario::new("nt", 1.0).at(0.5, "x", ScenarioEvent::SetZipfTheta { theta: f64::NAN });
        assert!(nan_theta.validate().is_err());
        // Open-loop events are validated up front too.
        let bad_rate =
            Scenario::new("br", 1.0).at(0.5, "x", ScenarioEvent::SetArrivalRate { rate_tps: 0.0 });
        assert!(bad_rate.validate().is_err());
        let nan_rate = Scenario::new("nr", 1.0).at(
            0.5,
            "x",
            ScenarioEvent::SetArrivalRate { rate_tps: f64::NAN },
        );
        assert!(nan_rate.validate().is_err());
        let bad_bound =
            Scenario::new("bb", 1.0).at(0.5, "x", ScenarioEvent::SetAdmissionBound { bound: 0 });
        assert!(bad_bound.validate().is_err());
        let bad_process = Scenario::new("bp", 1.0).at(
            0.5,
            "x",
            ScenarioEvent::SetArrivalProcess {
                process: ArrivalProcess::Diurnal {
                    base_tps: 100.0,
                    amplitude: 1.5,
                    period_secs: 1.0,
                },
            },
        );
        assert!(bad_process.validate().is_err());
    }

    #[test]
    fn arrival_events_switch_a_scenario_to_open_loop() {
        // A closed-loop warmup segment, then open loop at a modest rate:
        // only the open segments carry offered-load accounting, and the
        // closed segment is byte-identical to a plain closed-loop run.
        let scenario = Scenario::new("open", 0.03)
            .starting_as("closed")
            .at(0.01, "open", ScenarioEvent::SetAdmissionBound { bound: 16 })
            .at_unlabelled(0.01, ScenarioEvent::SetArrivalRate { rate_tps: 50_000.0 })
            .at_unlabelled(0.02, ScenarioEvent::Measure);
        let outcome = executor().run_scenario(&scenario).unwrap();
        assert_eq!(outcome.segments.len(), 3);
        let closed = &outcome.segments[0].stats;
        assert!(!closed.open_loop);
        assert_eq!(closed.offered, 0);
        for seg in &outcome.segments[1..] {
            let s = &seg.stats;
            assert!(s.open_loop, "segment '{}' should be open loop", seg.label);
            assert!(s.offered > 0);
            assert_eq!(s.offered, s.admitted + s.rejected);
            assert_eq!(
                s.admitted + s.queue_depth_start,
                s.committed + s.aborted + s.queue_depth_end
            );
        }
        // The warmup is untouched by the later open-loop events.
        let plain = executor().run_for(0.01);
        assert_eq!(plain.committed, closed.committed);
        assert_eq!(plain.aborted, closed.aborted);
    }

    #[test]
    fn optional_fields_may_be_omitted_in_scenario_json() {
        // serde_json-style files omit nullable keys; TimedEvent.label is
        // Option and must default to None when absent.
        let json = r#"{
            "name": "omitted", "initial_label": "start", "duration_secs": 0.5,
            "events": [{"at_secs": 0.1, "event": "Measure"}]
        }"#;
        let scenario = Scenario::from_json(json).unwrap();
        assert_eq!(scenario.events[0].label, None);
        scenario.validate().unwrap();
    }

    #[test]
    fn from_json_rejects_malformed_timelines_with_a_typed_error() {
        // Parseable JSON, but the offsets are out of order and out of range:
        // loading must fail up front, not mid-run.
        let json = r#"{
            "name": "bad-file", "initial_label": "start", "duration_secs": 1.0,
            "events": [
                {"at_secs": 0.9, "event": "Measure"},
                {"at_secs": 0.1, "event": "Measure"}
            ]
        }"#;
        match Scenario::from_json(json) {
            Err(ScenarioError::BadTimeline { scenario, .. }) => assert_eq!(scenario, "bad-file"),
            other => panic!("expected BadTimeline, got {other:?}"),
        }
        let out_of_range = r#"{
            "name": "oor", "initial_label": "start", "duration_secs": 0.5,
            "events": [{"at_secs": 2.0, "event": "Measure"}]
        }"#;
        assert!(Scenario::from_json(out_of_range).is_err());
    }

    #[test]
    fn scenarios_round_trip_through_json() {
        let scenario = Scenario::new("roundtrip", 0.75)
            .starting_as("uniform")
            .at(
                0.25,
                "skewed",
                ScenarioEvent::SetSkew {
                    distribution: KeyDistribution::Hotspot {
                        data_fraction: 0.2,
                        access_fraction: 0.5,
                    },
                },
            )
            .at_unlabelled(0.5, ScenarioEvent::SetInterval { secs: 0.1 })
            .at(0.5, "mix", ScenarioEvent::SetMix)
            .at(0.55, "theta", ScenarioEvent::SetZipfTheta { theta: 0.99 })
            .at(
                0.55,
                "ycsb-b",
                ScenarioEvent::SetNamedMix {
                    name: "B".to_string(),
                },
            )
            .at(0.6, "failed", ScenarioEvent::FailSocket { socket: 3 });
        let json = scenario.to_json();
        assert_eq!(Scenario::from_json(&json).unwrap(), scenario);
    }
}
