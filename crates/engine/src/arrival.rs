//! Open-loop arrival processes.
//!
//! The closed-loop executor measures *capacity*: clients submit as fast as
//! the engine commits, so the system is always exactly saturated.  Open
//! loop decouples the two — transactions arrive on their own schedule,
//! whether or not the engine keeps up — which is the only way to observe
//! overload: queueing delay, admission rejections, and goodput past
//! saturation (the regime the paper's coordination-free design targets).
//!
//! An [`ArrivalProcess`] is a deterministic description of offered load as
//! a (possibly time-varying) rate in transactions per virtual second.
//! Arrival timestamps are drawn by *thinning* (rejection sampling against
//! the peak rate) from the executor's dedicated arrival RNG, so a run's
//! arrival sequence depends only on the seed and the process — never on
//! how fast the engine happens to serve — and stays bit-reproducible.

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A description of offered load: how transaction arrivals are spread over
/// virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// A homogeneous Poisson process: independent exponential
    /// inter-arrival gaps at a constant mean rate.
    Poisson {
        /// Mean arrival rate in transactions per virtual second.
        rate_tps: f64,
    },
    /// A periodic on/off burst pattern: each period opens with a burst at
    /// `burst_tps` lasting `burst_fraction` of the period, then falls back
    /// to `base_tps`.  Arrivals within each regime are Poisson.
    Burst {
        /// Rate outside the burst window, in transactions per second.
        base_tps: f64,
        /// Rate inside the burst window, in transactions per second.
        burst_tps: f64,
        /// Length of one base+burst cycle, in virtual seconds.
        period_secs: f64,
        /// Fraction of each period spent bursting, in `(0, 1)`.
        burst_fraction: f64,
    },
    /// A sinusoidally modulated ("diurnal") rate:
    /// `base_tps × (1 + amplitude · sin(2πt / period_secs))`.
    Diurnal {
        /// Mean arrival rate in transactions per second.
        base_tps: f64,
        /// Relative swing around the mean, in `[0, 1)` so the rate stays
        /// positive.
        amplitude: f64,
        /// Length of one full cycle, in virtual seconds.
        period_secs: f64,
    },
}

impl ArrivalProcess {
    /// Check the parameters describe a well-formed process.
    pub fn validate(&self) -> Result<(), String> {
        let positive = |name: &str, v: f64| {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(format!("{name} must be a positive finite number, got {v}"))
            }
        };
        match *self {
            ArrivalProcess::Poisson { rate_tps } => positive("rate_tps", rate_tps),
            ArrivalProcess::Burst {
                base_tps,
                burst_tps,
                period_secs,
                burst_fraction,
            } => {
                positive("base_tps", base_tps)?;
                positive("burst_tps", burst_tps)?;
                positive("period_secs", period_secs)?;
                if !burst_fraction.is_finite() || burst_fraction <= 0.0 || burst_fraction >= 1.0 {
                    return Err(format!(
                        "burst_fraction must lie strictly inside (0, 1), got {burst_fraction}"
                    ));
                }
                Ok(())
            }
            ArrivalProcess::Diurnal {
                base_tps,
                amplitude,
                period_secs,
            } => {
                positive("base_tps", base_tps)?;
                positive("period_secs", period_secs)?;
                if !amplitude.is_finite() || !(0.0..1.0).contains(&amplitude) {
                    return Err(format!(
                        "amplitude must lie in [0, 1) so the rate stays positive, got {amplitude}"
                    ));
                }
                Ok(())
            }
        }
    }

    /// The instantaneous arrival rate at virtual time `t_secs`, in
    /// transactions per second.
    pub fn rate_at(&self, t_secs: f64) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_tps } => rate_tps,
            ArrivalProcess::Burst {
                base_tps,
                burst_tps,
                period_secs,
                burst_fraction,
            } => {
                let phase = (t_secs / period_secs).rem_euclid(1.0);
                if phase < burst_fraction {
                    burst_tps
                } else {
                    base_tps
                }
            }
            ArrivalProcess::Diurnal {
                base_tps,
                amplitude,
                period_secs,
            } => {
                base_tps * (1.0 + amplitude * (std::f64::consts::TAU * t_secs / period_secs).sin())
            }
        }
    }

    /// The maximum instantaneous rate the process can reach — the thinning
    /// envelope.
    pub fn peak_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_tps } => rate_tps,
            ArrivalProcess::Burst {
                base_tps,
                burst_tps,
                ..
            } => base_tps.max(burst_tps),
            ArrivalProcess::Diurnal {
                base_tps,
                amplitude,
                ..
            } => base_tps * (1.0 + amplitude),
        }
    }

    /// The mean arrival rate over one full cycle, in transactions per
    /// second (for a homogeneous process, the rate itself).
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_tps } => rate_tps,
            ArrivalProcess::Burst {
                base_tps,
                burst_tps,
                burst_fraction,
                ..
            } => burst_tps * burst_fraction + base_tps * (1.0 - burst_fraction),
            // The sine integrates to zero over a full period.
            ArrivalProcess::Diurnal { base_tps, .. } => base_tps,
        }
    }

    /// Draw the next arrival strictly after `after_secs` by thinning: step
    /// forward with exponential gaps at the peak rate and accept each
    /// candidate with probability `rate_at(t) / peak`.  Deterministic given
    /// the RNG state; consumes RNG draws independently of engine speed.
    ///
    /// The returned time is *strictly* greater than `after_secs`: the gap
    /// mapping never yields zero (see `exponential_gap`), and adding a
    /// sub-ulp gap that would vanish in the `f64` addition instead advances
    /// to the next representable instant.
    pub fn next_arrival_secs(&self, after_secs: f64, rng: &mut SmallRng) -> f64 {
        let peak = self.peak_rate();
        let homogeneous = matches!(self, ArrivalProcess::Poisson { .. });
        let mut t = after_secs;
        loop {
            let u: f64 = rng.gen_range(0.0..1.0);
            let candidate = t + exponential_gap(u, peak);
            t = if candidate > t { candidate } else { next_up(t) };
            if homogeneous {
                return t;
            }
            let accept: f64 = rng.gen_range(0.0..1.0);
            if accept * peak <= self.rate_at(t) {
                return t;
            }
        }
    }
}

/// Map a uniform draw `u ∈ [0, 1)` to a strictly positive exponential
/// inter-arrival gap with mean `1/peak` seconds.
///
/// The natural inversion `-ln(1 - u) / peak` is finite for every `u` the
/// generator can produce (flipping to `1 - u ∈ (0, 1]` keeps `ln` off the
/// `ln(0)` pole) — but at `u = 0.0` exactly it returns a *zero* gap,
/// which broke `next_arrival_secs`'s strictly-after contract.  That one
/// measure-zero input is remapped to the smallest nonzero draw the
/// 53-bit generator can produce (`2⁻⁵³`), so the gap distribution is
/// unchanged everywhere else and every committed experiment reproduces
/// bit-identically.
fn exponential_gap(u: f64, peak: f64) -> f64 {
    // The smallest nonzero value of a 53-bit uniform draw.
    const MIN_UNIFORM: f64 = 1.0 / (1u64 << 53) as f64;
    let u = if u > 0.0 { u } else { MIN_UNIFORM };
    -(1.0 - u).ln() / peak
}

/// The next representable `f64` above a non-negative finite `t` (virtual
/// times are non-negative, so incrementing the bit pattern suffices;
/// `next_up(0.0)` is the smallest positive subnormal).
fn next_up(t: f64) -> f64 {
    debug_assert!(t >= 0.0 && t.is_finite());
    f64::from_bits(t.to_bits() + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sample_count(p: &ArrivalProcess, horizon: f64, seed: u64) -> usize {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut t = 0.0;
        let mut n = 0;
        loop {
            t = p.next_arrival_secs(t, &mut rng);
            if t >= horizon {
                return n;
            }
            n += 1;
        }
    }

    #[test]
    fn poisson_hits_its_mean_rate() {
        let p = ArrivalProcess::Poisson { rate_tps: 10_000.0 };
        let n = sample_count(&p, 1.0, 7) as f64;
        assert!(
            (n - 10_000.0).abs() < 500.0,
            "1s at 10k tps produced {n} arrivals"
        );
    }

    #[test]
    fn modulated_processes_hit_their_cycle_mean() {
        let burst = ArrivalProcess::Burst {
            base_tps: 2_000.0,
            burst_tps: 20_000.0,
            period_secs: 0.1,
            burst_fraction: 0.25,
        };
        let diurnal = ArrivalProcess::Diurnal {
            base_tps: 8_000.0,
            amplitude: 0.9,
            period_secs: 0.2,
        };
        for p in [burst, diurnal] {
            let n = sample_count(&p, 1.0, 11) as f64;
            let mean = p.mean_rate();
            assert!(
                (n - mean).abs() < 0.1 * mean,
                "{p:?}: {n} arrivals over 1s, cycle mean is {mean}"
            );
        }
    }

    #[test]
    fn arrivals_are_deterministic_and_strictly_increasing() {
        let p = ArrivalProcess::Burst {
            base_tps: 1_000.0,
            burst_tps: 5_000.0,
            period_secs: 0.05,
            burst_fraction: 0.2,
        };
        let draw = || {
            let mut rng = SmallRng::seed_from_u64(3);
            let mut t = 0.0;
            (0..200)
                .map(|_| {
                    t = p.next_arrival_secs(t, &mut rng);
                    t
                })
                .collect::<Vec<f64>>()
        };
        let a = draw();
        let b = draw();
        assert_eq!(a, b, "same seed must give the same arrival sequence");
        assert!(a.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn gap_is_strictly_positive_even_for_a_zero_draw() {
        // Regression: `gen_range(0.0..1.0)` *can* yield exactly 0.0 (one
        // u64 pattern in 2⁵³), and the raw inversion -ln(1 - 0)/peak gave
        // a zero-length gap, violating the strictly-after contract the
        // strictly-increasing test above asserts.
        for peak in [1.0, 1e3, 1e6] {
            assert!(
                exponential_gap(0.0, peak) > 0.0,
                "zero draw must still give a positive gap at peak {peak}"
            );
            // And the remap only touches u == 0.0: the smallest real draw
            // maps exactly where it always did.
            let min_u = 1.0 / (1u64 << 53) as f64;
            assert_eq!(exponential_gap(0.0, peak), exponential_gap(min_u, peak));
            assert!(exponential_gap(0.5, peak) > exponential_gap(min_u, peak));
        }
    }

    #[test]
    fn arrivals_stay_strictly_after_even_when_gaps_underflow() {
        // At a huge `after_secs` every realistic gap is below one ulp, so
        // naive addition returns `after_secs` unchanged; the guard must
        // advance to the next representable instant instead.
        let p = ArrivalProcess::Poisson { rate_tps: 50_000.0 };
        let mut rng = SmallRng::seed_from_u64(9);
        let after = 1e18;
        for _ in 0..100 {
            let t = p.next_arrival_secs(after, &mut rng);
            assert!(t > after, "arrival {t} not strictly after {after}");
        }
        // The inhomogeneous (thinning) path takes the same guard.
        let b = ArrivalProcess::Burst {
            base_tps: 1_000.0,
            burst_tps: 5_000.0,
            period_secs: 0.05,
            burst_fraction: 0.2,
        };
        let t = b.next_arrival_secs(after, &mut rng);
        assert!(t > after);
    }

    #[test]
    fn burst_rate_switches_within_each_period() {
        let p = ArrivalProcess::Burst {
            base_tps: 100.0,
            burst_tps: 900.0,
            period_secs: 1.0,
            burst_fraction: 0.3,
        };
        assert_eq!(p.rate_at(0.0), 900.0);
        assert_eq!(p.rate_at(0.29), 900.0);
        assert_eq!(p.rate_at(0.31), 100.0);
        assert_eq!(p.rate_at(1.05), 900.0);
        assert_eq!(p.peak_rate(), 900.0);
    }

    #[test]
    fn diurnal_rate_stays_positive_and_peaks_correctly() {
        let p = ArrivalProcess::Diurnal {
            base_tps: 1_000.0,
            amplitude: 0.8,
            period_secs: 1.0,
        };
        for i in 0..100 {
            let r = p.rate_at(i as f64 * 0.01);
            assert!(r > 0.0 && r <= p.peak_rate() + 1e-9);
        }
        assert!((p.peak_rate() - 1_800.0).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_malformed_processes() {
        assert!(ArrivalProcess::Poisson { rate_tps: 100.0 }
            .validate()
            .is_ok());
        assert!(ArrivalProcess::Poisson { rate_tps: 0.0 }
            .validate()
            .is_err());
        assert!(ArrivalProcess::Poisson { rate_tps: f64::NAN }
            .validate()
            .is_err());
        assert!(ArrivalProcess::Poisson {
            rate_tps: f64::INFINITY
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::Burst {
            base_tps: 10.0,
            burst_tps: 100.0,
            period_secs: 1.0,
            burst_fraction: 1.0,
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::Burst {
            base_tps: 10.0,
            burst_tps: -5.0,
            period_secs: 1.0,
            burst_fraction: 0.5,
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::Diurnal {
            base_tps: 10.0,
            amplitude: 1.0,
            period_secs: 1.0,
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::Diurnal {
            base_tps: 10.0,
            amplitude: 0.0,
            period_secs: 1.0,
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn processes_round_trip_through_json() {
        for p in [
            ArrivalProcess::Poisson { rate_tps: 1_234.5 },
            ArrivalProcess::Burst {
                base_tps: 10.0,
                burst_tps: 100.0,
                period_secs: 0.5,
                burst_fraction: 0.125,
            },
            ArrivalProcess::Diurnal {
                base_tps: 42.0,
                amplitude: 0.5,
                period_secs: 2.0,
            },
        ] {
            let text = serde::json::to_string(&p);
            let back: ArrivalProcess = serde::json::from_str(&text).unwrap();
            assert_eq!(back, p);
        }
    }
}
