//! Partition worker bookkeeping.
//!
//! In the data-oriented execution model every logical partition is served by
//! exactly one worker thread bound to one core.  In the virtual-time
//! simulation a worker is represented by its core and the time until which
//! it is busy: actions routed to a worker queue behind its previous work.
//! This is what makes oversaturation visible — when the naive partitioning
//! scheme puts one partition of *every* table on each core (paper Figure 6),
//! the per-core worker becomes the bottleneck and throughput halves.

use atrapos_numa::{CoreId, Cycles, Topology};
use serde::{Deserialize, Serialize};

/// The set of partition workers, one per (active) core that hosts at least
/// one partition.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WorkerPool {
    /// `busy_until[core]`: virtual time until which the worker bound to that
    /// core is occupied.
    busy_until: Vec<Cycles>,
    /// Cumulative busy cycles per core (utilization accounting).
    busy_cycles: Vec<Cycles>,
    /// Actions executed per core.
    actions: Vec<u64>,
}

impl WorkerPool {
    /// A pool with one (idle) worker slot per core of the machine.
    pub fn new(topo: &Topology) -> Self {
        let n = topo.num_cores();
        Self {
            busy_until: vec![0; n],
            busy_cycles: vec![0; n],
            actions: vec![0; n],
        }
    }

    /// Earliest time at or after `at` when the worker on `core` can start a
    /// new action.
    pub fn available_at(&self, core: CoreId, at: Cycles) -> Cycles {
        self.busy_until[core.index()].max(at)
    }

    /// Record that the worker on `core` executed an action from `start` to
    /// `end`.
    pub fn occupy(&mut self, core: CoreId, start: Cycles, end: Cycles) {
        debug_assert!(end >= start);
        let slot = &mut self.busy_until[core.index()];
        *slot = (*slot).max(end);
        self.busy_cycles[core.index()] += end - start;
        self.actions[core.index()] += 1;
    }

    /// Push every worker's availability forward to at least `t` (used when
    /// the system pauses for repartitioning).
    pub fn pause_all_until(&mut self, t: Cycles) {
        for b in &mut self.busy_until {
            *b = (*b).max(t);
        }
    }

    /// Cumulative busy cycles of the worker on `core`.
    pub fn busy_cycles(&self, core: CoreId) -> Cycles {
        self.busy_cycles[core.index()]
    }

    /// Actions executed by the worker on `core`.
    pub fn actions(&self, core: CoreId) -> u64 {
        self.actions[core.index()]
    }

    /// Utilization of each core over an elapsed window.
    pub fn utilization(&self, elapsed: Cycles) -> Vec<f64> {
        if elapsed == 0 {
            return vec![0.0; self.busy_cycles.len()];
        }
        self.busy_cycles
            .iter()
            .map(|&b| b as f64 / elapsed as f64)
            .collect()
    }

    /// Reset utilization counters (busy-until times are preserved).
    pub fn reset_counters(&mut self) {
        self.busy_cycles.iter_mut().for_each(|b| *b = 0);
        self.actions.iter_mut().for_each(|a| *a = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_queue_back_to_back() {
        let topo = Topology::multisocket(1, 2);
        let mut pool = WorkerPool::new(&topo);
        assert_eq!(pool.available_at(CoreId(0), 100), 100);
        pool.occupy(CoreId(0), 100, 600);
        // The next action queued at t=200 cannot start before 600.
        assert_eq!(pool.available_at(CoreId(0), 200), 600);
        // A different core is unaffected.
        assert_eq!(pool.available_at(CoreId(1), 200), 200);
        assert_eq!(pool.busy_cycles(CoreId(0)), 500);
        assert_eq!(pool.actions(CoreId(0)), 1);
    }

    #[test]
    fn pause_pushes_all_workers_forward() {
        let topo = Topology::multisocket(1, 2);
        let mut pool = WorkerPool::new(&topo);
        pool.occupy(CoreId(0), 0, 100);
        pool.pause_all_until(5_000);
        assert_eq!(pool.available_at(CoreId(0), 0), 5_000);
        assert_eq!(pool.available_at(CoreId(1), 0), 5_000);
    }

    #[test]
    fn utilization_is_busy_over_elapsed() {
        let topo = Topology::multisocket(1, 2);
        let mut pool = WorkerPool::new(&topo);
        pool.occupy(CoreId(0), 0, 500);
        pool.occupy(CoreId(1), 0, 250);
        let u = pool.utilization(1000);
        assert!((u[0] - 0.5).abs() < 1e-12);
        assert!((u[1] - 0.25).abs() < 1e-12);
        pool.reset_counters();
        assert_eq!(pool.busy_cycles(CoreId(0)), 0);
    }
}
