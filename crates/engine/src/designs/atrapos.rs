//! The ATraPos design (and, with its features turned off, the PLP baseline).
//!
//! ATraPos is a physiologically partitioned shared-everything system built on
//! the data-oriented execution model: every table partition is owned by one
//! worker thread bound to one core, transactions are decomposed into actions
//! routed to the owning workers, and phases of actions meet at
//! synchronization points.  On top of that execution model ATraPos adds
//! (paper §IV–V):
//!
//! 1. **NUMA-aware internal structures** — per-socket transaction lists,
//!    per-socket state read/write locks, per-socket log buffers (the
//!    `numa_aware_internals` switch; turning it off yields the PLP baseline
//!    with its centralized structures).
//! 2. **Workload- and hardware-aware partitioning and placement** — the
//!    partitioning scheme comes from the `atrapos-core` cost model and
//!    search instead of the naive one-partition-per-core rule.
//! 3. **Lightweight monitoring and adaptive repartitioning** — per
//!    sub-partition counters feed the adaptive controller, which may decide
//!    to repartition at a monitoring-interval boundary; repartitioning
//!    pauses regular execution while the splits/merges run.

use crate::action::{TransactionSpec, TxnOutcome};
use crate::designs::common::{
    acquire_action_locks, log_action, storage_op, sync_point, BEGIN_INSTRUCTIONS,
    COMMIT_INSTRUCTIONS,
};
use crate::designs::{DesignStats, IntervalOutcome, SystemDesign};
use crate::workers::WorkerPool;
use crate::workload::{populate_all, Workload};
use atrapos_core::{
    apply_plan, AdaptationOutcome, AdaptiveController, ControllerConfig, Monitor,
    PartitioningScheme, SubPartitionId,
};
use atrapos_numa::{micros_to_cycles, Component, CoreId, Cycles, Machine, SocketId, Topology};
use atrapos_storage::{
    Database, LockManager, LogManager, LogRecordKind, StateRwLock, Table, TableId, Txn, TxnId,
    TxnList,
};

/// Configuration of the partitioned shared-everything engine.
///
/// Serializable so that a [`crate::designs::spec::DesignSpec`] — and
/// therefore a whole experiment — is plain data.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct AtraposConfig {
    /// Partition the transaction list, state locks, and log per socket
    /// (true for ATraPos, false for the PLP baseline).
    pub numa_aware_internals: bool,
    /// Enable the lightweight workload monitoring.
    pub monitoring: bool,
    /// Enable adaptive repartitioning (requires monitoring).
    pub adaptive: bool,
    /// Sub-partitions per partition used when building the naive scheme
    /// (10 in the paper).
    pub sub_per_partition: usize,
    /// Extra scheduling overhead per action, as a fraction of the action's
    /// cost, for every additional partition hosted on the same core
    /// (models the oversaturation of one-partition-per-table-per-core
    /// schemes, paper Figure 6).
    pub oversubscription_penalty: f64,
    /// Start from this scheme instead of the naive one.
    pub initial_scheme: Option<PartitioningScheme>,
    /// Adaptive-controller parameters.
    pub controller: ControllerConfig,
    /// Virtual pause charged per repartitioning action, in microseconds
    /// (Figure 9 measures ~1–2 ms per action).
    pub repartition_pause_per_action_us: f64,
}

impl Default for AtraposConfig {
    fn default() -> Self {
        Self {
            numa_aware_internals: true,
            monitoring: true,
            adaptive: true,
            sub_per_partition: 10,
            oversubscription_penalty: 0.35,
            initial_scheme: None,
            controller: ControllerConfig::default(),
            repartition_pause_per_action_us: 1_500.0,
        }
    }
}

impl AtraposConfig {
    /// The configuration corresponding to the PLP baseline: naive
    /// partitioning, centralized internal structures, no monitoring, no
    /// adaptation.
    pub fn plp_baseline() -> Self {
        Self {
            numa_aware_internals: false,
            monitoring: false,
            adaptive: false,
            ..Self::default()
        }
    }

    /// A static ATraPos (NUMA-aware structures, but no monitoring or
    /// adaptation) — the "Static" baseline of Figures 10–13.
    pub fn static_atrapos() -> Self {
        Self {
            monitoring: false,
            adaptive: false,
            ..Self::default()
        }
    }
}

/// The partitioned shared-everything engine (ATraPos, and PLP when its
/// features are disabled).
pub struct AtraposDesign {
    name: String,
    config: AtraposConfig,
    db: Database,
    scheme: PartitioningScheme,
    controller: AdaptiveController,
    monitor: Monitor,
    /// Partition-local lock tables, indexed `[table slot][partition]` in
    /// scheme order (rebuilt on repartition).
    partition_locks: Vec<Vec<LockManager>>,
    /// Dense map from `TableId` to its slot in `scheme.tables()` /
    /// `partition_locks` (rebuilt on repartition), replacing the
    /// per-action linear scheme scan and hash-map lookups of the routing
    /// path.
    table_slots: Vec<usize>,
    log: LogManager,
    txn_list: TxnList,
    state_lock: StateRwLock,
    workers: WorkerPool,
    partitions_per_core: Vec<usize>,
    next_txn: u64,
    aborted: u64,
    /// Number of repartitionings performed so far.
    pub repartitions: u64,
    /// Pending monitoring sync observations waiting for a context to be
    /// charged to.
    pending_syncs: Vec<(SubPartitionId, SubPartitionId, u64)>,
    /// Reusable per-action transaction descriptor (partition-local locks
    /// are acquired and released within one action, so one descriptor
    /// serves every action without allocating).
    action_txn: Txn,
    /// Scratch: sockets that participated in the current phase.
    phase_sockets: Vec<SocketId>,
    /// Scratch: sockets of the previous phase (sync-point participants).
    prev_sockets: Vec<SocketId>,
}

impl AtraposDesign {
    /// Build the design for `machine`, physically partitioning and
    /// populating the workload's tables according to the initial scheme.
    pub fn new(machine: &Machine, workload: &dyn Workload, config: AtraposConfig) -> Self {
        Self::with_name("atrapos", machine, workload, config)
    }

    /// Like [`AtraposDesign::new`] with an explicit display name (used by
    /// the PLP wrapper and the Figure 6 placement variants).
    pub fn with_name(
        name: &str,
        machine: &Machine,
        workload: &dyn Workload,
        config: AtraposConfig,
    ) -> Self {
        let topo = &machine.topology;
        let scheme = config.initial_scheme.clone().unwrap_or_else(|| {
            PartitioningScheme::naive(&workload.table_domains(), topo, config.sub_per_partition)
        });
        let db = Self::build_database(topo, workload, &scheme);
        let (table_slots, partition_locks) = Self::build_routing(topo, &scheme);
        let partitions_per_core = scheme.partitions_per_core(topo);
        let n_sockets = topo.num_sockets();
        let (log, txn_list, state_lock) = if config.numa_aware_internals {
            (
                LogManager::per_socket(n_sockets),
                TxnList::per_socket(n_sockets),
                StateRwLock::per_socket("volume", n_sockets),
            )
        } else {
            (
                LogManager::centralized(n_sockets),
                TxnList::centralized(n_sockets),
                StateRwLock::centralized("volume", n_sockets),
            )
        };
        let controller = AdaptiveController::new(scheme.clone(), config.controller.clone());
        let monitor = Monitor::new(config.monitoring);
        Self {
            name: name.to_string(),
            config,
            db,
            scheme,
            controller,
            monitor,
            partition_locks,
            table_slots,
            log,
            txn_list,
            state_lock,
            workers: WorkerPool::new(topo),
            partitions_per_core,
            next_txn: 1,
            aborted: 0,
            repartitions: 0,
            pending_syncs: Vec::new(),
            action_txn: Txn::begin(TxnId(0)),
            phase_sockets: Vec::new(),
            prev_sockets: Vec::new(),
        }
    }

    fn build_database(
        topo: &Topology,
        workload: &dyn Workload,
        scheme: &PartitioningScheme,
    ) -> Database {
        let mut db = Database::new();
        for spec in workload.tables() {
            let t = scheme.table(spec.id);
            // Narrow key domains (e.g. TPC-C warehouse ids) can yield fewer
            // distinct boundary keys than logical partitions; the physical
            // multi-rooted B-tree only keeps the distinct ones (several
            // logical partitions then share a physical subtree, which is
            // harmless because routing goes through the scheme).
            let mut boundaries: Vec<atrapos_storage::Key> = Vec::new();
            let mut nodes: Vec<SocketId> = vec![topo.socket_of(t.partitions[0].core)];
            for (i, b) in t.boundary_keys().into_iter().enumerate() {
                if boundaries.last().is_none_or(|last| *last < b) {
                    boundaries.push(b);
                    nodes.push(topo.socket_of(t.partitions[i + 1].core));
                }
            }
            db.add_table(Table::range_partitioned(
                spec.id,
                spec.schema.clone(),
                boundaries,
                nodes,
            ));
        }
        populate_all(workload, &mut db);
        db
    }

    /// Build the dense routing structures for `scheme`: the
    /// `TableId → slot` map and the per-slot, per-partition lock tables.
    /// Called at construction and after every repartitioning — the hot
    /// path then routes with two array indexings instead of a linear
    /// table scan plus two hash-map probes per action.
    fn build_routing(
        topo: &Topology,
        scheme: &PartitioningScheme,
    ) -> (Vec<usize>, Vec<Vec<LockManager>>) {
        let max_id = scheme
            .tables()
            .iter()
            .map(|t| t.table.0 as usize)
            .max()
            .unwrap_or(0);
        let mut slots = vec![usize::MAX; max_id + 1];
        let mut locks = Vec::with_capacity(scheme.tables().len());
        for (i, t) in scheme.tables().iter().enumerate() {
            slots[t.table.0 as usize] = i;
            locks.push(
                t.partitions
                    .iter()
                    .map(|p| LockManager::partition_local(topo.socket_of(p.core)))
                    .collect(),
            );
        }
        (slots, locks)
    }

    /// Slot of `table` in the routing structures.
    #[inline]
    fn table_slot(&self, table: TableId) -> usize {
        let slot = self
            .table_slots
            .get(table.0 as usize)
            .copied()
            .unwrap_or(usize::MAX);
        assert!(slot != usize::MAX, "table {table} not in scheme");
        slot
    }

    /// The partitioning scheme currently in force.
    pub fn scheme(&self) -> &PartitioningScheme {
        &self.scheme
    }

    /// The database (for consistency checks in tests and benches).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Transactions aborted because of storage errors.
    pub fn aborted(&self) -> u64 {
        self.aborted
    }

    /// If `core`'s socket failed, reroute its work to the corresponding core
    /// of the first active socket (the paper's static baseline overloads one
    /// remaining processor after a failure, Figure 12).
    fn effective_core(topo: &Topology, core: CoreId) -> CoreId {
        let socket = topo.socket_of(core);
        if topo.is_active(socket) {
            return core;
        }
        let fallback_socket = topo.active_sockets()[0];
        let within = topo
            .cores_of(socket)
            .iter()
            .position(|c| *c == core)
            .unwrap_or(0);
        let fallback_cores = topo.cores_of(fallback_socket);
        fallback_cores[within % fallback_cores.len()]
    }

    fn flush_pending_syncs(&mut self, ctx: &mut atrapos_numa::SimCtx<'_>) {
        // Drain in place: the buffer keeps its capacity across
        // transactions instead of reallocating per commit.
        let Self {
            pending_syncs,
            monitor,
            ..
        } = self;
        for (a, b, bytes) in pending_syncs.drain(..) {
            monitor.record_sync(ctx, a, b, bytes);
        }
    }
}

impl SystemDesign for AtraposDesign {
    fn name(&self) -> &str {
        &self.name
    }

    // Per-transaction path: scratch state (`phase_sockets`, `prev_sockets`,
    // `pending_syncs`, `action_txn`) is reused across calls, so a steady
    // run allocates nothing here.
    // lint: hot-path
    fn execute(
        &mut self,
        machine: &mut Machine,
        spec: &TransactionSpec,
        _client: CoreId,
        start: Cycles,
    ) -> TxnOutcome {
        let txn_id = TxnId(self.next_txn);
        self.next_txn += 1;
        let txn = Txn::begin(txn_id);
        let mut failed = false;
        let mut phase_start = start;
        let mut prev_sync_bytes = 0u64;
        let mut first_action_of_txn = true;
        let mut last_core = None;
        self.prev_sockets.clear();

        for phase in &spec.phases {
            if failed {
                break;
            }
            let mut phase_end = phase_start;
            self.phase_sockets.clear();
            let mut first_sub: Option<SubPartitionId> = None;
            for (ai, action) in phase.actions.iter().enumerate() {
                let table = action.op.table();
                let head = action.op.routing_key_head();
                let slot = self.table_slot(table);
                let tpart = &self.scheme.tables()[slot];
                let pidx = tpart.partition_of_key(head);
                let core = Self::effective_core(&machine.topology, tpart.partitions[pidx].core);
                let sub = SubPartitionId::new(
                    table,
                    tpart
                        .domain
                        .sub_partition_of(head, tpart.num_sub_partitions),
                );
                let avail = self.workers.available_at(core, phase_start);
                let mut actx = machine.ctx(core, avail);
                // The first action of the transaction performs the begin
                // work and registers the transaction.
                if first_action_of_txn && ai == 0 {
                    actx.work(Component::XctManagement, BEGIN_INSTRUCTIONS);
                    self.state_lock.read_acquire(&mut actx);
                    self.txn_list.add(&mut actx, txn_id);
                    first_action_of_txn = false;
                }
                // The first action of a later phase receives the data from
                // the previous phase's synchronization point.
                if ai == 0 && !self.prev_sockets.is_empty() {
                    sync_point(&mut actx, &self.prev_sockets, prev_sync_bytes);
                }
                // Partition-local locking: owned by this worker only, so the
                // acquisition is local and conflict-free; conflicts on hot
                // keys surface as worker-queue serialization instead.  The
                // per-action descriptor is reused across actions, so lock
                // bookkeeping allocates nothing.
                self.action_txn.reset(txn_id);
                let lm = &mut self.partition_locks[slot][pidx];
                acquire_action_locks(&mut actx, lm, &mut self.action_txn, action);
                let work_begin = actx.now();
                match storage_op(&mut actx, &mut self.db, action) {
                    Ok(bytes) => {
                        if action.op.is_write() {
                            log_action(&mut actx, &mut self.log, &txn, action, bytes);
                        }
                    }
                    Err(_) => failed = true,
                }
                let lm = &mut self.partition_locks[slot][pidx];
                lm.release_all(&mut actx, &mut self.action_txn);
                let action_cost = actx.now() - work_begin;
                // Oversubscription: a core hosting several partitions (and
                // thus several worker threads) pays scheduling and cache
                // interference overhead per action.
                let extra_partitions = self.partitions_per_core[core.index()].saturating_sub(1);
                if extra_partitions > 0 && self.config.oversubscription_penalty > 0.0 {
                    let penalty = (action_cost as f64
                        * self.config.oversubscription_penalty
                        * extra_partitions as f64) as Cycles;
                    actx.stall(Component::XctManagement, penalty);
                }
                // Monitoring.
                if self.monitor.is_enabled() {
                    let observed = (actx.now() - avail) as f64;
                    self.monitor.record_action(&mut actx, sub, observed);
                }
                match first_sub {
                    None => first_sub = Some(sub),
                    Some(f) if self.monitor.is_enabled() => {
                        self.pending_syncs.push((f, sub, phase.sync_bytes));
                    }
                    _ => {}
                }
                self.workers.occupy(core, avail, actx.now());
                phase_end = phase_end.max(actx.now());
                last_core = Some(core);
                // Committing each action's tally immediately (instead of
                // collecting them in a per-transaction vector) keeps the
                // loop allocation-free; the machine counters are additive,
                // so commit order does not affect any observable.
                let tally = actx.finish();
                machine.commit(core, &tally);
                self.phase_sockets.push(machine.topology.socket_of(core));
                if failed {
                    break;
                }
            }
            // The phase's synchronization point: everyone waits for the
            // slowest participant.
            phase_start = phase_end;
            std::mem::swap(&mut self.prev_sockets, &mut self.phase_sockets);
            prev_sync_bytes = phase.sync_bytes;
        }

        // Commit (or abort) on the worker that executed the last action.
        let commit_core = Self::effective_core(
            &machine.topology,
            last_core.unwrap_or_else(|| machine.topology.active_cores()[0]),
        );
        let mut cctx = machine.ctx(commit_core, phase_start);
        // The commit joins the final phase's participants.
        if self.prev_sockets.len() > 1 {
            sync_point(&mut cctx, &self.prev_sockets, prev_sync_bytes);
        }
        cctx.work(Component::XctManagement, COMMIT_INSTRUCTIONS);
        if failed {
            self.aborted += 1;
            self.log.insert(&mut cctx, txn_id, LogRecordKind::Abort, 32);
        } else if spec.is_update() {
            self.log
                .insert(&mut cctx, txn_id, LogRecordKind::Commit, 48);
            self.log.commit_flush(&mut cctx);
        }
        self.txn_list.remove(&mut cctx, txn_id);
        self.state_lock.read_release(&mut cctx);
        self.flush_pending_syncs(&mut cctx);
        self.monitor.record_transaction();
        let end = cctx.now();
        self.workers.occupy(commit_core, phase_start, end);
        let tally = cctx.finish();
        machine.commit(commit_core, &tally);
        TxnOutcome {
            committed: !failed,
            start,
            end,
        }
    }

    fn on_interval(
        &mut self,
        machine: &mut Machine,
        now: Cycles,
        interval_throughput: f64,
    ) -> IntervalOutcome {
        if !self.config.adaptive {
            // Keep memory bounded even when only monitoring is on.
            if self.monitor.is_enabled() {
                let _ = self.monitor.take_stats();
            }
            return IntervalOutcome::default();
        }
        let stats = self.monitor.take_stats();
        let outcome = self
            .controller
            .on_interval(interval_throughput, &stats, &machine.topology);
        match outcome {
            AdaptationOutcome::NoChange => IntervalOutcome {
                pause_cycles: 0,
                repartitioned: false,
                next_interval_secs: Some(self.controller.interval_secs()),
            },
            AdaptationOutcome::Repartition {
                new_scheme, plan, ..
            } => {
                let applied = apply_plan(&mut self.db, &plan, &new_scheme, &machine.topology);
                if applied.is_err() {
                    return IntervalOutcome {
                        pause_cycles: 0,
                        repartitioned: false,
                        next_interval_secs: Some(self.controller.interval_secs()),
                    };
                }
                self.scheme = new_scheme;
                let (table_slots, partition_locks) =
                    Self::build_routing(&machine.topology, &self.scheme);
                self.table_slots = table_slots;
                self.partition_locks = partition_locks;
                self.partitions_per_core = self.scheme.partitions_per_core(&machine.topology);
                self.repartitions += 1;
                let pause = micros_to_cycles(
                    self.config.repartition_pause_per_action_us * plan.actions.len().max(1) as f64,
                    machine.topology.frequency_ghz(),
                );
                self.workers.pause_all_until(now + pause);
                IntervalOutcome {
                    pause_cycles: pause,
                    repartitioned: true,
                    next_interval_secs: Some(self.controller.interval_secs()),
                }
            }
        }
    }

    fn on_topology_change(&mut self, _machine: &Machine) {
        // Nothing to do eagerly: the controller notices the failed socket at
        // the next interval because the current scheme stops satisfying its
        // placement invariants.
    }

    fn stats(&self) -> DesignStats {
        DesignStats {
            aborted: self.aborted,
            distributed_txns: None,
            instances: None,
            repartitions: Some(self.repartitions),
            partitions: Some(
                self.scheme
                    .tables()
                    .iter()
                    .map(|t| t.partitions.len())
                    .sum(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::testing::{TinyUpdateWorkload, TinyWorkload};
    use atrapos_numa::CostModel;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn machine() -> Machine {
        Machine::new(Topology::multisocket(2, 2), CostModel::westmere())
    }

    #[test]
    fn executes_read_transactions_on_partition_workers() {
        let mut m = machine();
        let mut w = TinyWorkload { rows: 1000 };
        let mut d = AtraposDesign::new(&m, &w, AtraposConfig::default());
        // Naive scheme: one partition per core.
        assert_eq!(d.scheme().table(TableId(0)).partitions.len(), 4);
        assert_eq!(d.database().table(TableId(0)).unwrap().num_partitions(), 4);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut now = 0;
        for _ in 0..100 {
            let spec = w.next_transaction(&mut rng, CoreId(0));
            let out = d.execute(&mut m, &spec, CoreId(0), now);
            assert!(out.committed);
            now = out.end;
        }
        assert_eq!(d.aborted(), 0);
        // Work is spread over the partition workers, not only core 0.
        let busy: Vec<u64> = m
            .topology
            .active_cores()
            .iter()
            .map(|c| d.workers.busy_cycles(*c))
            .collect();
        assert!(
            busy.iter().filter(|&&b| b > 0).count() >= 3,
            "busy: {busy:?}"
        );
    }

    #[test]
    fn update_transactions_log_and_apply() {
        let mut m = machine();
        let mut w = TinyUpdateWorkload { rows: 200 };
        let mut d = AtraposDesign::new(&m, &w, AtraposConfig::default());
        let mut rng = SmallRng::seed_from_u64(5);
        let mut now = 0;
        for _ in 0..40 {
            let spec = w.next_transaction(&mut rng, CoreId(0));
            let out = d.execute(&mut m, &spec, CoreId(0), now);
            assert!(out.committed);
            now = out.end;
        }
        assert_eq!(d.log.total_records(), 40 * 3);
        let total: i64 = d
            .database()
            .table(TableId(0))
            .unwrap()
            .index()
            .iter()
            .map(|(_, r)| r.get(1).as_int())
            .sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn plp_baseline_is_slower_than_atrapos_on_multisocket_reads() {
        // Same workload, same machine: the only difference is the
        // NUMA-awareness of the internal structures.
        let run = |config: AtraposConfig| {
            // 8 sockets: the centralized-structure penalty of PLP grows
            // with the number of sockets hammering the shared cache lines.
            let mut m = Machine::new(Topology::multisocket(8, 2), CostModel::westmere());
            let mut w = TinyWorkload { rows: 4000 };
            let mut d = AtraposDesign::new(&m, &w, config);
            let mut rng = SmallRng::seed_from_u64(3);
            let cores = m.topology.active_cores();
            let mut next: Vec<Cycles> = vec![0; cores.len()];
            let mut committed = 0u64;
            for i in 0..400usize {
                let c = i % cores.len();
                let spec = w.next_transaction(&mut rng, CoreId(0));
                let out = d.execute(&mut m, &spec, cores[c], next[c]);
                next[c] = out.end;
                committed += 1;
            }
            let makespan = next.iter().copied().max().unwrap() as f64;
            committed as f64 / makespan
        };
        let plp = run(AtraposConfig::plp_baseline());
        let atrapos = run(AtraposConfig::default());
        assert!(
            atrapos > plp * 1.2,
            "ATraPos {atrapos:.6} should beat PLP {plp:.6} by >20%"
        );
    }

    #[test]
    fn socket_failure_reroutes_to_a_fallback_core() {
        let mut topo = Topology::multisocket(2, 2);
        topo.fail_socket(SocketId(1));
        let core_on_failed = CoreId(3);
        let fallback = AtraposDesign::effective_core(&topo, core_on_failed);
        assert_eq!(topo.socket_of(fallback), SocketId(0));
        let core_ok = CoreId(0);
        assert_eq!(AtraposDesign::effective_core(&topo, core_ok), core_ok);
    }

    #[test]
    fn adaptive_interval_reports_next_interval() {
        let mut m = machine();
        let mut w = TinyWorkload { rows: 1000 };
        let mut d = AtraposDesign::new(&m, &w, AtraposConfig::default());
        let mut rng = SmallRng::seed_from_u64(2);
        let mut now = 0;
        for _ in 0..50 {
            let spec = w.next_transaction(&mut rng, CoreId(0));
            now = d.execute(&mut m, &spec, CoreId(0), now).end;
        }
        let out = d.on_interval(&mut m, now, 1000.0);
        assert!(!out.repartitioned);
        assert!(out.next_interval_secs.is_some());
    }
}
