//! The shared-nothing designs: one database instance per core ("extreme",
//! H-Store-style) or per socket ("coarse").
//!
//! Each instance owns a horizontal slice of every table, its own lock
//! manager, log, and transaction list, all allocated on the instance's
//! socket — single-site transactions therefore enjoy perfect locality.
//! Multi-site transactions are executed as distributed transactions: the
//! coordinating instance ships requests to the participants over
//! shared-memory channels and runs two-phase commit, holding locks until
//! the decision and writing the additional prepare/decision log records
//! (paper §III-C, Figures 3 and 4).

use crate::action::{TransactionSpec, TxnOutcome};
use crate::designs::common::{
    acquire_action_locks, log_action, storage_op, BEGIN_INSTRUCTIONS, COMMIT_INSTRUCTIONS,
};
use crate::designs::{DesignStats, SystemDesign};
use crate::workload::Workload;
use atrapos_core::{KeyDomain, ShardingPlan};
use atrapos_numa::{Component, CoreId, Cycles, Machine, SocketId, Tally, Topology};
use atrapos_storage::{
    Database, LockManager, LogManager, LogRecordKind, MemoryPolicy, StateRwLock, Table, TableId,
    TwoPhaseCommit, Txn, TxnId, TxnList,
};
use std::collections::BTreeMap;

/// Granularity of the shared-nothing deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SharedNothingGranularity {
    /// One instance per core (the paper's "extreme" configuration).
    PerCore,
    /// One instance per socket (the paper's "coarse" configuration).
    PerSocket,
}

struct Instance {
    home_core: CoreId,
    socket: SocketId,
    db: Database,
    lock_manager: LockManager,
    log: LogManager,
    txn_list: TxnList,
    state_lock: StateRwLock,
}

/// A shared-nothing deployment.
pub struct SharedNothingDesign {
    granularity: SharedNothingGranularity,
    instances: Vec<Instance>,
    domains: Vec<(TableId, KeyDomain)>,
    /// Optional custom sharding produced by the `atrapos_core::advisor`
    /// (paper §VII); when absent, keys are range-sharded over the instances.
    plan: Option<ShardingPlan>,
    locking: bool,
    two_pc: TwoPhaseCommit,
    next_txn: u64,
    aborted: u64,
    /// Number of distributed (multi-site) transactions executed.
    pub distributed_txns: u64,
}

impl SharedNothingDesign {
    /// Build a shared-nothing deployment and populate each instance with its
    /// slice of the workload's data.
    pub fn new(
        machine: &Machine,
        workload: &dyn Workload,
        granularity: SharedNothingGranularity,
    ) -> Self {
        Self::with_memory_policy(machine, workload, granularity, MemoryPolicy::Local)
    }

    /// Like [`SharedNothingDesign::new`] but with an explicit memory
    /// placement policy (the paper's §III-D experiment).
    pub fn with_memory_policy(
        machine: &Machine,
        workload: &dyn Workload,
        granularity: SharedNothingGranularity,
        policy: MemoryPolicy,
    ) -> Self {
        Self::with_routing_spec(machine, workload, granularity, policy, None)
    }

    /// Like [`SharedNothingDesign::with_memory_policy`] but routing every key
    /// through an advisor-produced [`ShardingPlan`] instead of the default
    /// range sharding (the paper's §VII coarse-grained shared-nothing
    /// extension).  The plan must have one instance per deployment instance.
    pub fn with_sharding_plan(
        machine: &Machine,
        workload: &dyn Workload,
        granularity: SharedNothingGranularity,
        plan: ShardingPlan,
    ) -> Self {
        Self::with_routing_spec(
            machine,
            workload,
            granularity,
            MemoryPolicy::Local,
            Some(plan),
        )
    }

    /// The fully general constructor [`crate::designs::spec::DesignSpec`]
    /// builds through: explicit memory policy plus an optional advisor
    /// sharding plan.
    pub fn with_routing_spec(
        machine: &Machine,
        workload: &dyn Workload,
        granularity: SharedNothingGranularity,
        policy: MemoryPolicy,
        plan: Option<ShardingPlan>,
    ) -> Self {
        let topo = &machine.topology;
        let n_sockets = topo.num_sockets();
        let homes: Vec<CoreId> = match granularity {
            SharedNothingGranularity::PerCore => topo.active_cores(),
            SharedNothingGranularity::PerSocket => topo
                .active_sockets()
                .iter()
                .map(|s| topo.cores_of(*s)[0])
                .collect(),
        };
        let domains = workload.table_domains();
        let n_instances = homes.len();
        if let Some(p) = &plan {
            assert_eq!(
                p.n_instances, n_instances,
                "the sharding plan must have one instance per deployment instance"
            );
        }
        let mut instances = Vec::with_capacity(n_instances);
        for (idx, &home_core) in homes.iter().enumerate() {
            let socket = topo.socket_of(home_core);
            let memory_node = policy.node_for(socket, topo);
            let mut db = Database::new();
            for spec in workload.tables() {
                db.add_table(Table::new(spec.id, spec.schema.clone(), memory_node));
            }
            let route = |table: TableId, key: &atrapos_storage::Key| match &plan {
                Some(p) => {
                    p.instance_of_key(table, key.head_int())
                        .min(n_instances - 1)
                        == idx
                }
                None => instance_for(&domains, n_instances, table, key.head_int()) == idx,
            };
            workload.populate(&mut db, &route);
            instances.push(Instance {
                home_core,
                socket,
                db,
                lock_manager: LockManager::partition_local(socket),
                log: LogManager::per_socket(n_sockets),
                txn_list: TxnList::per_socket(n_sockets),
                state_lock: StateRwLock::per_socket("volume", n_sockets),
            });
        }
        Self {
            granularity,
            instances,
            domains,
            plan,
            locking: true,
            two_pc: TwoPhaseCommit::default(),
            next_txn: 1,
            aborted: 0,
            distributed_txns: 0,
        }
    }

    /// Disable locking and latching (the paper does this for the extreme
    /// shared-nothing configuration on read-only workloads, where each
    /// record is only ever touched by one thread).
    pub fn with_locking(mut self, locking: bool) -> Self {
        self.locking = locking;
        self
    }

    /// Number of instances.
    pub fn num_instances(&self) -> usize {
        self.instances.len()
    }

    /// The database of instance `idx` (consistency checks in tests).
    pub fn instance_db(&self, idx: usize) -> &Database {
        &self.instances[idx].db
    }

    /// Transactions aborted due to storage errors.
    pub fn aborted(&self) -> u64 {
        self.aborted
    }

    fn instance_of_client(&self, topo: &Topology, client: CoreId) -> usize {
        match self.granularity {
            SharedNothingGranularity::PerCore => self
                .instances
                .iter()
                .position(|i| i.home_core == client)
                .unwrap_or(0),
            SharedNothingGranularity::PerSocket => {
                let socket = topo.socket_of(client);
                self.instances
                    .iter()
                    .position(|i| i.socket == socket)
                    .unwrap_or(0)
            }
        }
    }

    fn route_action(&self, table: TableId, key_head: i64) -> usize {
        match &self.plan {
            Some(p) => p
                .instance_of_key(table, key_head)
                .min(self.instances.len() - 1),
            None => instance_for(&self.domains, self.instances.len(), table, key_head),
        }
    }
}

/// Range-partition a table's key domain over `n` instances.
fn instance_for(
    domains: &[(TableId, KeyDomain)],
    n: usize,
    table: TableId,
    key_head: i64,
) -> usize {
    let domain = domains
        .iter()
        .find(|(t, _)| *t == table)
        .map(|(_, d)| *d)
        .unwrap_or(KeyDomain::new(0, 1));
    let clamped = key_head.clamp(domain.lo, domain.hi - 1);
    let idx = (clamped - domain.lo) as i128 * n as i128 / domain.width() as i128;
    (idx as usize).min(n - 1)
}

impl SystemDesign for SharedNothingDesign {
    fn stats(&self) -> DesignStats {
        DesignStats {
            aborted: self.aborted,
            distributed_txns: Some(self.distributed_txns),
            instances: Some(self.instances.len()),
            repartitions: None,
            partitions: None,
        }
    }

    fn name(&self) -> &str {
        match self.granularity {
            SharedNothingGranularity::PerCore => "shared-nothing (per core)",
            SharedNothingGranularity::PerSocket => "shared-nothing (per socket)",
        }
    }

    // Per-transaction path.  The single-site fast path is allocation-free;
    // the waived allocations below only run for distributed transactions
    // (the 2PC slow path, a few percent of any sane workload).
    // lint: hot-path
    fn execute(
        &mut self,
        machine: &mut Machine,
        spec: &TransactionSpec,
        client: CoreId,
        start: Cycles,
    ) -> TxnOutcome {
        // Transaction routing (H-Store style): if every action of the
        // transaction maps to one single instance, the whole transaction is
        // forwarded to that instance and executed there as a local,
        // single-site transaction; only transactions whose data genuinely
        // spans instances become distributed transactions (paper §III-C).
        let client_instance = self.instance_of_client(&machine.topology, client);
        let mut single_target: Option<usize> = None;
        let mut spans_instances = false;
        for action in spec.phases.iter().flat_map(|p| &p.actions) {
            let target = self.route_action(action.op.table(), action.op.routing_key_head());
            match single_target {
                None => single_target = Some(target),
                Some(t) if t != target => {
                    spans_instances = true;
                    break;
                }
                Some(_) => {}
            }
        }
        let home = match single_target {
            Some(t) if !spans_instances => t,
            _ => client_instance,
        };
        let txn_id = TxnId(self.next_txn);
        self.next_txn += 1;
        // One transaction branch per participating instance (the coordinator
        // keeps a descriptor in each so locks can be released there).  A
        // BTreeMap so that participant iteration order — and therefore the
        // simulated two-phase-commit message sequence — is deterministic
        // across process runs (a HashMap here made distributed-transaction
        // timings depend on the process's hash seed).
        let mut branches: BTreeMap<usize, Txn> = BTreeMap::new();
        branches.insert(home, Txn::begin(txn_id));

        let mut ctx = machine.ctx(client, start);
        // lint: allow(hot-path-alloc) — 2PC slow path only; empty Vec::new does not touch the heap until a remote participant appears
        let mut remote_tallies: Vec<(CoreId, Tally)> = Vec::new();
        ctx.work(Component::XctManagement, BEGIN_INSTRUCTIONS);
        if home != client_instance {
            // Ship the request to the owning instance over a shared-memory
            // channel (the forwarding cost of single-site remote execution).
            let target_socket = self.instances[home].socket;
            ctx.send_message(
                Component::Communication,
                target_socket,
                self.two_pc.message_bytes,
            );
        }
        {
            let inst = &mut self.instances[home];
            if self.locking {
                inst.state_lock.read_acquire(&mut ctx);
            }
            inst.txn_list.add(&mut ctx, txn_id);
        }

        let mut failed = false;
        'phases: for phase in &spec.phases {
            for action in &phase.actions {
                let target = self.route_action(action.op.table(), action.op.routing_key_head());
                if target == home {
                    let inst = &mut self.instances[home];
                    let txn = branches.get_mut(&home).expect("home branch exists");
                    if self.locking {
                        acquire_action_locks(&mut ctx, &mut inst.lock_manager, txn, action);
                    }
                    match storage_op(&mut ctx, &mut inst.db, action) {
                        Ok(bytes) => {
                            if action.op.is_write() {
                                log_action(&mut ctx, &mut inst.log, txn, action, bytes);
                            }
                        }
                        Err(_) => {
                            failed = true;
                            break 'phases;
                        }
                    }
                } else {
                    // Ship the request to the participant over a
                    // shared-memory channel and execute it there.
                    let participant_socket = self.instances[target].socket;
                    ctx.send_message(
                        Component::Communication,
                        participant_socket,
                        self.two_pc.message_bytes,
                    );
                    let inst = &mut self.instances[target];
                    let txn = branches.entry(target).or_insert_with(|| Txn::begin(txn_id));
                    txn.distributed = true;
                    let mut rctx = machine.ctx(inst.home_core, ctx.now());
                    rctx.work(Component::XctManagement, BEGIN_INSTRUCTIONS / 2);
                    if self.locking {
                        acquire_action_locks(&mut rctx, &mut inst.lock_manager, txn, action);
                    }
                    let result = storage_op(&mut rctx, &mut inst.db, action);
                    match result {
                        Ok(bytes) => {
                            if action.op.is_write() {
                                log_action(&mut rctx, &mut inst.log, txn, action, bytes);
                            }
                        }
                        Err(_) => failed = true,
                    }
                    let remote_done = rctx.now();
                    remote_tallies.push((inst.home_core, rctx.finish()));
                    // The coordinator waits for the participant's reply.
                    ctx.wait_until(
                        Component::Communication,
                        remote_done,
                        atrapos_numa::WaitMode::Stall,
                    );
                    ctx.send_message(
                        Component::Communication,
                        participant_socket,
                        self.two_pc.message_bytes,
                    );
                    if failed {
                        break 'phases;
                    }
                }
            }
        }

        // Commit: local transactions use the local log; multi-site
        // transactions run two-phase commit.
        ctx.work(Component::XctManagement, COMMIT_INSTRUCTIONS);
        // lint: allow(hot-path-alloc) — collects to an empty Vec for single-site txns, so the fast path never touches the heap
        let participants: Vec<usize> = branches.keys().copied().filter(|&i| i != home).collect();
        let committed = !failed;
        if participants.is_empty() {
            let inst = &mut self.instances[home];
            if spec.is_update() && committed {
                inst.log.insert(&mut ctx, txn_id, LogRecordKind::Commit, 48);
                inst.log.commit_flush(&mut ctx);
            } else if failed {
                inst.log.insert(&mut ctx, txn_id, LogRecordKind::Abort, 32);
            }
        } else {
            self.distributed_txns += 1;
            let participant_sockets: Vec<SocketId> = participants
                .iter()
                .map(|&i| self.instances[i].socket)
                // lint: allow(hot-path-alloc) — 2PC slow path only, reached by genuinely distributed transactions
                .collect();
            let abort_vote = if failed { Some(0) } else { None };
            let home_inst = &mut self.instances[home];
            self.two_pc.coordinate(
                &mut ctx,
                txn_id,
                &participant_sockets,
                &mut home_inst.log,
                abort_vote,
            );
            // Release participant-side locks (the decision message releases
            // them on each participant).
            if self.locking {
                for &p in &participants {
                    let inst = &mut self.instances[p];
                    let txn = branches.get_mut(&p).expect("branch exists");
                    inst.lock_manager.release_all(&mut ctx, txn);
                }
            }
        }
        {
            let inst = &mut self.instances[home];
            let txn = branches.get_mut(&home).expect("home branch exists");
            if self.locking {
                inst.lock_manager.release_all(&mut ctx, txn);
            }
            inst.txn_list.remove(&mut ctx, txn_id);
            if self.locking {
                inst.state_lock.read_release(&mut ctx);
            }
        }
        if failed {
            self.aborted += 1;
        }

        let end = ctx.now();
        machine.commit(client, &ctx.finish());
        for (core, tally) in remote_tallies {
            machine.commit(core, &tally);
        }
        TxnOutcome {
            committed,
            start,
            end,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, ActionOp, Phase};
    use crate::workload::testing::{TinyUpdateWorkload, TinyWorkload};
    use atrapos_numa::CostModel;
    use atrapos_storage::Key;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn machine(sockets: usize, cores: usize) -> Machine {
        Machine::new(Topology::multisocket(sockets, cores), CostModel::westmere())
    }

    #[test]
    fn data_is_sliced_across_instances() {
        let m = machine(2, 2);
        let w = TinyWorkload { rows: 400 };
        let d = SharedNothingDesign::new(&m, &w, SharedNothingGranularity::PerCore);
        assert_eq!(d.num_instances(), 4);
        let total: usize = (0..4).map(|i| d.instance_db(i).total_records()).sum();
        assert_eq!(total, 400);
        // Each instance holds a contiguous quarter.
        assert_eq!(d.instance_db(0).table(TableId(0)).unwrap().len(), 100);
        assert!(d
            .instance_db(0)
            .table(TableId(0))
            .unwrap()
            .peek(&Key::int(0))
            .is_some());
        assert!(d
            .instance_db(3)
            .table(TableId(0))
            .unwrap()
            .peek(&Key::int(399))
            .is_some());
    }

    #[test]
    fn coarse_granularity_builds_one_instance_per_socket() {
        let m = machine(4, 2);
        let w = TinyWorkload { rows: 100 };
        let d = SharedNothingDesign::new(&m, &w, SharedNothingGranularity::PerSocket);
        assert_eq!(d.num_instances(), 4);
    }

    #[test]
    fn local_transactions_commit_without_distribution() {
        let mut m = machine(2, 2);
        let mut w = TinyWorkload { rows: 400 };
        let mut d =
            SharedNothingDesign::new(&m, &w, SharedNothingGranularity::PerCore).with_locking(false);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut now = 0;
        for _ in 0..40 {
            let spec = w.next_transaction(&mut rng, CoreId(0));
            // Submit from the client that owns the key so it stays local.
            let key = spec.phases[0].actions[0].op.routing_key_head();
            let client = m.topology.active_cores()[(key as usize * 4 / 400).min(3)];
            let out = d.execute(&mut m, &spec, client, now);
            assert!(out.committed);
            now = out.end;
        }
        assert_eq!(d.distributed_txns, 0);
    }

    #[test]
    fn multi_site_updates_run_two_phase_commit_and_cost_more() {
        let mut m = machine(2, 2);
        let w = TinyUpdateWorkload { rows: 400 };
        let mut d = SharedNothingDesign::new(&m, &w, SharedNothingGranularity::PerCore);
        // A local transaction: both keys owned by instance 0 (keys 0..100).
        let local = TransactionSpec::new(
            "local",
            vec![Phase::new(vec![
                Action::new(ActionOp::Increment {
                    table: TableId(0),
                    key: Key::int(5),
                    column: 1,
                    delta: 1,
                }),
                Action::new(ActionOp::Increment {
                    table: TableId(1),
                    key: Key::int(6),
                    column: 1,
                    delta: 1,
                }),
            ])],
        );
        // A multi-site transaction: second key owned by the last instance.
        let multi = TransactionSpec::new(
            "multi",
            vec![Phase::new(vec![
                Action::new(ActionOp::Increment {
                    table: TableId(0),
                    key: Key::int(5),
                    column: 1,
                    delta: 1,
                }),
                Action::new(ActionOp::Increment {
                    table: TableId(1),
                    key: Key::int(399),
                    column: 1,
                    delta: 1,
                }),
            ])],
        );
        let client = CoreId(0);
        let lo = d.execute(&mut m, &local, client, 0);
        let mo = d.execute(&mut m, &multi, client, lo.end);
        assert!(lo.committed && mo.committed);
        assert_eq!(d.distributed_txns, 1);
        assert!(
            mo.latency() as f64 > 1.5 * lo.latency() as f64,
            "distributed {} vs local {}",
            mo.latency(),
            lo.latency()
        );
        // Both increments really happened, each on its owning instance.
        assert_eq!(
            d.instance_db(0)
                .table(TableId(1))
                .unwrap()
                .peek(&Key::int(6))
                .unwrap()
                .get(1)
                .as_int(),
            1
        );
        assert_eq!(
            d.instance_db(3)
                .table(TableId(1))
                .unwrap()
                .peek(&Key::int(399))
                .unwrap()
                .get(1)
                .as_int(),
            1
        );
    }

    #[test]
    fn sharding_plan_overrides_the_default_range_routing() {
        use atrapos_core::ShardingPlan;
        let m = machine(2, 2);
        let w = TinyWorkload { rows: 400 };
        // A plan that inverts the default ownership: the upper half of the
        // key space goes to instance 0 and the lower half to instance 1.
        let mut plan = ShardingPlan::range(&w.table_domains(), 4, 2, 2);
        plan.assign(TableId(0), 0, 1);
        plan.assign(TableId(0), 1, 1);
        plan.assign(TableId(0), 2, 0);
        plan.assign(TableId(0), 3, 0);
        let d = SharedNothingDesign::with_sharding_plan(
            &m,
            &w,
            SharedNothingGranularity::PerSocket,
            plan,
        );
        assert_eq!(d.num_instances(), 2);
        // Every row is loaded exactly once, on the instance the plan names.
        let total: usize = (0..2).map(|i| d.instance_db(i).total_records()).sum();
        assert_eq!(total, 400);
        assert!(d
            .instance_db(0)
            .table(TableId(0))
            .unwrap()
            .peek(&Key::int(399))
            .is_some());
        assert!(d
            .instance_db(1)
            .table(TableId(0))
            .unwrap()
            .peek(&Key::int(0))
            .is_some());
        assert_eq!(d.route_action(TableId(0), 0), 1);
        assert_eq!(d.route_action(TableId(0), 399), 0);
    }

    #[test]
    fn remote_memory_policy_slows_reads_down_moderately() {
        let w = TinyWorkload { rows: 800 };
        let mut throughputs = Vec::new();
        for policy in [MemoryPolicy::Local, MemoryPolicy::Remote] {
            let mut m = machine(8, 1);
            let mut wl = TinyWorkload { rows: 800 };
            let mut d = SharedNothingDesign::with_memory_policy(
                &m,
                &w,
                SharedNothingGranularity::PerSocket,
                policy,
            )
            .with_locking(false);
            let mut rng = SmallRng::seed_from_u64(9);
            let mut now = 0;
            let mut committed = 0u64;
            for _ in 0..200 {
                let spec = wl.next_transaction(&mut rng, CoreId(0));
                let key = spec.phases[0].actions[0].op.routing_key_head();
                let client = m.topology.active_cores()[(key as usize * 8 / 800).min(7)];
                let out = d.execute(&mut m, &spec, client, now);
                now = out.end;
                committed += 1;
            }
            throughputs.push(committed as f64 / now as f64);
        }
        let penalty = 1.0 - throughputs[1] / throughputs[0];
        assert!(penalty > 0.0, "remote memory should not be free");
        assert!(
            penalty < 0.25,
            "remote-memory penalty should be moderate, got {penalty}"
        );
    }
}
