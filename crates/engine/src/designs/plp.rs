//! The PLP (physiological partitioning) baseline.
//!
//! PLP is the state of the art the paper compares against: it partitions the
//! data and the lock tables per core (eliminating the centralized lock
//! manager and page latches) but keeps the remaining internal structures —
//! the list of active transactions, the state read/write locks, and the log
//! buffer — centralized, and it always uses the naive
//! one-partition-per-table-per-core scheme.  It is therefore exactly the
//! partitioned shared-everything engine of [`crate::designs::atrapos`] with
//! the ATraPos features switched off.

use crate::action::{TransactionSpec, TxnOutcome};
use crate::designs::atrapos::{AtraposConfig, AtraposDesign};
use crate::designs::{DesignStats, IntervalOutcome, SystemDesign};
use crate::workload::Workload;
use atrapos_numa::{CoreId, Cycles, Machine};

/// The PLP baseline design.
pub struct PlpDesign {
    inner: AtraposDesign,
}

impl PlpDesign {
    /// Build the PLP baseline for `machine` and `workload`.
    pub fn new(machine: &Machine, workload: &dyn Workload) -> Self {
        Self {
            inner: AtraposDesign::with_name(
                "plp",
                machine,
                workload,
                AtraposConfig::plp_baseline(),
            ),
        }
    }

    /// The underlying engine (tests, consistency checks).
    pub fn inner(&self) -> &AtraposDesign {
        &self.inner
    }
}

impl SystemDesign for PlpDesign {
    fn name(&self) -> &str {
        "plp"
    }

    fn execute(
        &mut self,
        machine: &mut Machine,
        spec: &TransactionSpec,
        client: CoreId,
        start: Cycles,
    ) -> TxnOutcome {
        self.inner.execute(machine, spec, client, start)
    }

    fn on_interval(
        &mut self,
        machine: &mut Machine,
        now: Cycles,
        interval_throughput: f64,
    ) -> IntervalOutcome {
        self.inner.on_interval(machine, now, interval_throughput)
    }

    fn stats(&self) -> DesignStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::testing::TinyWorkload;
    use atrapos_numa::{CostModel, Topology};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn plp_executes_transactions_with_naive_partitioning() {
        let mut m = Machine::new(Topology::multisocket(2, 2), CostModel::westmere());
        let mut w = TinyWorkload { rows: 400 };
        let mut d = PlpDesign::new(&m, &w);
        assert_eq!(d.name(), "plp");
        assert_eq!(
            d.inner()
                .scheme()
                .table(atrapos_storage::TableId(0))
                .partitions
                .len(),
            4
        );
        let mut rng = SmallRng::seed_from_u64(8);
        let mut now = 0;
        for _ in 0..30 {
            let spec = w.next_transaction(&mut rng, CoreId(0));
            let out = d.execute(&mut m, &spec, CoreId(1), now);
            assert!(out.committed);
            now = out.end;
        }
        // PLP never repartitions.
        let out = d.on_interval(&mut m, now, 500.0);
        assert!(!out.repartitioned);
        assert_eq!(d.inner().repartitions, 0);
    }
}
