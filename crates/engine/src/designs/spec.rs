//! Serializable design specifications.
//!
//! A [`DesignSpec`] names one of the paper's system designs together with
//! everything needed to instantiate it — as plain data, with no function
//! pointers.  Examples, tests, benchmarks, and the figure harness all build
//! designs through [`DesignSpec::build`], and because the spec derives
//! serde it can sit next to a [`crate::scenario::Scenario`] in a replay
//! file: design + timeline together describe a complete experiment.

use crate::designs::atrapos::{AtraposConfig, AtraposDesign};
use crate::designs::centralized::CentralizedDesign;
use crate::designs::plp::PlpDesign;
use crate::designs::shared_nothing::{SharedNothingDesign, SharedNothingGranularity};
use crate::designs::SystemDesign;
use crate::workload::Workload;
use atrapos_core::ShardingPlan;
use atrapos_numa::Machine;
use atrapos_storage::MemoryPolicy;
use serde::{Deserialize, Serialize};

/// Which system design to instantiate, with its full configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum DesignSpec {
    /// Centralized shared-everything (stock Shore-MT).
    Centralized,
    /// Shared-nothing at a given granularity.
    SharedNothing {
        /// One instance per core ("extreme") or per socket ("coarse").
        granularity: SharedNothingGranularity,
        /// Whether locking/latching is enabled (the paper disables it for
        /// the extreme configuration on read-only workloads).
        locking: bool,
        /// Memory-placement policy of the instances (Table I).
        memory_policy: MemoryPolicy,
        /// Optional advisor-produced sharding (§VII); `None` uses classic
        /// range sharding.  Serializable like everything else in the spec,
        /// so an advised deployment can sit in a replay file too.
        plan: Option<ShardingPlan>,
    },
    /// PLP (physiological partitioning), the state-of-the-art baseline.
    Plp,
    /// The partitioned shared-everything engine of the paper.
    Atrapos {
        /// Display name used in benchmark output ("atrapos" if `None`;
        /// the figures use "static" for the adaptation-disabled variant).
        name: Option<String>,
        /// Engine configuration.
        config: AtraposConfig,
    },
}

impl DesignSpec {
    /// ATraPos with its default configuration.
    pub fn atrapos() -> Self {
        DesignSpec::Atrapos {
            name: None,
            config: AtraposConfig::default(),
        }
    }

    /// ATraPos with an explicit configuration.
    pub fn atrapos_with(config: AtraposConfig) -> Self {
        DesignSpec::Atrapos { name: None, config }
    }

    /// A named ATraPos variant (e.g. the "static" baseline of Figures
    /// 10–13).
    pub fn atrapos_named(name: impl Into<String>, config: AtraposConfig) -> Self {
        DesignSpec::Atrapos {
            name: Some(name.into()),
            config,
        }
    }

    /// Extreme shared-nothing: one instance per core.
    pub fn extreme_shared_nothing(locking: bool) -> Self {
        DesignSpec::SharedNothing {
            granularity: SharedNothingGranularity::PerCore,
            locking,
            memory_policy: MemoryPolicy::Local,
            plan: None,
        }
    }

    /// Coarse shared-nothing: one instance per socket.
    pub fn coarse_shared_nothing() -> Self {
        DesignSpec::SharedNothing {
            granularity: SharedNothingGranularity::PerSocket,
            locking: true,
            memory_policy: MemoryPolicy::Local,
            plan: None,
        }
    }

    /// Coarse shared-nothing with an explicit memory policy and locking
    /// disabled (the §III-D memory-placement experiment, Table I).
    pub fn shared_nothing_with_memory_policy(policy: MemoryPolicy) -> Self {
        DesignSpec::SharedNothing {
            granularity: SharedNothingGranularity::PerSocket,
            locking: false,
            memory_policy: policy,
            plan: None,
        }
    }

    /// Coarse shared-nothing routing every key through an advisor-produced
    /// [`ShardingPlan`] (the §VII extension).
    pub fn shared_nothing_with_plan(plan: ShardingPlan) -> Self {
        DesignSpec::SharedNothing {
            granularity: SharedNothingGranularity::PerSocket,
            locking: true,
            memory_policy: MemoryPolicy::Local,
            plan: Some(plan),
        }
    }

    /// Short label for result tables.
    pub fn label(&self) -> &'static str {
        match self {
            DesignSpec::Centralized => "Centralized",
            DesignSpec::SharedNothing {
                granularity: SharedNothingGranularity::PerCore,
                ..
            } => "Extreme shared-nothing",
            DesignSpec::SharedNothing {
                granularity: SharedNothingGranularity::PerSocket,
                ..
            } => "Coarse shared-nothing",
            DesignSpec::Plp => "PLP",
            DesignSpec::Atrapos { name: None, .. } => "ATraPos",
            DesignSpec::Atrapos { name: Some(_), .. } => "ATraPos (custom)",
        }
    }

    /// Instantiate the design for `machine` and `workload`.
    pub fn build(&self, machine: &Machine, workload: &dyn Workload) -> Box<dyn SystemDesign> {
        match self {
            DesignSpec::Centralized => Box::new(CentralizedDesign::new(machine, workload)),
            DesignSpec::SharedNothing {
                granularity,
                locking,
                memory_policy,
                plan,
            } => Box::new(
                SharedNothingDesign::with_routing_spec(
                    machine,
                    workload,
                    *granularity,
                    *memory_policy,
                    plan.clone(),
                )
                .with_locking(*locking),
            ),
            DesignSpec::Plp => Box::new(PlpDesign::new(machine, workload)),
            DesignSpec::Atrapos { name, config } => Box::new(AtraposDesign::with_name(
                name.as_deref().unwrap_or("atrapos"),
                machine,
                workload,
                config.clone(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::testing::TinyWorkload;
    use atrapos_numa::{CoreId, CostModel, Topology};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn all_specs() -> Vec<DesignSpec> {
        vec![
            DesignSpec::Centralized,
            DesignSpec::extreme_shared_nothing(false),
            DesignSpec::coarse_shared_nothing(),
            DesignSpec::shared_nothing_with_memory_policy(MemoryPolicy::Remote),
            DesignSpec::Plp,
            DesignSpec::atrapos(),
            DesignSpec::atrapos_named("static", AtraposConfig::static_atrapos()),
        ]
    }

    #[test]
    fn every_spec_builds_and_executes() {
        for spec in all_specs() {
            let mut m = Machine::new(Topology::multisocket(2, 2), CostModel::westmere());
            let mut w = TinyWorkload { rows: 500 };
            let mut design = spec.build(&m, &w);
            let mut rng = SmallRng::seed_from_u64(1);
            let mut now = 0;
            for _ in 0..10 {
                let txn = w.next_transaction(&mut rng, CoreId(0));
                let out = design.execute(&mut m, &txn, CoreId(0), now);
                assert!(out.committed, "{} failed a read", spec.label());
                now = out.end;
            }
        }
    }

    #[test]
    fn specs_round_trip_through_serde() {
        for spec in all_specs() {
            let text = serde::json::to_string(&spec);
            let back: DesignSpec = serde::json::from_str(&text).unwrap();
            // DesignSpec has no PartialEq (AtraposConfig carries schemes);
            // byte-identical re-serialization is the round-trip check.
            assert_eq!(serde::json::to_string(&back), text);
        }
    }

    #[test]
    fn labels_distinguish_the_designs() {
        let labels: Vec<&str> = all_specs().iter().map(|s| s.label()).collect();
        assert!(labels.contains(&"Centralized"));
        assert!(labels.contains(&"Extreme shared-nothing"));
        assert!(labels.contains(&"Coarse shared-nothing"));
        assert!(labels.contains(&"PLP"));
        assert!(labels.contains(&"ATraPos"));
        assert!(labels.contains(&"ATraPos (custom)"));
    }
}
