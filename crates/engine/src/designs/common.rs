//! Helpers shared by all system designs: executing a storage operation,
//! acquiring the logical locks an action needs, and writing its log
//! records.

use crate::action::{Action, ActionOp};
use atrapos_numa::{Component, SimCtx, SocketId};
use atrapos_storage::{
    Database, LockId, LockManager, LockMode, LogManager, LogRecordKind, StorageResult, Txn, Value,
};

/// Instruction overhead charged at transaction begin (descriptor setup,
/// timestamp, statistics).
pub const BEGIN_INSTRUCTIONS: u64 = 700;
/// Instruction overhead charged at commit/abort (descriptor teardown).
pub const COMMIT_INSTRUCTIONS: u64 = 500;
/// Approximate log payload per modified row (before/after image header).
pub const LOG_BYTES_PER_ROW: u64 = 120;

/// Execute the storage part of an action against `db`, charging costs to
/// `ctx`.  Returns the approximate number of payload bytes the action
/// touched (used for synchronization-point sizing).
// Called once per action by every design's execute loop.
// lint: hot-path
pub fn storage_op(ctx: &mut SimCtx<'_>, db: &mut Database, action: &Action) -> StorageResult<u64> {
    ctx.work(Component::XctExecution, action.extra_instructions);
    match &action.op {
        ActionOp::Read { table, key } => {
            let t = db.table(*table)?;
            let rec = t.read(ctx, key)?;
            Ok(rec.size_bytes())
        }
        ActionOp::ReadRange {
            table,
            from,
            to,
            limit,
        } => {
            let t = db.table(*table)?;
            let rows = t.range_read(ctx, Some(from), Some(to), *limit);
            Ok(rows.iter().map(|r| r.size_bytes()).sum())
        }
        ActionOp::Update {
            table,
            key,
            changes,
        } => {
            let t = db.table_mut(*table)?;
            t.update(ctx, key, changes)?;
            Ok(LOG_BYTES_PER_ROW)
        }
        ActionOp::Increment {
            table,
            key,
            column,
            delta,
        } => {
            let t = db.table_mut(*table)?;
            let current = t
                .peek(key)
                .map(|r| r.get(*column).as_int())
                .unwrap_or_default();
            t.update(ctx, key, &[(*column, Value::Int(current + delta))])?;
            Ok(LOG_BYTES_PER_ROW)
        }
        ActionOp::Insert { table, record } => {
            let t = db.table_mut(*table)?;
            let bytes = record.size_bytes();
            // lint: allow(hot-path-alloc) — the table must own the inserted record; the spec keeps its copy for replay
            t.insert(ctx, record.clone())?;
            Ok(bytes.max(LOG_BYTES_PER_ROW))
        }
        ActionOp::Delete { table, key } => {
            let t = db.table_mut(*table)?;
            t.delete(ctx, key)?;
            Ok(LOG_BYTES_PER_ROW)
        }
    }
}

/// Acquire the hierarchical locks an action needs (table intention lock +
/// record lock) from `lm` on behalf of `txn`.
// Called once per action by every design's execute loop.
// lint: hot-path
pub fn acquire_action_locks(
    ctx: &mut SimCtx<'_>,
    lm: &mut LockManager,
    txn: &mut Txn,
    action: &Action,
) {
    let table = action.op.table();
    let (table_mode, record_mode) = if action.op.is_write() {
        (LockMode::IX, LockMode::X)
    } else {
        (LockMode::IS, LockMode::S)
    };
    lm.acquire(ctx, txn, LockId::Table(table), table_mode);
    let record_key = match &action.op {
        ActionOp::Read { key, .. }
        | ActionOp::Update { key, .. }
        | ActionOp::Increment { key, .. }
        // lint: allow(hot-path-alloc) — Key stores up to four ints inline; this clone copies no heap
        | ActionOp::Delete { key, .. } => Some(key.clone()),
        ActionOp::Insert { record, .. } => {
            // Lock the to-be-inserted key (next-key locking is out of scope).
            Some(atrapos_storage::Key::int(action.op.routing_key_head()))
                .filter(|_| record.arity() > 0)
        }
        ActionOp::ReadRange { .. } => None, // covered by the table lock
    };
    if let Some(key) = record_key {
        lm.acquire(ctx, txn, LockId::Record(table, key), record_mode);
    }
}

/// Write the log record for a write action.
pub fn log_action(
    ctx: &mut SimCtx<'_>,
    log: &mut LogManager,
    txn: &Txn,
    action: &Action,
    payload_bytes: u64,
) {
    let kind = match &action.op {
        ActionOp::Insert { .. } => LogRecordKind::Insert,
        ActionOp::Delete { .. } => LogRecordKind::Delete,
        _ => LogRecordKind::Update,
    };
    log.insert(ctx, txn.id, kind, payload_bytes.max(LOG_BYTES_PER_ROW));
}

/// Charge the cost of a synchronization point joining actions that ran on
/// `sockets`, exchanged from the perspective of a thread on `ctx`'s socket.
/// Co-located actions are free; every distinct remote socket costs one
/// message of `bytes` bytes (paper §V-B: the cost grows with the number of
/// distinct sockets and their distance).
pub fn sync_point(ctx: &mut SimCtx<'_>, sockets: &[SocketId], bytes: u64) {
    let mut seen: Vec<SocketId> = Vec::with_capacity(sockets.len());
    for &s in sockets {
        if s != ctx.socket() && !seen.contains(&s) {
            seen.push(s);
            ctx.send_message(Component::Communication, s, bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::populate_all;
    use crate::workload::testing::TinyUpdateWorkload;
    use atrapos_numa::{CoreId, CostModel, Topology};
    use atrapos_storage::{Key, TableId, TxnId};

    fn env() -> (Topology, CostModel, Database) {
        let topo = Topology::multisocket(2, 2);
        let cost = CostModel::westmere();
        let mut db = Database::new();
        populate_all(&TinyUpdateWorkload { rows: 100 }, &mut db);
        (topo, cost, db)
    }

    #[test]
    fn storage_op_executes_reads_and_increments() {
        let (topo, cost, mut db) = env();
        let mut ctx = SimCtx::new(&topo, &cost, CoreId(0), 0);
        let read = Action::new(ActionOp::Read {
            table: TableId(0),
            key: Key::int(5),
        });
        let bytes = storage_op(&mut ctx, &mut db, &read).unwrap();
        assert!(bytes > 0);
        let incr = Action::new(ActionOp::Increment {
            table: TableId(0),
            key: Key::int(5),
            column: 1,
            delta: 7,
        });
        storage_op(&mut ctx, &mut db, &incr).unwrap();
        storage_op(&mut ctx, &mut db, &incr).unwrap();
        assert_eq!(
            db.table(TableId(0))
                .unwrap()
                .peek(&Key::int(5))
                .unwrap()
                .get(1)
                .as_int(),
            14
        );
        assert!(ctx.elapsed() > 0);
    }

    #[test]
    fn storage_op_propagates_missing_keys() {
        let (topo, cost, mut db) = env();
        let mut ctx = SimCtx::new(&topo, &cost, CoreId(0), 0);
        let read = Action::new(ActionOp::Read {
            table: TableId(0),
            key: Key::int(10_000),
        });
        assert!(storage_op(&mut ctx, &mut db, &read).is_err());
    }

    #[test]
    fn action_locks_follow_the_hierarchy() {
        let (topo, cost, _db) = env();
        let mut ctx = SimCtx::new(&topo, &cost, CoreId(0), 0);
        let mut lm = LockManager::centralized(64, 2);
        let mut txn = Txn::begin(TxnId(1));
        let write = Action::new(ActionOp::Increment {
            table: TableId(0),
            key: Key::int(5),
            column: 1,
            delta: 1,
        });
        acquire_action_locks(&mut ctx, &mut lm, &mut txn, &write);
        assert!(txn.holds(&LockId::Table(TableId(0)), LockMode::IX));
        assert!(txn.holds(&LockId::Record(TableId(0), Key::int(5)), LockMode::X));
        lm.check_grant_invariants().unwrap();
    }

    #[test]
    fn sync_point_charges_only_remote_sockets() {
        let (topo, cost, _db) = env();
        let mut ctx = SimCtx::new(&topo, &cost, CoreId(0), 0);
        // Only the local socket participates: free.
        sync_point(&mut ctx, &[SocketId(0), SocketId(0)], 128);
        assert_eq!(ctx.elapsed(), 0);
        // A remote socket participates once even if listed twice.
        let mut ctx2 = SimCtx::new(&topo, &cost, CoreId(0), 0);
        sync_point(&mut ctx2, &[SocketId(1), SocketId(1)], 128);
        let one = ctx2.elapsed();
        assert!(one > 0);
    }
}
