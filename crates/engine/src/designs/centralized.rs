//! The centralized shared-everything design (stock Shore-MT).
//!
//! One database instance uses all cores; every internal structure touched in
//! the critical path is centralized: the lock manager, the list of active
//! transactions, the shared state read/write locks, and the log buffer.
//! This is the baseline whose throughput collapses beyond a couple of
//! sockets (paper Figures 1, 2, 3).

use crate::action::{TransactionSpec, TxnOutcome};
use crate::designs::common::{
    acquire_action_locks, log_action, storage_op, BEGIN_INSTRUCTIONS, COMMIT_INSTRUCTIONS,
};
use crate::designs::{DesignStats, SystemDesign};
use crate::workload::{ensure_tables, populate_all, Workload};
use atrapos_numa::{Component, CoreId, Cycles, Machine, SocketId};
use atrapos_storage::{
    Database, LockManager, LogManager, LogRecordKind, StateRwLock, Table, Txn, TxnId, TxnList,
};

/// Number of buckets in the centralized lock-manager hash table.
const LOCK_MANAGER_BUCKETS: usize = 256;

/// The centralized shared-everything design.
pub struct CentralizedDesign {
    db: Database,
    lock_manager: LockManager,
    log: LogManager,
    txn_list: TxnList,
    state_lock: StateRwLock,
    next_txn: u64,
    aborted: u64,
}

impl CentralizedDesign {
    /// Build the design for `machine`, creating and populating the
    /// workload's tables.  Tables are single-partition; their memory is
    /// spread round-robin over the sockets (the buffer pool of a
    /// shared-everything system is interleaved).
    pub fn new(machine: &Machine, workload: &dyn Workload) -> Self {
        let n_sockets = machine.topology.num_sockets();
        let mut db = Database::new();
        for (i, spec) in workload.tables().into_iter().enumerate() {
            db.add_table(Table::new(
                spec.id,
                spec.schema,
                SocketId((i % n_sockets) as u16),
            ));
        }
        ensure_tables(workload, &mut db);
        populate_all(workload, &mut db);
        Self {
            db,
            lock_manager: LockManager::centralized(LOCK_MANAGER_BUCKETS, n_sockets),
            log: LogManager::centralized(n_sockets),
            txn_list: TxnList::centralized(n_sockets),
            state_lock: StateRwLock::centralized("volume", n_sockets),
            next_txn: 1,
            aborted: 0,
        }
    }

    /// The database (for consistency checks in tests).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Transactions aborted due to storage errors.
    pub fn aborted(&self) -> u64 {
        self.aborted
    }
}

impl SystemDesign for CentralizedDesign {
    fn name(&self) -> &str {
        "centralized"
    }

    fn execute(
        &mut self,
        machine: &mut Machine,
        spec: &TransactionSpec,
        client: CoreId,
        start: Cycles,
    ) -> TxnOutcome {
        let mut ctx = machine.ctx(client, start);
        let mut txn = Txn::begin(TxnId(self.next_txn));
        self.next_txn += 1;

        // Begin: state read lock, register in the (centralized) list of
        // active transactions.
        ctx.work(Component::XctManagement, BEGIN_INSTRUCTIONS);
        self.state_lock.read_acquire(&mut ctx);
        self.txn_list.add(&mut ctx, txn.id);

        let mut failed = false;
        'phases: for phase in &spec.phases {
            for action in &phase.actions {
                acquire_action_locks(&mut ctx, &mut self.lock_manager, &mut txn, action);
                match storage_op(&mut ctx, &mut self.db, action) {
                    Ok(bytes) => {
                        if action.op.is_write() {
                            log_action(&mut ctx, &mut self.log, &txn, action, bytes);
                        }
                    }
                    Err(_) => {
                        failed = true;
                        break 'phases;
                    }
                }
            }
            // All actions of a phase run on the same thread: the
            // synchronization point is free in this design.
        }

        // Commit or abort.
        ctx.work(Component::XctManagement, COMMIT_INSTRUCTIONS);
        if failed {
            txn.abort();
            self.aborted += 1;
            self.log.insert(&mut ctx, txn.id, LogRecordKind::Abort, 32);
        } else {
            txn.commit();
            if spec.is_update() {
                self.log.insert(&mut ctx, txn.id, LogRecordKind::Commit, 48);
                self.log.commit_flush(&mut ctx);
            }
        }
        self.lock_manager.release_all(&mut ctx, &mut txn);
        self.txn_list.remove(&mut ctx, txn.id);
        self.state_lock.read_release(&mut ctx);

        let end = ctx.now();
        machine.commit(client, &ctx.finish());
        TxnOutcome {
            committed: !failed,
            start,
            end,
        }
    }

    fn stats(&self) -> DesignStats {
        DesignStats {
            aborted: self.aborted,
            ..DesignStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::testing::{TinyUpdateWorkload, TinyWorkload};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn executes_read_transactions() {
        let mut machine = Machine::new(
            atrapos_numa::Topology::multisocket(2, 2),
            atrapos_numa::CostModel::westmere(),
        );
        let mut w = TinyWorkload { rows: 1000 };
        let mut design = CentralizedDesign::new(&machine, &w);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut now = 0;
        for _ in 0..50 {
            let spec = w.next_transaction(&mut rng, CoreId(0));
            let out = design.execute(&mut machine, &spec, CoreId(0), now);
            assert!(out.committed);
            assert!(out.end > out.start);
            now = out.end;
        }
        assert_eq!(design.aborted(), 0);
        assert!(machine.total_instructions() > 0);
        // Read-only workload never touches the log.
        assert_eq!(design.log.total_records(), 0);
    }

    #[test]
    fn update_transactions_write_log_records_and_apply_changes() {
        let mut machine = Machine::new(
            atrapos_numa::Topology::multisocket(2, 2),
            atrapos_numa::CostModel::westmere(),
        );
        let mut w = TinyUpdateWorkload { rows: 100 };
        let mut design = CentralizedDesign::new(&machine, &w);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut now = 0;
        for _ in 0..30 {
            let spec = w.next_transaction(&mut rng, CoreId(0));
            let out = design.execute(&mut machine, &spec, CoreId(1), now);
            assert!(out.committed);
            now = out.end;
        }
        // Two update records plus one commit record per transaction.
        assert_eq!(design.log.total_records(), 30 * 3);
        // The sum of all increments equals the number of update actions.
        let total: i64 = design
            .database()
            .table(atrapos_storage::TableId(0))
            .unwrap()
            .index()
            .iter()
            .map(|(_, r)| r.get(1).as_int())
            .sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn remote_clients_pay_more_than_clients_near_the_structures() {
        let mut machine = Machine::new(
            atrapos_numa::Topology::multisocket(4, 2),
            atrapos_numa::CostModel::westmere(),
        );
        let mut w = TinyWorkload { rows: 1000 };
        let mut design = CentralizedDesign::new(&machine, &w);
        let mut rng = SmallRng::seed_from_u64(3);
        let spec = w.next_transaction(&mut rng, CoreId(0));
        // Warm the centralized structures from socket 3.
        let warm = design.execute(&mut machine, &spec, CoreId(7), 0);
        // A client on socket 0 now has to pull every centralized line over.
        let remote = design.execute(&mut machine, &spec, CoreId(0), warm.end);
        // And one more from the same socket right after (lines now local).
        let local = design.execute(&mut machine, &spec, CoreId(1), remote.end);
        assert!(remote.latency() > local.latency());
    }
}
