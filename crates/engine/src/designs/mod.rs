//! The system designs compared in the paper's evaluation.

pub mod atrapos;
pub mod centralized;
pub mod common;
pub mod plp;
pub mod shared_nothing;

use crate::action::{TransactionSpec, TxnOutcome};
use atrapos_numa::{CoreId, Cycles, Machine};

/// What a design did at a monitoring-interval boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IntervalOutcome {
    /// Cycles during which regular execution was paused (repartitioning).
    pub pause_cycles: Cycles,
    /// Whether the design repartitioned.
    pub repartitioned: bool,
    /// Length of the next monitoring interval in (virtual) seconds; `None`
    /// keeps the executor's default.
    pub next_interval_secs: Option<f64>,
}

/// A transaction-processing system design under evaluation.
pub trait SystemDesign {
    /// Human-readable name used in benchmark output.
    fn name(&self) -> &str;

    /// Execute one transaction submitted by the client bound to `client`,
    /// starting at virtual time `start`.  The design charges all costs to
    /// `machine` and returns when the transaction finished.
    fn execute(
        &mut self,
        machine: &mut Machine,
        spec: &TransactionSpec,
        client: CoreId,
        start: Cycles,
    ) -> TxnOutcome;

    /// Called by the executor at the end of every monitoring interval with
    /// the throughput observed during that interval (committed transactions
    /// per virtual second).  Adaptive designs may repartition here.
    fn on_interval(
        &mut self,
        _machine: &mut Machine,
        _now: Cycles,
        _interval_throughput: f64,
    ) -> IntervalOutcome {
        IntervalOutcome::default()
    }

    /// Called when the machine topology changed (socket failure/restore) so
    /// the design can react on the next interval.
    fn on_topology_change(&mut self, _machine: &Machine) {}

    /// Downcasting hook so harnesses can read design-specific statistics
    /// (e.g. the shared-nothing distributed-transaction count) after a run.
    /// Designs that expose such statistics return `Some(self)`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}
