//! The system designs compared in the paper's evaluation.

pub mod atrapos;
pub mod centralized;
pub mod common;
pub mod plp;
pub mod shared_nothing;
pub mod spec;

use crate::action::{TransactionSpec, TxnOutcome};
use atrapos_numa::{CoreId, Cycles, Machine};
use serde::{Deserialize, Serialize};

/// What a design did at a monitoring-interval boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IntervalOutcome {
    /// Cycles during which regular execution was paused (repartitioning).
    pub pause_cycles: Cycles,
    /// Whether the design repartitioned.
    pub repartitioned: bool,
    /// Length of the next monitoring interval in (virtual) seconds; `None`
    /// keeps the executor's default.
    pub next_interval_secs: Option<f64>,
}

/// A structured statistics report of a design, readable after (or during)
/// a run without downcasting.  Fields that do not apply to a design are
/// `None`; counters that apply to every design are plain integers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DesignStats {
    /// Transactions aborted because of storage errors.
    pub aborted: u64,
    /// Distributed (multi-instance) transactions executed — shared-nothing
    /// designs only (paper §III-C).
    pub distributed_txns: Option<u64>,
    /// Number of database instances — shared-nothing designs only.
    pub instances: Option<usize>,
    /// Repartitionings performed so far — adaptive designs only.
    pub repartitions: Option<u64>,
    /// Data partitions currently in force, summed over tables —
    /// partitioned designs only.
    pub partitions: Option<usize>,
}

/// A transaction-processing system design under evaluation.
///
/// Designs are `Send`: each one owns its whole state (database instances,
/// lock tables, controllers), so a `Box<dyn SystemDesign>` can move to a
/// worker thread of the [`crate::sweep`] experiment lab.
pub trait SystemDesign: Send {
    /// Human-readable name used in benchmark output.
    fn name(&self) -> &str;

    /// Execute one transaction submitted by the client bound to `client`,
    /// starting at virtual time `start`.  The design charges all costs to
    /// `machine` and returns when the transaction finished.
    fn execute(
        &mut self,
        machine: &mut Machine,
        spec: &TransactionSpec,
        client: CoreId,
        start: Cycles,
    ) -> TxnOutcome;

    /// Called by the executor at the end of every monitoring interval with
    /// the throughput observed during that interval (committed transactions
    /// per virtual second).  Adaptive designs may repartition here.
    fn on_interval(
        &mut self,
        _machine: &mut Machine,
        _now: Cycles,
        _interval_throughput: f64,
    ) -> IntervalOutcome {
        IntervalOutcome::default()
    }

    /// Called when the machine topology changed (socket failure/restore) so
    /// the design can react on the next interval.
    fn on_topology_change(&mut self, _machine: &Machine) {}

    /// Structured statistics of the design (distributed-transaction counts,
    /// partition counts, repartitioning history, …).  Harnesses read this
    /// instead of downcasting to concrete design types.
    fn stats(&self) -> DesignStats {
        DesignStats::default()
    }
}
