//! Provenance metadata for emitted reports.
//!
//! Every JSON artifact the harnesses write (`reports/BENCH_*.json`) embeds
//! a [`RunMeta`]: the simulated machine, the workload-generator seed, and
//! the number of OS threads the experiment lab fanned out over.  A report
//! file is therefore self-describing — a reader can tell *what* was
//! simulated without chasing the harness source at the revision that wrote
//! it.
//!
//! Only the machine spec and the seed influence simulated results (the lab
//! is deterministic across thread counts); `threads` is recorded anyway so
//! wall-clock numbers in the same file can be interpreted.

use atrapos_numa::{CostModel, Machine};
use serde::{Deserialize, Serialize};

/// The provenance of one simulated experiment: machine spec, seed, and
/// experiment-lab thread count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMeta {
    /// Sockets of the simulated machine.
    pub sockets: usize,
    /// Cores per socket of the simulated machine.
    pub cores_per_socket: usize,
    /// Interconnect cost model: `"westmere"` (the calibrated default),
    /// `"uniform"` (the no-remote-penalty ablation model), or `"custom"`.
    pub cost_model: String,
    /// Workload-generator seed.
    pub seed: u64,
    /// OS threads the experiment lab ran on.  Does not affect simulated
    /// results (the lab is deterministic); recorded for wall-clock context.
    pub threads: usize,
}

impl RunMeta {
    /// Describe a run of `machine` with the given seed and lab thread
    /// count.
    pub fn of(machine: &Machine, seed: u64, threads: usize) -> Self {
        let sockets = machine.topology.num_sockets();
        let cores_per_socket = machine
            .topology
            .num_cores()
            .checked_div(sockets)
            .unwrap_or(0);
        Self {
            sockets,
            cores_per_socket,
            cost_model: cost_model_label(&machine.cost).to_string(),
            seed,
            threads,
        }
    }

    /// One-line human-readable summary, e.g.
    /// `4×4 cores, westmere costs, seed 42, 8 threads`.
    pub fn summary(&self) -> String {
        format!(
            "{}×{} cores, {} costs, seed {}, {} thread{}",
            self.sockets,
            self.cores_per_socket,
            self.cost_model,
            self.seed,
            self.threads,
            if self.threads == 1 { "" } else { "s" }
        )
    }
}

/// A fingerprint of the *real* machine a harness process ran on — as
/// opposed to [`RunMeta`], which describes the *simulated* machine.
///
/// Simulated results are host-independent, but wall-clock numbers are
/// only comparable between runs on the same hardware: the perf-regression
/// gate (`atrapos wallclock --check`) uses equality of this fingerprint
/// to decide whether two `BENCH_wallclock.json` entries may be compared
/// at all.  Detection is best-effort and deterministic for a given host:
/// OS, architecture, CPU model string (from `/proc/cpuinfo` where
/// available), and the core count the process can use.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostFingerprint {
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// CPU model name, or `"unknown"` where it cannot be read.
    pub cpu_model: String,
    /// Cores available to the process (`std::thread::available_parallelism`).
    pub cpus: usize,
}

impl HostFingerprint {
    /// Fingerprint the machine this process is running on.
    pub fn detect() -> Self {
        Self {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpu_model: cpu_model(),
            cpus: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// One-line human-readable summary, e.g.
    /// `linux/x86_64, 8 cpus, Intel(R) Xeon(R) ...`.
    pub fn summary(&self) -> String {
        format!(
            "{}/{}, {} cpu{}, {}",
            self.os,
            self.arch,
            self.cpus,
            if self.cpus == 1 { "" } else { "s" },
            self.cpu_model
        )
    }
}

/// The host CPU's model name, read from `/proc/cpuinfo` (Linux); other
/// platforms report `"unknown"` and rely on OS/arch/core count.
fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_string())
        })
        .filter(|m| !m.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Name a cost model by comparing it against the two built-in presets.
fn cost_model_label(cost: &CostModel) -> &'static str {
    if *cost == CostModel::westmere() {
        "westmere"
    } else if *cost == CostModel::uniform() {
        "uniform"
    } else {
        "custom"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atrapos_numa::Topology;

    #[test]
    fn meta_records_machine_shape_and_cost_model() {
        let m = Machine::new(Topology::multisocket(4, 10), CostModel::westmere());
        let meta = RunMeta::of(&m, 42, 8);
        assert_eq!(meta.sockets, 4);
        assert_eq!(meta.cores_per_socket, 10);
        assert_eq!(meta.cost_model, "westmere");
        assert_eq!(
            meta.summary(),
            "4×10 cores, westmere costs, seed 42, 8 threads"
        );

        let u = Machine::new(Topology::multisocket(2, 2), CostModel::uniform());
        assert_eq!(RunMeta::of(&u, 7, 1).cost_model, "uniform");
        let mut custom = CostModel::westmere();
        custom.base_ipc *= 2.0;
        let c = Machine::new(Topology::multisocket(2, 2), custom);
        assert_eq!(RunMeta::of(&c, 7, 1).cost_model, "custom");
    }

    #[test]
    fn host_fingerprint_is_stable_and_round_trips() {
        let a = HostFingerprint::detect();
        let b = HostFingerprint::detect();
        // Same process, same host: detection must be deterministic — the
        // gate's comparability rule is fingerprint equality.
        assert_eq!(a, b);
        assert!(!a.os.is_empty() && !a.arch.is_empty());
        assert!(a.cpus >= 1);
        assert!(!a.cpu_model.is_empty());
        let json = serde::json::to_string_pretty(&a);
        let back: HostFingerprint = serde::json::from_str(&json).unwrap();
        assert_eq!(back, a);
        assert!(back.summary().contains(&back.os));
    }

    #[test]
    fn meta_round_trips_through_json() {
        let m = Machine::new(Topology::multisocket(2, 3), CostModel::westmere());
        let meta = RunMeta::of(&m, 9, 2);
        let json = serde::json::to_string_pretty(&meta);
        let back: RunMeta = serde::json::from_str(&json).unwrap();
        assert_eq!(back, meta);
    }
}
