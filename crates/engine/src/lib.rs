//! # atrapos-engine
//!
//! The transaction-execution engine of the ATraPos reproduction: transaction
//! flow graphs, partition workers, a deterministic virtual-time executor,
//! and the five system designs compared in the paper's evaluation:
//!
//! | Design | Paper §III | Module |
//! |--------|-----------|--------|
//! | Centralized shared-everything | stock Shore-MT | [`designs::centralized`] |
//! | Extreme shared-nothing (one instance per core) | H-Store-style | [`designs::shared_nothing`] |
//! | Coarse shared-nothing (one instance per socket) | | [`designs::shared_nothing`] |
//! | PLP (physiological partitioning) | state of the art | [`designs::plp`] |
//! | ATraPos | this paper | [`designs::atrapos`] |
//!
//! Every design executes the *same* [`TransactionSpec`]s produced by a
//! [`Workload`] against real storage structures from `atrapos-storage`,
//! charging costs through the `atrapos-numa` virtual-time machine, so the
//! comparisons between designs come from their structure (what is
//! centralized, what is partitioned, where data and threads are placed) and
//! not from per-design tuning constants.

pub mod action;
pub mod designs;
pub mod executor;
pub mod workers;
pub mod workload;

pub use action::{Action, ActionOp, Phase, TransactionSpec, TxnOutcome};
pub use designs::atrapos::{AtraposConfig, AtraposDesign};
pub use designs::centralized::CentralizedDesign;
pub use designs::plp::PlpDesign;
pub use designs::shared_nothing::{SharedNothingDesign, SharedNothingGranularity};
pub use designs::{IntervalOutcome, SystemDesign};
pub use executor::{ExecutorConfig, RunStats, TimePoint, VirtualExecutor};
pub use workers::WorkerPool;
pub use workload::{TableSpec, Workload};
