//! # atrapos-engine
//!
//! The transaction-execution engine of the ATraPos reproduction: transaction
//! flow graphs, partition workers, a deterministic virtual-time executor,
//! and the five system designs compared in the paper's evaluation:
//!
//! | Design | Paper §III | Module |
//! |--------|-----------|--------|
//! | Centralized shared-everything | stock Shore-MT | [`designs::centralized`] |
//! | Extreme shared-nothing (one instance per core) | H-Store-style | [`designs::shared_nothing`] |
//! | Coarse shared-nothing (one instance per socket) | | [`designs::shared_nothing`] |
//! | PLP (physiological partitioning) | state of the art | [`designs::plp`] |
//! | ATraPos | this paper | [`designs::atrapos`] |
//!
//! Every design executes the *same* [`TransactionSpec`]s produced by a
//! [`Workload`] against real storage structures from `atrapos-storage`,
//! charging costs through the `atrapos-numa` virtual-time machine, so the
//! comparisons between designs come from their structure (what is
//! centralized, what is partitioned, where data and threads are placed) and
//! not from per-design tuning constants.
//!
//! ## The scenario layer
//!
//! Experiments are driven declaratively:
//!
//! * [`scenario::Scenario`] — a serializable timeline of typed
//!   [`scenario::ScenarioEvent`]s at virtual-time offsets (mix switches,
//!   skew, socket failures, measurement boundaries) plus a total duration.
//! * [`workload::WorkloadChange`] — the typed runtime-reconfiguration
//!   vocabulary every reconfigurable workload implements via
//!   [`Workload::reconfigure`]; no downcasting.
//! * [`designs::DesignStats`] — the structured statistics report every
//!   design exposes via [`SystemDesign::stats`]; no downcasting either.
//! * [`designs::spec::DesignSpec`] — a serializable design specification;
//!   the one way harnesses, examples, and tests instantiate designs.
//!
//! [`VirtualExecutor::run_scenario`] interprets a timeline and returns a
//! [`scenario::ScenarioOutcome`] with per-segment [`RunStats`] keyed by the
//! labels on the timeline — the paper's Figures 10–13 are each a `Scenario`
//! plus two `DesignSpec`s.  Scenarios round-trip through JSON (see the
//! `scenario_replay` example).
//!
//! ## The parallel experiment lab
//!
//! Experiments are independent deterministic simulations, so bundles of
//! them run on all cores: a [`sweep::SweepJob`] packages one
//! (design × workload × scenario) simulation as data and
//! [`sweep::run_sweep`] executes a job list on a pool of scoped OS threads,
//! returning results in job order — the output is byte-identical whether
//! one thread ran the list or sixteen did.  `SystemDesign` and `Workload`
//! are `Send` so boxed trait objects can move to the worker threads.

#![warn(missing_docs)]

pub mod action;
pub mod arrival;
pub mod designs;
pub mod executor;
pub mod meta;
pub mod scenario;
pub mod sweep;
pub mod workers;
pub mod workload;

pub use action::{Action, ActionOp, Phase, SpecRefill, TransactionSpec, TxnOutcome};
pub use arrival::ArrivalProcess;
pub use designs::atrapos::{AtraposConfig, AtraposDesign};
pub use designs::centralized::CentralizedDesign;
pub use designs::plp::PlpDesign;
pub use designs::shared_nothing::{SharedNothingDesign, SharedNothingGranularity};
pub use designs::spec::DesignSpec;
pub use designs::{DesignStats, IntervalOutcome, SystemDesign};
pub use executor::{ExecutorConfig, RunStats, TimePoint, VirtualExecutor};
pub use meta::{HostFingerprint, RunMeta};
pub use scenario::{Scenario, ScenarioEvent, ScenarioOutcome, SegmentStats, TimedEvent};
pub use sweep::{default_threads, parallel_map, run_sweep, SweepJob, SweepResult};
pub use workers::WorkerPool;
pub use workload::{ReconfigureError, TableSpec, Workload, WorkloadChange};
