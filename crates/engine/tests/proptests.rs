//! Property-based tests for the execution engine: transaction flow graphs,
//! the partition worker pool, the deterministic virtual-time executor, and —
//! most importantly — *design equivalence*: every system design (centralized
//! shared-everything, shared-nothing, PLP, ATraPos) applies the same
//! transactions to the same logical database state, so the paper's
//! performance comparisons are between structurally different systems doing
//! identical work.

use atrapos_engine::workload::testing::{TinyUpdateWorkload, TinyWorkload};
use atrapos_engine::{
    Action, ActionOp, AtraposConfig, AtraposDesign, CentralizedDesign, ExecutorConfig, Phase,
    PlpDesign, SharedNothingDesign, SharedNothingGranularity, SystemDesign, TransactionSpec,
    VirtualExecutor, WorkerPool, Workload,
};
use atrapos_numa::{CoreId, CostModel, Cycles, Machine, Topology};
use atrapos_storage::{Key, TableId};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn machine(sockets: usize, cores: usize) -> Machine {
    Machine::new(Topology::multisocket(sockets, cores), CostModel::westmere())
}

/// Build a deterministic batch of increment transactions over `rows` rows of
/// the two-table tiny update workload, from a seed.  Every transaction
/// increments column 1 of one row in each table by 1.
fn increment_batch(rows: i64, count: usize, seed: u64) -> Vec<TransactionSpec> {
    let mut w = TinyUpdateWorkload { rows };
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| w.next_transaction(&mut rng, CoreId(0)))
        .collect()
}

/// Sum of column 1 over every row of `table` in a database (the "balance"
/// invariant the increment workload preserves).
fn column_sum(db: &atrapos_storage::Database, table: TableId) -> i64 {
    db.table(table)
        .map(|t| t.index().iter().map(|(_, r)| r.get(1).as_int()).sum())
        .unwrap_or(0)
}

proptest! {
    // ------------------------------------------------------------------
    // Transaction specs
    // ------------------------------------------------------------------

    /// `num_actions` counts every action of every phase, and `is_update` is
    /// true exactly when some action writes.
    #[test]
    fn transaction_spec_counts_and_update_flag(
        phase_sizes in prop::collection::vec(1usize..6, 1..5),
        write_phase in prop::option::of(0usize..5),
    ) {
        let phases: Vec<Phase> = phase_sizes
            .iter()
            .enumerate()
            .map(|(pi, &n)| {
                Phase::new(
                    (0..n)
                        .map(|ai| {
                            let key = Key::int((pi * 10 + ai) as i64);
                            if write_phase == Some(pi) && ai == 0 {
                                Action::new(ActionOp::Increment {
                                    table: TableId(0),
                                    key,
                                    column: 1,
                                    delta: 1,
                                })
                            } else {
                                Action::new(ActionOp::Read { table: TableId(0), key })
                            }
                        })
                        .collect(),
                )
            })
            .collect();
        let spec = TransactionSpec::new("prop", phases);
        prop_assert_eq!(spec.num_actions(), phase_sizes.iter().sum::<usize>());
        let expect_update = matches!(write_phase, Some(p) if p < phase_sizes.len());
        prop_assert_eq!(spec.is_update(), expect_update);
    }

    // ------------------------------------------------------------------
    // Worker pool
    // ------------------------------------------------------------------

    /// A worker core never runs two occupancies that overlap in virtual
    /// time: `available_at` always returns a slot at or after both the
    /// request time and the end of all previously booked work.
    #[test]
    fn worker_pool_occupancies_never_overlap(
        requests in prop::collection::vec((0u32..8, 0u64..50_000, 1u64..5_000), 1..60),
    ) {
        let topo = Topology::multisocket(4, 2);
        let mut pool = WorkerPool::new(&topo);
        let mut bookings: Vec<(u32, Cycles, Cycles)> = Vec::new();
        for (core, at, len) in requests {
            let core_id = CoreId(core);
            let start = pool.available_at(core_id, at);
            prop_assert!(start >= at);
            let end = start + len;
            // The granted slot must not overlap any earlier booking on the
            // same core.
            for &(c, s, e) in &bookings {
                if c == core {
                    prop_assert!(end <= s || start >= e, "overlap on core {core}: [{start},{end}) vs [{s},{e})");
                }
            }
            pool.occupy(core_id, start, end);
            bookings.push((core, start, end));
        }
        // Busy cycles per core equal the sum of its bookings.
        for core in 0..8u32 {
            let expected: u64 = bookings
                .iter()
                .filter(|&&(c, _, _)| c == core)
                .map(|&(_, s, e)| e - s)
                .sum();
            prop_assert_eq!(pool.busy_cycles(CoreId(core)), expected);
        }
    }

}

// The remaining properties build whole designs and run the closed-loop
// executor, which costs tens of milliseconds per case: a smaller case count
// keeps the suite fast while still exploring machine shapes, seeds, and
// batch sizes.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // ------------------------------------------------------------------
    // Design equivalence
    // ------------------------------------------------------------------

    /// Whatever the machine shape and transaction batch, all four designs
    /// commit the same transactions and leave the database in the same
    /// logical state (the sum of every increment shows up exactly once —
    /// no lost or duplicated updates in any design).
    #[test]
    fn all_designs_apply_the_same_updates(
        sockets in 1usize..=4,
        cores in 1usize..=2,
        rows in 40i64..400,
        count in 1usize..60,
        seed in any::<u64>(),
    ) {
        let batch = increment_batch(rows, count, seed);
        let workload = TinyUpdateWorkload { rows };
        let expected_per_table = count as i64; // one +1 per table per transaction

        // Centralized shared-everything.
        let mut m = machine(sockets, cores);
        let mut centralized = CentralizedDesign::new(&m, &workload);
        let cores_list = m.topology.active_cores();
        let mut now = 0;
        for (i, spec) in batch.iter().enumerate() {
            let out = centralized.execute(&mut m, spec, cores_list[i % cores_list.len()], now);
            prop_assert!(out.committed);
            now = out.end;
        }
        prop_assert_eq!(column_sum(centralized.database(), TableId(0)), expected_per_table);
        prop_assert_eq!(column_sum(centralized.database(), TableId(1)), expected_per_table);

        // ATraPos and the PLP baseline.
        let mut m = machine(sockets, cores);
        let mut atrapos = AtraposDesign::new(&m, &workload, AtraposConfig::default());
        let mut now = 0;
        for (i, spec) in batch.iter().enumerate() {
            let out = atrapos.execute(&mut m, spec, cores_list[i % cores_list.len()], now);
            prop_assert!(out.committed);
            now = out.end;
        }
        prop_assert_eq!(column_sum(atrapos.database(), TableId(0)), expected_per_table);
        prop_assert_eq!(column_sum(atrapos.database(), TableId(1)), expected_per_table);

        let mut m = machine(sockets, cores);
        let mut plp = PlpDesign::new(&m, &workload);
        let mut now = 0;
        for (i, spec) in batch.iter().enumerate() {
            let out = plp.execute(&mut m, spec, cores_list[i % cores_list.len()], now);
            prop_assert!(out.committed);
            now = out.end;
        }
        prop_assert_eq!(column_sum(plp.inner().database(), TableId(0)), expected_per_table);
        prop_assert_eq!(column_sum(plp.inner().database(), TableId(1)), expected_per_table);

        // Shared-nothing (per socket): updates land on the owning instance;
        // the sums across instances must match, and multi-instance
        // deployments must have run the cross-instance work as distributed
        // transactions when the two keys live on different instances.
        let mut m = machine(sockets, cores);
        let mut sn = SharedNothingDesign::new(&m, &workload, SharedNothingGranularity::PerSocket);
        let mut now = 0;
        for (i, spec) in batch.iter().enumerate() {
            let out = sn.execute(&mut m, spec, cores_list[i % cores_list.len()], now);
            prop_assert!(out.committed);
            now = out.end;
        }
        let sn_sum_t0: i64 = (0..sn.num_instances()).map(|i| column_sum(sn.instance_db(i), TableId(0))).sum();
        let sn_sum_t1: i64 = (0..sn.num_instances()).map(|i| column_sum(sn.instance_db(i), TableId(1))).sum();
        prop_assert_eq!(sn_sum_t0, expected_per_table);
        prop_assert_eq!(sn_sum_t1, expected_per_table);
    }

    // ------------------------------------------------------------------
    // Virtual-time executor
    // ------------------------------------------------------------------

    /// The executor is deterministic: two executors built with the same
    /// seed, machine, design, and workload commit exactly the same number of
    /// transactions over the same virtual duration, and splitting the run
    /// into segments does not change the total.
    #[test]
    fn executor_is_deterministic_and_composable(
        sockets in 1usize..=3,
        cores in 1usize..=2,
        seed in any::<u64>(),
        segments in 1usize..4,
    ) {
        let rows = 2_000i64;
        let total_secs = 0.006;
        let build = || {
            let m = machine(sockets, cores);
            let w = TinyWorkload { rows };
            let design: Box<dyn SystemDesign> =
                Box::new(AtraposDesign::new(&m, &w, AtraposConfig::default()));
            VirtualExecutor::new(
                m,
                design,
                Box::new(w),
                ExecutorConfig {
                    seed,
                    default_interval_secs: 0.002,
                    time_series_bucket_secs: 0.002,
                },
            )
        };
        let mut single = build();
        let whole = single.run_for(total_secs);
        prop_assert!(whole.committed > 0);
        prop_assert_eq!(whole.aborted, 0);
        prop_assert!(whole.throughput_tps > 0.0);
        prop_assert!(whole.ipc > 0.0);

        let mut segmented = build();
        let mut committed = 0;
        for _ in 0..segments {
            committed += segmented.run_for(total_secs / segments as f64).committed;
        }
        prop_assert_eq!(committed, whole.committed);
        prop_assert!((segmented.now_secs() - single.now_secs()).abs() < 1e-9);
    }

    /// Failing a socket mid-run never stops the system: the remaining cores
    /// keep committing transactions, and restoring the socket brings the
    /// client count back.
    #[test]
    fn executor_survives_socket_failures(
        sockets in 2usize..=4,
        cores in 1usize..=2,
        seed in any::<u64>(),
        fail_idx in 0usize..4,
    ) {
        let m = machine(sockets, cores);
        let w = TinyWorkload { rows: 2_000 };
        let design: Box<dyn SystemDesign> =
            Box::new(AtraposDesign::new(&m, &w, AtraposConfig::default()));
        let mut ex = VirtualExecutor::new(
            m,
            design,
            Box::new(w),
            ExecutorConfig {
                seed,
                default_interval_secs: 0.002,
                time_series_bucket_secs: 0.002,
            },
        );
        let before = ex.run_for(0.004);
        prop_assert!(before.committed > 0);
        let failed = atrapos_numa::SocketId((fail_idx % sockets) as u16);
        let active_before = ex.machine().topology.num_active_cores();
        ex.fail_socket(failed);
        prop_assert_eq!(ex.machine().topology.num_active_cores(), active_before - cores);
        let during = ex.run_for(0.004);
        prop_assert!(during.committed > 0, "system stalled after losing socket {failed}");
        ex.restore_socket(failed);
        prop_assert_eq!(ex.machine().topology.num_active_cores(), active_before);
        let after = ex.run_for(0.004);
        prop_assert!(after.committed > 0);
    }
}
