//! Property-based tests for the workload generators: key distributions,
//! transaction mixes, the microbenchmarks of paper §III, and the TATP and
//! TPC-C benchmark implementations of §VI.
//!
//! The central property is *routing validity*: every transaction a workload
//! emits only references tables the workload declares, with routing keys
//! inside those tables' declared key domains.  That property is what allows
//! any partitioning scheme built from `table_domains()` to route every
//! action to a live partition.

use atrapos_engine::Workload;
use atrapos_numa::CoreId;
use atrapos_storage::Database;
use atrapos_workloads::{
    KeyDistribution, Mix, MultiSiteUpdate, ReadManyRows, ReadOneRow, SimpleAb, Tatp, TatpConfig,
    TatpTxn, Tpcc, TpccConfig, TpccTxn,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Assert that every action of every transaction a workload generates routes
/// to a declared table with a key head inside that table's domain.
fn assert_routing_validity(
    workload: &mut dyn Workload,
    seed: u64,
    clients: &[CoreId],
    transactions: usize,
) -> Result<(), TestCaseError> {
    let domains = workload.table_domains();
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in 0..transactions {
        let client = clients[i % clients.len()];
        let spec = workload.next_transaction(&mut rng, client);
        prop_assert!(spec.num_actions() >= 1, "empty transaction");
        prop_assert!(!spec.phases.is_empty());
        for phase in &spec.phases {
            prop_assert!(!phase.actions.is_empty(), "empty phase");
            for action in &phase.actions {
                let table = action.op.table();
                let domain = domains
                    .iter()
                    .find(|(t, _)| *t == table)
                    .map(|(_, d)| *d)
                    .ok_or_else(|| {
                        TestCaseError::fail(format!("action references undeclared table {table}"))
                    })?;
                let head = action.op.routing_key_head();
                prop_assert!(
                    head >= domain.lo && head < domain.hi,
                    "routing key {head} outside domain [{}, {}) of table {table}",
                    domain.lo,
                    domain.hi
                );
            }
        }
    }
    Ok(())
}

proptest! {
    // ------------------------------------------------------------------
    // Generators
    // ------------------------------------------------------------------

    /// Uniform and hotspot key distributions always draw keys inside the
    /// requested `[lo, hi)` range, and the hotspot distribution actually
    /// concentrates accesses on the hot fraction of the domain.
    #[test]
    fn key_distributions_sample_inside_the_domain(
        lo in -10_000i64..10_000,
        width in 10i64..100_000,
        data_fraction in 0.05f64..0.95,
        access_fraction in 0.05f64..0.95,
        seed in any::<u64>(),
    ) {
        let hi = lo + width;
        let mut rng = SmallRng::seed_from_u64(seed);
        let uniform = KeyDistribution::Uniform;
        let hotspot = KeyDistribution::Hotspot { data_fraction, access_fraction };
        for _ in 0..200 {
            let u = uniform.sample(&mut rng, lo, hi);
            prop_assert!(u >= lo && u < hi);
            let h = hotspot.sample(&mut rng, lo, hi);
            prop_assert!(h >= lo && h < hi);
        }
    }

    /// A strongly skewed hotspot (the paper's 50%-of-accesses-to-20%-of-data
    /// and harsher) sends a clearly disproportionate share of samples to the
    /// hot range.
    #[test]
    fn hotspot_distribution_concentrates_accesses(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let d = KeyDistribution::Hotspot { data_fraction: 0.2, access_fraction: 0.8 };
        let (lo, hi) = (0i64, 10_000i64);
        let hot_cutoff = lo + ((hi - lo) as f64 * 0.2).ceil() as i64;
        let samples = 2_000;
        let hot_hits = (0..samples)
            .filter(|_| d.sample(&mut rng, lo, hi) < hot_cutoff)
            .count();
        // 80% of accesses should land in the first 20% of the domain; leave
        // a generous margin for sampling noise.
        prop_assert!(hot_hits as f64 / samples as f64 > 0.6, "hot hits: {hot_hits}/{samples}");
    }

    /// `Mix::pick` only ever returns declared entries, and entries with zero
    /// weight are never picked.
    #[test]
    fn mix_only_picks_declared_entries(
        weights in prop::collection::vec(0.0f64..10.0, 1..8),
        seed in any::<u64>(),
    ) {
        // Ensure at least one positive weight.
        let mut weights = weights;
        if weights.iter().all(|w| *w == 0.0) {
            weights[0] = 1.0;
        }
        let entries: Vec<(usize, f64)> = weights.iter().copied().enumerate().collect();
        let mix = Mix::new(entries.clone());
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..200 {
            let picked = mix.pick(&mut rng);
            prop_assert!(picked < weights.len());
            prop_assert!(weights[picked] > 0.0, "picked a zero-weight entry");
        }
        prop_assert_eq!(mix.entries().len(), weights.len());
    }

    // ------------------------------------------------------------------
    // Microbenchmarks (paper §III)
    // ------------------------------------------------------------------

    /// The perfectly partitionable read microbenchmark keeps every client's
    /// keys inside its own site slice, so no transaction ever crosses
    /// sites — the property Figures 1, 2, and 5 rely on.
    #[test]
    fn partitionable_reads_stay_site_local(
        rows in 100i64..50_000,
        sites in 1usize..16,
        cores_per_site in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut w = ReadOneRow::partitionable(rows, sites, cores_per_site);
        let mut rng = SmallRng::seed_from_u64(seed);
        let width = rows / sites as i64;
        for client_idx in 0..(sites * cores_per_site) {
            let client = CoreId(client_idx as u32);
            let site = (client_idx / cores_per_site) % sites;
            for _ in 0..20 {
                let spec = w.next_transaction(&mut rng, client);
                let head = spec.phases[0].actions[0].op.routing_key_head();
                let lo = site as i64 * width;
                let hi = if site + 1 == sites { rows } else { lo + width };
                prop_assert!(head >= lo && head < hi, "key {head} outside site [{lo}, {hi})");
            }
        }
        // Routing validity also holds for the plain (single-site) variant.
        let mut plain = ReadOneRow::with_rows(rows);
        assert_routing_validity(&mut plain, seed, &[CoreId(0)], 50)?;
    }

    /// Multi-site update transactions: with 0% multi-site every key stays in
    /// the submitting site's slice; the declared class matches the keys; and
    /// keys within a transaction are unique (the generator dedups).
    #[test]
    fn multi_site_update_respects_percentage_and_locality(
        rows in 400i64..20_000,
        sites in 1usize..8,
        pct in 0u32..=100,
        seed in any::<u64>(),
    ) {
        let mut w = MultiSiteUpdate::new(rows, sites, 1, pct);
        let mut rng = SmallRng::seed_from_u64(seed);
        let width = rows / sites as i64;
        for client_idx in 0..sites {
            let client = CoreId(client_idx as u32);
            let lo = client_idx as i64 * width;
            let hi = if client_idx + 1 == sites { rows } else { lo + width };
            for _ in 0..20 {
                let spec = w.next_transaction(&mut rng, client);
                let keys: Vec<i64> = spec.phases[0]
                    .actions
                    .iter()
                    .map(|a| a.op.routing_key_head())
                    .collect();
                prop_assert!(spec.is_update());
                // Keys are sorted and unique.
                prop_assert!(keys.windows(2).all(|w| w[0] < w[1]));
                let all_local = keys.iter().all(|&k| k >= lo && k < hi);
                if pct == 0 {
                    prop_assert_eq!(spec.class, "local");
                    prop_assert!(all_local);
                }
                if spec.class == "local" {
                    prop_assert!(all_local, "a 'local' transaction touched a remote key");
                }
                // The first key always comes from the local site.
                prop_assert!(keys.iter().any(|&k| k >= lo && k < hi));
            }
        }
    }

    /// The remote-memory microbenchmark (Table I) always reads the requested
    /// number of rows from inside the table.
    #[test]
    fn read_many_rows_generates_in_domain_reads(
        rows in 1_000i64..100_000,
        per_txn in 1usize..150,
        seed in any::<u64>(),
    ) {
        let mut w = ReadManyRows::with_rows(rows, per_txn);
        let mut rng = SmallRng::seed_from_u64(seed);
        let spec = w.next_transaction(&mut rng, CoreId(0));
        prop_assert_eq!(spec.num_actions(), per_txn);
        prop_assert!(!spec.is_update());
        assert_routing_validity(&mut w, seed, &[CoreId(0), CoreId(3)], 20)?;
    }

    // ------------------------------------------------------------------
    // TATP
    // ------------------------------------------------------------------

    /// Every TATP transaction type routes only to declared tables with
    /// subscriber ids inside the configured population, for any population
    /// size and seed.
    #[test]
    fn tatp_transactions_route_inside_declared_domains(
        subscribers in 10i64..20_000,
        seed in any::<u64>(),
        txn_idx in 0usize..7,
    ) {
        let txn = [
            TatpTxn::GetSubscriberData,
            TatpTxn::GetNewDestination,
            TatpTxn::GetAccessData,
            TatpTxn::UpdateSubscriberData,
            TatpTxn::UpdateLocation,
            TatpTxn::InsertCallForwarding,
            TatpTxn::DeleteCallForwarding,
        ][txn_idx];
        let mut w = Tatp::new(TatpConfig::scaled(subscribers));
        w.set_single(txn);
        let clients = [CoreId(0), CoreId(1), CoreId(7)];
        assert_routing_validity(&mut w, seed, &clients, 40)?;
        // The standard mix is also valid.
        let mut mixed = Tatp::new(TatpConfig::scaled(subscribers));
        assert_routing_validity(&mut mixed, seed, &clients, 60)?;
    }

    /// TATP population matches the declared table cardinalities: one
    /// subscriber row per subscriber and `records_per_subscriber` rows in
    /// the per-subscriber detail tables.
    #[test]
    fn tatp_population_matches_declared_cardinalities(subscribers in 10i64..2_000) {
        let w = Tatp::new(TatpConfig::scaled(subscribers));
        let mut db = Database::new();
        w.populate(&mut db, &|_, _| true);
        for spec in w.tables() {
            let table = db.table(spec.id).map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(
                table.len() as u64,
                spec.rows,
                "table {} holds {} rows, declared {}",
                spec.id,
                table.len(),
                spec.rows
            );
        }
        // Partial population (a shared-nothing slice) loads strictly less.
        let mut half = Database::new();
        w.populate(&mut half, &|_, key| key.head_int() <= subscribers / 2);
        prop_assert!(half.total_records() < db.total_records() || subscribers == 1);
    }

    /// Switching a TATP workload to a hotspot distribution keeps every
    /// generated subscriber id valid (the skew experiment of Figure 11 must
    /// not push keys out of the domain).
    #[test]
    fn tatp_skew_keeps_keys_in_domain(
        subscribers in 100i64..10_000,
        data_fraction in 0.05f64..0.5,
        access_fraction in 0.5f64..0.95,
        seed in any::<u64>(),
    ) {
        let mut w = Tatp::new(TatpConfig::scaled(subscribers));
        w.set_single(TatpTxn::GetSubscriberData);
        w.set_distribution(KeyDistribution::Hotspot { data_fraction, access_fraction });
        assert_routing_validity(&mut w, seed, &[CoreId(0)], 100)?;
    }

    // ------------------------------------------------------------------
    // TPC-C
    // ------------------------------------------------------------------

    /// Every TPC-C transaction type routes only to declared tables with
    /// warehouse-headed keys inside the configured scale, for any warehouse
    /// count and seed.
    #[test]
    fn tpcc_transactions_route_inside_declared_domains(
        warehouses in 1i64..20,
        seed in any::<u64>(),
        txn_idx in 0usize..5,
    ) {
        let txn = [
            TpccTxn::NewOrder,
            TpccTxn::Payment,
            TpccTxn::OrderStatus,
            TpccTxn::Delivery,
            TpccTxn::StockLevel,
        ][txn_idx];
        let mut w = Tpcc::new(TpccConfig::scaled(warehouses));
        w.set_single(txn);
        let clients = [CoreId(0), CoreId(2)];
        assert_routing_validity(&mut w, seed, &clients, 30)?;
        let mut mixed = Tpcc::new(TpccConfig::scaled(warehouses));
        assert_routing_validity(&mut mixed, seed, &clients, 50)?;
    }

    /// The NewOrder flow graph has the structure of the paper's Figure 7: a
    /// fixed part, a variable part whose size tracks the 5–15 ordered items,
    /// and more than one synchronization point.
    #[test]
    fn tpcc_new_order_flow_graph_matches_figure7(warehouses in 1i64..10, seed in any::<u64>()) {
        let mut w = Tpcc::new(TpccConfig::scaled(warehouses));
        w.set_single(TpccTxn::NewOrder);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..20 {
            let spec = w.next_transaction(&mut rng, CoreId(0));
            prop_assert!(spec.is_update());
            // Fixed part (warehouse, district, customer reads + order
            // inserts) plus one stock read/update and one order line per
            // item: 5..=15 items means at least 5 + fixed actions and at
            // most 15 * 3 + fixed.
            // Per ordered item the variable part performs R(ITEM), R(STO),
            // U(STO), and I(OL): 5 items → ≥ 26 actions, 15 items → ≤ 70.
            prop_assert!(spec.num_actions() >= 26, "too few actions: {}", spec.num_actions());
            prop_assert!(spec.num_actions() <= 70, "too many actions: {}", spec.num_actions());
            // Multiple synchronization points (phases), as in Figure 7.
            prop_assert!(spec.phases.len() >= 2);
        }
    }

    /// TPC-C population matches the declared cardinalities for every table.
    #[test]
    fn tpcc_population_matches_declared_cardinalities(warehouses in 1i64..4) {
        let w = Tpcc::new(TpccConfig::scaled(warehouses));
        let mut db = Database::new();
        w.populate(&mut db, &|_, _| true);
        for spec in w.tables() {
            let table = db.table(spec.id).map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(
                table.len() as u64,
                spec.rows,
                "table {} holds {} rows, declared {}",
                spec.id,
                table.len(),
                spec.rows
            );
        }
    }

    // ------------------------------------------------------------------
    // Simple A/B workload (Figure 6)
    // ------------------------------------------------------------------

    /// The two-table A/B transaction always reads one row of A and one row
    /// of B with the same `pk_a` head, which is what makes co-locating the
    /// correlated partitions remove all synchronization cost.
    #[test]
    fn simple_ab_actions_share_the_same_a_key(rows_a in 10i64..5_000, seed in any::<u64>()) {
        let mut w = SimpleAb::new(rows_a);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..50 {
            let spec = w.next_transaction(&mut rng, CoreId(0));
            prop_assert_eq!(spec.num_actions(), 2);
            let heads: Vec<i64> = spec
                .phases
                .iter()
                .flat_map(|p| p.actions.iter().map(|a| a.op.routing_key_head()))
                .collect();
            prop_assert_eq!(heads[0], heads[1], "A and B keys must share the same head");
        }
        assert_routing_validity(&mut w, seed, &[CoreId(0), CoreId(1)], 50)?;
        // Population respects the declared table specs.
        let mut db = Database::new();
        w.populate(&mut db, &|_, _| true);
        let declared: u64 = w.tables().iter().map(|t| t.rows).sum();
        prop_assert_eq!(db.total_records() as u64, declared);
    }
}
