//! Regenerate the shipped parity spec files from their Rust
//! constructors, so `examples/specs/ycsb_a.json` and
//! `examples/specs/simple_ab.json` stay byte-equal to
//! `spec::ycsb_a(25_000)` / `spec::simple_ab(10_000)`:
//!
//! ```text
//! cargo run -p atrapos-workloads --example regen_parity_specs
//! ```

use atrapos_workloads::spec::{simple_ab, ycsb_a};
use std::path::Path;

fn main() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/specs");
    std::fs::create_dir_all(&dir).expect("create examples/specs");
    for (file, spec) in [
        ("ycsb_a.json", ycsb_a(25_000)),
        ("simple_ab.json", simple_ab(10_000)),
    ] {
        let path = dir.join(file);
        std::fs::write(&path, spec.to_json() + "\n").expect("write spec file");
        println!("wrote {}", path.display());
    }
}
