//! The TPC-C wholesale-supplier benchmark.
//!
//! Nine tables and the five standard transaction types.  All tables except
//! ITEM are keyed (and partitioned) by warehouse id; transactions touch
//! three or more tables, which is what makes TPC-C much less amenable to
//! partitioning than TATP (paper §VI-A).  The NewOrder flow graph follows
//! the paper's Figure 7: a fixed part reading warehouse/district/customer/
//! item rows, a district update, the order/new-order inserts with the stock
//! reads, and the per-item stock updates and order-line inserts, separated
//! by four synchronization points.
//!
//! The dataset is scaled by [`TpccConfig`]; the paper uses scaling factor 80
//! (80 warehouses).  Order ids, history ids, and delivery queues are
//! tracked by the generator so inserts never collide and deliveries always
//! target existing orders.

use atrapos_core::KeyDomain;
use atrapos_engine::workload::{ensure_tables, ReconfigureError, WorkloadChange};
use atrapos_engine::{Action, ActionOp, Phase, TableSpec, TransactionSpec, Workload};
use atrapos_numa::CoreId;
use atrapos_storage::{Column, ColumnType, Database, Key, Record, Schema, TableId, Value};
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::BTreeMap;

use crate::generator::Mix;

/// Table id of WAREHOUSE.
pub const WAREHOUSE: TableId = TableId(0);
/// Table id of DISTRICT.
pub const DISTRICT: TableId = TableId(1);
/// Table id of CUSTOMER.
pub const CUSTOMER: TableId = TableId(2);
/// Table id of HISTORY.
pub const HISTORY: TableId = TableId(3);
/// Table id of NEW_ORDER.
pub const NEW_ORDER: TableId = TableId(4);
/// Table id of ORDER.
pub const ORDER: TableId = TableId(5);
/// Table id of ORDER_LINE.
pub const ORDER_LINE: TableId = TableId(6);
/// Table id of ITEM.
pub const ITEM: TableId = TableId(7);
/// Table id of STOCK.
pub const STOCK: TableId = TableId(8);

/// The five TPC-C transaction types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TpccTxn {
    /// Order 5–15 items from a warehouse (45% of the mix).
    NewOrder,
    /// Record a customer payment (43%).
    Payment,
    /// Query the status of a customer's latest order (4%).
    OrderStatus,
    /// Deliver pending orders of a warehouse (4%).
    Delivery,
    /// Count recently sold items below a stock threshold (4%).
    StockLevel,
}

impl TpccTxn {
    /// All five transaction types.
    pub const ALL: [TpccTxn; 5] = [
        TpccTxn::NewOrder,
        TpccTxn::Payment,
        TpccTxn::OrderStatus,
        TpccTxn::Delivery,
        TpccTxn::StockLevel,
    ];

    /// Parse a figure label back into the transaction type (the typed
    /// reconfiguration channel names transactions by label).
    pub fn from_label(label: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|t| t.label() == label)
    }

    /// Human-readable name matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            TpccTxn::NewOrder => "NewOrder",
            TpccTxn::Payment => "Payment",
            TpccTxn::OrderStatus => "OrderStatus",
            TpccTxn::Delivery => "Delivery",
            TpccTxn::StockLevel => "StockLevel",
        }
    }
}

/// TPC-C scale parameters.
#[derive(Debug, Clone)]
pub struct TpccConfig {
    /// Number of warehouses (the TPC-C scaling factor; 80 in the paper).
    pub warehouses: i64,
    /// Districts per warehouse (10 in the spec).
    pub districts_per_warehouse: i64,
    /// Customers per district (3 000 in the spec).
    pub customers_per_district: i64,
    /// Items in the catalogue (100 000 in the spec).
    pub items: i64,
    /// Orders pre-loaded per district.
    pub initial_orders_per_district: i64,
}

impl TpccConfig {
    /// The paper's configuration (scaling factor 80).  Note: populating this
    /// takes gigabytes of memory; use [`TpccConfig::scaled`] for routine
    /// runs.
    pub fn paper() -> Self {
        Self {
            warehouses: 80,
            districts_per_warehouse: 10,
            customers_per_district: 3_000,
            items: 100_000,
            initial_orders_per_district: 3_000,
        }
    }

    /// A scaled-down configuration with `warehouses` warehouses.
    pub fn scaled(warehouses: i64) -> Self {
        Self {
            warehouses,
            districts_per_warehouse: 10,
            customers_per_district: 30,
            items: 1_000,
            initial_orders_per_district: 30,
        }
    }
}

/// The TPC-C workload.
#[derive(Debug, Clone)]
pub struct Tpcc {
    config: TpccConfig,
    mix: Mix<TpccTxn>,
    /// Next order id per (warehouse, district).  `BTreeMap` rather than a
    /// std `HashMap` for all three: the generator state is sim-visible,
    /// and an ordered map can never leak hash-iteration nondeterminism
    /// into the spec stream (access here is keyed-only, but the ordered
    /// type makes that safe by construction — see `atrapos lint`).
    next_o_id: BTreeMap<(i64, i64), i64>,
    /// Oldest undelivered order per (warehouse, district).
    undelivered: BTreeMap<(i64, i64), i64>,
    /// Next history sequence number per (warehouse, district).
    next_h_seq: BTreeMap<(i64, i64), i64>,
    /// Reusable `(item, supply warehouse)` buffer for NewOrder generation.
    item_scratch: Vec<(i64, i64)>,
}

impl Tpcc {
    /// Build the workload with the standard mix.
    pub fn new(config: TpccConfig) -> Self {
        let mut next_o_id = BTreeMap::new();
        let mut undelivered = BTreeMap::new();
        let mut next_h_seq = BTreeMap::new();
        for w in 1..=config.warehouses {
            for d in 1..=config.districts_per_warehouse {
                next_o_id.insert((w, d), config.initial_orders_per_district + 1);
                undelivered.insert((w, d), config.initial_orders_per_district * 2 / 3 + 1);
                next_h_seq.insert((w, d), 1);
            }
        }
        Self {
            config,
            mix: Self::standard_mix(),
            next_o_id,
            undelivered,
            next_h_seq,
            item_scratch: Vec::new(),
        }
    }

    /// The standard TPC-C mix (45/43/4/4/4).
    pub fn standard_mix() -> Mix<TpccTxn> {
        Mix::new(vec![
            (TpccTxn::NewOrder, 45.0),
            (TpccTxn::Payment, 43.0),
            (TpccTxn::OrderStatus, 4.0),
            (TpccTxn::Delivery, 4.0),
            (TpccTxn::StockLevel, 4.0),
        ])
    }

    /// Run only one transaction type (Figure 8 reports StockLevel and
    /// OrderStatus individually).
    pub fn set_single(&mut self, txn: TpccTxn) {
        self.mix = Mix::single(txn);
    }

    /// Restore the standard mix.
    pub fn set_standard_mix(&mut self) {
        self.mix = Self::standard_mix();
    }

    /// The scale configuration.
    pub fn config(&self) -> &TpccConfig {
        &self.config
    }

    fn pick_warehouse(&self, rng: &mut SmallRng) -> i64 {
        rng.gen_range(1..=self.config.warehouses)
    }

    fn pick_district(&self, rng: &mut SmallRng) -> i64 {
        rng.gen_range(1..=self.config.districts_per_warehouse)
    }

    fn pick_customer(&self, rng: &mut SmallRng) -> i64 {
        rng.gen_range(1..=self.config.customers_per_district)
    }

    fn pick_item(&self, rng: &mut SmallRng) -> i64 {
        rng.gen_range(1..=self.config.items)
    }

    fn new_order(&mut self, rng: &mut SmallRng) -> TransactionSpec {
        let mut spec = TransactionSpec::empty();
        self.new_order_into(rng, &mut spec);
        spec
    }

    /// Build a NewOrder into a reusable spec buffer (allocation-free apart
    /// from the inserted records).  Draws from `rng` in the exact order
    /// the by-value builder always did.
    fn new_order_into(&mut self, rng: &mut SmallRng, spec: &mut TransactionSpec) {
        let warehouses = self.config.warehouses;
        let w = rng.gen_range(1..=warehouses);
        let d = rng.gen_range(1..=self.config.districts_per_warehouse);
        let c = rng.gen_range(1..=self.config.customers_per_district);
        let n_items = self.config.items;
        let ol_cnt = rng.gen_range(5..=15);
        let o_id = {
            let e = self.next_o_id.get_mut(&(w, d)).expect("district exists");
            let id = *e;
            *e += 1;
            id
        };
        let mut items = std::mem::take(&mut self.item_scratch);
        items.clear();
        let mut wtr = spec.refill("NewOrder");
        // Fixed part: read warehouse, district, customer, and the items.
        let phase1 = wtr.phase();
        phase1.push(Action::new(ActionOp::Read {
            table: WAREHOUSE,
            key: Key::int(w),
        }));
        phase1.push(Action::new(ActionOp::Read {
            table: DISTRICT,
            key: Key::ints(&[w, d]),
        }));
        phase1.push(Action::new(ActionOp::Read {
            table: CUSTOMER,
            key: Key::ints(&[w, d, c]),
        }));
        for _ in 0..ol_cnt {
            let i = rng.gen_range(1..=n_items);
            // 1% of the order lines come from a remote warehouse.
            let supply_w = if warehouses > 1 && rng.gen_range(0..100) == 0 {
                let mut other = rng.gen_range(1..=warehouses);
                if other == w {
                    other = (other % warehouses) + 1;
                }
                other
            } else {
                w
            };
            items.push((i, supply_w));
            phase1.push(Action::new(ActionOp::Read {
                table: ITEM,
                key: Key::int(i),
            }));
        }
        // Advance the district's next order id.
        wtr.phase().push(Action::new(ActionOp::Increment {
            table: DISTRICT,
            key: Key::ints(&[w, d]),
            column: 3,
            delta: 1,
        }));
        // Insert the order and read the stock rows.
        let phase3 = wtr.phase();
        phase3.push(Action::new(ActionOp::Insert {
            table: ORDER,
            record: Record::new(vec![
                Value::Int(w),
                Value::Int(d),
                Value::Int(o_id),
                Value::Int(c),
                Value::Int(0),
                Value::Int(ol_cnt),
            ]),
        }));
        phase3.push(Action::new(ActionOp::Insert {
            table: NEW_ORDER,
            record: Record::new(vec![Value::Int(w), Value::Int(d), Value::Int(o_id)]),
        }));
        for &(i, supply_w) in &items {
            phase3.push(Action::new(ActionOp::Read {
                table: STOCK,
                key: Key::ints(&[supply_w, i]),
            }));
        }
        // Update the stock rows and insert the order lines.
        let phase4 = wtr.phase();
        for (ol_number, &(i, supply_w)) in items.iter().enumerate() {
            phase4.push(Action::new(ActionOp::Increment {
                table: STOCK,
                key: Key::ints(&[supply_w, i]),
                column: 3,
                delta: 1,
            }));
            phase4.push(Action::new(ActionOp::Insert {
                table: ORDER_LINE,
                record: Record::new(vec![
                    Value::Int(w),
                    Value::Int(d),
                    Value::Int(o_id),
                    Value::Int(ol_number as i64 + 1),
                    Value::Int(i),
                    Value::Int(rng.gen_range(1..=10)),
                    Value::Int(rng.gen_range(1..=9999)),
                ]),
            }));
        }
        wtr.finish();
        self.item_scratch = items;
    }

    fn payment(&mut self, rng: &mut SmallRng) -> TransactionSpec {
        let mut spec = TransactionSpec::empty();
        self.payment_into(rng, &mut spec);
        spec
    }

    /// Build a Payment into a reusable spec buffer.
    fn payment_into(&mut self, rng: &mut SmallRng, spec: &mut TransactionSpec) {
        let w = self.pick_warehouse(rng);
        let d = self.pick_district(rng);
        // 15% of payments are made by a customer of a remote warehouse.
        let (c_w, c_d) = if self.config.warehouses > 1 && rng.gen_range(0..100) < 15 {
            let mut other = self.pick_warehouse(rng);
            if other == w {
                other = (other % self.config.warehouses) + 1;
            }
            (other, self.pick_district(rng))
        } else {
            (w, d)
        };
        let c = self.pick_customer(rng);
        let amount = rng.gen_range(1..=5000);
        let h_seq = {
            let e = self.next_h_seq.get_mut(&(w, d)).expect("district exists");
            let id = *e;
            *e += 1;
            id
        };
        let mut wtr = spec.refill("Payment");
        let phase1 = wtr.phase();
        phase1.push(Action::new(ActionOp::Increment {
            table: WAREHOUSE,
            key: Key::int(w),
            column: 2,
            delta: amount,
        }));
        phase1.push(Action::new(ActionOp::Increment {
            table: DISTRICT,
            key: Key::ints(&[w, d]),
            column: 2,
            delta: amount,
        }));
        let phase2 = wtr.phase();
        phase2.push(Action::new(ActionOp::Increment {
            table: CUSTOMER,
            key: Key::ints(&[c_w, c_d, c]),
            column: 3,
            delta: -amount,
        }));
        phase2.push(Action::new(ActionOp::Insert {
            table: HISTORY,
            record: Record::new(vec![
                Value::Int(w),
                Value::Int(d),
                Value::Int(h_seq),
                Value::Int(c),
                Value::Int(amount),
            ]),
        }));
        wtr.finish();
    }

    fn order_status(&mut self, rng: &mut SmallRng) -> TransactionSpec {
        let w = self.pick_warehouse(rng);
        let d = self.pick_district(rng);
        let c = self.pick_customer(rng);
        let max_o = self.next_o_id[&(w, d)] - 1;
        let o_id = rng.gen_range(1..=max_o.max(1));
        TransactionSpec::new(
            "OrderStatus",
            vec![
                Phase::new(vec![Action::new(ActionOp::Read {
                    table: CUSTOMER,
                    key: Key::ints(&[w, d, c]),
                })]),
                Phase::new(vec![Action::new(ActionOp::Read {
                    table: ORDER,
                    key: Key::ints(&[w, d, o_id]),
                })]),
                Phase::new(vec![Action::new(ActionOp::ReadRange {
                    table: ORDER_LINE,
                    from: Key::ints(&[w, d, o_id, 0]),
                    to: Key::ints(&[w, d, o_id + 1, 0]),
                    limit: 15,
                })]),
            ],
        )
    }

    fn delivery(&mut self, rng: &mut SmallRng) -> TransactionSpec {
        let w = self.pick_warehouse(rng);
        let carrier = rng.gen_range(1..=10);
        let mut phase_deletes = Vec::new();
        let mut phase_updates = Vec::new();
        for d in 1..=self.config.districts_per_warehouse {
            let entry = self.undelivered.get_mut(&(w, d)).expect("district exists");
            let o_id = *entry;
            if o_id >= self.next_o_id[&(w, d)] {
                continue; // nothing to deliver in this district
            }
            *entry += 1;
            phase_deletes.push(Action::new(ActionOp::Delete {
                table: NEW_ORDER,
                key: Key::ints(&[w, d, o_id]),
            }));
            phase_updates.push(Action::new(ActionOp::Update {
                table: ORDER,
                key: Key::ints(&[w, d, o_id]),
                changes: vec![(4, Value::Int(carrier))],
            }));
            phase_updates.push(Action::new(ActionOp::Increment {
                table: CUSTOMER,
                key: Key::ints(&[w, d, ((o_id - 1) % self.config.customers_per_district) + 1]),
                column: 5,
                delta: 1,
            }));
        }
        if phase_deletes.is_empty() {
            // Nothing to deliver anywhere: degenerate read of the warehouse.
            return TransactionSpec::single_phase(
                "Delivery",
                vec![Action::new(ActionOp::Read {
                    table: WAREHOUSE,
                    key: Key::int(w),
                })],
            );
        }
        TransactionSpec::new(
            "Delivery",
            vec![Phase::new(phase_deletes), Phase::new(phase_updates)],
        )
    }

    fn stock_level(&mut self, rng: &mut SmallRng) -> TransactionSpec {
        let w = self.pick_warehouse(rng);
        let d = self.pick_district(rng);
        let next_o = self.next_o_id[&(w, d)];
        let from_o = (next_o - 20).max(1);
        let mut phases = vec![
            Phase::new(vec![Action::new(ActionOp::Read {
                table: DISTRICT,
                key: Key::ints(&[w, d]),
            })]),
            Phase::new(vec![Action::new(ActionOp::ReadRange {
                table: ORDER_LINE,
                from: Key::ints(&[w, d, from_o, 0]),
                to: Key::ints(&[w, d, next_o, 0]),
                limit: 200,
            })
            .with_extra_instructions(2_000)]),
        ];
        // Probe the stock rows of ~20 distinct items referenced by the
        // recent order lines (the join of the paper's description).
        let stock_reads = (0..20)
            .map(|_| {
                Action::new(ActionOp::Read {
                    table: STOCK,
                    key: Key::ints(&[w, self.pick_item(rng)]),
                })
            })
            .collect();
        phases.push(Phase::new(stock_reads));
        TransactionSpec::new("StockLevel", phases)
    }
}

impl Workload for Tpcc {
    fn name(&self) -> &str {
        "TPC-C"
    }

    fn tables(&self) -> Vec<TableSpec> {
        let c = &self.config;
        let w_domain = KeyDomain::new(1, c.warehouses + 1);
        let item_domain = KeyDomain::new(1, c.items + 1);
        let districts = c.warehouses * c.districts_per_warehouse;
        let customers = districts * c.customers_per_district;
        let orders = districts * c.initial_orders_per_district;
        let mk = |id, name: &str, cols: Vec<Column>, pk: Vec<usize>, domain, rows: i64| TableSpec {
            id,
            schema: Schema::new(name, cols, pk),
            domain,
            rows: rows.max(0) as u64,
        };
        vec![
            mk(
                WAREHOUSE,
                "warehouse",
                vec![
                    Column::new("w_id", ColumnType::Int),
                    Column::new("name", ColumnType::Text),
                    Column::new("ytd", ColumnType::Int),
                ],
                vec![0],
                w_domain,
                c.warehouses,
            ),
            mk(
                DISTRICT,
                "district",
                vec![
                    Column::new("w_id", ColumnType::Int),
                    Column::new("d_id", ColumnType::Int),
                    Column::new("ytd", ColumnType::Int),
                    Column::new("next_o_id", ColumnType::Int),
                ],
                vec![0, 1],
                w_domain,
                districts,
            ),
            mk(
                CUSTOMER,
                "customer",
                vec![
                    Column::new("w_id", ColumnType::Int),
                    Column::new("d_id", ColumnType::Int),
                    Column::new("c_id", ColumnType::Int),
                    Column::new("balance", ColumnType::Int),
                    Column::new("payment_cnt", ColumnType::Int),
                    Column::new("delivery_cnt", ColumnType::Int),
                ],
                vec![0, 1, 2],
                w_domain,
                customers,
            ),
            mk(
                HISTORY,
                "history",
                vec![
                    Column::new("w_id", ColumnType::Int),
                    Column::new("d_id", ColumnType::Int),
                    Column::new("h_seq", ColumnType::Int),
                    Column::new("c_id", ColumnType::Int),
                    Column::new("amount", ColumnType::Int),
                ],
                vec![0, 1, 2],
                w_domain,
                0,
            ),
            mk(
                NEW_ORDER,
                "new_order",
                vec![
                    Column::new("w_id", ColumnType::Int),
                    Column::new("d_id", ColumnType::Int),
                    Column::new("o_id", ColumnType::Int),
                ],
                vec![0, 1, 2],
                w_domain,
                orders / 3,
            ),
            mk(
                ORDER,
                "order",
                vec![
                    Column::new("w_id", ColumnType::Int),
                    Column::new("d_id", ColumnType::Int),
                    Column::new("o_id", ColumnType::Int),
                    Column::new("c_id", ColumnType::Int),
                    Column::new("carrier_id", ColumnType::Int),
                    Column::new("ol_cnt", ColumnType::Int),
                ],
                vec![0, 1, 2],
                w_domain,
                orders,
            ),
            mk(
                ORDER_LINE,
                "order_line",
                vec![
                    Column::new("w_id", ColumnType::Int),
                    Column::new("d_id", ColumnType::Int),
                    Column::new("o_id", ColumnType::Int),
                    Column::new("ol_number", ColumnType::Int),
                    Column::new("i_id", ColumnType::Int),
                    Column::new("quantity", ColumnType::Int),
                    Column::new("amount", ColumnType::Int),
                ],
                vec![0, 1, 2, 3],
                w_domain,
                orders * 5,
            ),
            mk(
                ITEM,
                "item",
                vec![
                    Column::new("i_id", ColumnType::Int),
                    Column::new("name", ColumnType::Text),
                    Column::new("price", ColumnType::Int),
                ],
                vec![0],
                item_domain,
                c.items,
            ),
            mk(
                STOCK,
                "stock",
                vec![
                    Column::new("w_id", ColumnType::Int),
                    Column::new("i_id", ColumnType::Int),
                    Column::new("quantity", ColumnType::Int),
                    Column::new("ytd", ColumnType::Int),
                ],
                vec![0, 1],
                w_domain,
                c.warehouses * c.items,
            ),
        ]
    }

    fn populate(&self, db: &mut Database, filter: &dyn Fn(TableId, &Key) -> bool) {
        ensure_tables(self, db);
        let c = &self.config;
        // ITEM (shared catalogue).
        {
            let t = db.table_mut(ITEM).expect("item table");
            for i in 1..=c.items {
                let key = Key::int(i);
                if filter(ITEM, &key) {
                    t.load(Record::new(vec![
                        Value::Int(i),
                        Value::Text(format!("item-{i}")),
                        Value::Int((i % 100) + 1),
                    ]))
                    .expect("unique item");
                }
            }
        }
        for w in 1..=c.warehouses {
            if filter(WAREHOUSE, &Key::int(w)) {
                db.table_mut(WAREHOUSE)
                    .expect("warehouse table")
                    .load(Record::new(vec![
                        Value::Int(w),
                        Value::Text(format!("warehouse-{w}")),
                        Value::Int(0),
                    ]))
                    .expect("unique warehouse");
            }
            // STOCK.
            {
                let t = db.table_mut(STOCK).expect("stock table");
                for i in 1..=c.items {
                    let key = Key::ints(&[w, i]);
                    if filter(STOCK, &key) {
                        t.load(Record::new(vec![
                            Value::Int(w),
                            Value::Int(i),
                            Value::Int(50 + (i % 50)),
                            Value::Int(0),
                        ]))
                        .expect("unique stock");
                    }
                }
            }
            for d in 1..=c.districts_per_warehouse {
                if filter(DISTRICT, &Key::ints(&[w, d])) {
                    db.table_mut(DISTRICT)
                        .expect("district table")
                        .load(Record::new(vec![
                            Value::Int(w),
                            Value::Int(d),
                            Value::Int(0),
                            Value::Int(c.initial_orders_per_district + 1),
                        ]))
                        .expect("unique district");
                }
                {
                    let t = db.table_mut(CUSTOMER).expect("customer table");
                    for cu in 1..=c.customers_per_district {
                        let key = Key::ints(&[w, d, cu]);
                        if filter(CUSTOMER, &key) {
                            t.load(Record::new(vec![
                                Value::Int(w),
                                Value::Int(d),
                                Value::Int(cu),
                                Value::Int(-10),
                                Value::Int(1),
                                Value::Int(0),
                            ]))
                            .expect("unique customer");
                        }
                    }
                }
                let undelivered_from = c.initial_orders_per_district * 2 / 3 + 1;
                for o in 1..=c.initial_orders_per_district {
                    let cu = ((o - 1) % c.customers_per_district) + 1;
                    if filter(ORDER, &Key::ints(&[w, d, o])) {
                        db.table_mut(ORDER)
                            .expect("order table")
                            .load(Record::new(vec![
                                Value::Int(w),
                                Value::Int(d),
                                Value::Int(o),
                                Value::Int(cu),
                                Value::Int(if o < undelivered_from { 1 } else { 0 }),
                                Value::Int(5),
                            ]))
                            .expect("unique order");
                    }
                    if o >= undelivered_from && filter(NEW_ORDER, &Key::ints(&[w, d, o])) {
                        db.table_mut(NEW_ORDER)
                            .expect("new_order table")
                            .load(Record::new(vec![
                                Value::Int(w),
                                Value::Int(d),
                                Value::Int(o),
                            ]))
                            .expect("unique new order");
                    }
                    let t = db.table_mut(ORDER_LINE).expect("order_line table");
                    for ol in 1..=5 {
                        let key = Key::ints(&[w, d, o, ol]);
                        if filter(ORDER_LINE, &key) {
                            t.load(Record::new(vec![
                                Value::Int(w),
                                Value::Int(d),
                                Value::Int(o),
                                Value::Int(ol),
                                Value::Int(((o * 7 + ol) % c.items) + 1),
                                Value::Int(5),
                                Value::Int(100),
                            ]))
                            .expect("unique order line");
                        }
                    }
                }
            }
        }
    }

    fn next_transaction(&mut self, rng: &mut SmallRng, _client: CoreId) -> TransactionSpec {
        match self.mix.pick(rng) {
            TpccTxn::NewOrder => self.new_order(rng),
            TpccTxn::Payment => self.payment(rng),
            TpccTxn::OrderStatus => self.order_status(rng),
            TpccTxn::Delivery => self.delivery(rng),
            TpccTxn::StockLevel => self.stock_level(rng),
        }
    }

    fn next_transaction_into(
        &mut self,
        rng: &mut SmallRng,
        _client: CoreId,
        spec: &mut TransactionSpec,
    ) {
        // The two transaction types that dominate the mix (88%) refill the
        // buffer in place; the long tail overwrites it.
        match self.mix.pick(rng) {
            TpccTxn::NewOrder => self.new_order_into(rng, spec),
            TpccTxn::Payment => self.payment_into(rng, spec),
            TpccTxn::OrderStatus => *spec = self.order_status(rng),
            TpccTxn::Delivery => *spec = self.delivery(rng),
            TpccTxn::StockLevel => *spec = self.stock_level(rng),
        }
    }

    fn reconfigure(&mut self, change: &WorkloadChange) -> Result<(), ReconfigureError> {
        match change {
            WorkloadChange::SingleTransaction { txn } => match TpccTxn::from_label(txn) {
                Some(t) => {
                    self.set_single(t);
                    Ok(())
                }
                None => Err(ReconfigureError::UnknownTransaction {
                    workload: self.name().to_string(),
                    txn: txn.clone(),
                    known: TpccTxn::ALL.iter().map(|t| t.label()).collect(),
                }),
            },
            WorkloadChange::StandardMix => {
                self.set_standard_mix();
                Ok(())
            }
            other => Err(ReconfigureError::Unsupported {
                workload: self.name().to_string(),
                change: other.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny() -> Tpcc {
        Tpcc::new(TpccConfig {
            warehouses: 2,
            districts_per_warehouse: 2,
            customers_per_district: 10,
            items: 50,
            initial_orders_per_district: 9,
        })
    }

    #[test]
    fn population_counts_match_the_configuration() {
        let w = tiny();
        let mut db = Database::new();
        w.populate(&mut db, &|_, _| true);
        assert_eq!(db.table(WAREHOUSE).unwrap().len(), 2);
        assert_eq!(db.table(DISTRICT).unwrap().len(), 4);
        assert_eq!(db.table(CUSTOMER).unwrap().len(), 40);
        assert_eq!(db.table(ITEM).unwrap().len(), 50);
        assert_eq!(db.table(STOCK).unwrap().len(), 100);
        assert_eq!(db.table(ORDER).unwrap().len(), 36);
        assert_eq!(db.table(ORDER_LINE).unwrap().len(), 180);
        // A third of the initial orders are still undelivered.
        assert_eq!(db.table(NEW_ORDER).unwrap().len(), 4 * 3);
    }

    #[test]
    fn new_order_has_the_figure7_flow_graph() {
        let mut w = tiny();
        let mut rng = SmallRng::seed_from_u64(1);
        w.set_single(TpccTxn::NewOrder);
        let spec = w.next_transaction(&mut rng, CoreId(0));
        assert_eq!(spec.class, "NewOrder");
        assert_eq!(spec.phases.len(), 4);
        assert!(spec.is_update());
        // Fixed part: warehouse + district + customer + one read per item.
        let ol_cnt = spec.phases[0].actions.len() - 3;
        assert!((5..=15).contains(&ol_cnt));
        // Variable part: one stock update + one order-line insert per item.
        assert_eq!(spec.phases[3].actions.len(), 2 * ol_cnt);
        assert!(spec.num_sync_points() >= 4);
    }

    #[test]
    fn order_ids_never_collide() {
        let mut w = tiny();
        w.set_single(TpccTxn::NewOrder);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            let spec = w.next_transaction(&mut rng, CoreId(0));
            // The ORDER insert carries (w, d, o_id).
            let rec = spec.phases[2]
                .actions
                .iter()
                .find_map(|a| match &a.op {
                    ActionOp::Insert { table, record } if *table == ORDER => Some(record.clone()),
                    _ => None,
                })
                .expect("order insert present");
            let key = (
                rec.get(0).as_int(),
                rec.get(1).as_int(),
                rec.get(2).as_int(),
            );
            assert!(seen.insert(key), "duplicate order id {key:?}");
        }
    }

    #[test]
    fn payment_touches_warehouse_district_customer_history() {
        let mut w = tiny();
        w.set_single(TpccTxn::Payment);
        let mut rng = SmallRng::seed_from_u64(3);
        let spec = w.next_transaction(&mut rng, CoreId(0));
        let tables = spec.tables_touched();
        assert!(tables.contains(&WAREHOUSE));
        assert!(tables.contains(&DISTRICT));
        assert!(tables.contains(&CUSTOMER));
        assert!(tables.contains(&HISTORY));
    }

    #[test]
    fn delivery_consumes_the_undelivered_queue() {
        let mut w = tiny();
        w.set_single(TpccTxn::Delivery);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut delete_count = 0;
        for _ in 0..20 {
            let spec = w.next_transaction(&mut rng, CoreId(0));
            delete_count += spec
                .phases
                .iter()
                .flat_map(|p| &p.actions)
                .filter(|a| matches!(a.op, ActionOp::Delete { .. }))
                .count();
        }
        // Only the pre-loaded undelivered orders can be delivered
        // (3 per district × 4 districts), after which Delivery degenerates.
        assert_eq!(delete_count, 12);
    }

    /// FNV-1a over the debug rendering of a seeded spec stream: every
    /// key, record value, phase boundary, and class label feeds the hash,
    /// so any behavioural change to generation moves it.
    fn spec_stream_digest(w: &mut Tpcc, seed: u64, n: usize) -> u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for i in 0..n {
            let spec = w.next_transaction(&mut rng, CoreId((i % 4) as u32));
            for b in format!("{spec:?}").bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// Pins the generated transaction stream across the internal-map
    /// change from std `HashMap` to `BTreeMap`: the order-id, delivery,
    /// and history-sequence state is keyed-access only, so the container
    /// swap must not move a single byte of any spec.  The constant was
    /// captured from the `HashMap`-based generator.
    #[test]
    fn spec_stream_is_bit_identical_across_map_swap() {
        let mut w = tiny();
        assert_eq!(spec_stream_digest(&mut w, 42, 300), DIGEST_BEFORE_SWAP);
        // State carries across calls (order ids advanced, deliveries
        // consumed), so a second stream from the same workload has its
        // own pinned value.
        assert_eq!(spec_stream_digest(&mut w, 43, 300), DIGEST_AFTER_CARRYOVER);
    }

    const DIGEST_BEFORE_SWAP: u64 = 9383646677652672317;
    const DIGEST_AFTER_CARRYOVER: u64 = 8061377527235854923;

    #[test]
    fn standard_mix_produces_every_type() {
        let mut w = tiny();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut classes = std::collections::BTreeSet::new();
        for _ in 0..400 {
            classes.insert(w.next_transaction(&mut rng, CoreId(0)).class);
        }
        for expect in [
            "NewOrder",
            "Payment",
            "OrderStatus",
            "Delivery",
            "StockLevel",
        ] {
            assert!(classes.contains(expect), "missing {expect}");
        }
    }
}
