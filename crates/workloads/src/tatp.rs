//! The TATP (Telecom Application Transaction Processing) benchmark.
//!
//! TATP models a mobile-phone provider: four tables, all perfectly
//! partitionable on the subscriber id, and seven transaction types of three
//! classes — single-table read-only (GetSubscriberData, GetAccessData),
//! multi-table read-only (GetNewDestination), and updates
//! (UpdateSubscriberData, UpdateLocation, InsertCallForwarding,
//! DeleteCallForwarding).  The paper uses an 800 K-subscriber dataset; the
//! default here is scaled down (see [`TatpConfig`]) and the paper size is
//! available via [`TatpConfig::paper`].
//!
//! The workload exposes the knobs the adaptive experiments need: switching
//! to a single transaction type (Figures 10 and 13, Table II) and
//! introducing access skew at runtime (Figure 11).

use crate::generator::{KeyDistribution, Mix};
use atrapos_core::{KeyDomain, KeySampler};
use atrapos_engine::workload::{ensure_tables, ReconfigureError, WorkloadChange};
use atrapos_engine::{Action, ActionOp, TableSpec, TransactionSpec, Workload};
use atrapos_numa::CoreId;
use atrapos_storage::{Column, ColumnType, Database, Key, Record, Schema, TableId, Value};
use rand::rngs::SmallRng;
use rand::Rng;

/// Table id of SUBSCRIBER.
pub const SUBSCRIBER: TableId = TableId(0);
/// Table id of ACCESS_INFO.
pub const ACCESS_INFO: TableId = TableId(1);
/// Table id of SPECIAL_FACILITY.
pub const SPECIAL_FACILITY: TableId = TableId(2);
/// Table id of CALL_FORWARDING.
pub const CALL_FORWARDING: TableId = TableId(3);

/// The seven TATP transaction types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TatpTxn {
    /// Read one subscriber row (35% of the standard mix).
    GetSubscriberData,
    /// Read a special facility and the matching call forwarding row (10%).
    GetNewDestination,
    /// Read one access-info row (35%).
    GetAccessData,
    /// Update subscriber and special-facility data (2%).
    UpdateSubscriberData,
    /// Update the subscriber's VLR location (14%).
    UpdateLocation,
    /// Insert a call-forwarding row (2%).
    InsertCallForwarding,
    /// Delete a call-forwarding row (2%).
    DeleteCallForwarding,
}

impl TatpTxn {
    /// All seven transaction types.
    pub const ALL: [TatpTxn; 7] = [
        TatpTxn::GetSubscriberData,
        TatpTxn::GetNewDestination,
        TatpTxn::GetAccessData,
        TatpTxn::UpdateSubscriberData,
        TatpTxn::UpdateLocation,
        TatpTxn::InsertCallForwarding,
        TatpTxn::DeleteCallForwarding,
    ];

    /// Human-readable name matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            TatpTxn::GetSubscriberData => "GetSubData",
            TatpTxn::GetNewDestination => "GetNewDest",
            TatpTxn::GetAccessData => "GetAccData",
            TatpTxn::UpdateSubscriberData => "UpdSubData",
            TatpTxn::UpdateLocation => "UpdLocation",
            TatpTxn::InsertCallForwarding => "InsCallFwd",
            TatpTxn::DeleteCallForwarding => "DelCallFwd",
        }
    }

    /// Parse a figure label back into the transaction type (the typed
    /// reconfiguration channel names transactions by label).
    pub fn from_label(label: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|t| t.label() == label)
    }
}

/// TATP configuration.
#[derive(Debug, Clone)]
pub struct TatpConfig {
    /// Number of subscribers.
    pub subscribers: i64,
    /// Access-info / special-facility rows per subscriber.
    pub records_per_subscriber: i64,
}

impl TatpConfig {
    /// The paper's dataset: 800 K subscribers.
    pub fn paper() -> Self {
        Self {
            subscribers: 800_000,
            records_per_subscriber: 2,
        }
    }

    /// A scaled-down dataset suitable for fast runs.
    pub fn scaled(subscribers: i64) -> Self {
        Self {
            subscribers,
            records_per_subscriber: 2,
        }
    }
}

/// The TATP workload.
#[derive(Debug, Clone)]
pub struct Tatp {
    config: TatpConfig,
    mix: Mix<TatpTxn>,
    distribution: KeyDistribution,
    /// Derived from `distribution` over the subscriber domain; rebuilt on
    /// reconfiguration so per-transaction draws never allocate (the
    /// Zipfian variant precomputes its CDF here).
    sampler: KeySampler,
}

impl Tatp {
    /// Build the workload with the standard transaction mix.
    pub fn new(config: TatpConfig) -> Self {
        let distribution = KeyDistribution::Uniform;
        let sampler = distribution.sampler(1, config.subscribers + 1);
        Self {
            config,
            mix: Self::standard_mix(),
            distribution,
            sampler,
        }
    }

    /// The standard TATP mix (35/10/35/2/14/2/2).
    pub fn standard_mix() -> Mix<TatpTxn> {
        Mix::new(vec![
            (TatpTxn::GetSubscriberData, 35.0),
            (TatpTxn::GetNewDestination, 10.0),
            (TatpTxn::GetAccessData, 35.0),
            (TatpTxn::UpdateSubscriberData, 2.0),
            (TatpTxn::UpdateLocation, 14.0),
            (TatpTxn::InsertCallForwarding, 2.0),
            (TatpTxn::DeleteCallForwarding, 2.0),
        ])
    }

    /// Run only one transaction type (Table II, Figures 8/10/13).
    pub fn set_single(&mut self, txn: TatpTxn) {
        self.mix = Mix::single(txn);
    }

    /// Restore the standard mix.
    pub fn set_standard_mix(&mut self) {
        self.mix = Self::standard_mix();
    }

    /// Change the subscriber-id distribution (Figure 11 uses a hotspot where
    /// 50% of the requests hit 20% of the data; the YCSB-style experiments
    /// may carry Zipfian or drifting skew over).
    pub fn set_distribution(&mut self, d: KeyDistribution) {
        self.distribution = d;
        self.sampler = d.sampler(1, self.config.subscribers + 1);
    }

    /// Number of subscribers.
    pub fn subscribers(&self) -> i64 {
        self.config.subscribers
    }

    /// The current subscriber-id distribution.
    pub fn distribution(&self) -> KeyDistribution {
        self.distribution
    }

    fn subscriber_id(&mut self, rng: &mut SmallRng) -> i64 {
        self.sampler.sample(rng)
    }

    fn build(&mut self, txn: TatpTxn, rng: &mut SmallRng) -> TransactionSpec {
        let mut spec = TransactionSpec::empty();
        self.build_into(txn, rng, &mut spec);
        spec
    }

    /// Build a transaction of type `txn` into a reusable spec buffer.
    /// Draws from `rng` in the exact order the by-value builder always
    /// did, so generation stays bit-for-bit reproducible.
    fn build_into(&mut self, txn: TatpTxn, rng: &mut SmallRng, spec: &mut TransactionSpec) {
        let s = self.subscriber_id(rng);
        match txn {
            TatpTxn::GetSubscriberData => {
                let mut w = spec.refill("GetSubData");
                w.phase().push(Action::new(ActionOp::Read {
                    table: SUBSCRIBER,
                    key: Key::int(s),
                }));
                w.finish();
            }
            TatpTxn::GetAccessData => {
                let mut w = spec.refill("GetAccData");
                w.phase().push(Action::new(ActionOp::Read {
                    table: ACCESS_INFO,
                    key: Key::ints(&[s, 1]),
                }));
                w.finish();
            }
            TatpTxn::GetNewDestination => {
                let mut w = spec.refill("GetNewDest");
                w.phase().push(Action::new(ActionOp::Read {
                    table: SPECIAL_FACILITY,
                    key: Key::ints(&[s, 1]),
                }));
                w.phase().push(Action::new(ActionOp::Read {
                    table: CALL_FORWARDING,
                    key: Key::ints(&[s, 1, 0]),
                }));
                w.finish();
            }
            TatpTxn::UpdateSubscriberData => {
                let mut w = spec.refill("UpdSubData");
                let phase = w.phase();
                phase.push(Action::new(ActionOp::Update {
                    table: SUBSCRIBER,
                    key: Key::int(s),
                    changes: vec![(2, Value::Int(rng.gen_range(0..2)))],
                }));
                phase.push(Action::new(ActionOp::Update {
                    table: SPECIAL_FACILITY,
                    key: Key::ints(&[s, 1]),
                    changes: vec![(3, Value::Int(rng.gen_range(0..256)))],
                }));
                w.finish();
            }
            TatpTxn::UpdateLocation => {
                let mut w = spec.refill("UpdLocation");
                w.phase().push(Action::new(ActionOp::Update {
                    table: SUBSCRIBER,
                    key: Key::int(s),
                    changes: vec![(4, Value::Int(rng.gen_range(0..1 << 30)))],
                }));
                w.finish();
            }
            TatpTxn::InsertCallForwarding => {
                let mut w = spec.refill("InsCallFwd");
                let phase = w.phase();
                phase.push(Action::new(ActionOp::Read {
                    table: SUBSCRIBER,
                    key: Key::int(s),
                }));
                phase.push(Action::new(ActionOp::Read {
                    table: SPECIAL_FACILITY,
                    key: Key::ints(&[s, 1]),
                }));
                w.phase().push(Action::new(ActionOp::Insert {
                    table: CALL_FORWARDING,
                    record: Record::new(vec![
                        Value::Int(s),
                        Value::Int(1),
                        Value::Int(8 * rng.gen_range(1i64..3)),
                        Value::Int(24),
                        Value::from("5551234"),
                    ]),
                }));
                w.finish();
            }
            TatpTxn::DeleteCallForwarding => {
                let mut w = spec.refill("DelCallFwd");
                w.phase().push(Action::new(ActionOp::Read {
                    table: SUBSCRIBER,
                    key: Key::int(s),
                }));
                w.phase().push(Action::new(ActionOp::Delete {
                    table: CALL_FORWARDING,
                    key: Key::ints(&[s, 1, 8 * rng.gen_range(1i64..3)]),
                }));
                w.finish();
            }
        }
    }
}

impl Workload for Tatp {
    fn name(&self) -> &str {
        "TATP"
    }

    fn tables(&self) -> Vec<TableSpec> {
        let n = self.config.subscribers;
        let domain = KeyDomain::new(1, n + 1);
        let per_sub = self.config.records_per_subscriber as u64;
        vec![
            TableSpec {
                id: SUBSCRIBER,
                schema: Schema::new(
                    "subscriber",
                    vec![
                        Column::new("s_id", ColumnType::Int),
                        Column::new("sub_nbr", ColumnType::Text),
                        Column::new("bit_1", ColumnType::Int),
                        Column::new("msc_location", ColumnType::Int),
                        Column::new("vlr_location", ColumnType::Int),
                    ],
                    vec![0],
                ),
                domain,
                rows: n as u64,
            },
            TableSpec {
                id: ACCESS_INFO,
                schema: Schema::new(
                    "access_info",
                    vec![
                        Column::new("s_id", ColumnType::Int),
                        Column::new("ai_type", ColumnType::Int),
                        Column::new("data1", ColumnType::Int),
                        Column::new("data2", ColumnType::Int),
                    ],
                    vec![0, 1],
                )
                .with_foreign_key(vec![0], SUBSCRIBER),
                domain,
                rows: n as u64 * per_sub,
            },
            TableSpec {
                id: SPECIAL_FACILITY,
                schema: Schema::new(
                    "special_facility",
                    vec![
                        Column::new("s_id", ColumnType::Int),
                        Column::new("sf_type", ColumnType::Int),
                        Column::new("is_active", ColumnType::Int),
                        Column::new("data_a", ColumnType::Int),
                    ],
                    vec![0, 1],
                )
                .with_foreign_key(vec![0], SUBSCRIBER),
                domain,
                rows: n as u64 * per_sub,
            },
            TableSpec {
                id: CALL_FORWARDING,
                schema: Schema::new(
                    "call_forwarding",
                    vec![
                        Column::new("s_id", ColumnType::Int),
                        Column::new("sf_type", ColumnType::Int),
                        Column::new("start_time", ColumnType::Int),
                        Column::new("end_time", ColumnType::Int),
                        Column::new("numberx", ColumnType::Text),
                    ],
                    vec![0, 1, 2],
                )
                .with_foreign_key(vec![0, 1], SPECIAL_FACILITY),
                domain,
                rows: n as u64,
            },
        ]
    }

    fn populate(&self, db: &mut Database, filter: &dyn Fn(TableId, &Key) -> bool) {
        ensure_tables(self, db);
        let n = self.config.subscribers;
        let per_sub = self.config.records_per_subscriber;
        {
            let t = db.table_mut(SUBSCRIBER).expect("subscriber table");
            for s in 1..=n {
                let key = Key::int(s);
                if filter(SUBSCRIBER, &key) {
                    t.load(Record::new(vec![
                        Value::Int(s),
                        Value::Text(format!("{s:015}")),
                        Value::Int(s % 2),
                        Value::Int(s % 1000),
                        Value::Int(s % 10_000),
                    ]))
                    .expect("unique subscriber");
                }
            }
        }
        {
            let t = db.table_mut(ACCESS_INFO).expect("access_info table");
            for s in 1..=n {
                for ai in 1..=per_sub {
                    let key = Key::ints(&[s, ai]);
                    if filter(ACCESS_INFO, &key) {
                        t.load(Record::new(vec![
                            Value::Int(s),
                            Value::Int(ai),
                            Value::Int(s % 256),
                            Value::Int(ai % 256),
                        ]))
                        .expect("unique access info");
                    }
                }
            }
        }
        {
            let t = db
                .table_mut(SPECIAL_FACILITY)
                .expect("special_facility table");
            for s in 1..=n {
                for sf in 1..=per_sub {
                    let key = Key::ints(&[s, sf]);
                    if filter(SPECIAL_FACILITY, &key) {
                        t.load(Record::new(vec![
                            Value::Int(s),
                            Value::Int(sf),
                            Value::Int(1),
                            Value::Int((s + sf) % 256),
                        ]))
                        .expect("unique special facility");
                    }
                }
            }
        }
        {
            let t = db
                .table_mut(CALL_FORWARDING)
                .expect("call_forwarding table");
            for s in 1..=n {
                let key = Key::ints(&[s, 1, 0]);
                if filter(CALL_FORWARDING, &key) {
                    t.load(Record::new(vec![
                        Value::Int(s),
                        Value::Int(1),
                        Value::Int(0),
                        Value::Int(8),
                        Value::from("5550000"),
                    ]))
                    .expect("unique call forwarding");
                }
            }
        }
    }

    fn next_transaction(&mut self, rng: &mut SmallRng, _client: CoreId) -> TransactionSpec {
        let txn = self.mix.pick(rng);
        self.build(txn, rng)
    }

    fn next_transaction_into(
        &mut self,
        rng: &mut SmallRng,
        _client: CoreId,
        spec: &mut TransactionSpec,
    ) {
        let txn = self.mix.pick(rng);
        self.build_into(txn, rng, spec);
    }

    fn reconfigure(&mut self, change: &WorkloadChange) -> Result<(), ReconfigureError> {
        match change {
            WorkloadChange::SingleTransaction { txn } => match TatpTxn::from_label(txn) {
                Some(t) => {
                    self.set_single(t);
                    Ok(())
                }
                None => Err(ReconfigureError::UnknownTransaction {
                    workload: self.name().to_string(),
                    txn: txn.clone(),
                    known: TatpTxn::ALL.iter().map(|t| t.label()).collect(),
                }),
            },
            WorkloadChange::StandardMix => {
                self.set_standard_mix();
                Ok(())
            }
            WorkloadChange::Distribution { distribution } => {
                self.set_distribution(*distribution);
                Ok(())
            }
            WorkloadChange::ZipfianTheta { theta } => {
                self.set_distribution(KeyDistribution::Zipfian { theta: *theta });
                Ok(())
            }
            other => Err(ReconfigureError::Unsupported {
                workload: self.name().to_string(),
                change: other.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small() -> Tatp {
        Tatp::new(TatpConfig::scaled(200))
    }

    #[test]
    fn population_matches_the_schema_counts() {
        let w = small();
        let mut db = Database::new();
        w.populate(&mut db, &|_, _| true);
        assert_eq!(db.table(SUBSCRIBER).unwrap().len(), 200);
        assert_eq!(db.table(ACCESS_INFO).unwrap().len(), 400);
        assert_eq!(db.table(SPECIAL_FACILITY).unwrap().len(), 400);
        assert_eq!(db.table(CALL_FORWARDING).unwrap().len(), 200);
    }

    #[test]
    fn filtered_population_slices_by_subscriber() {
        let w = small();
        let mut db = Database::new();
        w.populate(&mut db, &|_, k| k.head_int() <= 100);
        assert_eq!(db.table(SUBSCRIBER).unwrap().len(), 100);
        assert_eq!(db.table(ACCESS_INFO).unwrap().len(), 200);
    }

    #[test]
    fn standard_mix_generates_all_classes() {
        let mut w = small();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut classes = std::collections::BTreeSet::new();
        for _ in 0..500 {
            let spec = w.next_transaction(&mut rng, CoreId(0));
            classes.insert(spec.class);
        }
        assert!(classes.contains("GetSubData"));
        assert!(classes.contains("GetNewDest"));
        assert!(classes.contains("UpdLocation"));
        assert!(classes.len() >= 5, "saw classes {classes:?}");
    }

    #[test]
    fn single_type_mode_only_generates_that_type() {
        let mut w = small();
        w.set_single(TatpTxn::UpdateSubscriberData);
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..20 {
            let spec = w.next_transaction(&mut rng, CoreId(0));
            assert_eq!(spec.class, "UpdSubData");
            assert!(spec.is_update());
            assert_eq!(spec.tables_touched().len(), 2);
        }
        w.set_standard_mix();
    }

    #[test]
    fn skewed_distribution_prefers_low_subscriber_ids() {
        let mut w = small();
        w.set_distribution(KeyDistribution::Hotspot {
            data_fraction: 0.2,
            access_fraction: 0.9,
        });
        w.set_single(TatpTxn::GetSubscriberData);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut hot = 0;
        for _ in 0..500 {
            let spec = w.next_transaction(&mut rng, CoreId(0));
            if spec.phases[0].actions[0].op.routing_key_head() <= 40 {
                hot += 1;
            }
        }
        assert!(hot > 350, "hot accesses {hot}");
    }

    #[test]
    fn zipfian_theta_reconfigure_concentrates_on_low_ids() {
        let mut w = small();
        w.reconfigure(&WorkloadChange::ZipfianTheta { theta: 0.99 })
            .unwrap();
        assert_eq!(w.distribution(), KeyDistribution::Zipfian { theta: 0.99 });
        w.set_single(TatpTxn::GetSubscriberData);
        let mut rng = SmallRng::seed_from_u64(12);
        let mut hot = 0;
        for _ in 0..500 {
            let spec = w.next_transaction(&mut rng, CoreId(0));
            let head = spec.phases[0].actions[0].op.routing_key_head();
            assert!((1..=200).contains(&head));
            if head <= 40 {
                hot += 1;
            }
        }
        // The hottest fifth of the domain draws well over its uniform
        // share (100 of 500) under theta = 0.99.
        assert!(hot > 250, "hot accesses {hot}");
    }

    #[test]
    fn keys_stay_within_the_subscriber_domain() {
        let mut w = small();
        let mut rng = SmallRng::seed_from_u64(10);
        for _ in 0..300 {
            let spec = w.next_transaction(&mut rng, CoreId(0));
            for phase in &spec.phases {
                for a in &phase.actions {
                    let head = a.op.routing_key_head();
                    assert!((1..=200).contains(&head), "key head {head} out of domain");
                }
            }
        }
    }
}
