//! Key-distribution and transaction-mix helpers shared by the workloads.

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How keys are drawn from a domain `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KeyDistribution {
    /// Uniform over the whole domain.
    Uniform,
    /// Hotspot skew: `access_fraction` of the requests go to the first
    /// `data_fraction` of the domain (the paper's Figure 11 uses 50% of the
    /// requests on 20% of the data).
    Hotspot {
        /// Fraction of the domain that is hot (0..1).
        data_fraction: f64,
        /// Fraction of accesses that hit the hot range (0..1).
        access_fraction: f64,
    },
}

impl KeyDistribution {
    /// Draw a key head from `[lo, hi)`.
    pub fn sample(&self, rng: &mut SmallRng, lo: i64, hi: i64) -> i64 {
        debug_assert!(hi > lo);
        match *self {
            KeyDistribution::Uniform => rng.gen_range(lo..hi),
            KeyDistribution::Hotspot {
                data_fraction,
                access_fraction,
            } => {
                let width = hi - lo;
                let hot_width = ((width as f64 * data_fraction).ceil() as i64).clamp(1, width);
                if rng.gen_bool(access_fraction.clamp(0.0, 1.0)) {
                    rng.gen_range(lo..lo + hot_width)
                } else if hot_width < width {
                    rng.gen_range(lo + hot_width..hi)
                } else {
                    rng.gen_range(lo..hi)
                }
            }
        }
    }
}

/// A weighted transaction mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mix<T: Clone> {
    entries: Vec<(T, f64)>,
    total: f64,
}

impl<T: Clone> Mix<T> {
    /// Build a mix from `(item, weight)` pairs.
    pub fn new(entries: Vec<(T, f64)>) -> Self {
        assert!(!entries.is_empty(), "a mix needs at least one entry");
        let total = entries.iter().map(|(_, w)| w).sum();
        assert!(total > 0.0, "mix weights must sum to a positive value");
        Self { entries, total }
    }

    /// A mix that always picks `item`.
    pub fn single(item: T) -> Self {
        Self::new(vec![(item, 1.0)])
    }

    /// Draw one item.
    pub fn pick(&self, rng: &mut SmallRng) -> T {
        let mut x = rng.gen_range(0.0..self.total);
        for (item, w) in &self.entries {
            if x < *w {
                return item.clone();
            }
            x -= w;
        }
        self.entries.last().expect("non-empty").0.clone()
    }

    /// The entries of the mix.
    pub fn entries(&self) -> &[(T, f64)] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_covers_the_domain() {
        let mut rng = SmallRng::seed_from_u64(1);
        let d = KeyDistribution::Uniform;
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..2000 {
            let k = d.sample(&mut rng, 0, 100);
            assert!((0..100).contains(&k));
            if k < 10 {
                seen_low = true;
            }
            if k >= 90 {
                seen_high = true;
            }
        }
        assert!(seen_low && seen_high);
    }

    #[test]
    fn hotspot_concentrates_accesses() {
        let mut rng = SmallRng::seed_from_u64(2);
        let d = KeyDistribution::Hotspot {
            data_fraction: 0.2,
            access_fraction: 0.5,
        };
        let n = 10_000;
        let hot = (0..n)
            .filter(|_| d.sample(&mut rng, 0, 1000) < 200)
            .count() as f64;
        let frac = hot / n as f64;
        assert!((0.45..0.55).contains(&frac), "hot fraction {frac}");
    }

    #[test]
    fn mix_respects_weights() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mix = Mix::new(vec![("a", 0.8), ("b", 0.2)]);
        let n = 10_000;
        let a = (0..n).filter(|_| mix.pick(&mut rng) == "a").count() as f64 / n as f64;
        assert!((0.75..0.85).contains(&a), "a fraction {a}");
        let single = Mix::single("x");
        assert_eq!(single.pick(&mut rng), "x");
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn empty_mix_is_rejected() {
        let _: Mix<&str> = Mix::new(vec![]);
    }
}
