//! Key-distribution and transaction-mix helpers shared by the workloads.

use rand::rngs::SmallRng;
use rand::Rng;

// The distribution types moved to `atrapos-core` so the engine's typed
// reconfiguration channel (`WorkloadChange`) can carry them; re-exported
// here for compatibility.  `KeyDistribution` covers uniform, hotspot,
// Zipfian, and drifting-hotspot skew; `KeySampler` is its precomputed
// per-domain instantiation.
pub use atrapos_core::{KeyDistribution, KeySampler};

/// A weighted transaction mix.
///
/// The cumulative-weight table is precomputed once per mix change, so
/// drawing is a binary search instead of the per-transaction linear walk
/// over the entries it used to be — the selection logic runs once per
/// mix, not once per transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct Mix<T: Clone> {
    entries: Vec<(T, f64)>,
    /// `cumulative[i]` = sum of the first `i + 1` weights.  Derived from
    /// `entries`; rebuilt (never trusted from a file) on deserialization.
    cumulative: Vec<f64>,
    total: f64,
}

impl<T: Clone + serde::ser::Serialize> serde::ser::Serialize for Mix<T> {
    fn to_value(&self) -> serde::Value {
        // Only the entries go on the wire (the historical format); the
        // cumulative table and total are derived state.
        serde::Value::Object(vec![(
            "entries".to_string(),
            serde::ser::Serialize::to_value(&self.entries),
        )])
    }
}

impl<T: Clone + serde::de::Deserialize> serde::de::Deserialize for Mix<T> {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let entries = v
            .get("entries")
            .ok_or_else(|| serde::Error::new("Mix: missing field 'entries'"))?;
        let entries: Vec<(T, f64)> = serde::de::Deserialize::from_value(entries)?;
        if entries.is_empty() {
            return Err(serde::Error::new("Mix: needs at least one entry"));
        }
        if entries.iter().map(|(_, w)| w).sum::<f64>() <= 0.0 {
            return Err(serde::Error::new(
                "Mix: weights must sum to a positive value",
            ));
        }
        Ok(Mix::new(entries))
    }
}

impl<T: Clone> Mix<T> {
    /// Build a mix from `(item, weight)` pairs.
    pub fn new(entries: Vec<(T, f64)>) -> Self {
        assert!(!entries.is_empty(), "a mix needs at least one entry");
        let mut cumulative = Vec::with_capacity(entries.len());
        let mut total = 0.0;
        for (_, w) in &entries {
            total += w;
            cumulative.push(total);
        }
        assert!(total > 0.0, "mix weights must sum to a positive value");
        Self {
            entries,
            cumulative,
            total,
        }
    }

    /// A mix that always picks `item`.
    pub fn single(item: T) -> Self {
        Self::new(vec![(item, 1.0)])
    }

    /// Draw one item: the first entry whose cumulative weight exceeds the
    /// draw (identical selection to walking the weights in order).
    pub fn pick(&self, rng: &mut SmallRng) -> T {
        let x = rng.gen_range(0.0..self.total);
        let idx = self.cumulative.partition_point(|&c| c <= x);
        self.entries[idx.min(self.entries.len() - 1)].0.clone()
    }

    /// The entries of the mix.
    pub fn entries(&self) -> &[(T, f64)] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mix_respects_weights() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mix = Mix::new(vec![("a", 0.8), ("b", 0.2)]);
        let n = 10_000;
        let a = (0..n).filter(|_| mix.pick(&mut rng) == "a").count() as f64 / n as f64;
        assert!((0.75..0.85).contains(&a), "a fraction {a}");
        let single = Mix::single("x");
        assert_eq!(single.pick(&mut rng), "x");
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn empty_mix_is_rejected() {
        let _: Mix<&str> = Mix::new(vec![]);
    }
}
