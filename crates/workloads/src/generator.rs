//! Key-distribution and transaction-mix helpers shared by the workloads.

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

// The distribution type moved to `atrapos-core` so the engine's typed
// reconfiguration channel (`WorkloadChange`) can carry it; re-exported here
// for compatibility.
pub use atrapos_core::KeyDistribution;

/// A weighted transaction mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mix<T: Clone> {
    entries: Vec<(T, f64)>,
    total: f64,
}

impl<T: Clone> Mix<T> {
    /// Build a mix from `(item, weight)` pairs.
    pub fn new(entries: Vec<(T, f64)>) -> Self {
        assert!(!entries.is_empty(), "a mix needs at least one entry");
        let total = entries.iter().map(|(_, w)| w).sum();
        assert!(total > 0.0, "mix weights must sum to a positive value");
        Self { entries, total }
    }

    /// A mix that always picks `item`.
    pub fn single(item: T) -> Self {
        Self::new(vec![(item, 1.0)])
    }

    /// Draw one item.
    pub fn pick(&self, rng: &mut SmallRng) -> T {
        let mut x = rng.gen_range(0.0..self.total);
        for (item, w) in &self.entries {
            if x < *w {
                return item.clone();
            }
            x -= w;
        }
        self.entries.last().expect("non-empty").0.clone()
    }

    /// The entries of the mix.
    pub fn entries(&self) -> &[(T, f64)] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mix_respects_weights() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mix = Mix::new(vec![("a", 0.8), ("b", 0.2)]);
        let n = 10_000;
        let a = (0..n).filter(|_| mix.pick(&mut rng) == "a").count() as f64 / n as f64;
        assert!((0.75..0.85).contains(&a), "a fraction {a}");
        let single = Mix::single("x");
        assert_eq!(single.pick(&mut rng), "x");
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn empty_mix_is_rejected() {
        let _: Mix<&str> = Mix::new(vec![]);
    }
}
