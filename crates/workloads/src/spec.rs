//! Workloads as data: the declarative [`WorkloadSpec`] engine.
//!
//! Every workload the paper's designs are evaluated on (TATP, TPC-C,
//! YCSB, SimpleAb) is a hand-written Rust module, so opening a new access
//! pattern for the partitioning advisor to chase used to mean a
//! crate-level change.  This module makes workloads *data*: a
//! serializable [`WorkloadSpec`] describes tables (key domains, record
//! shapes, optional parent links) and weighted transaction templates over
//! the existing op vocabulary — read / update / insert / scan / RMW —
//! with per-argument [`KeyDistribution`]s, and [`WorkloadSpec::compile`]
//! turns it into a [`CompiledWorkload`] running on exactly the machinery
//! the hand-rolled generators use:
//!
//! * every `Key` argument becomes a precomputed [`KeySampler`] built once
//!   at compile time, so per-transaction draws never allocate;
//! * transactions are built through the same
//!   [`TransactionSpec::refill`] buffer-reuse path as YCSB;
//! * the template mix is a [`Mix`] over template indices with the same
//!   cumulative-weight selection the hand-rolled mixes use.
//!
//! Because the sampler, mix, and refill layers are shared — and arguments
//! draw from the rng in declaration order — a spec that transcribes a
//! hand-rolled workload is *bit-identical* to it: same seed, same
//! transaction stream, same simulated history.  [`ycsb_a`] and
//! [`simple_ab`] are shipped transcriptions proven equal to their Rust
//! originals by digest and full-run parity tests.
//!
//! Malformed specs are rejected at load with typed [`SpecError`]s
//! (zero-weight mixes, dangling table references, out-of-range key
//! domains, empty tables, unknown ops or arguments), never at run time.
//!
//! ```
//! use atrapos_engine::Workload;
//! use atrapos_workloads::spec::WorkloadSpec;
//!
//! let json = r#"{
//!   "name": "tiny-reads",
//!   "tables": [{ "name": "t", "keys": 1000, "sub_rows": 1, "payload_fields": 1 }],
//!   "templates": [{
//!     "name": "Read",
//!     "weight": 1.0,
//!     "args": [{ "Key": { "name": "k", "table": "t", "distribution": "Uniform" } }],
//!     "phases": [{ "ops": [{ "Read": { "table": "t", "key": ["k"] } }] }]
//!   }]
//! }"#;
//! let mut w = WorkloadSpec::from_json(json).unwrap().compile().unwrap();
//! let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(42);
//! let txn = w.next_transaction(&mut rng, atrapos_numa::CoreId(0));
//! assert_eq!(txn.class, "Read");
//! assert_eq!(txn.phases.len(), 1);
//! ```

use crate::generator::{KeyDistribution, KeySampler, Mix};
use atrapos_core::KeyDomain;
use atrapos_engine::workload::{ensure_tables, ReconfigureError, WorkloadChange};
use atrapos_engine::{Action, ActionOp, TableSpec, TransactionSpec, Workload};
use atrapos_numa::CoreId;
use atrapos_storage::{Column, ColumnType, Database, Key, Record, Schema, TableId, Value};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Largest key domain a `Zipfian` argument may sample (the core layer
/// materializes one CDF entry per key; see `atrapos_core::distribution`).
const MAX_ZIPFIAN_KEYS: i64 = 1 << 23;

// ---------------------------------------------------------------------
// The spec vocabulary
// ---------------------------------------------------------------------

/// One table of a spec workload.
///
/// `keys` head keys make up the domain `[0, keys)`.  With `sub_rows = 1`
/// the table has a single-column integer primary key and `keys` rows;
/// with `sub_rows > 1` the primary key is the composite
/// `(head, sub)` with `sub` in `[0, sub_rows)`, for `keys × sub_rows`
/// rows — the SimpleAb "B holds N rows per A row" shape.  `parent`
/// declares that the head key references another table's head key, which
/// the placement advisor uses to co-locate the correlated partitions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableDef {
    /// Table name (referenced by templates and `parent` links).
    pub name: String,
    /// Distinct head keys; the key domain is `[0, keys)`.
    pub keys: i64,
    /// Rows per head key (`1` = plain single-column primary key).
    pub sub_rows: i64,
    /// Integer payload columns after the key column(s).
    pub payload_fields: usize,
    /// Head keys reference this table's head keys (foreign key).
    pub parent: Option<String>,
}

/// One drawn argument of a transaction template.  Arguments draw from
/// the rng **in declaration order**, one draw each — this is how a spec
/// expresses the exact draw sequence of a hand-rolled generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArgDef {
    /// A head key of `table`, drawn from `distribution` over the table's
    /// key domain (compiled to a precomputed [`KeySampler`]).
    Key {
        /// Argument name (referenced by ops).
        name: String,
        /// The table whose domain is sampled.
        table: String,
        /// How the key is drawn.
        distribution: KeyDistribution,
    },
    /// An integer drawn uniformly from `[lo, hi)`.
    Uniform {
        /// Argument name (referenced by ops).
        name: String,
        /// Inclusive lower bound.
        lo: i64,
        /// Exclusive upper bound.
        hi: i64,
    },
}

impl ArgDef {
    /// The argument's name.
    pub fn name(&self) -> &str {
        match self {
            ArgDef::Key { name, .. } | ArgDef::Uniform { name, .. } => name,
        }
    }
}

/// One operation of a template phase.  Key references name arguments;
/// a single-column key is `["k"]`, a composite key `["a", "b"]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OpDef {
    /// Read one record by key.
    Read {
        /// Target table.
        table: String,
        /// Key argument name(s), matching the table's key arity.
        key: Vec<String>,
    },
    /// Overwrite one field of one record: column index `field` (a
    /// `Uniform` argument bounded by the table's column count) is set to
    /// the integer value of argument `value`.
    Update {
        /// Target table.
        table: String,
        /// Key argument name(s).
        key: Vec<String>,
        /// Argument naming the column index to overwrite.
        field: String,
        /// Argument providing the new value.
        value: String,
    },
    /// Read the head-key range `[key, key + len)` (at most `len`
    /// records); `len` is a `Uniform` argument with `lo ≥ 1`.
    Scan {
        /// Target table.
        table: String,
        /// Argument naming the range start (head key).
        key: String,
        /// Argument naming the range length.
        len: String,
    },
    /// Insert a new record at the tail of the keyspace (the per-table
    /// insert cursor starts at `keys` and grows monotonically, exactly
    /// like YCSB's tail inserts).  Plain tables only.
    Insert {
        /// Target table.
        table: String,
    },
}

/// One phase of a template: its ops run in parallel and synchronize at
/// the phase boundary.  `sync_bytes` overrides the default
/// synchronization payload of one cache line (64 B) per op.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseDef {
    /// The phase's operations.
    pub ops: Vec<OpDef>,
    /// Synchronization payload override (`null` = 64 B per op).
    pub sync_bytes: Option<u64>,
}

/// One weighted transaction template.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemplateDef {
    /// Template name — becomes the transaction class.
    pub name: String,
    /// Mix weight (ratios matter, not the sum; `0` excludes the template
    /// from the standard mix but keeps it addressable by
    /// `WorkloadChange::SingleTransaction`).
    pub weight: f64,
    /// Drawn arguments, in rng draw order.
    pub args: Vec<ArgDef>,
    /// Phases in execution order.
    pub phases: Vec<PhaseDef>,
}

/// A complete declarative workload: tables plus weighted transaction
/// templates.  Serializable, validated at load, compiled by
/// [`WorkloadSpec::compile`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Workload name (reported by `Workload::name`).
    pub name: String,
    /// The tables, in [`TableId`] order.
    pub tables: Vec<TableDef>,
    /// The transaction templates.
    pub templates: Vec<TemplateDef>,
}

// ---------------------------------------------------------------------
// Typed validation errors
// ---------------------------------------------------------------------

/// Why a spec was rejected at load time.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The JSON did not parse into the spec vocabulary (including
    /// unknown op or argument variants).
    Parse {
        /// The underlying parse error.
        message: String,
    },
    /// The spec declares no tables.
    NoTables,
    /// The spec declares no templates.
    NoTemplates,
    /// Two tables share a name.
    DuplicateTable {
        /// The repeated name.
        table: String,
    },
    /// A table declares no rows (`keys < 1` or `sub_rows < 1`).
    EmptyTable {
        /// The offending table.
        table: String,
    },
    /// A `parent` link or op references a table the spec never declares.
    UnknownTable {
        /// Where the dangling reference sits (template or table name).
        context: String,
        /// The missing table name.
        table: String,
    },
    /// A child table's key domain exceeds its parent's (its head keys
    /// could reference rows that do not exist).
    DomainExceedsParent {
        /// The child table.
        table: String,
        /// Its declared parent.
        parent: String,
    },
    /// A `Zipfian` argument samples a domain too large to materialize.
    ZipfianDomain {
        /// The template declaring the argument.
        template: String,
        /// The oversized table.
        table: String,
    },
    /// Two templates share a name.
    DuplicateTemplate {
        /// The repeated name.
        template: String,
    },
    /// A template weight is negative.
    NegativeWeight {
        /// The offending template.
        template: String,
    },
    /// The template weights sum to zero — the mix describes no workload.
    ZeroWeightSum,
    /// A template has no phases.
    EmptyTemplate {
        /// The offending template.
        template: String,
    },
    /// A phase has no ops.
    EmptyPhase {
        /// The offending template.
        template: String,
    },
    /// Two arguments of one template share a name.
    DuplicateArg {
        /// The template.
        template: String,
        /// The repeated argument name.
        arg: String,
    },
    /// A `Uniform` argument's range `[lo, hi)` is empty.
    EmptyRange {
        /// The template.
        template: String,
        /// The offending argument.
        arg: String,
    },
    /// An op references an argument the template never declares.
    UnknownArg {
        /// The template.
        template: String,
        /// The missing argument name.
        arg: String,
    },
    /// An op's key reference does not match the table's key arity.
    KeyArity {
        /// The template.
        template: String,
        /// The table.
        table: String,
        /// The table's key arity (1 or 2).
        expected: usize,
        /// The op's key reference length.
        got: usize,
    },
    /// An update's `field` argument is not a `Uniform` bounded inside
    /// the table's column range.
    FieldOutOfRange {
        /// The template.
        template: String,
        /// The table.
        table: String,
        /// The offending argument.
        arg: String,
    },
    /// A scan's `len` argument is not a `Uniform` with `lo ≥ 1`.
    BadScanLength {
        /// The template.
        template: String,
        /// The offending argument.
        arg: String,
    },
    /// An insert targets a composite-key (child) table.
    InsertIntoChild {
        /// The template.
        template: String,
        /// The table.
        table: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse { message } => write!(f, "spec does not parse: {message}"),
            SpecError::NoTables => write!(f, "spec declares no tables"),
            SpecError::NoTemplates => write!(f, "spec declares no templates"),
            SpecError::DuplicateTable { table } => {
                write!(f, "table '{table}' is declared twice")
            }
            SpecError::EmptyTable { table } => {
                write!(
                    f,
                    "table '{table}' is empty (keys and sub_rows must be >= 1)"
                )
            }
            SpecError::UnknownTable { context, table } => {
                write!(f, "'{context}' references unknown table '{table}'")
            }
            SpecError::DomainExceedsParent { table, parent } => write!(
                f,
                "table '{table}' has more head keys than its parent '{parent}'"
            ),
            SpecError::ZipfianDomain { template, table } => write!(
                f,
                "template '{template}': Zipfian argument over table '{table}' \
                 exceeds the {MAX_ZIPFIAN_KEYS}-key cap"
            ),
            SpecError::DuplicateTemplate { template } => {
                write!(f, "template '{template}' is declared twice")
            }
            SpecError::NegativeWeight { template } => {
                write!(f, "template '{template}' has a negative weight")
            }
            SpecError::ZeroWeightSum => {
                write!(f, "template weights must sum to a positive value")
            }
            SpecError::EmptyTemplate { template } => {
                write!(f, "template '{template}' has no phases")
            }
            SpecError::EmptyPhase { template } => {
                write!(f, "template '{template}' has a phase with no ops")
            }
            SpecError::DuplicateArg { template, arg } => {
                write!(f, "template '{template}' declares argument '{arg}' twice")
            }
            SpecError::EmptyRange { template, arg } => write!(
                f,
                "template '{template}': argument '{arg}' has an empty range"
            ),
            SpecError::UnknownArg { template, arg } => write!(
                f,
                "template '{template}' references unknown argument '{arg}'"
            ),
            SpecError::KeyArity {
                template,
                table,
                expected,
                got,
            } => write!(
                f,
                "template '{template}': table '{table}' has a {expected}-column key, \
                 the op references {got} argument(s)"
            ),
            SpecError::FieldOutOfRange {
                template,
                table,
                arg,
            } => write!(
                f,
                "template '{template}': field argument '{arg}' must be a Uniform \
                 bounded inside table '{table}'s column range"
            ),
            SpecError::BadScanLength { template, arg } => write!(
                f,
                "template '{template}': scan length '{arg}' must be a Uniform with lo >= 1"
            ),
            SpecError::InsertIntoChild { template, table } => write!(
                f,
                "template '{template}': cannot insert into composite-key table '{table}'"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

// ---------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------

impl WorkloadSpec {
    /// Parse a spec from JSON (no validation beyond the vocabulary; call
    /// [`WorkloadSpec::validate`] or [`WorkloadSpec::compile`] next).
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        serde::json::from_str(text).map_err(|e| SpecError::Parse {
            message: e.to_string(),
        })
    }

    /// Serialize the spec as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// The index of `name` in the table list.
    fn table_index(&self, name: &str) -> Option<usize> {
        self.tables.iter().position(|t| t.name == name)
    }

    /// The key arity of table `i` (1, or 2 for composite child tables).
    fn key_arity(&self, i: usize) -> usize {
        if self.tables[i].sub_rows > 1 {
            2
        } else {
            1
        }
    }

    /// Total columns of table `i` (key column(s) plus payload fields).
    fn columns(&self, i: usize) -> usize {
        self.key_arity(i) + self.tables[i].payload_fields
    }

    /// Check every structural rule; compiled specs cannot fail at run
    /// time.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.tables.is_empty() {
            return Err(SpecError::NoTables);
        }
        if self.templates.is_empty() {
            return Err(SpecError::NoTemplates);
        }
        for (i, t) in self.tables.iter().enumerate() {
            if self.tables[..i].iter().any(|o| o.name == t.name) {
                return Err(SpecError::DuplicateTable {
                    table: t.name.clone(),
                });
            }
            if t.keys < 1 || t.sub_rows < 1 {
                return Err(SpecError::EmptyTable {
                    table: t.name.clone(),
                });
            }
            if let Some(parent) = &t.parent {
                let p = self
                    .table_index(parent)
                    .ok_or_else(|| SpecError::UnknownTable {
                        context: t.name.clone(),
                        table: parent.clone(),
                    })?;
                if t.keys > self.tables[p].keys {
                    return Err(SpecError::DomainExceedsParent {
                        table: t.name.clone(),
                        parent: parent.clone(),
                    });
                }
            }
        }
        let mut total = 0.0f64;
        for (i, tpl) in self.templates.iter().enumerate() {
            if self.templates[..i].iter().any(|o| o.name == tpl.name) {
                return Err(SpecError::DuplicateTemplate {
                    template: tpl.name.clone(),
                });
            }
            if tpl.weight < 0.0 {
                return Err(SpecError::NegativeWeight {
                    template: tpl.name.clone(),
                });
            }
            total += tpl.weight;
            self.validate_template(tpl)?;
        }
        // NaN weights (which slip past the negative check) must also land
        // here, so test "not strictly positive" rather than `<= 0.0`.
        if total.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(SpecError::ZeroWeightSum);
        }
        Ok(())
    }

    fn validate_template(&self, tpl: &TemplateDef) -> Result<(), SpecError> {
        let name = || tpl.name.clone();
        if tpl.phases.is_empty() {
            return Err(SpecError::EmptyTemplate { template: name() });
        }
        for (i, arg) in tpl.args.iter().enumerate() {
            if tpl.args[..i].iter().any(|o| o.name() == arg.name()) {
                return Err(SpecError::DuplicateArg {
                    template: name(),
                    arg: arg.name().to_string(),
                });
            }
            match arg {
                ArgDef::Key {
                    table,
                    distribution,
                    ..
                } => {
                    let t = self
                        .table_index(table)
                        .ok_or_else(|| SpecError::UnknownTable {
                            context: name(),
                            table: table.clone(),
                        })?;
                    if matches!(distribution, KeyDistribution::Zipfian { .. })
                        && self.tables[t].keys > MAX_ZIPFIAN_KEYS
                    {
                        return Err(SpecError::ZipfianDomain {
                            template: name(),
                            table: table.clone(),
                        });
                    }
                }
                ArgDef::Uniform { name: arg, lo, hi } => {
                    if lo >= hi {
                        return Err(SpecError::EmptyRange {
                            template: name(),
                            arg: arg.clone(),
                        });
                    }
                }
            }
        }
        let arg_of = |a: &str| tpl.args.iter().find(|x| x.name() == a);
        let resolve = |a: &str| {
            arg_of(a).ok_or_else(|| SpecError::UnknownArg {
                template: name(),
                arg: a.to_string(),
            })
        };
        for phase in &tpl.phases {
            if phase.ops.is_empty() {
                return Err(SpecError::EmptyPhase { template: name() });
            }
            for op in &phase.ops {
                let table = match op {
                    OpDef::Read { table, .. }
                    | OpDef::Update { table, .. }
                    | OpDef::Scan { table, .. }
                    | OpDef::Insert { table } => table,
                };
                let t = self
                    .table_index(table)
                    .ok_or_else(|| SpecError::UnknownTable {
                        context: name(),
                        table: table.clone(),
                    })?;
                let check_key = |key: &[String]| -> Result<(), SpecError> {
                    if key.len() != self.key_arity(t) {
                        return Err(SpecError::KeyArity {
                            template: name(),
                            table: table.clone(),
                            expected: self.key_arity(t),
                            got: key.len(),
                        });
                    }
                    for a in key {
                        resolve(a)?;
                    }
                    Ok(())
                };
                match op {
                    OpDef::Read { key, .. } => check_key(key)?,
                    OpDef::Update {
                        key, field, value, ..
                    } => {
                        check_key(key)?;
                        match resolve(field)? {
                            ArgDef::Uniform { lo, hi, .. }
                                if *lo >= 0 && *hi <= self.columns(t) as i64 => {}
                            _ => {
                                return Err(SpecError::FieldOutOfRange {
                                    template: name(),
                                    table: table.clone(),
                                    arg: field.clone(),
                                })
                            }
                        }
                        resolve(value)?;
                    }
                    OpDef::Scan { key, len, .. } => {
                        // Scans range over head keys, so a single
                        // argument regardless of arity.
                        resolve(key)?;
                        match resolve(len)? {
                            ArgDef::Uniform { lo, .. } if *lo >= 1 => {}
                            _ => {
                                return Err(SpecError::BadScanLength {
                                    template: name(),
                                    arg: len.clone(),
                                })
                            }
                        }
                    }
                    OpDef::Insert { .. } => {
                        if self.key_arity(t) != 1 {
                            return Err(SpecError::InsertIntoChild {
                                template: name(),
                                table: table.clone(),
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Validate and compile the spec onto the precomputed-sampler +
    /// buffer-reuse hot path.
    pub fn compile(&self) -> Result<CompiledWorkload, SpecError> {
        CompiledWorkload::compile(self.clone())
    }
}

// ---------------------------------------------------------------------
// The compiled form
// ---------------------------------------------------------------------

/// A compiled argument: ready to draw without allocation.
#[derive(Debug, Clone)]
enum CompiledArg {
    /// A precomputed sampler over the table's key domain.  The table
    /// index is kept so distribution reconfigurations can rebuild it.
    Key { table: usize, sampler: KeySampler },
    /// A uniform integer draw from `[lo, hi)`.
    Uniform { lo: i64, hi: i64 },
}

/// How an op finds its key in the drawn-argument buffer.
#[derive(Debug, Clone, Copy)]
enum KeySlot {
    /// Single-column key: argument index.
    One(usize),
    /// Composite key: (head, sub) argument indices.
    Two(usize, usize),
}

/// A compiled op: argument and table references resolved to indices.
#[derive(Debug, Clone)]
enum CompiledOp {
    Read {
        table: TableId,
        key: KeySlot,
    },
    Update {
        table: TableId,
        key: KeySlot,
        field: usize,
        value: usize,
    },
    Scan {
        table: TableId,
        key: usize,
        len: usize,
    },
    Insert {
        table: usize,
    },
}

/// A compiled template: leaked class name (once, at compile time),
/// arguments in draw order, resolved phases.
#[derive(Debug, Clone)]
struct CompiledTemplate {
    class: &'static str,
    args: Vec<CompiledArg>,
    phases: Vec<(Vec<CompiledOp>, Option<u64>)>,
}

/// Shape of one compiled table (population and insert-cursor data).
#[derive(Debug, Clone)]
struct CompiledTable {
    keys: i64,
    sub_rows: i64,
    payload_fields: usize,
    parent: Option<usize>,
}

/// A [`WorkloadSpec`] compiled onto the allocation-free generation hot
/// path.  The spec is retained and reconfigurations write through to it,
/// so [`CompiledWorkload::spec`] always describes the workload as it
/// currently runs.
#[derive(Debug, Clone)]
pub struct CompiledWorkload {
    spec: WorkloadSpec,
    tables: Vec<CompiledTable>,
    templates: Vec<CompiledTemplate>,
    /// Template selection by index; rebuilt on mix reconfigurations.
    mix: Mix<usize>,
    /// Per-table next insert key (starts at `keys`, grows monotonically).
    insert_cursors: Vec<i64>,
    /// Reusable buffer of drawn argument values.
    arg_buf: Vec<i64>,
}

impl CompiledWorkload {
    /// Validate `spec` and compile it.
    pub fn compile(spec: WorkloadSpec) -> Result<Self, SpecError> {
        spec.validate()?;
        let tables: Vec<CompiledTable> = spec
            .tables
            .iter()
            .map(|t| CompiledTable {
                keys: t.keys,
                sub_rows: t.sub_rows,
                payload_fields: t.payload_fields,
                parent: t.parent.as_deref().and_then(|p| spec.table_index(p)),
            })
            .collect();
        let templates: Vec<CompiledTemplate> = spec
            .templates
            .iter()
            .map(|tpl| Self::compile_template(&spec, tpl))
            .collect();
        let mix = standard_mix(&spec);
        let insert_cursors = tables.iter().map(|t| t.keys).collect();
        Ok(Self {
            spec,
            tables,
            templates,
            mix,
            insert_cursors,
            arg_buf: Vec::new(),
        })
    }

    /// Compile one (already validated) template.
    fn compile_template(spec: &WorkloadSpec, tpl: &TemplateDef) -> CompiledTemplate {
        // The transaction class is a `&'static str` throughout the
        // engine; each template name is leaked exactly once here, never
        // per transaction.
        let class: &'static str = Box::leak(tpl.name.clone().into_boxed_str());
        let arg_index = |a: &str| {
            tpl.args
                .iter()
                .position(|x| x.name() == a)
                .expect("validated arg reference")
        };
        let args = tpl
            .args
            .iter()
            .map(|arg| match arg {
                ArgDef::Key {
                    table,
                    distribution,
                    ..
                } => {
                    let t = spec.table_index(table).expect("validated table reference");
                    CompiledArg::Key {
                        table: t,
                        sampler: distribution.sampler(0, spec.tables[t].keys),
                    }
                }
                ArgDef::Uniform { lo, hi, .. } => CompiledArg::Uniform { lo: *lo, hi: *hi },
            })
            .collect();
        let phases = tpl
            .phases
            .iter()
            .map(|phase| {
                let ops = phase
                    .ops
                    .iter()
                    .map(|op| {
                        let table =
                            |name: &str| spec.table_index(name).expect("validated table reference");
                        match op {
                            OpDef::Read { table: t, key } => CompiledOp::Read {
                                table: TableId(table(t) as u32),
                                key: key_slot(key, &arg_index),
                            },
                            OpDef::Update {
                                table: t,
                                key,
                                field,
                                value,
                            } => CompiledOp::Update {
                                table: TableId(table(t) as u32),
                                key: key_slot(key, &arg_index),
                                field: arg_index(field),
                                value: arg_index(value),
                            },
                            OpDef::Scan { table: t, key, len } => CompiledOp::Scan {
                                table: TableId(table(t) as u32),
                                key: arg_index(key),
                                len: arg_index(len),
                            },
                            OpDef::Insert { table: t } => CompiledOp::Insert { table: table(t) },
                        }
                    })
                    .collect();
                (ops, phase.sync_bytes)
            })
            .collect();
        CompiledTemplate {
            class,
            args,
            phases,
        }
    }

    /// The spec as it currently runs (reconfigurations write through).
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The template class names, in declaration order.
    pub fn classes(&self) -> Vec<&'static str> {
        self.templates.iter().map(|t| t.class).collect()
    }

    /// Set every `Key` argument's distribution and rebuild its sampler —
    /// the spec-workload equivalent of YCSB's `set_distribution`.
    pub fn set_distribution(&mut self, d: KeyDistribution) {
        for tpl in &mut self.spec.templates {
            for arg in &mut tpl.args {
                if let ArgDef::Key { distribution, .. } = arg {
                    *distribution = d;
                }
            }
        }
        for tpl in &mut self.templates {
            for arg in &mut tpl.args {
                if let CompiledArg::Key { table, sampler } = arg {
                    *sampler = d.sampler(0, self.spec.tables[*table].keys);
                }
            }
        }
    }
}

/// The standard mix over template indices: positive-weight templates in
/// declaration order (identical selection to the hand-rolled mixes).
fn standard_mix(spec: &WorkloadSpec) -> Mix<usize> {
    Mix::new(
        spec.templates
            .iter()
            .enumerate()
            .filter(|(_, t)| t.weight > 0.0)
            .map(|(i, t)| (i, t.weight))
            .collect(),
    )
}

/// Resolve a key reference to argument-buffer slots.
fn key_slot(key: &[String], arg_index: &dyn Fn(&str) -> usize) -> KeySlot {
    match key {
        [a] => KeySlot::One(arg_index(a)),
        [a, b] => KeySlot::Two(arg_index(a), arg_index(b)),
        _ => unreachable!("validated key arity"),
    }
}

/// Build the storage key for a slot from the drawn arguments.
fn key_of(slot: KeySlot, args: &[i64]) -> Key {
    match slot {
        KeySlot::One(a) => Key::int(args[a]),
        KeySlot::Two(a, b) => Key::ints(&[args[a], args[b]]),
    }
}

/// The record stored under head key `k` of a plain table: the key column
/// plus `payload_fields` integer fields (the YCSB record shape).
fn plain_record(k: i64, payload_fields: usize) -> Record {
    let mut values = Vec::with_capacity(1 + payload_fields);
    values.push(Value::Int(k));
    for f in 0..payload_fields as i64 {
        values.push(Value::Int(k * 10 + f));
    }
    Record::new(values)
}

/// The record stored under `(i, j)` of a composite-key table.
fn composite_record(i: i64, j: i64, payload_fields: usize) -> Record {
    let mut values = Vec::with_capacity(2 + payload_fields);
    values.push(Value::Int(i));
    values.push(Value::Int(j));
    for f in 0..payload_fields as i64 {
        values.push(Value::Int(i * 100 + j + f));
    }
    Record::new(values)
}

impl Workload for CompiledWorkload {
    fn name(&self) -> &str {
        &self.spec.name
    }

    fn tables(&self) -> Vec<TableSpec> {
        self.spec
            .tables
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let composite = t.sub_rows > 1;
                let mut columns = if composite {
                    vec![
                        Column::new("pk_head", ColumnType::Int),
                        Column::new("pk_sub", ColumnType::Int),
                    ]
                } else {
                    vec![Column::new("id", ColumnType::Int)]
                };
                for f in 0..t.payload_fields {
                    columns.push(Column::new(format!("f{f}"), ColumnType::Int));
                }
                let pk = if composite { vec![0, 1] } else { vec![0] };
                let mut schema = Schema::new(t.name.clone(), columns, pk);
                if let Some(p) = self.tables[i].parent {
                    schema = schema.with_foreign_key(vec![0], TableId(p as u32));
                }
                TableSpec {
                    id: TableId(i as u32),
                    schema,
                    domain: KeyDomain::new(0, t.keys),
                    rows: (t.keys * t.sub_rows) as u64,
                }
            })
            .collect()
    }

    fn populate(&self, db: &mut Database, filter: &dyn Fn(TableId, &Key) -> bool) {
        ensure_tables(self, db);
        for (i, t) in self.tables.iter().enumerate() {
            let id = TableId(i as u32);
            let table = db.table_mut(id).expect("spec table exists");
            if t.sub_rows > 1 {
                for k in 0..t.keys {
                    for j in 0..t.sub_rows {
                        let key = Key::ints(&[k, j]);
                        if filter(id, &key) {
                            table
                                .load(composite_record(k, j, t.payload_fields))
                                .expect("unique keys");
                        }
                    }
                }
            } else {
                for k in 0..t.keys {
                    let key = Key::int(k);
                    if filter(id, &key) {
                        table
                            .load(plain_record(k, t.payload_fields))
                            .expect("unique keys");
                    }
                }
            }
        }
    }

    fn next_transaction(&mut self, rng: &mut SmallRng, client: CoreId) -> TransactionSpec {
        let mut spec = TransactionSpec::empty();
        self.next_transaction_into(rng, client, &mut spec);
        spec
    }

    fn next_transaction_into(
        &mut self,
        rng: &mut SmallRng,
        _client: CoreId,
        out: &mut TransactionSpec,
    ) {
        // A single-template spec consumes no mix draw, matching the
        // hand-rolled single-transaction workloads (SimpleAb, micro);
        // multi-template specs always pick — even through a
        // `Mix::single` reconfiguration — matching YCSB.
        let t = if self.templates.len() == 1 {
            0
        } else {
            self.mix.pick(rng)
        };
        let Self {
            tables,
            templates,
            insert_cursors,
            arg_buf,
            ..
        } = self;
        let tpl = &mut templates[t];
        // Arguments draw in declaration order — the contract that lets a
        // spec reproduce a hand-rolled generator's rng stream bit for
        // bit.
        arg_buf.clear();
        for arg in &mut tpl.args {
            arg_buf.push(match arg {
                CompiledArg::Key { sampler, .. } => sampler.sample(rng),
                CompiledArg::Uniform { lo, hi } => rng.gen_range(*lo..*hi),
            });
        }
        let mut w = out.refill(tpl.class);
        for (ops, _) in &tpl.phases {
            let phase = w.phase();
            for op in ops {
                phase.push(match op {
                    CompiledOp::Read { table, key } => Action::new(ActionOp::Read {
                        table: *table,
                        key: key_of(*key, arg_buf),
                    }),
                    CompiledOp::Update {
                        table,
                        key,
                        field,
                        value,
                    } => Action::new(ActionOp::Update {
                        table: *table,
                        key: key_of(*key, arg_buf),
                        changes: vec![(arg_buf[*field] as usize, Value::Int(arg_buf[*value]))],
                    }),
                    CompiledOp::Scan { table, key, len } => {
                        let start = arg_buf[*key];
                        let len = arg_buf[*len];
                        Action::new(ActionOp::ReadRange {
                            table: *table,
                            from: Key::int(start),
                            to: Key::int(start + len),
                            limit: len as usize,
                        })
                    }
                    CompiledOp::Insert { table } => {
                        let k = insert_cursors[*table];
                        insert_cursors[*table] += 1;
                        Action::new(ActionOp::Insert {
                            table: TableId(*table as u32),
                            record: plain_record(k, tables[*table].payload_fields),
                        })
                    }
                });
            }
        }
        w.finish();
        // Explicit synchronization payloads override the one-cache-line
        // default `finish` installs.
        for (i, (_, sync)) in tpl.phases.iter().enumerate() {
            if let Some(bytes) = sync {
                out.phases[i].sync_bytes = *bytes;
            }
        }
    }

    fn reconfigure(&mut self, change: &WorkloadChange) -> Result<(), ReconfigureError> {
        match change {
            WorkloadChange::SingleTransaction { txn } => {
                match self.templates.iter().position(|t| t.class == txn.as_str()) {
                    Some(i) => {
                        self.mix = Mix::single(i);
                        Ok(())
                    }
                    None => Err(ReconfigureError::UnknownTransaction {
                        workload: self.spec.name.clone(),
                        txn: txn.clone(),
                        known: self.classes(),
                    }),
                }
            }
            WorkloadChange::StandardMix => {
                self.mix = standard_mix(&self.spec);
                Ok(())
            }
            WorkloadChange::Distribution { distribution } => {
                self.set_distribution(*distribution);
                Ok(())
            }
            WorkloadChange::ZipfianTheta { theta } => {
                self.set_distribution(KeyDistribution::Zipfian { theta: *theta });
                Ok(())
            }
            other => Err(ReconfigureError::Unsupported {
                workload: self.spec.name.clone(),
                change: other.clone(),
            }),
        }
    }
}

// ---------------------------------------------------------------------
// Shipped transcriptions of the hand-rolled workloads
// ---------------------------------------------------------------------

/// YCSB core mix A (50% reads / 50% single-field updates, Zipfian
/// θ = 0.99) over `records` keys, as a spec.  Bit-identical to
/// `Ycsb::new(YcsbConfig::workload_a(records))` — the parity tests pin
/// the digest of both transaction streams.
pub fn ycsb_a(records: i64) -> WorkloadSpec {
    let zipf = KeyDistribution::Zipfian { theta: 0.99 };
    WorkloadSpec {
        name: "ycsb-a-spec".to_string(),
        tables: vec![TableDef {
            name: "usertable".to_string(),
            keys: records,
            sub_rows: 1,
            payload_fields: 4,
            parent: None,
        }],
        templates: vec![
            TemplateDef {
                name: "Read".to_string(),
                weight: 0.5,
                args: vec![ArgDef::Key {
                    name: "k".to_string(),
                    table: "usertable".to_string(),
                    distribution: zipf,
                }],
                phases: vec![PhaseDef {
                    ops: vec![OpDef::Read {
                        table: "usertable".to_string(),
                        key: vec!["k".to_string()],
                    }],
                    sync_bytes: None,
                }],
            },
            TemplateDef {
                name: "Update".to_string(),
                weight: 0.5,
                args: vec![
                    ArgDef::Key {
                        name: "k".to_string(),
                        table: "usertable".to_string(),
                        distribution: zipf,
                    },
                    // `1 + gen_range(0..FIELDS)` ≡ `gen_range(1..5)`:
                    // both consume one draw and add the same offset.
                    ArgDef::Uniform {
                        name: "field".to_string(),
                        lo: 1,
                        hi: 5,
                    },
                    ArgDef::Uniform {
                        name: "value".to_string(),
                        lo: 0,
                        hi: 1 << 30,
                    },
                ],
                phases: vec![PhaseDef {
                    ops: vec![OpDef::Update {
                        table: "usertable".to_string(),
                        key: vec!["k".to_string()],
                        field: "field".to_string(),
                        value: "value".to_string(),
                    }],
                    sync_bytes: None,
                }],
            },
        ],
    }
}

/// The two-table SimpleAb transaction of paper §V-A as a spec:
/// one uniform head key shared by a read of A and a read of B's
/// composite `(pk_a, pk_b)`, with the hand-rolled 96-byte
/// synchronization payload.  Bit-identical to `SimpleAb::new(rows_a)`.
pub fn simple_ab(rows_a: i64) -> WorkloadSpec {
    WorkloadSpec {
        name: "simple-ab-spec".to_string(),
        tables: vec![
            TableDef {
                name: "A".to_string(),
                keys: rows_a,
                sub_rows: 1,
                payload_fields: 1,
                parent: None,
            },
            TableDef {
                name: "B".to_string(),
                keys: rows_a,
                sub_rows: 4,
                payload_fields: 1,
                parent: Some("A".to_string()),
            },
        ],
        templates: vec![TemplateDef {
            name: "simple-ab".to_string(),
            weight: 1.0,
            args: vec![
                ArgDef::Key {
                    name: "a".to_string(),
                    table: "A".to_string(),
                    distribution: KeyDistribution::Uniform,
                },
                ArgDef::Uniform {
                    name: "b".to_string(),
                    lo: 0,
                    hi: 4,
                },
            ],
            phases: vec![PhaseDef {
                ops: vec![
                    OpDef::Read {
                        table: "A".to_string(),
                        key: vec!["a".to_string()],
                    },
                    OpDef::Read {
                        table: "B".to_string(),
                        key: vec!["a".to_string(), "b".to_string()],
                    },
                ],
                sync_bytes: Some(96),
            }],
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple_ab::SimpleAb;
    use crate::ycsb::{Ycsb, YcsbConfig};
    use rand::SeedableRng;

    /// FNV-1a digest of `n` transactions' debug representations — the
    /// PR-8 spec-stream technique: any drift in class, phases, sync
    /// bytes, keys, or drawn values changes the digest.
    fn spec_stream_digest(w: &mut dyn Workload, seed: u64, n: usize) -> u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for i in 0..n {
            let spec = w.next_transaction(&mut rng, CoreId((i % 4) as u32));
            for byte in format!("{spec:?}").bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        hash
    }

    #[test]
    fn ycsb_a_spec_digest_matches_hand_rolled() {
        for seed in [42u64, 1337] {
            let mut spec = ycsb_a(2_000).compile().unwrap();
            let mut hand = Ycsb::new(YcsbConfig::workload_a(2_000));
            assert_eq!(
                spec_stream_digest(&mut spec, seed, 300),
                spec_stream_digest(&mut hand, seed, 300),
                "seed {seed}: spec-compiled YCSB-A diverged from the hand-rolled module"
            );
        }
    }

    #[test]
    fn simple_ab_spec_digest_matches_hand_rolled() {
        for seed in [42u64, 1337] {
            let mut spec = simple_ab(1_000).compile().unwrap();
            let mut hand = SimpleAb::new(1_000);
            assert_eq!(
                spec_stream_digest(&mut spec, seed, 300),
                spec_stream_digest(&mut hand, seed, 300),
                "seed {seed}: spec-compiled SimpleAb diverged from the hand-rolled module"
            );
        }
    }

    #[test]
    fn ycsb_a_spec_transactions_equal_hand_rolled_by_value() {
        let mut spec = ycsb_a(2_000).compile().unwrap();
        let mut hand = Ycsb::new(YcsbConfig::workload_a(2_000));
        let mut rng_s = SmallRng::seed_from_u64(9);
        let mut rng_h = SmallRng::seed_from_u64(9);
        for _ in 0..300 {
            assert_eq!(
                spec.next_transaction(&mut rng_s, CoreId(0)),
                hand.next_transaction(&mut rng_h, CoreId(0))
            );
        }
    }

    #[test]
    fn generation_into_buffer_matches_by_value_generation() {
        let mut a = ycsb_a(1_000).compile().unwrap();
        let mut b = ycsb_a(1_000).compile().unwrap();
        let mut rng_a = SmallRng::seed_from_u64(3);
        let mut rng_b = SmallRng::seed_from_u64(3);
        let mut buf = TransactionSpec::empty();
        for _ in 0..200 {
            let by_value = a.next_transaction(&mut rng_a, CoreId(0));
            b.next_transaction_into(&mut rng_b, CoreId(0), &mut buf);
            assert_eq!(by_value, buf);
        }
    }

    #[test]
    fn sync_bytes_override_survives_buffer_reuse() {
        // A 96-byte one-phase transaction followed by a default-payload
        // one must not inherit the override through the reused buffer.
        let mut ab = simple_ab(100).compile().unwrap();
        let mut ycsb = ycsb_a(100).compile().unwrap();
        let mut rng = SmallRng::seed_from_u64(8);
        let mut buf = TransactionSpec::empty();
        ab.next_transaction_into(&mut rng, CoreId(0), &mut buf);
        assert_eq!(buf.phases[0].sync_bytes, 96);
        ycsb.next_transaction_into(&mut rng, CoreId(0), &mut buf);
        assert_eq!(buf.phases[0].sync_bytes, 64);
    }

    #[test]
    fn tables_match_hand_rolled_shapes() {
        let spec = simple_ab(500).compile().unwrap();
        let hand = SimpleAb::new(500);
        for (s, h) in spec.tables().iter().zip(hand.tables().iter()) {
            assert_eq!(s.id, h.id);
            assert_eq!(s.domain, h.domain);
            assert_eq!(s.rows, h.rows);
        }
        assert!(spec.tables()[1].schema.references(TableId(0)));
        let mut db_s = Database::new();
        spec.populate(&mut db_s, &|_, _| true);
        assert_eq!(db_s.table(TableId(0)).unwrap().len(), 500);
        assert_eq!(db_s.table(TableId(1)).unwrap().len(), 2_000);
    }

    #[test]
    fn inserts_append_monotonically_at_the_tail() {
        let mut spec = WorkloadSpec {
            name: "ins".to_string(),
            tables: vec![TableDef {
                name: "t".to_string(),
                keys: 100,
                sub_rows: 1,
                payload_fields: 2,
                parent: None,
            }],
            templates: vec![TemplateDef {
                name: "Insert".to_string(),
                weight: 1.0,
                args: vec![],
                phases: vec![PhaseDef {
                    ops: vec![OpDef::Insert {
                        table: "t".to_string(),
                    }],
                    sync_bytes: None,
                }],
            }],
        }
        .compile()
        .unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut last = 99;
        for _ in 0..20 {
            let txn = spec.next_transaction(&mut rng, CoreId(0));
            let head = txn.phases[0].actions[0].op.routing_key_head();
            assert_eq!(head, last + 1, "inserts must be dense at the tail");
            last = head;
        }
    }

    #[test]
    fn reconfigure_matches_hand_rolled_after_the_same_change() {
        let mut spec = ycsb_a(2_000).compile().unwrap();
        let mut hand = Ycsb::new(YcsbConfig::workload_a(2_000));
        for change in [
            WorkloadChange::SingleTransaction {
                txn: "Update".to_string(),
            },
            WorkloadChange::ZipfianTheta { theta: 0.4 },
            WorkloadChange::StandardMix,
            WorkloadChange::Distribution {
                distribution: KeyDistribution::Hotspot {
                    data_fraction: 0.2,
                    access_fraction: 0.8,
                },
            },
        ] {
            spec.reconfigure(&change).unwrap();
            hand.reconfigure(&change).unwrap();
            assert_eq!(
                spec_stream_digest(&mut spec, 7, 120),
                spec_stream_digest(&mut hand, 7, 120),
                "diverged after {change:?}"
            );
        }
    }

    #[test]
    fn reconfigure_rejects_unknown_transactions_and_unsupported_changes() {
        let mut w = ycsb_a(500).compile().unwrap();
        let err = w
            .reconfigure(&WorkloadChange::SingleTransaction {
                txn: "NewOrder".to_string(),
            })
            .unwrap_err();
        match err {
            ReconfigureError::UnknownTransaction { known, .. } => {
                assert_eq!(known, vec!["Read", "Update"]);
            }
            other => panic!("expected UnknownTransaction, got {other}"),
        }
        assert!(matches!(
            w.reconfigure(&WorkloadChange::MultiSitePercent { percent: 10 }),
            Err(ReconfigureError::Unsupported { .. })
        ));
    }

    #[test]
    fn specs_round_trip_through_json() {
        for spec in [ycsb_a(1_234), simple_ab(567)] {
            let back = WorkloadSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(back, spec);
        }
    }

    // ---------------------------------------------------------------
    // Negative paths: typed rejection at load time
    // ---------------------------------------------------------------

    #[test]
    fn zero_weight_sum_is_rejected() {
        let mut spec = ycsb_a(100);
        for t in &mut spec.templates {
            t.weight = 0.0;
        }
        assert_eq!(spec.validate(), Err(SpecError::ZeroWeightSum));
    }

    #[test]
    fn unknown_op_fails_to_parse() {
        let json = r#"{
          "name": "bad",
          "tables": [{ "name": "t", "keys": 10, "sub_rows": 1, "payload_fields": 1 }],
          "templates": [{
            "name": "x", "weight": 1.0, "args": [],
            "phases": [{ "ops": [{ "Truncate": { "table": "t" } }] }]
          }]
        }"#;
        match WorkloadSpec::from_json(json) {
            Err(SpecError::Parse { message }) => {
                assert!(message.contains("unknown variant"), "{message}")
            }
            other => panic!("expected a parse error, got {other:?}"),
        }
    }

    #[test]
    fn empty_table_is_rejected() {
        let mut spec = ycsb_a(100);
        spec.tables[0].keys = 0;
        assert_eq!(
            spec.validate(),
            Err(SpecError::EmptyTable {
                table: "usertable".to_string()
            })
        );
    }

    #[test]
    fn out_of_range_key_domain_is_rejected() {
        let mut spec = simple_ab(100);
        spec.tables[1].keys = 200;
        assert_eq!(
            spec.validate(),
            Err(SpecError::DomainExceedsParent {
                table: "B".to_string(),
                parent: "A".to_string()
            })
        );
    }

    #[test]
    fn dangling_table_references_are_rejected() {
        // A parent link to a table that does not exist…
        let mut spec = simple_ab(100);
        spec.tables[1].parent = Some("Z".to_string());
        assert_eq!(
            spec.validate(),
            Err(SpecError::UnknownTable {
                context: "B".to_string(),
                table: "Z".to_string()
            })
        );
        // …and an op targeting one.
        let mut spec = ycsb_a(100);
        spec.templates[0].phases[0].ops[0] = OpDef::Read {
            table: "ghost".to_string(),
            key: vec!["k".to_string()],
        };
        assert_eq!(
            spec.validate(),
            Err(SpecError::UnknownTable {
                context: "Read".to_string(),
                table: "ghost".to_string()
            })
        );
    }

    #[test]
    fn arity_arg_and_range_errors_are_typed() {
        // Composite table read through a single-column key.
        let mut spec = simple_ab(100);
        spec.templates[0].phases[0].ops[1] = OpDef::Read {
            table: "B".to_string(),
            key: vec!["a".to_string()],
        };
        assert!(matches!(
            spec.validate(),
            Err(SpecError::KeyArity {
                expected: 2,
                got: 1,
                ..
            })
        ));
        // Unknown argument.
        let mut spec = ycsb_a(100);
        spec.templates[0].phases[0].ops[0] = OpDef::Read {
            table: "usertable".to_string(),
            key: vec!["nope".to_string()],
        };
        assert!(matches!(spec.validate(), Err(SpecError::UnknownArg { .. })));
        // Empty uniform range.
        let mut spec = ycsb_a(100);
        spec.templates[1].args[1] = ArgDef::Uniform {
            name: "field".to_string(),
            lo: 5,
            hi: 5,
        };
        assert!(matches!(spec.validate(), Err(SpecError::EmptyRange { .. })));
        // Field index outside the column range.
        let mut spec = ycsb_a(100);
        spec.templates[1].args[1] = ArgDef::Uniform {
            name: "field".to_string(),
            lo: 1,
            hi: 99,
        };
        assert!(matches!(
            spec.validate(),
            Err(SpecError::FieldOutOfRange { .. })
        ));
        // Insert into a composite-key table.
        let mut spec = simple_ab(100);
        spec.templates[0].phases[0].ops[1] = OpDef::Insert {
            table: "B".to_string(),
        };
        assert!(matches!(
            spec.validate(),
            Err(SpecError::InsertIntoChild { .. })
        ));
    }

    #[test]
    fn compile_rejects_what_validate_rejects() {
        let mut spec = ycsb_a(100);
        spec.templates.clear();
        assert_eq!(spec.compile().unwrap_err(), SpecError::NoTemplates);
        let spec = WorkloadSpec {
            name: "no-tables".to_string(),
            tables: vec![],
            templates: ycsb_a(100).templates,
        };
        assert_eq!(spec.compile().unwrap_err(), SpecError::NoTables);
    }

    #[test]
    fn spec_errors_render_helpful_messages() {
        let e = SpecError::UnknownTable {
            context: "Pay".to_string(),
            table: "accounts".to_string(),
        };
        assert_eq!(e.to_string(), "'Pay' references unknown table 'accounts'");
        assert!(SpecError::ZeroWeightSum.to_string().contains("positive"));
    }
}
