//! The two-table "simple transaction" of paper §V-A (Figure 6).
//!
//! Two tables A and B with correlated keys; the transaction reads one row
//! of A by its primary key and one row of B by the composite key
//! `(pk_a, pk_b)`.  Because the two actions always share the same `pk_a`,
//! the partitions of A and B that serve a given transaction are perfectly
//! correlated — placing them on the same socket removes all
//! synchronization cost, which is exactly what the ATraPos placement
//! algorithm discovers.

use crate::generator::{KeyDistribution, KeySampler};
use atrapos_core::KeyDomain;
use atrapos_engine::workload::{ensure_tables, ReconfigureError, WorkloadChange};
use atrapos_engine::{Action, ActionOp, Phase, TableSpec, TransactionSpec, Workload};
use atrapos_numa::CoreId;
use atrapos_storage::{Column, ColumnType, Database, Key, Record, Schema, TableId, Value};
use rand::rngs::SmallRng;
use rand::Rng;

/// Table id of A.
pub const TABLE_A: TableId = TableId(0);
/// Table id of B.
pub const TABLE_B: TableId = TableId(1);

/// The Figure 6 workload.
#[derive(Debug, Clone)]
pub struct SimpleAb {
    /// Rows in table A (B holds `b_per_a` rows per A row).
    pub rows_a: i64,
    /// B rows per A row.
    pub b_per_a: i64,
    /// Distribution of the shared `pk_a` head key (uniform by default;
    /// scenarios may introduce a hotspot — or Zipfian / drifting skew —
    /// at runtime via [`SimpleAb::set_distribution`]).
    distribution: KeyDistribution,
    /// Derived from `distribution` over the A domain; rebuilt on
    /// reconfiguration so per-transaction draws never allocate.
    sampler: KeySampler,
}

impl SimpleAb {
    /// A workload with `rows_a` rows in A and 4 B rows per A row.
    pub fn new(rows_a: i64) -> Self {
        let distribution = KeyDistribution::Uniform;
        Self {
            rows_a,
            b_per_a: 4,
            distribution,
            sampler: distribution.sampler(0, rows_a),
        }
    }

    /// Switch the `pk_a` distribution at runtime.
    pub fn set_distribution(&mut self, d: KeyDistribution) {
        self.distribution = d;
        self.sampler = d.sampler(0, self.rows_a);
    }

    /// The current `pk_a` distribution.
    pub fn distribution(&self) -> KeyDistribution {
        self.distribution
    }
}

impl Workload for SimpleAb {
    fn name(&self) -> &str {
        "simple-ab"
    }

    fn tables(&self) -> Vec<TableSpec> {
        vec![
            TableSpec {
                id: TABLE_A,
                schema: Schema::new(
                    "A",
                    vec![
                        Column::new("pk_a", ColumnType::Int),
                        Column::new("payload", ColumnType::Int),
                    ],
                    vec![0],
                ),
                domain: KeyDomain::new(0, self.rows_a),
                rows: self.rows_a as u64,
            },
            TableSpec {
                id: TABLE_B,
                schema: Schema::new(
                    "B",
                    vec![
                        Column::new("pk_a", ColumnType::Int),
                        Column::new("pk_b", ColumnType::Int),
                        Column::new("payload", ColumnType::Int),
                    ],
                    vec![0, 1],
                )
                .with_foreign_key(vec![0], TABLE_A),
                domain: KeyDomain::new(0, self.rows_a),
                rows: (self.rows_a * self.b_per_a) as u64,
            },
        ]
    }

    fn populate(&self, db: &mut Database, filter: &dyn Fn(TableId, &Key) -> bool) {
        ensure_tables(self, db);
        {
            let a = db.table_mut(TABLE_A).expect("table A exists");
            for i in 0..self.rows_a {
                let key = Key::int(i);
                if filter(TABLE_A, &key) {
                    a.load(Record::new(vec![Value::Int(i), Value::Int(i)]))
                        .expect("unique keys");
                }
            }
        }
        let b = db.table_mut(TABLE_B).expect("table B exists");
        for i in 0..self.rows_a {
            for j in 0..self.b_per_a {
                let key = Key::ints(&[i, j]);
                if filter(TABLE_B, &key) {
                    b.load(Record::new(vec![
                        Value::Int(i),
                        Value::Int(j),
                        Value::Int(i * 100 + j),
                    ]))
                    .expect("unique keys");
                }
            }
        }
    }

    fn next_transaction(&mut self, rng: &mut SmallRng, _client: CoreId) -> TransactionSpec {
        let id_a = self.sampler.sample(rng);
        let id_b = rng.gen_range(0..self.b_per_a);
        TransactionSpec::new(
            "simple-ab",
            vec![Phase::new(vec![
                Action::new(ActionOp::Read {
                    table: TABLE_A,
                    key: Key::int(id_a),
                }),
                Action::new(ActionOp::Read {
                    table: TABLE_B,
                    key: Key::ints(&[id_a, id_b]),
                }),
            ])
            .with_sync_bytes(96)],
        )
    }

    fn reconfigure(&mut self, change: &WorkloadChange) -> Result<(), ReconfigureError> {
        match change {
            WorkloadChange::Distribution { distribution } => {
                self.set_distribution(*distribution);
                Ok(())
            }
            WorkloadChange::ZipfianTheta { theta } => {
                self.set_distribution(KeyDistribution::Zipfian { theta: *theta });
                Ok(())
            }
            other => Err(ReconfigureError::Unsupported {
                workload: self.name().to_string(),
                change: other.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn population_respects_the_b_per_a_ratio() {
        let w = SimpleAb::new(100);
        let mut db = Database::new();
        w.populate(&mut db, &|_, _| true);
        assert_eq!(db.table(TABLE_A).unwrap().len(), 100);
        assert_eq!(db.table(TABLE_B).unwrap().len(), 400);
    }

    #[test]
    fn transactions_touch_both_tables_with_the_same_head_key() {
        let mut w = SimpleAb::new(100);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..20 {
            let spec = w.next_transaction(&mut rng, CoreId(0));
            assert_eq!(spec.num_actions(), 2);
            let heads: Vec<i64> = spec.phases[0]
                .actions
                .iter()
                .map(|a| a.op.routing_key_head())
                .collect();
            assert_eq!(heads[0], heads[1]);
        }
    }

    #[test]
    fn schema_declares_the_foreign_key_dependency() {
        let w = SimpleAb::new(10);
        let tables = w.tables();
        assert!(tables[1].schema.references(TABLE_A));
    }
}
