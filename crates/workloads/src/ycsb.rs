//! The YCSB workload family (Cooper et al., SoCC 2010).
//!
//! The Yahoo! Cloud Serving Benchmark is the standard stress for
//! partition-affinity systems: five operation types (read, update, insert,
//! short range scan, read-modify-write) over one table, combined into the
//! six *core mixes* A–F, with a Zipfian request distribution whose
//! exponent θ dials the skew from uniform (θ = 0) to the standard heavily
//! skewed θ = 0.99.  The paper never evaluates ATraPos under YCSB; this
//! module opens that axis — in particular the *drifting* hotspot
//! ([`KeyDistribution::Drift`]) that gives the adaptive controller no
//! stable layout to converge to.
//!
//! Everything is plain data: a [`YcsbConfig`] (serializable, named
//! constructors [`YcsbConfig::named`] for the core mixes) fully describes
//! the generator, and the workload accepts the typed
//! `WorkloadChange::{NamedMix, ZipfianTheta, Distribution,
//! SingleTransaction, StandardMix}` reconfigurations, so scenario
//! timelines can switch mixes and ramp θ mid-run.
//!
//! Modelling notes:
//!
//! * Keys are dense integers; Zipfian rank 0 is key 0, so the hot head is
//!   *contiguous* — deliberately un-scrambled, because clustered heat is
//!   what stresses range-partitioned designs (see
//!   `atrapos_core::distribution`).
//! * Inserts append at the tail of the keyspace (`record_count`,
//!   `record_count + 1`, …), beyond the initially declared domain; every
//!   layer routes beyond-domain keys to the last partition, so an
//!   insert-heavy run heats the tail partition — exactly the skew the
//!   adaptive controller is supposed to chase.  Workload D's
//!   "read-latest" distribution reads backwards from the insert cursor.

use crate::generator::{KeyDistribution, Mix};
use atrapos_core::{KeyDomain, KeySampler};
use atrapos_engine::workload::{ensure_tables, ReconfigureError, WorkloadChange};
use atrapos_engine::{Action, ActionOp, TableSpec, TransactionSpec, Workload};
use atrapos_numa::CoreId;
use atrapos_storage::{Column, ColumnType, Database, Key, Record, Schema, TableId, Value};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Table id of USERTABLE (the single YCSB table).
pub const USERTABLE: TableId = TableId(0);

/// Payload fields per record (YCSB's default schema has ten 100-byte
/// fields; the simulator charges per-row costs, so a compact fixed set
/// keeps population fast without changing access patterns).
pub const FIELDS: usize = 4;

/// The five YCSB operation types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum YcsbOp {
    /// Read one record by key.
    Read,
    /// Overwrite one field of one record.
    Update,
    /// Insert a new record at the tail of the keyspace.
    Insert,
    /// Read a short key range (up to `max_scan_len` records).
    Scan,
    /// Read one record, then update one of its fields.
    ReadModifyWrite,
}

impl YcsbOp {
    /// All five operation types.
    pub const ALL: [YcsbOp; 5] = [
        YcsbOp::Read,
        YcsbOp::Update,
        YcsbOp::Insert,
        YcsbOp::Scan,
        YcsbOp::ReadModifyWrite,
    ];

    /// Human-readable label (used as the transaction class and by
    /// `WorkloadChange::SingleTransaction`).
    pub fn label(self) -> &'static str {
        match self {
            YcsbOp::Read => "Read",
            YcsbOp::Update => "Update",
            YcsbOp::Insert => "Insert",
            YcsbOp::Scan => "Scan",
            YcsbOp::ReadModifyWrite => "RMW",
        }
    }

    /// Parse a label back into the operation type.
    pub fn from_label(label: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|t| t.label() == label)
    }
}

/// The names of the six core mixes.
pub const MIX_NAMES: [&str; 6] = ["A", "B", "C", "D", "E", "F"];

/// A complete, serializable description of a YCSB generator: dataset
/// size, per-operation weights, scan length, and request distribution.
///
/// The six core mixes are available by name ([`YcsbConfig::named`]); a
/// config is also directly constructible for custom mixes.  Weights need
/// not sum to 1 — only their ratios matter — but at least one must be
/// positive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct YcsbConfig {
    /// Initially loaded records (keys `0..record_count`).
    pub record_count: i64,
    /// Weight of single-key reads.
    pub read_weight: f64,
    /// Weight of single-field updates.
    pub update_weight: f64,
    /// Weight of tail inserts.
    pub insert_weight: f64,
    /// Weight of short range scans.
    pub scan_weight: f64,
    /// Weight of read-modify-writes.
    pub rmw_weight: f64,
    /// Maximum records per scan (scan lengths are uniform in
    /// `1..=max_scan_len`).
    pub max_scan_len: i64,
    /// Request distribution over the keyspace.
    pub distribution: KeyDistribution,
    /// Workload D's "latest" semantics: sampled ranks count backwards
    /// from the most recently inserted key instead of forwards from key
    /// 0, so the hottest keys are the newest.
    pub latest: bool,
}

impl YcsbConfig {
    /// A read-only baseline (workload C shape) to derive the mixes from.
    fn base(record_count: i64) -> Self {
        Self {
            record_count,
            read_weight: 1.0,
            update_weight: 0.0,
            insert_weight: 0.0,
            scan_weight: 0.0,
            rmw_weight: 0.0,
            max_scan_len: 100,
            distribution: KeyDistribution::Zipfian { theta: 0.99 },
            latest: false,
        }
    }

    /// Core workload A — update heavy: 50% reads, 50% updates.
    pub fn workload_a(record_count: i64) -> Self {
        Self {
            read_weight: 0.5,
            update_weight: 0.5,
            ..Self::base(record_count)
        }
    }

    /// Core workload B — read mostly: 95% reads, 5% updates.
    pub fn workload_b(record_count: i64) -> Self {
        Self {
            read_weight: 0.95,
            update_weight: 0.05,
            ..Self::base(record_count)
        }
    }

    /// Core workload C — read only.
    pub fn workload_c(record_count: i64) -> Self {
        Self::base(record_count)
    }

    /// Core workload D — read latest: 95% reads, 5% inserts, reads
    /// concentrated on the newest keys.
    pub fn workload_d(record_count: i64) -> Self {
        Self {
            read_weight: 0.95,
            insert_weight: 0.05,
            latest: true,
            ..Self::base(record_count)
        }
    }

    /// Core workload E — short ranges: 95% scans, 5% inserts.
    pub fn workload_e(record_count: i64) -> Self {
        Self {
            read_weight: 0.0,
            scan_weight: 0.95,
            insert_weight: 0.05,
            ..Self::base(record_count)
        }
    }

    /// Core workload F — read-modify-write: 50% reads, 50% RMWs.
    pub fn workload_f(record_count: i64) -> Self {
        Self {
            read_weight: 0.5,
            rmw_weight: 0.5,
            ..Self::base(record_count)
        }
    }

    /// The core mix with the given name ("A" through "F"), or `None` for
    /// an unknown name.
    pub fn named(name: &str, record_count: i64) -> Option<Self> {
        match name {
            "A" => Some(Self::workload_a(record_count)),
            "B" => Some(Self::workload_b(record_count)),
            "C" => Some(Self::workload_c(record_count)),
            "D" => Some(Self::workload_d(record_count)),
            "E" => Some(Self::workload_e(record_count)),
            "F" => Some(Self::workload_f(record_count)),
            _ => None,
        }
    }

    /// This config with a different request distribution.
    pub fn with_distribution(mut self, d: KeyDistribution) -> Self {
        self.distribution = d;
        self
    }

    /// This config with a Zipfian request distribution of exponent
    /// `theta`.
    pub fn with_theta(self, theta: f64) -> Self {
        self.with_distribution(KeyDistribution::Zipfian { theta })
    }

    /// The operation mix described by the weights.  Panics if no weight
    /// is positive (an all-zero mix describes no workload).
    fn mix(&self) -> Mix<YcsbOp> {
        let entries: Vec<(YcsbOp, f64)> = [
            (YcsbOp::Read, self.read_weight),
            (YcsbOp::Update, self.update_weight),
            (YcsbOp::Insert, self.insert_weight),
            (YcsbOp::Scan, self.scan_weight),
            (YcsbOp::ReadModifyWrite, self.rmw_weight),
        ]
        .into_iter()
        .filter(|(_, w)| *w > 0.0)
        .collect();
        Mix::new(entries)
    }
}

/// The YCSB workload generator.
///
/// `config` is the single source of truth: runtime reconfigurations
/// write through to it (so [`Ycsb::config`] always describes the
/// workload as it currently runs and could be serialized for replay),
/// and the mix / sampler are derived state rebuilt on change.
#[derive(Debug, Clone)]
pub struct Ycsb {
    config: YcsbConfig,
    /// Derived from the config weights; a `SingleTransaction`
    /// reconfiguration overrides it, `StandardMix` rebuilds it.
    mix: Mix<YcsbOp>,
    /// Derived from `config.distribution` over `[0, record_count)`;
    /// rebuilt on reconfiguration so per-transaction draws never
    /// allocate.
    sampler: KeySampler,
    /// Key of the next insert (starts at `record_count`, grows
    /// monotonically; the generator is the only writer, so the sequence
    /// is deterministic).
    insert_cursor: i64,
}

impl Ycsb {
    /// Build the workload from a config.
    pub fn new(config: YcsbConfig) -> Self {
        assert!(config.record_count > 0, "YCSB needs at least one record");
        assert!(config.max_scan_len >= 1, "scans need a positive length");
        let mix = config.mix();
        let sampler = config.distribution.sampler(0, config.record_count);
        let insert_cursor = config.record_count;
        Self {
            config,
            mix,
            sampler,
            insert_cursor,
        }
    }

    /// The named core mix ("A"–"F") at the given dataset size.
    pub fn core(name: &str, record_count: i64) -> Option<Self> {
        YcsbConfig::named(name, record_count).map(Self::new)
    }

    /// The workload's current configuration (reconfigurations write
    /// through, so this always describes the generator as it runs).
    pub fn config(&self) -> &YcsbConfig {
        &self.config
    }

    /// The current request distribution.
    pub fn distribution(&self) -> KeyDistribution {
        self.config.distribution
    }

    /// Change the request distribution at runtime.
    pub fn set_distribution(&mut self, d: KeyDistribution) {
        self.config.distribution = d;
        self.sampler = d.sampler(0, self.config.record_count);
    }

    /// Switch to another core mix (same dataset), adopting its weights,
    /// scan length, distribution, and latest flag.
    pub fn set_named_mix(&mut self, name: &str) -> bool {
        match YcsbConfig::named(name, self.config.record_count) {
            Some(config) => {
                self.mix = config.mix();
                self.sampler = config.distribution.sampler(0, config.record_count);
                self.config = config;
                true
            }
            None => false,
        }
    }

    /// Draw the key one read-like operation targets.
    fn sample_key(&mut self, rng: &mut SmallRng) -> i64 {
        let rank = self.sampler.sample(rng);
        if self.config.latest {
            // Rank 0 = the newest key (the last insert, or the last
            // loaded record before any insert happened).
            (self.insert_cursor - 1 - rank).max(0)
        } else {
            rank
        }
    }

    /// Build one operation of type `op` into the reusable spec buffer.
    /// Draws from `rng` in a fixed order per operation type, so
    /// generation is bit-for-bit reproducible.
    fn build_into(&mut self, op: YcsbOp, rng: &mut SmallRng, spec: &mut TransactionSpec) {
        match op {
            YcsbOp::Read => {
                let k = self.sample_key(rng);
                let mut w = spec.refill("Read");
                w.phase().push(Action::new(ActionOp::Read {
                    table: USERTABLE,
                    key: Key::int(k),
                }));
                w.finish();
            }
            YcsbOp::Update => {
                let k = self.sample_key(rng);
                let field = 1 + rng.gen_range(0..FIELDS);
                let value = rng.gen_range(0..1 << 30);
                let mut w = spec.refill("Update");
                w.phase().push(Action::new(ActionOp::Update {
                    table: USERTABLE,
                    key: Key::int(k),
                    changes: vec![(field, Value::Int(value))],
                }));
                w.finish();
            }
            YcsbOp::Insert => {
                let k = self.insert_cursor;
                self.insert_cursor += 1;
                let mut w = spec.refill("Insert");
                w.phase().push(Action::new(ActionOp::Insert {
                    table: USERTABLE,
                    record: record_for(k),
                }));
                w.finish();
            }
            YcsbOp::Scan => {
                let start = self.sample_key(rng);
                let len = rng.gen_range(1..=self.config.max_scan_len);
                let mut w = spec.refill("Scan");
                w.phase().push(Action::new(ActionOp::ReadRange {
                    table: USERTABLE,
                    from: Key::int(start),
                    to: Key::int(start + len),
                    limit: len as usize,
                }));
                w.finish();
            }
            YcsbOp::ReadModifyWrite => {
                let k = self.sample_key(rng);
                let field = 1 + rng.gen_range(0..FIELDS);
                let value = rng.gen_range(0..1 << 30);
                // Two phases: the update depends on the read's result, so
                // they synchronize at the phase boundary.
                let mut w = spec.refill("RMW");
                w.phase().push(Action::new(ActionOp::Read {
                    table: USERTABLE,
                    key: Key::int(k),
                }));
                w.phase().push(Action::new(ActionOp::Update {
                    table: USERTABLE,
                    key: Key::int(k),
                    changes: vec![(field, Value::Int(value))],
                }));
                w.finish();
            }
        }
    }
}

/// The record stored under key `k` (key column plus [`FIELDS`] integer
/// payload fields).
fn record_for(k: i64) -> Record {
    let mut values = Vec::with_capacity(1 + FIELDS);
    values.push(Value::Int(k));
    for f in 0..FIELDS as i64 {
        values.push(Value::Int(k * 10 + f));
    }
    Record::new(values)
}

impl Workload for Ycsb {
    fn name(&self) -> &str {
        "YCSB"
    }

    fn tables(&self) -> Vec<TableSpec> {
        let mut columns = vec![Column::new("y_id", ColumnType::Int)];
        for f in 0..FIELDS {
            columns.push(Column::new(format!("field{f}"), ColumnType::Int));
        }
        vec![TableSpec {
            id: USERTABLE,
            schema: Schema::new("usertable", columns, vec![0]),
            domain: KeyDomain::new(0, self.config.record_count),
            rows: self.config.record_count as u64,
        }]
    }

    fn populate(&self, db: &mut Database, filter: &dyn Fn(TableId, &Key) -> bool) {
        ensure_tables(self, db);
        let table = db.table_mut(USERTABLE).expect("usertable exists");
        for k in 0..self.config.record_count {
            let key = Key::int(k);
            if filter(USERTABLE, &key) {
                table.load(record_for(k)).expect("unique keys");
            }
        }
    }

    fn next_transaction(&mut self, rng: &mut SmallRng, client: CoreId) -> TransactionSpec {
        let mut spec = TransactionSpec::empty();
        self.next_transaction_into(rng, client, &mut spec);
        spec
    }

    fn next_transaction_into(
        &mut self,
        rng: &mut SmallRng,
        _client: CoreId,
        spec: &mut TransactionSpec,
    ) {
        let op = self.mix.pick(rng);
        self.build_into(op, rng, spec);
    }

    fn reconfigure(&mut self, change: &WorkloadChange) -> Result<(), ReconfigureError> {
        match change {
            WorkloadChange::SingleTransaction { txn } => match YcsbOp::from_label(txn) {
                Some(op) => {
                    self.mix = Mix::single(op);
                    Ok(())
                }
                None => Err(ReconfigureError::UnknownTransaction {
                    workload: self.name().to_string(),
                    txn: txn.clone(),
                    known: YcsbOp::ALL.iter().map(|t| t.label()).collect(),
                }),
            },
            WorkloadChange::StandardMix => {
                self.mix = self.config.mix();
                Ok(())
            }
            WorkloadChange::Distribution { distribution } => {
                self.set_distribution(*distribution);
                Ok(())
            }
            WorkloadChange::ZipfianTheta { theta } => {
                self.set_distribution(KeyDistribution::Zipfian { theta: *theta });
                Ok(())
            }
            WorkloadChange::NamedMix { name } => {
                if self.set_named_mix(name) {
                    Ok(())
                } else {
                    Err(ReconfigureError::UnknownMix {
                        workload: self.name().to_string(),
                        name: name.clone(),
                        known: MIX_NAMES.to_vec(),
                    })
                }
            }
            other => Err(ReconfigureError::Unsupported {
                workload: self.name().to_string(),
                change: other.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ops_of(w: &mut Ycsb, n: usize, seed: u64) -> Vec<&'static str> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| w.next_transaction(&mut rng, CoreId(0)).class)
            .collect()
    }

    #[test]
    fn population_loads_the_declared_rows() {
        let w = Ycsb::new(YcsbConfig::workload_a(500));
        let mut db = Database::new();
        w.populate(&mut db, &|_, _| true);
        assert_eq!(db.table(USERTABLE).unwrap().len(), 500);
        let mut half = Database::new();
        w.populate(&mut half, &|_, k| k.head_int() < 250);
        assert_eq!(db.table(USERTABLE).unwrap().len(), 500);
        assert_eq!(half.table(USERTABLE).unwrap().len(), 250);
    }

    #[test]
    fn core_mixes_have_the_standard_shapes() {
        // A: half the operations update; C: none do.
        let classes_a = ops_of(&mut Ycsb::core("A", 500).unwrap(), 400, 1);
        let updates = classes_a.iter().filter(|c| **c == "Update").count();
        assert!((120..280).contains(&updates), "A updates {updates}");
        let classes_c = ops_of(&mut Ycsb::core("C", 500).unwrap(), 200, 2);
        assert!(classes_c.iter().all(|c| *c == "Read"));
        // E is scan-dominated, F mixes reads and RMWs.
        let classes_e = ops_of(&mut Ycsb::core("E", 500).unwrap(), 200, 3);
        assert!(classes_e.iter().filter(|c| **c == "Scan").count() > 150);
        let classes_f = ops_of(&mut Ycsb::core("F", 500).unwrap(), 200, 4);
        assert!(classes_f.contains(&"RMW") && classes_f.contains(&"Read"));
        assert!(Ycsb::core("G", 500).is_none());
    }

    #[test]
    fn inserts_append_monotonically_at_the_tail() {
        let mut w = Ycsb::new(YcsbConfig::workload_d(100));
        w.reconfigure(&WorkloadChange::SingleTransaction {
            txn: "Insert".into(),
        })
        .unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut last = 99;
        for _ in 0..20 {
            let spec = w.next_transaction(&mut rng, CoreId(0));
            let head = spec.phases[0].actions[0].op.routing_key_head();
            assert_eq!(head, last + 1, "inserts must be dense at the tail");
            last = head;
        }
    }

    #[test]
    fn latest_reads_track_the_insert_cursor() {
        let mut w = Ycsb::new(YcsbConfig::workload_d(1_000));
        let mut rng = SmallRng::seed_from_u64(6);
        // Generate a batch; D is 95% reads with the newest keys hottest.
        let mut near_tail = 0;
        let mut total_reads = 0;
        for _ in 0..500 {
            let spec = w.next_transaction(&mut rng, CoreId(0));
            if spec.class == "Read" {
                total_reads += 1;
                let head = spec.phases[0].actions[0].op.routing_key_head();
                if head >= 900 {
                    near_tail += 1;
                }
            }
        }
        assert!(total_reads > 300);
        assert!(
            near_tail as f64 > 0.5 * total_reads as f64,
            "only {near_tail}/{total_reads} reads near the tail"
        );
    }

    #[test]
    fn rmw_reads_then_updates_the_same_key_across_a_sync_point() {
        let mut w = Ycsb::new(YcsbConfig::workload_f(500));
        w.reconfigure(&WorkloadChange::SingleTransaction { txn: "RMW".into() })
            .unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        let spec = w.next_transaction(&mut rng, CoreId(0));
        assert_eq!(spec.phases.len(), 2);
        assert!(spec.num_sync_points() >= 1);
        let r = spec.phases[0].actions[0].op.routing_key_head();
        let u = spec.phases[1].actions[0].op.routing_key_head();
        assert_eq!(r, u);
        assert!(spec.is_update());
    }

    #[test]
    fn scans_stay_short_and_start_in_the_domain() {
        let mut w = Ycsb::new(YcsbConfig::workload_e(500));
        w.reconfigure(&WorkloadChange::SingleTransaction { txn: "Scan".into() })
            .unwrap();
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..50 {
            let spec = w.next_transaction(&mut rng, CoreId(0));
            match &spec.phases[0].actions[0].op {
                ActionOp::ReadRange {
                    from, to, limit, ..
                } => {
                    assert!((0..500).contains(&from.head_int()));
                    assert!(*limit >= 1 && *limit <= 100);
                    assert_eq!(to.head_int() - from.head_int(), *limit as i64);
                }
                other => panic!("expected a range read, got {other:?}"),
            }
        }
    }

    #[test]
    fn named_mix_and_theta_reconfigure() {
        let mut w = Ycsb::new(YcsbConfig::workload_c(500));
        w.reconfigure(&WorkloadChange::NamedMix { name: "A".into() })
            .unwrap();
        assert_eq!(w.config().update_weight, 0.5);
        w.reconfigure(&WorkloadChange::ZipfianTheta { theta: 0.0 })
            .unwrap();
        assert_eq!(w.distribution(), KeyDistribution::Zipfian { theta: 0.0 });
        // The config writes through: serializing it reproduces the
        // workload as it currently runs, not as it started.
        assert_eq!(
            w.config().distribution,
            KeyDistribution::Zipfian { theta: 0.0 }
        );
        let err = w
            .reconfigure(&WorkloadChange::NamedMix { name: "Z".into() })
            .unwrap_err();
        assert!(matches!(err, ReconfigureError::UnknownMix { .. }));
    }

    #[test]
    fn generation_into_buffer_matches_by_value_generation() {
        let mut a = Ycsb::new(YcsbConfig::workload_a(500));
        let mut b = Ycsb::new(YcsbConfig::workload_a(500));
        let mut rng_a = SmallRng::seed_from_u64(9);
        let mut rng_b = SmallRng::seed_from_u64(9);
        let mut buf = TransactionSpec::empty();
        for _ in 0..100 {
            let by_value = a.next_transaction(&mut rng_a, CoreId(0));
            b.next_transaction_into(&mut rng_b, CoreId(0), &mut buf);
            assert_eq!(by_value, buf);
        }
    }

    #[test]
    fn config_round_trips_through_serde() {
        for name in MIX_NAMES {
            let config = YcsbConfig::named(name, 1_000).unwrap().with_theta(0.6);
            let text = serde::json::to_string(&config);
            let back: YcsbConfig = serde::json::from_str(&text).unwrap();
            assert_eq!(back, config);
        }
    }
}
