//! # atrapos-workloads
//!
//! The workloads of the ATraPos evaluation (paper §III and §VI):
//!
//! * [`micro`] — the microbenchmarks of §III: the perfectly partitionable
//!   one-row read (Figures 1, 2, 5), the multi-site update benchmark
//!   (Figures 3, 4), and the 100-row read used for the memory-placement
//!   experiment (Table I).
//! * [`simple_ab`] — the two-table transaction of §V-A used to compare
//!   partitioning and placement strategies (Figure 6).
//! * [`tatp`] — the TATP telecom benchmark: 4 tables, 7 transaction types,
//!   the standard mix, plus the skew and mix-switching knobs used by the
//!   adaptive experiments (Figures 8, 10–13, Table II).
//! * [`tpcc`] — the TPC-C wholesale-supplier benchmark: 9 tables, 5
//!   transaction types including the NewOrder flow graph of Figure 7
//!   (Figure 8).
//! * [`ycsb`] — the YCSB workload family (core mixes A–F over one table),
//!   an extension beyond the paper: Zipfian and continuously drifting
//!   skew for the adaptive-controller experiments.
//! * [`spec`] — workloads as data: the declarative [`WorkloadSpec`]
//!   language, validated at load with typed errors and compiled by
//!   [`CompiledWorkload`] onto the same precomputed-sampler,
//!   buffer-reuse hot path the hand-rolled generators use.
//! * [`generator`] — shared key-distribution helpers (uniform, hotspot,
//!   Zipfian, and drifting-hotspot skew) and transaction-mix selection.

pub mod generator;
pub mod micro;
pub mod simple_ab;
pub mod spec;
pub mod tatp;
pub mod tpcc;
pub mod ycsb;

pub use generator::{KeyDistribution, KeySampler, Mix};
pub use micro::{MultiSiteUpdate, ReadManyRows, ReadOneRow};
pub use simple_ab::SimpleAb;
pub use spec::{CompiledWorkload, SpecError, WorkloadSpec};
pub use tatp::{Tatp, TatpConfig, TatpTxn};
pub use tpcc::{Tpcc, TpccConfig, TpccTxn};
pub use ycsb::{Ycsb, YcsbConfig, YcsbOp};
