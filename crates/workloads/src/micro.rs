//! The microbenchmarks of paper §III.

use crate::generator::{KeyDistribution, KeySampler};
use atrapos_core::KeyDomain;
use atrapos_engine::workload::{ensure_tables, ReconfigureError, WorkloadChange};
use atrapos_engine::{Action, ActionOp, Phase, TableSpec, TransactionSpec, Workload};
use atrapos_numa::CoreId;
use atrapos_storage::{Column, ColumnType, Database, Key, Record, Schema, TableId, Value};
use rand::rngs::SmallRng;
use rand::Rng;

/// The single table used by all three microbenchmarks: ten integer columns,
/// keyed by the first.
fn probe_schema(name: &str) -> Schema {
    Schema::new(
        name,
        (0..10)
            .map(|i| Column::new(format!("c{i}"), ColumnType::Int))
            .collect(),
        vec![0],
    )
}

fn probe_record(key: i64) -> Record {
    // Column 0 is the primary key; the remaining columns carry payload.
    Record::new(
        (0..10)
            .map(|c| {
                if c == 0 {
                    Value::Int(key)
                } else {
                    Value::Int(key * 10 + c)
                }
            })
            .collect(),
    )
}

fn populate_probe(
    workload: &dyn Workload,
    rows: i64,
    db: &mut Database,
    filter: &dyn Fn(TableId, &Key) -> bool,
) {
    ensure_tables(workload, db);
    let table = db.table_mut(TableId(0)).expect("probe table exists");
    for i in 0..rows {
        let key = Key::int(i);
        if filter(TableId(0), &key) {
            table.load(probe_record(i)).expect("unique keys");
        }
    }
}

/// The perfectly partitionable microbenchmark: every transaction reads one
/// row, chosen uniformly, from a table of ten integer columns (paper §III-B,
/// Figures 1, 2, and 5; 800 K rows in the paper).
#[derive(Debug, Clone)]
pub struct ReadOneRow {
    /// Number of rows.
    pub rows: i64,
    /// Number of sites the key space is divided into for site-local key
    /// generation (1 = uniform over the whole table).  The paper's
    /// "perfectly partitionable" workload draws each client's keys from its
    /// own site, so transactions never cross sites.
    pub sites: usize,
    /// Cores per site (maps a submitting core to its site).
    pub cores_per_site: usize,
    /// Key distribution (uniform by default; the skew experiments switch
    /// to a hotspot — or Zipfian / drifting skew — at runtime via
    /// [`ReadOneRow::set_distribution`]).
    distribution: KeyDistribution,
    /// One precomputed sampler per site, rebuilt on reconfiguration so
    /// per-transaction draws never allocate (see
    /// `atrapos_core::distribution`).
    samplers: Vec<KeySampler>,
}

impl ReadOneRow {
    /// The paper-sized dataset (800 K rows).
    pub fn paper() -> Self {
        Self::with_rows(800_000)
    }

    /// A dataset with `rows` rows.
    pub fn with_rows(rows: i64) -> Self {
        Self::partitionable(rows, 1, 1)
    }

    /// Make the workload perfectly partitionable over `sites` sites with
    /// `cores_per_site` cores each: every client only reads rows of its own
    /// site.
    pub fn partitionable(rows: i64, sites: usize, cores_per_site: usize) -> Self {
        assert!(sites >= 1 && cores_per_site >= 1);
        let mut w = Self {
            rows,
            sites,
            cores_per_site,
            distribution: KeyDistribution::Uniform,
            samplers: Vec::new(),
        };
        w.rebuild_samplers();
        w
    }

    /// Switch the key distribution (e.g. to a hotspot) at runtime.
    pub fn set_distribution(&mut self, d: KeyDistribution) {
        self.distribution = d;
        self.rebuild_samplers();
    }

    /// The current key distribution.
    pub fn distribution(&self) -> KeyDistribution {
        self.distribution
    }

    fn rebuild_samplers(&mut self) {
        self.samplers = (0..self.sites)
            .map(|site| {
                let (lo, hi) = self.site_range(site);
                self.distribution.sampler(lo, hi)
            })
            .collect();
    }

    fn site_range(&self, site: usize) -> (i64, i64) {
        if self.sites <= 1 {
            return (0, self.rows);
        }
        let width = self.rows / self.sites as i64;
        let lo = site as i64 * width;
        let hi = if site + 1 == self.sites {
            self.rows
        } else {
            lo + width
        };
        (lo, hi.max(lo + 1))
    }

    fn site_of(&self, client: CoreId) -> usize {
        (client.index() / self.cores_per_site) % self.sites
    }
}

impl Workload for ReadOneRow {
    fn name(&self) -> &str {
        "read-one-row"
    }

    fn tables(&self) -> Vec<TableSpec> {
        vec![TableSpec {
            id: TableId(0),
            schema: probe_schema("probe"),
            domain: KeyDomain::new(0, self.rows),
            rows: self.rows as u64,
        }]
    }

    fn populate(&self, db: &mut Database, filter: &dyn Fn(TableId, &Key) -> bool) {
        populate_probe(self, self.rows, db, filter);
    }

    fn next_transaction(&mut self, rng: &mut SmallRng, client: CoreId) -> TransactionSpec {
        let site = self.site_of(client);
        let k = self.samplers[site].sample(rng);
        TransactionSpec::single_phase(
            "read-one-row",
            vec![Action::new(ActionOp::Read {
                table: TableId(0),
                key: Key::int(k),
            })],
        )
    }

    fn reconfigure(&mut self, change: &WorkloadChange) -> Result<(), ReconfigureError> {
        match change {
            WorkloadChange::Distribution { distribution } => {
                self.set_distribution(*distribution);
                Ok(())
            }
            WorkloadChange::ZipfianTheta { theta } => {
                self.set_distribution(KeyDistribution::Zipfian { theta: *theta });
                Ok(())
            }
            other => Err(ReconfigureError::Unsupported {
                workload: self.name().to_string(),
                change: other.clone(),
            }),
        }
    }
}

/// The multi-site update microbenchmark (paper §III-C, Figures 3 and 4).
///
/// Local transactions update 10 rows chosen from the submitting site's slice
/// of the data; multi-site transactions update 1 local row and 9 rows chosen
/// uniformly from the whole dataset.
#[derive(Debug, Clone)]
pub struct MultiSiteUpdate {
    /// Number of rows.
    pub rows: i64,
    /// Number of sites the data is partitioned over (instances of the
    /// shared-nothing deployment being driven).
    pub sites: usize,
    /// Cores per site (1 for the extreme configuration, cores-per-socket for
    /// the coarse one).
    pub cores_per_site: usize,
    /// Percentage (0–100) of multi-site transactions.
    pub multi_site_percent: u32,
    /// Rows updated per transaction (10 in the paper).
    pub rows_per_txn: usize,
}

impl MultiSiteUpdate {
    /// Build the benchmark for a deployment of `sites` sites with
    /// `cores_per_site` cores each.
    pub fn new(rows: i64, sites: usize, cores_per_site: usize, multi_site_percent: u32) -> Self {
        assert!(sites >= 1 && cores_per_site >= 1);
        Self {
            rows,
            sites,
            cores_per_site,
            multi_site_percent: multi_site_percent.min(100),
            rows_per_txn: 10,
        }
    }

    fn site_of(&self, client: CoreId) -> usize {
        (client.index() / self.cores_per_site) % self.sites
    }

    fn local_range(&self, site: usize) -> (i64, i64) {
        let width = self.rows / self.sites as i64;
        let lo = site as i64 * width;
        let hi = if site + 1 == self.sites {
            self.rows
        } else {
            lo + width
        };
        (lo, hi.max(lo + 1))
    }
}

impl Workload for MultiSiteUpdate {
    fn name(&self) -> &str {
        "multi-site-update"
    }

    fn tables(&self) -> Vec<TableSpec> {
        vec![TableSpec {
            id: TableId(0),
            schema: probe_schema("probe"),
            domain: KeyDomain::new(0, self.rows),
            rows: self.rows as u64,
        }]
    }

    fn populate(&self, db: &mut Database, filter: &dyn Fn(TableId, &Key) -> bool) {
        populate_probe(self, self.rows, db, filter);
    }

    fn next_transaction(&mut self, rng: &mut SmallRng, client: CoreId) -> TransactionSpec {
        let site = self.site_of(client);
        let (lo, hi) = self.local_range(site);
        let multi = rng.gen_range(0u32..100) < self.multi_site_percent;
        let mut keys = Vec::with_capacity(self.rows_per_txn);
        // The first row always comes from the local site.
        keys.push(rng.gen_range(lo..hi));
        for _ in 1..self.rows_per_txn {
            if multi {
                keys.push(rng.gen_range(0..self.rows));
            } else {
                keys.push(rng.gen_range(lo..hi));
            }
        }
        keys.sort_unstable();
        keys.dedup();
        let actions = keys
            .into_iter()
            .map(|k| {
                Action::new(ActionOp::Increment {
                    table: TableId(0),
                    key: Key::int(k),
                    column: 1,
                    delta: 1,
                })
            })
            .collect();
        TransactionSpec::new(
            if multi { "multi-site" } else { "local" },
            vec![Phase::new(actions)],
        )
    }

    fn reconfigure(&mut self, change: &WorkloadChange) -> Result<(), ReconfigureError> {
        match change {
            WorkloadChange::MultiSitePercent { percent } => {
                self.multi_site_percent = (*percent).min(100);
                Ok(())
            }
            other => Err(ReconfigureError::Unsupported {
                workload: self.name().to_string(),
                change: other.clone(),
            }),
        }
    }
}

/// The remote-memory microbenchmark (paper §III-D, Table I): every
/// transaction reads 100 rows chosen uniformly from a 1 M-row table —
/// random enough to defeat the last-level cache and the prefetchers.
#[derive(Debug, Clone)]
pub struct ReadManyRows {
    /// Number of rows.
    pub rows: i64,
    /// Rows read per transaction (100 in the paper).
    pub rows_per_txn: usize,
}

impl ReadManyRows {
    /// The paper-sized dataset (1 M rows, 100 rows per transaction).
    pub fn paper() -> Self {
        Self {
            rows: 1_000_000,
            rows_per_txn: 100,
        }
    }

    /// A scaled dataset.
    pub fn with_rows(rows: i64, rows_per_txn: usize) -> Self {
        Self { rows, rows_per_txn }
    }
}

impl Workload for ReadManyRows {
    fn name(&self) -> &str {
        "read-many-rows"
    }

    fn tables(&self) -> Vec<TableSpec> {
        vec![TableSpec {
            id: TableId(0),
            schema: probe_schema("probe"),
            domain: KeyDomain::new(0, self.rows),
            rows: self.rows as u64,
        }]
    }

    fn populate(&self, db: &mut Database, filter: &dyn Fn(TableId, &Key) -> bool) {
        populate_probe(self, self.rows, db, filter);
    }

    fn next_transaction(&mut self, rng: &mut SmallRng, _client: CoreId) -> TransactionSpec {
        let actions = (0..self.rows_per_txn)
            .map(|_| {
                Action::new(ActionOp::Read {
                    table: TableId(0),
                    key: Key::int(rng.gen_range(0..self.rows)),
                })
                .with_extra_instructions(60)
            })
            .collect();
        TransactionSpec::single_phase("read-many-rows", actions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn read_one_row_generates_single_reads() {
        let mut w = ReadOneRow::with_rows(1000);
        let mut rng = SmallRng::seed_from_u64(1);
        let spec = w.next_transaction(&mut rng, CoreId(0));
        assert_eq!(spec.num_actions(), 1);
        assert!(!spec.is_update());
        let mut db = Database::new();
        w.populate(&mut db, &|_, _| true);
        assert_eq!(db.table(TableId(0)).unwrap().len(), 1000);
    }

    #[test]
    fn read_one_row_drift_window_rotates_per_draw() {
        // A drifting distribution applied through reconfigure must keep
        // its draw counter between transactions (a stateless per-call
        // sampler would freeze the window at its initial position).
        let mut w = ReadOneRow::with_rows(1_000);
        w.set_distribution(KeyDistribution::Drift {
            data_fraction: 0.05,
            access_fraction: 1.0,
            period_txns: 100,
        });
        let mut rng = SmallRng::seed_from_u64(4);
        let key_at = |w: &mut ReadOneRow, rng: &mut SmallRng| {
            w.next_transaction(rng, CoreId(0)).phases[0].actions[0]
                .op
                .routing_key_head()
        };
        let early: Vec<i64> = (0..10).map(|_| key_at(&mut w, &mut rng)).collect();
        for _ in 0..40 {
            key_at(&mut w, &mut rng);
        }
        let late: Vec<i64> = (0..10).map(|_| key_at(&mut w, &mut rng)).collect();
        // 50 draws into a 100-draw period, the window sits near the
        // middle of the domain; at the start it covered the low keys.
        assert!(early.iter().all(|&k| k < 150), "early keys {early:?}");
        assert!(
            late.iter().all(|&k| (400..700).contains(&k)),
            "late keys {late:?}"
        );
    }

    #[test]
    fn multi_site_percentage_controls_remote_keys() {
        let mut rng = SmallRng::seed_from_u64(2);
        // 4 sites, 1 core per site, client on core 0 => site 0 owns 0..250.
        let mut local_only = MultiSiteUpdate::new(1000, 4, 1, 0);
        for _ in 0..50 {
            let spec = local_only.next_transaction(&mut rng, CoreId(0));
            assert_eq!(spec.class, "local");
            for a in &spec.phases[0].actions {
                assert!(a.op.routing_key_head() < 250);
            }
        }
        let mut all_multi = MultiSiteUpdate::new(1000, 4, 1, 100);
        let mut saw_remote = false;
        for _ in 0..50 {
            let spec = all_multi.next_transaction(&mut rng, CoreId(0));
            assert_eq!(spec.class, "multi-site");
            if spec.phases[0]
                .actions
                .iter()
                .any(|a| a.op.routing_key_head() >= 250)
            {
                saw_remote = true;
            }
        }
        assert!(saw_remote);
    }

    #[test]
    fn multi_site_maps_clients_to_sites_by_cores_per_site() {
        let w = MultiSiteUpdate::new(1000, 4, 10, 50);
        assert_eq!(w.site_of(CoreId(0)), 0);
        assert_eq!(w.site_of(CoreId(9)), 0);
        assert_eq!(w.site_of(CoreId(10)), 1);
        assert_eq!(w.site_of(CoreId(39)), 3);
    }

    #[test]
    fn read_many_rows_reads_the_requested_count() {
        let mut w = ReadManyRows::with_rows(10_000, 100);
        let mut rng = SmallRng::seed_from_u64(3);
        let spec = w.next_transaction(&mut rng, CoreId(2));
        assert_eq!(spec.num_actions(), 100);
        assert!(!spec.is_update());
    }
}
