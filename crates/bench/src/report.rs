//! Plain-text rendering of experiment results, plus machine-readable JSON
//! dumps of scenario runs.

use atrapos_engine::ScenarioOutcome;
use std::path::PathBuf;

/// The outcome of regenerating one table or figure.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Experiment identifier ("fig02", "tab01", ...).
    pub id: &'static str,
    /// Title matching the paper's caption.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (scaling factors, expected shape).
    pub notes: Vec<String>,
}

impl FigureResult {
    /// Create a result with the given id/title/header.
    pub fn new(id: &'static str, title: impl Into<String>, header: Vec<&str>) -> Self {
        Self {
            id,
            title: title.into(),
            header: header.into_iter().map(String::from).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a data row.
    pub fn push_row(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.header.len());
        self.rows.push(row);
    }

    /// Append a note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Render as an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Directory the JSON segment reports go to (`ATRAPOS_REPORT_DIR`
/// overrides; default `reports/`).
pub fn report_dir() -> PathBuf {
    std::env::var("ATRAPOS_REPORT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("reports"))
}

/// Write the per-segment statistics of one experiment's scenario runs as
/// JSON next to the text report (`reports/BENCH_<id>_segments.json`), so
/// the performance trajectory has machine-readable input.  Best-effort: a
/// read-only working directory only loses the JSON copy, never the run.
pub fn write_scenario_json(id: &str, outcomes: &[&ScenarioOutcome]) -> Option<PathBuf> {
    let dir = report_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return None;
    }
    let path = dir.join(format!("BENCH_{id}_segments.json"));
    let body = serde::json::to_string_pretty(&outcomes.to_vec());
    match std::fs::write(&path, body) {
        Ok(()) => Some(path),
        Err(_) => None,
    }
}

/// Format a float with sensible precision for tables.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns_and_includes_notes() {
        let mut f = FigureResult::new("figXX", "test figure", vec!["a", "bbbb"]);
        f.push_row(vec!["1".into(), "2".into()]);
        f.push_row(vec!["100".into(), "2000".into()]);
        f.note("scaled");
        let s = f.render();
        assert!(s.contains("figXX"));
        assert!(s.contains("note: scaled"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn fmt_uses_sensible_precision() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(12345.6), "12346");
        assert_eq!(fmt(12.34), "12.3");
        assert_eq!(fmt(1.2345), "1.234");
    }
}
