//! Report output glue: where JSON artifacts go, and re-exports of the
//! result model from `atrapos-report`.
//!
//! The result types themselves ([`FigureResult`], [`FiguresFile`]) live in
//! `atrapos-report` so the report generator can consume recorded results
//! without depending on the harness; this module only decides *where* the
//! harness writes them.

use atrapos_engine::{RunMeta, ScenarioOutcome};
pub use atrapos_report::{fmt, FigureResult, FiguresFile};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Directory the JSON reports go to (`ATRAPOS_REPORT_DIR` overrides;
/// default `reports/`).
pub fn report_dir() -> PathBuf {
    std::env::var("ATRAPOS_REPORT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("reports"))
}

/// Path of the accumulated figure-result store,
/// `reports/BENCH_figures.json`.
pub fn figures_path() -> PathBuf {
    report_dir().join("BENCH_figures.json")
}

/// Load the figure-result store, or an empty one if the file does not
/// exist yet.  An unparseable file is an error — never silently wipe
/// accumulated results.
pub fn load_figures() -> Result<FiguresFile, String> {
    let path = figures_path();
    match std::fs::read_to_string(&path) {
        Ok(text) => {
            FiguresFile::from_json(&text).map_err(|e| format!("unreadable {}: {e}", path.display()))
        }
        Err(_) => Ok(FiguresFile::new()),
    }
}

/// Write the figure-result store back to `reports/BENCH_figures.json`.
pub fn save_figures(file: &FiguresFile) -> Result<PathBuf, String> {
    let dir = report_dir();
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let path = figures_path();
    std::fs::write(&path, file.to_json())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(path)
}

/// A segment-report file: the scenario outcomes of one experiment plus the
/// provenance of the run that produced them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SegmentsFile {
    /// Provenance: machine spec, seed, lab threads.
    pub meta: RunMeta,
    /// One outcome per design variant the experiment ran.
    pub outcomes: Vec<ScenarioOutcome>,
}

/// Write the per-segment statistics of one experiment's scenario runs as
/// JSON next to the text report (`reports/BENCH_<id>_segments.json`), so
/// the performance trajectory has machine-readable input.  Best-effort: a
/// read-only working directory only loses the JSON copy, never the run.
pub fn write_scenario_json(
    id: &str,
    meta: RunMeta,
    outcomes: &[&ScenarioOutcome],
) -> Option<PathBuf> {
    let dir = report_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return None;
    }
    let path = dir.join(format!("BENCH_{id}_segments.json"));
    let file = SegmentsFile {
        meta,
        outcomes: outcomes.iter().map(|o| (*o).clone()).collect(),
    };
    let body = serde::json::to_string_pretty(&file);
    match std::fs::write(&path, body) {
        Ok(()) => Some(path),
        Err(_) => None,
    }
}
