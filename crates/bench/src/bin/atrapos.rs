//! The unified `atrapos` command line: one entry point that runs the
//! paper's experiments, benchmarks the simulator, replays experiment
//! files, and renders the reproduction report.
//!
//! ```text
//! atrapos figures              # run the reproduction report set, update BENCH_figures.json
//! atrapos figures fig10 abl04  # run specific experiments
//! atrapos figures --all        # every experiment (fig01–fig13, tab01–tab02, ablations)
//! atrapos wallclock --label L  # time the fixed simulator bundle
//! atrapos sweep --workload tatp --sockets 1,8
//! atrapos replay experiment.json
//! atrapos report               # BENCH_figures.json -> REPRODUCTION.md + SVG charts
//! atrapos report --check      # fail (exit 1) if the committed report drifted
//! ```
//!
//! (Run via `cargo run --release -p atrapos-bench --bin atrapos -- <cmd>`.)
//!
//! `ATRAPOS_PAPER=1` switches `figures`/`sweep` to the paper-sized
//! datasets; `ATRAPOS_REPORT_DIR` moves the JSON/SVG output directory;
//! `ATRAPOS_THREADS` pins the experiment lab's thread pool.

use atrapos_bench::cli::{self, FlagSpec};
use atrapos_bench::figures::{
    run_by_id, ABLATION_IDS, ALL_IDS, OVERLOAD_IDS, REPORT_IDS, SPEC_IDS, YCSB_IDS,
};
use atrapos_bench::report::{figures_path, load_figures, report_dir, save_figures};
use atrapos_bench::{replay, shootout, wallclock, workload_cmd, Scale};
use std::path::Path;

const USAGE: &str = "\
atrapos — the ATraPos reproduction toolbox

USAGE: atrapos <command> [options]

COMMANDS:
  figures [ids..] [--all] [--only id]
                            Run experiments, print their tables, and record
                            the results in reports/BENCH_figures.json.
                            Default ids: the reproduction report set
                            (fig08, tab02, fig10-fig13, abl01-abl04,
                            ycsb01-ycsb02, overload01-overload02).
                            --only <id> regenerates a single experiment
                            without the rest of the bundle (repeatable).
  wallclock [--label L] [--threads N] [--smoke]
                            Time the fixed simulator bundle and append the
                            entry to reports/BENCH_wallclock.json.
  wallclock --check [--tolerance PCT]
                            Perf-regression gate: compare the last recorded
                            entry against the most recent earlier entry with
                            the same host fingerprint, thread count, and
                            smoke flag; exit 1 if any component's wall_ms or
                            the total regressed beyond PCT% (default 10).
                            Passes with a notice when no comparable baseline
                            exists (e.g. a fresh host).
  workload check <spec.json>...
                            Validate declarative WorkloadSpec files: parse,
                            run the typed structural checks, and print a
                            summary per spec; exit 1 if any is rejected.
  workload run <spec.json> [--parity ycsb-a|simple-ab] [--secs S] [--threads N]
                            Compile a spec and run it across the four
                            YCSB-family designs, printing per-design
                            committed/aborted counts and throughput.
                            --parity re-runs the same jobs with the named
                            hand-rolled workload and fails unless every
                            design's outcome is byte-identical.
  sweep [--workload micro|tatp|tpcc|ycsb|spec:<file.json>] [--sockets 1,8]
        [--arrival TPS] [--bound N]
                            Compare the five system designs on a workload.
                            --arrival switches to open-loop serving at the
                            given Poisson rate (goodput/p99/rejection
                            table); --bound sets the admission-queue depth
                            (default 128).
  replay [file.json] [--emit-sample]
                            Run a complete experiment description from JSON
                            (default: examples/scenarios/adaptive_tatp.json).
  report [--check]          Render REPRODUCTION.md and reports/figures/*.svg
                            from reports/BENCH_figures.json; --check verifies
                            the committed copies instead of writing.
  lint [root] [--only rule] [--list-rules]
                            Static analysis: scan every .rs file for
                            determinism hazards (std HashMap/HashSet,
                            wall-clock reads, unseeded RNG in sim-visible
                            crates) and hot-path allocation regressions.
                            Findings print as `file:line: rule — message`
                            and exit nonzero. Default root: the enclosing
                            cargo workspace. --only <rule> restricts to one
                            rule (repeatable); --list-rules prints the rule
                            table.
  help                      Show this message.

ENVIRONMENT:
  ATRAPOS_PAPER=1       paper-sized datasets (slow)
  ATRAPOS_REPORT_DIR    output directory for JSON/SVG reports (default: reports/)
  ATRAPOS_THREADS       experiment-lab thread-pool size";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    let result = match command {
        "figures" => cmd_figures(rest),
        "workload" => workload_cmd::cmd(rest),
        "wallclock" => wallclock::run(rest),
        "sweep" => cmd_sweep(rest),
        "replay" => cmd_replay(rest),
        "report" => cmd_report(rest),
        "lint" => cmd_lint(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => {
            eprintln!("unknown command '{other}'\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

/// `atrapos figures [ids..] [--all] [--only id]`
fn cmd_figures(args: &[String]) -> Result<(), String> {
    let scale = Scale::from_env();
    let parsed = cli::parse(
        args,
        &[FlagSpec::switch("--all"), FlagSpec::repeated("--only")],
        usize::MAX,
        "atrapos figures [ids..] [--all] [--only id]",
    )?;
    let all = parsed.has("--all");
    // `--only <id>` pulls one experiment out of the bundle; it may repeat
    // and combines with positional ids.
    let mut ids: Vec<String> = parsed
        .positionals()
        .iter()
        .cloned()
        .chain(parsed.values("--only").iter().map(|s| s.to_string()))
        .collect();
    if all && !ids.is_empty() {
        return Err("--all combines with no explicit experiment ids".to_string());
    }
    ids = if !ids.is_empty() {
        ids
    } else if all {
        ALL_IDS
            .iter()
            .chain(ABLATION_IDS.iter())
            .chain(YCSB_IDS.iter())
            .chain(OVERLOAD_IDS.iter())
            .chain(SPEC_IDS.iter())
            .map(|s| s.to_string())
            .collect()
    } else {
        REPORT_IDS.iter().map(|s| s.to_string()).collect()
    };

    // Validate every id up front: experiments are expensive, and a typo at
    // the end of the list must not discard completed runs.
    let known = |id: &str| {
        ALL_IDS.contains(&id)
            || ABLATION_IDS.contains(&id)
            || YCSB_IDS.contains(&id)
            || OVERLOAD_IDS.contains(&id)
            || SPEC_IDS.contains(&id)
    };
    if let Some(bad) = ids.iter().find(|id| !known(id)) {
        return Err(format!(
            "unknown experiment id '{bad}'; known ids: {}",
            ALL_IDS
                .iter()
                .chain(ABLATION_IDS.iter())
                .chain(YCSB_IDS.iter())
                .chain(OVERLOAD_IDS.iter())
                .chain(SPEC_IDS.iter())
                .copied()
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }

    let mut store = load_figures()?;
    for id in &ids {
        let fig = run_by_id(id, &scale)
            .unwrap_or_else(|| unreachable!("id '{id}' was validated against the known lists"));
        fig.print();
        store.upsert(fig);
    }
    let path = save_figures(&store)?;
    eprintln!(
        "recorded {} experiment(s) in {} ({} total)",
        ids.len(),
        path.display(),
        store.figures.len()
    );
    Ok(())
}

/// `atrapos sweep [--workload W] [--sockets 1,8] [--arrival TPS] [--bound N]`
fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let scale = Scale::from_env();
    let parsed = cli::parse(
        args,
        &[
            FlagSpec::value("--workload"),
            FlagSpec::value("--sockets"),
            FlagSpec::value("--arrival"),
            FlagSpec::value("--bound"),
        ],
        0,
        "atrapos sweep [--workload micro|tatp|tpcc|ycsb] [--sockets 1,8] \
         [--arrival TPS] [--bound N]",
    )?;
    let workload = parsed.value("--workload").unwrap_or("micro");
    let sockets: Vec<usize> = match parsed.value("--sockets") {
        Some(list) => list
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("bad socket count '{s}'"))
            })
            .collect::<Result<_, _>>()?,
        None => vec![1, scale.max_sockets],
    };
    let arrival: Option<f64> = match parsed.value("--arrival") {
        Some(a) => Some(
            a.parse::<f64>()
                .ok()
                .filter(|r| r.is_finite() && *r > 0.0)
                .ok_or("--arrival needs a positive rate in TPS (e.g. --arrival 50000)")?,
        ),
        None => None,
    };
    let bound: u64 = match parsed.value("--bound") {
        Some(b) => b
            .parse::<u64>()
            .ok()
            .filter(|&b| b >= 1)
            .ok_or("--bound needs an admission-queue depth of at least 1")?,
        None => 128,
    };
    if arrival.is_none() && parsed.has("--bound") {
        return Err("--bound only applies to open-loop sweeps (add --arrival TPS)".into());
    }
    let open_loop = arrival.map(|rate| (rate, bound));
    for fig in shootout::design_sweep(workload, &scale, &sockets, open_loop)? {
        fig.print();
    }
    Ok(())
}

/// `atrapos replay [file.json] [--emit-sample]`
fn cmd_replay(args: &[String]) -> Result<(), String> {
    let parsed = cli::parse(
        args,
        &[FlagSpec::switch("--emit-sample")],
        1,
        "atrapos replay [file.json] [--emit-sample]",
    )?;
    if parsed.has("--emit-sample") {
        println!("{}", serde::json::to_string_pretty(&replay::sample()));
        return Ok(());
    }
    let path = parsed
        .positionals()
        .first()
        .cloned()
        .unwrap_or_else(|| replay::DEFAULT_REPLAY_PATH.to_string());
    let replay_file = replay::ReplayFile::load(&path)?;
    let outcome = replay_file.run()?;
    replay::print_outcome(&replay_file, &outcome);
    Ok(())
}

/// `atrapos report [--check]`
fn cmd_report(args: &[String]) -> Result<(), String> {
    let parsed = cli::parse(
        args,
        &[FlagSpec::switch("--check")],
        0,
        "atrapos report [--check]",
    )?;
    let check = parsed.has("--check");
    let figures = {
        let path = figures_path();
        if !path.exists() {
            return Err(format!(
                "{} not found — run `atrapos figures` first",
                path.display()
            ));
        }
        load_figures()?
    };
    let svg_dir = report_dir().join("figures");
    // Markdown image links are relative to REPRODUCTION.md at the repo
    // root.
    let svg_prefix = svg_dir.to_string_lossy().replace('\\', "/");
    let rendered = atrapos_report::generate(&figures, &svg_prefix);

    let md_path = Path::new("REPRODUCTION.md");
    // SVGs on disk that no current experiment produces (removed or renamed
    // entries) are stale evidence: `--check` flags them, a write removes
    // them.
    let expected: Vec<&str> = rendered.svgs.iter().map(|(n, _)| n.as_str()).collect();
    let orphans: Vec<std::path::PathBuf> = std::fs::read_dir(&svg_dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| {
                    p.extension().is_some_and(|ext| ext == "svg")
                        && p.file_name()
                            .and_then(|n| n.to_str())
                            .is_some_and(|n| !expected.contains(&n))
                })
                .collect()
        })
        .unwrap_or_default();
    if check {
        let mut drifted = Vec::new();
        if std::fs::read_to_string(md_path).ok().as_deref() != Some(rendered.markdown.as_str()) {
            drifted.push(md_path.display().to_string());
        }
        for (name, svg) in &rendered.svgs {
            let path = svg_dir.join(name);
            if std::fs::read_to_string(&path).ok().as_deref() != Some(svg.as_str()) {
                drifted.push(path.display().to_string());
            }
        }
        for orphan in &orphans {
            drifted.push(format!("{} (orphaned)", orphan.display()));
        }
        if drifted.is_empty() {
            eprintln!("report is up to date ({} charts)", rendered.svgs.len());
            Ok(())
        } else {
            Err(format!(
                "reproduction report drifted from {}: regenerate with `atrapos report` \
                 and commit the result\n  stale: {}",
                figures_path().display(),
                drifted.join(", ")
            ))
        }
    } else {
        std::fs::create_dir_all(&svg_dir)
            .map_err(|e| format!("cannot create {}: {e}", svg_dir.display()))?;
        std::fs::write(md_path, &rendered.markdown)
            .map_err(|e| format!("cannot write {}: {e}", md_path.display()))?;
        for (name, svg) in &rendered.svgs {
            let path = svg_dir.join(name);
            std::fs::write(&path, svg)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        }
        for orphan in &orphans {
            std::fs::remove_file(orphan)
                .map_err(|e| format!("cannot remove orphaned {}: {e}", orphan.display()))?;
            eprintln!("removed orphaned chart {}", orphan.display());
        }
        eprintln!(
            "wrote {} and {} chart(s) under {}",
            md_path.display(),
            rendered.svgs.len(),
            svg_dir.display()
        );
        Ok(())
    }
}

/// `atrapos lint [root] [--only rule] [--list-rules]`
fn cmd_lint(args: &[String]) -> Result<(), String> {
    let parsed = cli::parse(
        args,
        &[
            FlagSpec::switch("--list-rules"),
            FlagSpec::repeated("--only"),
        ],
        1,
        "atrapos lint [root] [--only rule] [--list-rules]",
    )?;
    if parsed.has("--list-rules") {
        for rule in atrapos_lint::RULES {
            println!("{:16} {}", rule.name, rule.summary);
            println!("{:16}   scope: {}", "", rule.scope);
        }
        return Ok(());
    }
    let root = match parsed.positionals().first() {
        Some(p) => Path::new(p).to_path_buf(),
        None => workspace_root()?,
    };
    let only: Vec<String> = parsed
        .values("--only")
        .iter()
        .map(|s| s.to_string())
        .collect();
    let findings = atrapos_lint::lint_workspace(&root, &only)?;
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        eprintln!("lint clean ({})", root.display());
        Ok(())
    } else {
        Err(format!(
            "{} lint finding(s); waive intentional ones with \
             `// lint: allow(<rule>) — <reason>`",
            findings.len()
        ))
    }
}

/// The enclosing cargo workspace root: the nearest ancestor of the
/// current directory whose `Cargo.toml` declares `[workspace]`.
fn workspace_root() -> Result<std::path::PathBuf, String> {
    let start = std::env::current_dir().map_err(|e| format!("cannot read current dir: {e}"))?;
    for dir in start.ancestors() {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir.to_path_buf());
            }
        }
    }
    Err(format!(
        "no workspace root found above {} (pass the root explicitly: `atrapos lint <root>`)",
        start.display()
    ))
}
