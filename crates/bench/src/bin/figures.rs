//! Command-line entry point: regenerate one or all of the paper's tables and
//! figures.
//!
//! ```text
//! cargo run --release -p atrapos-bench --bin figures            # everything
//! cargo run --release -p atrapos-bench --bin figures -- fig02   # one figure
//! ATRAPOS_PAPER=1 cargo run --release -p atrapos-bench --bin figures
//! ```

use atrapos_bench::figures::{run_all, run_by_id, ALL_IDS};
use atrapos_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    if args.is_empty() {
        for fig in run_all(&scale) {
            fig.print();
        }
        return;
    }
    for id in &args {
        match run_by_id(id, &scale) {
            Some(fig) => fig.print(),
            None => {
                eprintln!(
                    "unknown experiment id '{id}'; known ids: {}",
                    ALL_IDS.join(", ")
                );
                std::process::exit(1);
            }
        }
    }
}
