//! Strict argument parsing for the `atrapos` subcommands.
//!
//! Every subcommand declares the flags it understands as a [`FlagSpec`]
//! table and runs its raw argument list through [`parse`].  Anything the
//! table does not name is an error: `--smok`, `--thread 4`, or a value
//! flag at the end of the line (`--label` with nothing after it) all used
//! to be silently ignored, so a typo could run a whole benchmark bundle
//! with defaults and nobody would notice.  A misspelled flag now aborts
//! before any work starts, with the subcommand's usage line attached.

/// One flag a subcommand accepts.
#[derive(Debug, Clone, Copy)]
pub struct FlagSpec {
    /// The literal flag, including dashes (e.g. `"--threads"`).
    pub name: &'static str,
    /// Whether the flag consumes the following argument as its value.
    pub takes_value: bool,
    /// Whether the flag may appear more than once (e.g. `--only`).
    pub repeatable: bool,
}

impl FlagSpec {
    /// A boolean flag (`--smoke`).
    pub const fn switch(name: &'static str) -> Self {
        Self {
            name,
            takes_value: false,
            repeatable: false,
        }
    }

    /// A flag that takes one value (`--label L`).
    pub const fn value(name: &'static str) -> Self {
        Self {
            name,
            takes_value: true,
            repeatable: false,
        }
    }

    /// A value flag that may repeat (`--only a --only b`).
    pub const fn repeated(name: &'static str) -> Self {
        Self {
            name,
            takes_value: true,
            repeatable: true,
        }
    }
}

/// The validated result of [`parse`].
#[derive(Debug, Default)]
pub struct ParsedArgs {
    flags: Vec<(&'static str, Option<String>)>,
    positionals: Vec<String>,
}

impl ParsedArgs {
    /// Whether `name` appeared at all.
    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| *n == name)
    }

    /// The value of `name`, if it appeared (last occurrence wins for
    /// non-repeatable flags, which [`parse`] limits to one anyway).
    pub fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// All values of a repeatable flag, in order of appearance.
    pub fn values(&self, name: &str) -> Vec<&str> {
        self.flags
            .iter()
            .filter(|(n, _)| *n == name)
            .filter_map(|(_, v)| v.as_deref())
            .collect()
    }

    /// Positional (non-flag) arguments, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }
}

/// Parse `args` against the accepted `flags`, allowing up to
/// `max_positionals` non-flag arguments.  Rejects unknown flags, value
/// flags with a missing value (end of line or another flag where the
/// value should be), duplicated non-repeatable flags, and excess
/// positionals; `usage` is appended to every error so the caller's help
/// text surfaces next to the complaint.
pub fn parse(
    args: &[String],
    flags: &[FlagSpec],
    max_positionals: usize,
    usage: &str,
) -> Result<ParsedArgs, String> {
    let mut out = ParsedArgs::default();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if arg.starts_with('-') {
            let spec = flags
                .iter()
                .find(|f| f.name == arg)
                .ok_or_else(|| format!("unknown flag '{arg}'\n\nUSAGE: {usage}"))?;
            if spec.takes_value {
                let value = args
                    .get(i + 1)
                    .filter(|v| !v.starts_with('-'))
                    .ok_or_else(|| format!("flag '{arg}' needs a value\n\nUSAGE: {usage}"))?;
                if !spec.repeatable && out.has(spec.name) {
                    return Err(format!(
                        "flag '{arg}' given more than once\n\nUSAGE: {usage}"
                    ));
                }
                out.flags.push((spec.name, Some(value.clone())));
                i += 2;
            } else {
                if out.has(spec.name) {
                    return Err(format!(
                        "flag '{arg}' given more than once\n\nUSAGE: {usage}"
                    ));
                }
                out.flags.push((spec.name, None));
                i += 1;
            }
        } else {
            if out.positionals.len() >= max_positionals {
                return Err(format!("unexpected argument '{arg}'\n\nUSAGE: {usage}"));
            }
            out.positionals.push(arg.clone());
            i += 1;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    const FLAGS: &[FlagSpec] = &[
        FlagSpec::switch("--smoke"),
        FlagSpec::value("--label"),
        FlagSpec::value("--threads"),
        FlagSpec::repeated("--only"),
    ];

    #[test]
    fn accepts_known_flags_and_values() {
        let p = parse(
            &argv(&["--smoke", "--label", "run", "--threads", "2"]),
            FLAGS,
            0,
            "u",
        )
        .unwrap();
        assert!(p.has("--smoke"));
        assert_eq!(p.value("--label"), Some("run"));
        assert_eq!(p.value("--threads"), Some("2"));
        assert!(!p.has("--only"));
    }

    #[test]
    fn rejects_unknown_flags() {
        // The misspellings that used to be silently ignored.
        for bad in [["--smok"].as_slice(), &["--thread", "4"], &["-x"]] {
            let err = parse(&argv(bad), FLAGS, 0, "usage-line").unwrap_err();
            assert!(err.contains("unknown flag"), "{err}");
            assert!(err.contains("usage-line"), "{err}");
        }
    }

    #[test]
    fn rejects_value_flag_without_value() {
        // At the end of the line…
        let err = parse(&argv(&["--label"]), FLAGS, 0, "u").unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
        // …and when another flag sits where the value should be (the old
        // parser would have taken `--smoke` as the label).
        let err = parse(&argv(&["--label", "--smoke"]), FLAGS, 0, "u").unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
    }

    #[test]
    fn rejects_duplicate_non_repeatable_flags() {
        let err = parse(&argv(&["--label", "a", "--label", "b"]), FLAGS, 0, "u").unwrap_err();
        assert!(err.contains("more than once"), "{err}");
        let err = parse(&argv(&["--smoke", "--smoke"]), FLAGS, 0, "u").unwrap_err();
        assert!(err.contains("more than once"), "{err}");
    }

    #[test]
    fn repeatable_flags_collect_in_order() {
        let p = parse(&argv(&["--only", "a", "--only", "b"]), FLAGS, 0, "u").unwrap();
        assert_eq!(p.values("--only"), vec!["a", "b"]);
    }

    #[test]
    fn positionals_are_bounded() {
        let p = parse(&argv(&["fig10", "abl04"]), FLAGS, 5, "u").unwrap();
        assert_eq!(p.positionals(), ["fig10".to_string(), "abl04".to_string()]);
        let err = parse(&argv(&["fig10"]), FLAGS, 0, "u").unwrap_err();
        assert!(err.contains("unexpected argument"), "{err}");
    }
}
