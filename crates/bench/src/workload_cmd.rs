//! The `atrapos workload` subcommand: validate and run declarative
//! workload specs.
//!
//! * `atrapos workload check <spec.json>...` — parse and validate each
//!   file, print a one-line summary per spec, and exit nonzero if any is
//!   rejected (the typed [`SpecError`](atrapos_workloads::SpecError)
//!   prints as the reason).  CI runs
//!   this over every shipped `examples/specs/*.json`.
//! * `atrapos workload run <spec.json> [--parity ycsb-a|simple-ab]
//!   [--secs S] [--threads N]` — compile the spec and run it across the
//!   four YCSB-family designs on the 4×4 machine, printing per-design
//!   committed/aborted counts and throughput.  With `--parity`, the same
//!   jobs run again with the named hand-rolled workload (sized from the
//!   spec's first table) and the command fails unless every design's
//!   entire [`ScenarioOutcome`] is byte-identical — the end-to-end form
//!   of the spec-stream digest parity tests.

use crate::cli::{self, FlagSpec};
use crate::figures::{load_spec, spec_job, ycsb_designs};
use crate::harness::Scale;
use atrapos_engine::scenario::{Scenario, ScenarioOutcome};
use atrapos_engine::sweep::{default_threads, run_sweep, SweepJob};
use atrapos_engine::Workload;
use atrapos_workloads::spec::WorkloadSpec;
use atrapos_workloads::{SimpleAb, Ycsb, YcsbConfig};
use std::path::Path;

/// Usage string for the subcommand family.
pub const USAGE: &str = "atrapos workload check <spec.json>... | \
     atrapos workload run <spec.json> [--parity ycsb-a|simple-ab] [--secs S] [--threads N]";

/// Dispatch `atrapos workload <check|run> ...`.
pub fn cmd(args: &[String]) -> Result<(), String> {
    match args.split_first() {
        Some((sub, rest)) if sub == "check" => cmd_check(rest),
        Some((sub, rest)) if sub == "run" => cmd_run(rest),
        _ => Err(format!("usage: {USAGE}")),
    }
}

/// `atrapos workload check <spec.json>...`
fn cmd_check(args: &[String]) -> Result<(), String> {
    let parsed = cli::parse(args, &[], usize::MAX, USAGE)?;
    if parsed.positionals().is_empty() {
        return Err(format!("usage: {USAGE}"));
    }
    let mut failures = 0usize;
    for path in parsed.positionals() {
        match checked_spec(Path::new(path)) {
            Ok(spec) => {
                let rows: i64 = spec.tables.iter().map(|t| t.keys * t.sub_rows).sum();
                println!(
                    "OK {path}: workload '{}' — {} table(s), {rows} rows, {} template(s): {}",
                    spec.name,
                    spec.tables.len(),
                    spec.templates.len(),
                    spec.templates
                        .iter()
                        .map(|t| format!("{} ({})", t.name, t.weight))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
            }
            Err(e) => {
                eprintln!("FAIL {path}: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        return Err(format!("{failures} spec file(s) failed validation"));
    }
    Ok(())
}

/// Load and validate one spec file.
fn checked_spec(path: &Path) -> Result<WorkloadSpec, String> {
    let spec = load_spec(path)?;
    spec.validate()
        .map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(spec)
}

/// `atrapos workload run <spec.json> [--parity W] [--secs S] [--threads N]`
fn cmd_run(args: &[String]) -> Result<(), String> {
    let parsed = cli::parse(
        args,
        &[
            FlagSpec::value("--parity"),
            FlagSpec::value("--secs"),
            FlagSpec::value("--threads"),
        ],
        1,
        USAGE,
    )?;
    let path = parsed
        .positionals()
        .first()
        .ok_or_else(|| format!("usage: {USAGE}"))?;
    let scale = Scale::from_env();
    let secs: f64 = match parsed.value("--secs") {
        Some(s) => s
            .parse::<f64>()
            .ok()
            .filter(|v| v.is_finite() && *v > 0.0)
            .ok_or("--secs needs a positive duration in simulated seconds")?,
        None => scale.measure_secs,
    };
    let threads = match parsed.value("--threads") {
        Some(t) => t
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or("--threads needs a positive thread count")?,
        None => default_threads(),
    };
    let spec = checked_spec(Path::new(path))?;

    let outcomes = run_designs(&spec, &scale, secs, threads, |_| {
        Ok(Box::new(spec.compile().expect("spec validated above")))
    })?;
    println!(
        "workload '{}' ({path}) — {} designs × {secs} simulated s",
        spec.name,
        outcomes.len()
    );
    println!(
        "  {:<16} {:>10} {:>8} {:>10}",
        "design", "committed", "aborted", "KTPS"
    );
    for (label, outcome) in &outcomes {
        let stats = &outcome.segments[0].stats;
        println!(
            "  {:<16} {:>10} {:>8} {:>10.1}",
            label,
            stats.committed,
            stats.aborted,
            stats.throughput_tps / 1e3
        );
    }

    if let Some(which) = parsed.value("--parity") {
        let reference = run_designs(&spec, &scale, secs, threads, |spec| {
            hand_rolled(which, spec)
        })?;
        let mut mismatches = Vec::new();
        for ((label, spec_out), (_, hand_out)) in outcomes.iter().zip(reference.iter()) {
            if serde::json::to_string(spec_out) != serde::json::to_string(hand_out) {
                mismatches.push(format!(
                    "{label}: spec committed {} vs hand-rolled {}",
                    spec_out.segments[0].stats.committed, hand_out.segments[0].stats.committed
                ));
            }
        }
        if mismatches.is_empty() {
            println!(
                "parity vs hand-rolled {which}: OK — identical outcomes on all {} designs",
                outcomes.len()
            );
        } else {
            return Err(format!(
                "spec-vs-handrolled parity failed on {} design(s):\n  {}",
                mismatches.len(),
                mismatches.join("\n  ")
            ));
        }
    }
    Ok(())
}

/// Run one workload instance per design and return `(label, outcome)` in
/// design order.
fn run_designs(
    spec: &WorkloadSpec,
    scale: &Scale,
    secs: f64,
    threads: usize,
    mut workload: impl FnMut(&WorkloadSpec) -> Result<Box<dyn Workload>, String>,
) -> Result<Vec<(&'static str, ScenarioOutcome)>, String> {
    let designs = ycsb_designs(scale);
    let scenario = Scenario::new("workload-run", secs);
    let mut jobs: Vec<SweepJob> = Vec::new();
    for (label, design) in &designs {
        let mut job = spec_job(
            format!("{}/{label}", spec.name),
            scale,
            spec.compile().expect("spec validated by the caller"),
            design.clone(),
            &scenario,
        );
        job.workload = workload(spec)?;
        jobs.push(job);
    }
    let results = run_sweep(jobs, threads);
    Ok(designs
        .iter()
        .zip(results)
        .map(|((label, _), r)| {
            let outcome = r
                .outcome
                .unwrap_or_else(|e| panic!("workload job '{}' failed: {e}", r.name));
            (*label, outcome)
        })
        .collect())
}

/// Build the hand-rolled reference workload for `--parity`, sized from
/// the spec's first table so both sides generate over the same domain.
fn hand_rolled(which: &str, spec: &WorkloadSpec) -> Result<Box<dyn Workload>, String> {
    let keys = spec
        .tables
        .first()
        .map(|t| t.keys)
        .ok_or("parity reference needs at least one table")?;
    match which {
        "ycsb-a" => Ok(Box::new(Ycsb::new(YcsbConfig::workload_a(keys)))),
        "simple-ab" => Ok(Box::new(SimpleAb::new(keys))),
        other => Err(format!(
            "unknown parity reference '{other}' (known: ycsb-a, simple-ab)"
        )),
    }
}
