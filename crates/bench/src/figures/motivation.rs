//! The motivation experiments of paper §III: how the existing designs behave
//! on multisocket hardware (Figures 1–5, Table I).

use crate::harness::{measure, measure_with_memory_policy, run_meta, Scale};
use crate::report::{fmt, FigureResult};
use atrapos_engine::DesignSpec;
use atrapos_numa::Component;
use atrapos_numa::SocketId;
use atrapos_storage::MemoryPolicy;
use atrapos_workloads::{MultiSiteUpdate, ReadManyRows, ReadOneRow};

/// Socket counts used by the scale-up figures.
fn socket_counts(max: usize) -> Vec<usize> {
    (1..=max).collect()
}

/// Figure 1: instructions retired per cycle of the extreme shared-nothing,
/// centralized, and PLP designs on the perfectly partitionable
/// microbenchmark, for 1/2/4/8 sockets.
pub fn fig01_ipc(scale: &Scale) -> FigureResult {
    let mut fig = FigureResult::new(
        "fig01",
        "Instructions retired per cycle (perfectly partitionable workload)",
        vec!["sockets", "extreme-SN", "centralized", "PLP"],
    );
    for sockets in [1usize, 2, 4, 8] {
        let sockets = sockets.min(scale.max_sockets);
        let mut row = vec![sockets.to_string()];
        for kind in [
            DesignSpec::extreme_shared_nothing(false),
            DesignSpec::Centralized,
            DesignSpec::Plp,
        ] {
            let stats = measure(
                sockets,
                scale.cores_per_socket,
                &kind,
                Box::new(ReadOneRow::partitionable(
                    scale.micro_rows,
                    sockets * scale.cores_per_socket,
                    1,
                )),
                scale.measure_secs,
            );
            row.push(fmt(stats.ipc));
        }
        fig.push_row(row);
    }
    fig.note("expected shape: shared-nothing flat; centralized rises with spinning; PLP drops with cross-socket CAS stalls");
    fig.set_meta(run_meta(scale.max_sockets, scale.cores_per_socket));
    fig
}

/// Figure 2: throughput (millions of transactions per second) of the same
/// three designs as the number of sockets grows.
pub fn fig02_scaleup(scale: &Scale) -> FigureResult {
    let mut fig = FigureResult::new(
        "fig02",
        "Throughput of shared-nothing, centralized, and PLP (MTPS)",
        vec!["sockets", "extreme-SN", "centralized", "PLP"],
    );
    for sockets in socket_counts(scale.max_sockets) {
        let mut row = vec![sockets.to_string()];
        for kind in [
            DesignSpec::extreme_shared_nothing(false),
            DesignSpec::Centralized,
            DesignSpec::Plp,
        ] {
            let stats = measure(
                sockets,
                scale.cores_per_socket,
                &kind,
                Box::new(ReadOneRow::partitionable(
                    scale.micro_rows,
                    sockets * scale.cores_per_socket,
                    1,
                )),
                scale.measure_secs,
            );
            row.push(fmt(stats.throughput_tps / 1e6));
        }
        fig.push_row(row);
    }
    fig.note("expected shape: extreme shared-nothing scales linearly; centralized and PLP stop scaling past 1-2 sockets");
    fig.set_meta(run_meta(scale.max_sockets, scale.cores_per_socket));
    fig
}

/// Figure 3: throughput (KTPS) as the percentage of multi-site update
/// transactions grows, for the extreme/coarse shared-nothing and the
/// centralized designs.
pub fn fig03_multisite(scale: &Scale) -> FigureResult {
    let mut fig = FigureResult::new(
        "fig03",
        "Throughput vs. % multi-site transactions (KTPS)",
        vec!["% multi-site", "extreme-SN", "coarse-SN", "centralized"],
    );
    let sockets = scale.max_sockets;
    let cores = scale.cores_per_socket;
    for pct in [0u32, 20, 40, 60, 80, 100] {
        let mut row = vec![pct.to_string()];
        for kind in [
            DesignSpec::extreme_shared_nothing(true),
            DesignSpec::coarse_shared_nothing(),
            DesignSpec::Centralized,
        ] {
            let (sites, cores_per_site) = match &kind {
                DesignSpec::SharedNothing {
                    granularity: atrapos_engine::SharedNothingGranularity::PerCore,
                    ..
                } => (sockets * cores, 1),
                _ => (sockets, cores),
            };
            let workload = MultiSiteUpdate::new(scale.micro_rows, sites, cores_per_site, pct);
            let stats = measure(
                sockets,
                cores,
                &kind,
                Box::new(workload),
                scale.measure_secs,
            );
            row.push(fmt(stats.throughput_tps / 1e3));
        }
        fig.push_row(row);
    }
    fig.note("expected shape: shared-nothing throughput collapses as multi-site % grows; centralized is flat but low");
    fig.set_meta(run_meta(sockets, cores));
    fig
}

/// Figure 4: per-transaction time breakdown of the coarse shared-nothing
/// configuration as the percentage of multi-site transactions grows.
pub fn fig04_breakdown(scale: &Scale) -> FigureResult {
    let mut fig = FigureResult::new(
        "fig04",
        "Time breakdown per transaction, coarse shared-nothing (µs)",
        vec![
            "% multi-site",
            "xct management",
            "xct execution",
            "communication",
            "locking",
            "logging",
            "total",
        ],
    );
    let sockets = scale.max_sockets;
    let cores = scale.cores_per_socket;
    let ghz = 2.4;
    for pct in [0u32, 20, 40, 60, 80, 100] {
        let workload = MultiSiteUpdate::new(scale.micro_rows, sockets, cores, pct);
        let stats = measure(
            sockets,
            cores,
            &DesignSpec::coarse_shared_nothing(),
            Box::new(workload),
            scale.measure_secs,
        );
        let per_txn = |c: Component| {
            if stats.committed == 0 {
                0.0
            } else {
                atrapos_numa::cycles_to_micros(stats.breakdown.get(c), ghz) / stats.committed as f64
            }
        };
        let mgmt = per_txn(Component::XctManagement) + per_txn(Component::Latching);
        let exec = per_txn(Component::XctExecution);
        let comm = per_txn(Component::Communication);
        let lock = per_txn(Component::Locking);
        let log = per_txn(Component::Logging);
        fig.push_row(vec![
            pct.to_string(),
            fmt(mgmt),
            fmt(exec),
            fmt(comm),
            fmt(lock),
            fmt(log),
            fmt(mgmt + exec + comm + lock + log),
        ]);
    }
    fig.note("expected shape: total time per transaction grows steeply with multi-site %, driven by logging, communication, and transaction management");
    fig.set_meta(run_meta(sockets, cores));
    fig
}

/// Table I: per-instance throughput of the coarse shared-nothing deployment
/// under the Local / Central / Remote memory-allocation policies.
pub fn tab01_memory_policy(scale: &Scale) -> FigureResult {
    let sockets = scale.max_sockets;
    let mut header = vec!["policy".to_string()];
    for s in 0..sockets {
        header.push(format!("socket{s}"));
    }
    header.push("total".to_string());
    let mut fig = FigureResult::new(
        "tab01",
        "Throughput (TPS) per instance under memory-allocation policies",
        header.iter().map(|s| s.as_str()).collect(),
    );
    let mut totals = Vec::new();
    for policy in [
        MemoryPolicy::Local,
        MemoryPolicy::Central(SocketId((sockets - 1) as u16)),
        MemoryPolicy::Remote,
    ] {
        let stats = measure_with_memory_policy(
            sockets,
            scale.cores_per_socket,
            policy,
            Box::new(ReadManyRows::with_rows(scale.memory_rows, 100)),
            scale.measure_secs,
        );
        let mut row = vec![policy.label().to_string()];
        for s in 0..sockets {
            row.push(fmt(stats.committed_by_socket.get(s).copied().unwrap_or(0)
                as f64
                / scale.measure_secs));
        }
        row.push(fmt(stats.throughput_tps));
        totals.push(stats.throughput_tps);
        fig.push_row(row);
    }
    if totals.len() == 3 && totals[0] > 0.0 {
        fig.note(format!(
            "central penalty {:.1}%, remote penalty {:.1}% (paper: 2.5-6.2% and 3.3-7%)",
            (1.0 - totals[1] / totals[0]) * 100.0,
            (1.0 - totals[2] / totals[0]) * 100.0
        ));
    }
    fig.set_meta(run_meta(sockets, scale.cores_per_socket));
    fig
}

/// Figure 5: throughput of the perfectly partitionable workload for the
/// extreme/coarse shared-nothing designs, ATraPos, and PLP.
pub fn fig05_atrapos_scaleup(scale: &Scale) -> FigureResult {
    let mut fig = FigureResult::new(
        "fig05",
        "Throughput of a perfectly partitionable workload (MTPS)",
        vec!["sockets", "extreme-SN", "coarse-SN", "ATraPos", "PLP"],
    );
    for sockets in socket_counts(scale.max_sockets) {
        let mut row = vec![sockets.to_string()];
        for kind in [
            DesignSpec::extreme_shared_nothing(false),
            DesignSpec::coarse_shared_nothing(),
            DesignSpec::atrapos(),
            DesignSpec::Plp,
        ] {
            let stats = measure(
                sockets,
                scale.cores_per_socket,
                &kind,
                Box::new(ReadOneRow::partitionable(
                    scale.micro_rows,
                    sockets * scale.cores_per_socket,
                    1,
                )),
                scale.measure_secs,
            );
            row.push(fmt(stats.throughput_tps / 1e6));
        }
        fig.push_row(row);
    }
    fig.note(
        "expected shape: ATraPos scales like both shared-nothing configurations; PLP does not",
    );
    fig.set_meta(run_meta(scale.max_sockets, scale.cores_per_socket));
    fig
}
